"""The GraphIR vertex vocabulary (Table 1 of the SNS paper).

Every GraphIR vertex is named ``<type><width>`` (e.g. ``mul16``).  Widths
are rounded to the closest power of two (ties round up), clamped to the
per-type range in Table 1, yielding exactly 79 distinct embeddings:

- 11 logic/wiring types × widths {4, 8, 16, 32, 64} = 55
- 6 arithmetic/compare types × widths {8, 16, 32, 64} = 24
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "LOGIC_TYPES",
    "ARITH_TYPES",
    "NODE_TYPES",
    "WIDTHS_LOGIC",
    "WIDTHS_ARITH",
    "SEQUENTIAL_TYPES",
    "round_width",
    "token_name",
    "parse_token",
    "Vocabulary",
]

# Types whose minimum rounded width is 4 (Table 1, upper block).
LOGIC_TYPES: tuple[str, ...] = (
    "io", "dff", "mux", "not", "and", "or", "xor", "sh",
    "reduce_and", "reduce_or", "reduce_xor",
)
# Types whose minimum rounded width is 8 (Table 1, lower block).
ARITH_TYPES: tuple[str, ...] = ("add", "mul", "eq", "lgt", "div", "mod")

NODE_TYPES: tuple[str, ...] = LOGIC_TYPES + ARITH_TYPES

WIDTHS_LOGIC: tuple[int, ...] = (4, 8, 16, 32, 64)
WIDTHS_ARITH: tuple[int, ...] = (8, 16, 32, 64)

# Vertices that delimit complete circuit paths (contain flip-flops or are
# design ports — Section 3.2).
SEQUENTIAL_TYPES: frozenset[str] = frozenset({"io", "dff"})

MAX_WIDTH = 64


def _allowed_widths(node_type: str) -> tuple[int, ...]:
    if node_type in ARITH_TYPES:
        return WIDTHS_ARITH
    if node_type in LOGIC_TYPES:
        return WIDTHS_LOGIC
    raise ValueError(f"unknown GraphIR node type: {node_type!r}")


def round_width(width: int, node_type: str = "io") -> int:
    """Round ``width`` to the closest allowed power of two for ``node_type``.

    Ties round *up* — the paper treats widths 12..23 as ``16`` for a
    divider — and results clamp to the Table 1 range (4..64 for logic
    types, 8..64 for arithmetic types).
    """
    if width < 1:
        raise ValueError(f"width must be positive: {width}")
    allowed = _allowed_widths(node_type)
    lo, hi = allowed[0], allowed[-1]
    if width <= lo:
        return lo
    if width >= hi:
        return hi
    # Closest allowed value in linear distance, ties toward the larger.
    best = min(allowed, key=lambda w: (abs(w - width), -w))
    return best


def token_name(node_type: str, width: int, rounded: bool = True) -> str:
    """The vocabulary token for a vertex, e.g. ``token_name('mul', 17) == 'mul16'``."""
    w = round_width(width, node_type) if rounded else width
    return f"{node_type}{w}"


def parse_token(token: str) -> tuple[str, int]:
    """Inverse of :func:`token_name`: ``'mul16' -> ('mul', 16)``."""
    for node_type in sorted(NODE_TYPES, key=len, reverse=True):
        if token.startswith(node_type):
            suffix = token[len(node_type):]
            if suffix.isdigit():
                return node_type, int(suffix)
    raise ValueError(f"cannot parse GraphIR token: {token!r}")


@dataclass(frozen=True)
class Vocabulary:
    """The fixed 79-token circuit vocabulary plus special tokens.

    Token ids: ``0 = <pad>``, ``1 = <cls>``, circuit tokens from 2 up, in
    deterministic (type, width) order.
    """

    tokens: tuple[str, ...]

    PAD = 0
    CLS = 1
    NUM_SPECIAL = 2

    @classmethod
    def standard(cls) -> "Vocabulary":
        """The shared 79-token Table 1 vocabulary.

        Returns a cached singleton: the instance is immutable and its
        lazily-built lookup tables are expensive enough that per-call
        reconstruction showed up in path-labeling profiles.  Callers that
        need an independent instance can construct ``Vocabulary(tokens=...)``
        directly.
        """
        global _STANDARD_VOCAB
        if _STANDARD_VOCAB is None:
            names = []
            for node_type in NODE_TYPES:
                for width in _allowed_widths(node_type):
                    names.append(f"{node_type}{width}")
            _STANDARD_VOCAB = cls(tokens=tuple(names))
        return _STANDARD_VOCAB

    def __len__(self) -> int:
        return len(self.tokens) + self.NUM_SPECIAL

    @property
    def circuit_size(self) -> int:
        """Number of circuit tokens (79 for the standard vocabulary)."""
        return len(self.tokens)

    @property
    def _lookup(self) -> dict[str, int]:
        """Token -> id hash map, built once per instance."""
        table = self.__dict__.get("_lookup_table")
        if table is None:
            table = {t: i + self.NUM_SPECIAL for i, t in enumerate(self.tokens)}
            object.__setattr__(self, "_lookup_table", table)
        return table

    @property
    def _sorted_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """(sorted token array, ids in that order) for vectorized lookup."""
        cached = self.__dict__.get("_sorted_cache")
        if cached is None:
            arr = np.asarray(self.tokens)
            order = np.argsort(arr)
            cached = (arr[order], order.astype(np.int64) + self.NUM_SPECIAL)
            object.__setattr__(self, "_sorted_cache", cached)
        return cached

    def id_of(self, token: str) -> int:
        try:
            return self._lookup[token]
        except KeyError:
            raise KeyError(f"token not in vocabulary: {token!r}") from None

    def token_of(self, token_id: int) -> str:
        if token_id == self.PAD:
            return "<pad>"
        if token_id == self.CLS:
            return "<cls>"
        index = token_id - self.NUM_SPECIAL
        if not 0 <= index < len(self.tokens):
            raise KeyError(f"token id out of range: {token_id}")
        return self.tokens[index]

    def encode(self, tokens: list[str]) -> list[int]:
        lookup = self._lookup
        try:
            return [lookup[t] for t in tokens]
        except KeyError as exc:
            raise KeyError(f"token not in vocabulary: {exc.args[0]!r}") from None

    def encode_array(self, tokens) -> np.ndarray:
        """Vectorized :meth:`encode` over a flat token sequence.

        Uses binary search into the sorted token table, so a batch of
        thousands of tokens is one :func:`numpy.searchsorted` call instead
        of a Python loop.  Returns an int64 id array; raises ``KeyError``
        on the first unknown token, like :meth:`encode`.
        """
        arr = np.asarray(tokens)
        if arr.size == 0:
            return np.zeros(0, dtype=np.int64)
        sorted_tokens, sorted_ids = self._sorted_arrays
        pos = np.searchsorted(sorted_tokens, arr)
        pos_clipped = np.minimum(pos, len(sorted_tokens) - 1)
        hit = sorted_tokens[pos_clipped] == arr
        if not hit.all():
            bad = str(arr[~hit][0])
            raise KeyError(f"token not in vocabulary: {bad!r}")
        return sorted_ids[pos_clipped]

    def decode(self, ids: list[int]) -> list[str]:
        return [self.token_of(i) for i in ids]

    def __contains__(self, token: str) -> bool:
        return token in self._lookup


_STANDARD_VOCAB: Vocabulary | None = None
