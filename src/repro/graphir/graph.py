"""The GraphIR circuit graph (Section 3.1 of the SNS paper).

A :class:`CircuitGraph` is a directed graph whose vertices are functional
units (``io``, ``dff``, ``mux``, ``add``, ``mul``, …) annotated with the
bit-width of their widest connection, and whose edges are wires.  Node
token names (``mul16``) use the rounded Table 1 vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from .vocab import NODE_TYPES, SEQUENTIAL_TYPES, round_width, token_name

__all__ = ["Node", "CircuitGraph"]


@dataclass(frozen=True)
class Node:
    """A GraphIR vertex.

    ``width`` is the raw (unrounded) maximal connection width; ``token``
    gives the rounded vocabulary name used by the models.
    """

    node_id: int
    node_type: str
    width: int
    label: str = ""

    def __post_init__(self):
        if self.node_type not in NODE_TYPES:
            raise ValueError(f"unknown node type: {self.node_type!r}")
        if self.width < 1:
            raise ValueError(f"node width must be positive: {self.width}")

    # token / rounded_width are immutable functions of (node_type, width)
    # but sit on the sampling and stats hot loops, so they are computed
    # once per node (cached_property writes the instance __dict__
    # directly, which a frozen dataclass permits).
    @cached_property
    def token(self) -> str:
        return token_name(self.node_type, self.width)

    @cached_property
    def rounded_width(self) -> int:
        return round_width(self.width, self.node_type)

    @cached_property
    def is_sequential(self) -> bool:
        """True for vertices that delimit complete circuit paths."""
        return self.node_type in SEQUENTIAL_TYPES


@dataclass
class CircuitGraph:
    """Directed circuit graph with O(1) successor/predecessor lookup."""

    name: str = "design"
    _nodes: dict[int, Node] = field(default_factory=dict)
    _succ: dict[int, list[int]] = field(default_factory=dict)
    _pred: dict[int, list[int]] = field(default_factory=dict)
    _next_id: int = 0
    # Chronological edge journal: every accepted edge in insertion order.
    # This is what lets the compiled front-end (repro.graphir.compiled)
    # and the memoizing elaborator replay construction order exactly.
    _edge_log: list[tuple[int, int]] = field(default_factory=list,
                                             compare=False, repr=False)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_node(self, node_type: str, width: int, label: str = "") -> int:
        """Create a vertex and return its id."""
        node_id = self._next_id
        self._next_id += 1
        self._nodes[node_id] = Node(node_id, node_type, width, label)
        self._succ[node_id] = []
        self._pred[node_id] = []
        return node_id

    def add_edge(self, src: int, dst: int) -> None:
        """Connect ``src -> dst``; parallel edges are collapsed."""
        if src not in self._nodes or dst not in self._nodes:
            raise KeyError(f"edge endpoints must exist: {src} -> {dst}")
        if dst not in self._succ[src]:
            self._succ[src].append(dst)
            self._pred[dst].append(src)
            self._edge_log.append((src, dst))

    def merge(self, other: "CircuitGraph") -> dict[int, int]:
        """Union ``other`` into this graph; returns old-id -> new-id map.

        Merged nodes are brand new in this graph, so the incoming
        adjacency lists (already deduplicated) are remapped wholesale
        instead of replaying one membership-scanning ``add_edge`` per
        edge.
        """
        remap: dict[int, int] = {}
        for node in other.nodes():
            remap[node.node_id] = self.add_node(node.node_type, node.width, node.label)
        for src, dsts in other._succ.items():
            new_src = remap[src]
            mapped = [remap[d] for d in dsts]
            self._succ[new_src] = mapped
            for new_dst in mapped:
                self._pred[new_dst].append(new_src)
                self._edge_log.append((new_src, new_dst))
        return remap

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def node(self, node_id: int) -> Node:
        return self._nodes[node_id]

    def nodes(self) -> list[Node]:
        return list(self._nodes.values())

    def node_ids(self) -> list[int]:
        return list(self._nodes.keys())

    def successors(self, node_id: int) -> list[int]:
        return list(self._succ[node_id])

    def predecessors(self, node_id: int) -> list[int]:
        return list(self._pred[node_id])

    def edges(self) -> list[tuple[int, int]]:
        return [(s, d) for s, dsts in self._succ.items() for d in dsts]

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edge_log)

    @property
    def next_node_id(self) -> int:
        """The id the next :meth:`add_node` call will return."""
        return self._next_id

    def sequential_ids(self) -> list[int]:
        """Ids of vertices that contain flip-flops or are ports (io/dff)."""
        return [n.node_id for n in self._nodes.values() if n.is_sequential]

    def source_ids(self) -> list[int]:
        """Sequential vertices that can start a complete circuit path."""
        return [nid for nid in self.sequential_ids() if self._succ[nid]]

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def __repr__(self) -> str:
        return f"CircuitGraph({self.name!r}, nodes={self.num_nodes}, edges={self.num_edges})"

    # ------------------------------------------------------------------ #
    # Construction journal (used by the memoizing elaborator and the
    # compiled front-end; both need exact insertion order).
    # ------------------------------------------------------------------ #
    def edge_mark(self) -> int:
        """Opaque marker for :meth:`edges_since`."""
        return len(self._edge_log)

    def edges_since(self, mark: int) -> list[tuple[int, int]]:
        """Edges accepted since ``mark``, in insertion order."""
        return self._edge_log[mark:]

    def nodes_since(self, start: int) -> list[tuple[str, int, str]]:
        """``(type, width, label)`` of nodes with id >= ``start``, in order."""
        return [(n.node_type, n.width, n.label)
                for nid, n in self._nodes.items() if nid >= start]

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check internal consistency; raises ValueError on corruption."""
        for src, dsts in self._succ.items():
            for dst in dsts:
                if src not in self._pred[dst]:
                    raise ValueError(f"asymmetric adjacency: {src} -> {dst}")
        for dst, srcs in self._pred.items():
            for src in srcs:
                if dst not in self._succ[src]:
                    raise ValueError(f"asymmetric adjacency: {src} -> {dst}")

    def to_networkx(self):
        """Export to a :mod:`networkx` DiGraph (for analysis / baselines)."""
        import networkx as nx

        g = nx.DiGraph(name=self.name)
        for node in self.nodes():
            g.add_node(node.node_id, node_type=node.node_type,
                       width=node.width, token=node.token)
        g.add_edges_from(self.edges())
        return g
