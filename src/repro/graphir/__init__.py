"""``repro.graphir`` — the circuit-graph intermediate representation.

Implements Section 3.1 of the SNS paper: typed, width-annotated vertices
connected by directed wire edges, with the 79-token Table 1 vocabulary
(power-of-two width rounding) and the graph statistics consumed by the
Aggregation MLP.
"""

from .vocab import (
    LOGIC_TYPES,
    ARITH_TYPES,
    NODE_TYPES,
    WIDTHS_LOGIC,
    WIDTHS_ARITH,
    SEQUENTIAL_TYPES,
    round_width,
    token_name,
    parse_token,
    Vocabulary,
)
from .graph import Node, CircuitGraph
from .compiled import CompiledGraph, GraphBuilder, compile_graph, as_compiled
from .serialize import to_json, from_json, save_graph, load_graph
from .stats import (
    token_counts,
    stats_vector,
    structural_features,
    weighted_features,
    NUM_STRUCTURAL_FEATURES,
    NUM_WEIGHTED_FEATURES,
)

__all__ = [
    "LOGIC_TYPES", "ARITH_TYPES", "NODE_TYPES", "WIDTHS_LOGIC", "WIDTHS_ARITH",
    "SEQUENTIAL_TYPES", "round_width", "token_name", "parse_token", "Vocabulary",
    "Node", "CircuitGraph",
    "CompiledGraph", "GraphBuilder", "compile_graph", "as_compiled",
    "to_json", "from_json", "save_graph", "load_graph",
    "token_counts", "stats_vector", "structural_features", "weighted_features",
    "NUM_STRUCTURAL_FEATURES", "NUM_WEIGHTED_FEATURES",
]
