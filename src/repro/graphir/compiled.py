"""Compiled GraphIR: CSR arrays, vectorized stats, and a flat builder.

Mirrors the ``repro.synth.engine`` pattern for the front-end: a
:class:`CompiledGraph` flattens a :class:`CircuitGraph` once into CSR
successor/predecessor arrays with int-coded types, pre-rounded widths,
and vocabulary token ids, so the hot consumers — path sampling
(``PathSampler(engine="array")``), ``graphir.stats``, and graph
fingerprinting — run over arrays instead of per-node dataclass
properties and dict-of-list scans.

Three ways to obtain one:

- :func:`compile_graph` flattens an existing :class:`CircuitGraph`
  (memoized on the graph instance, invalidated when the node/edge counts
  change — the only public mutations are additive);
- :class:`GraphBuilder` is a drop-in construction target for
  :class:`repro.hdl.Circuit` that skips the dict graph entirely and
  compiles straight from flat append-lists
  (``Module.elaborate_compiled`` / ``elaborate(..., compiled=True)``);
- :meth:`CompiledGraph.from_payload` rehydrates the JSON-serializable
  form stored by :class:`repro.runtime.frontend.FrontendCache`.

Everything observable is exact: the CSR keeps per-node successor lists
in insertion order (so the array sampler consumes the RNG stream
bit-identically to the reference), the vectorized stats equal
``graphir.stats`` to the last ulp (every contribution is an exact
integer in float64), and :meth:`CompiledGraph.fingerprint` reproduces
``repro.runtime.fingerprint.fingerprint_graph`` byte for byte.
"""

from __future__ import annotations

import hashlib
from collections import Counter

import numpy as np

from .graph import CircuitGraph
from .vocab import (ARITH_TYPES, NODE_TYPES, SEQUENTIAL_TYPES, WIDTHS_ARITH,
                    WIDTHS_LOGIC, Vocabulary)
from .stats import NUM_STRUCTURAL_FEATURES, NUM_WEIGHTED_FEATURES, _QUADRATIC_TYPES

__all__ = ["CompiledGraph", "GraphBuilder", "compile_graph", "as_compiled"]

PAYLOAD_FORMAT = "repro-graphir-compiled"
PAYLOAD_VERSION = 1

# ---------------------------------------------------------------------- #
# Type-code tables (module-level, built once).
# ---------------------------------------------------------------------- #
_TYPE_CODE: dict[str, int] = {t: i for i, t in enumerate(NODE_TYPES)}
_IS_ARITH = np.array([t in ARITH_TYPES for t in NODE_TYPES])
_IS_SEQ = np.array([t in SEQUENTIAL_TYPES for t in NODE_TYPES])
_IS_QUAD = np.array([t in _QUADRATIC_TYPES for t in NODE_TYPES])
_IS_REDUCE = np.array([t.startswith("reduce_") for t in NODE_TYPES])
_IS_CMP = np.array([t in ("eq", "lgt") for t in NODE_TYPES])
_DFF_CODE = _TYPE_CODE["dff"]
_MUX_CODE = _TYPE_CODE["mux"]
_SH_CODE = _TYPE_CODE["sh"]

# Width rounding as one searchsorted per type class.  The bounds are the
# midpoints between consecutive allowed widths; ``side="right"`` makes a
# width landing exactly on a midpoint round *up*, matching
# ``vocab.round_width``'s tie-toward-larger rule, and out-of-range widths
# clamp to the first/last allowed value for free.
_LOGIC_VALUES = np.array(WIDTHS_LOGIC, np.int64)
_ARITH_VALUES = np.array(WIDTHS_ARITH, np.int64)
_LOGIC_BOUNDS = (_LOGIC_VALUES[:-1] + _LOGIC_VALUES[1:]) // 2   # [6, 12, 24, 48]
_ARITH_BOUNDS = (_ARITH_VALUES[:-1] + _ARITH_VALUES[1:]) // 2   # [12, 24, 48]

# Token ids in Vocabulary.standard() order: per-type base offset plus the
# width-bucket index.
_NUM_SPECIAL = Vocabulary.NUM_SPECIAL
_TOKEN_BASE = np.empty(len(NODE_TYPES), np.int64)
_offset = _NUM_SPECIAL
for _i, _t in enumerate(NODE_TYPES):
    _TOKEN_BASE[_i] = _offset
    _offset += len(WIDTHS_ARITH) if _t in ARITH_TYPES else len(WIDTHS_LOGIC)


def _round_widths(type_codes: np.ndarray, widths: np.ndarray) -> np.ndarray:
    """Vectorized ``round_width`` over parallel type/width arrays."""
    out = np.empty(len(widths), np.int64)
    arith = _IS_ARITH[type_codes]
    logic = ~arith
    out[logic] = _LOGIC_VALUES[
        np.searchsorted(_LOGIC_BOUNDS, widths[logic], side="right")]
    out[arith] = _ARITH_VALUES[
        np.searchsorted(_ARITH_BOUNDS, widths[arith], side="right")]
    return out


def _width_buckets(type_codes: np.ndarray, widths: np.ndarray) -> np.ndarray:
    buckets = np.empty(len(widths), np.int64)
    arith = _IS_ARITH[type_codes]
    logic = ~arith
    buckets[logic] = np.searchsorted(_LOGIC_BOUNDS, widths[logic], side="right")
    buckets[arith] = np.searchsorted(_ARITH_BOUNDS, widths[arith], side="right")
    return buckets


def _csr(src: np.ndarray, dst: np.ndarray, num_nodes: int
         ) -> tuple[np.ndarray, np.ndarray]:
    """Build (indptr, indices); stable sort keeps per-source edge order."""
    indptr = np.zeros(num_nodes + 1, np.int64)
    if len(src):
        np.cumsum(np.bincount(src, minlength=num_nodes), out=indptr[1:])
        order = np.argsort(src, kind="stable")
        indices = dst[order]
    else:
        indices = np.zeros(0, np.int64)
    return indptr, indices


class CompiledGraph:
    """A :class:`CircuitGraph` flattened into arrays (immutable).

    ``edge_src``/``edge_dst`` keep the edges in insertion order — the
    order every :class:`CircuitGraph` adjacency list observes — so both
    CSR directions, :meth:`to_circuit_graph`, and the array sampler see
    exactly the structure (and traversal order) of the dict graph.
    """

    def __init__(self, name: str, type_codes, widths, labels: list[str],
                 edge_src, edge_dst):
        self.name = name
        self.type_codes = np.ascontiguousarray(type_codes, np.int64)
        self.widths = np.ascontiguousarray(widths, np.int64)
        self.labels = labels
        self.edge_src = np.ascontiguousarray(edge_src, np.int64)
        self.edge_dst = np.ascontiguousarray(edge_dst, np.int64)
        n = len(self.type_codes)
        self.succ_indptr, self.succ_indices = _csr(self.edge_src, self.edge_dst, n)
        self.pred_indptr, self.pred_indices = _csr(self.edge_dst, self.edge_src, n)
        self.is_sequential = _IS_SEQ[self.type_codes] if n else np.zeros(0, bool)
        self.rounded_widths = (_round_widths(self.type_codes, self.widths)
                               if n else np.zeros(0, np.int64))
        self.token_ids = ((_TOKEN_BASE[self.type_codes]
                           + _width_buckets(self.type_codes, self.widths))
                          if n else np.zeros(0, np.int64))
        self._derived: dict[str, object] = {}

    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return len(self.type_codes)

    @property
    def num_edges(self) -> int:
        return len(self.edge_src)

    def successors(self, node_id: int) -> list[int]:
        return self.succ_lists[node_id]

    def predecessors(self, node_id: int) -> list[int]:
        lo, hi = self.pred_indptr[node_id], self.pred_indptr[node_id + 1]
        return self.pred_indices[lo:hi].tolist()

    def __repr__(self) -> str:
        return (f"CompiledGraph({self.name!r}, nodes={self.num_nodes}, "
                f"edges={self.num_edges})")

    # ------------------------------------------------------------------ #
    # Derived pure-Python views (built lazily, once): the array sampler's
    # inner loop reads plain lists — faster than ndarray indexing for
    # one-element access — while staying exactly the CSR content.
    # ------------------------------------------------------------------ #
    def _lazy(self, key: str, build):
        value = self._derived.get(key)
        if value is None:
            value = self._derived[key] = build()
        return value

    @property
    def succ_lists(self) -> list[list[int]]:
        def build():
            idx = self.succ_indices.tolist()
            ptr = self.succ_indptr.tolist()
            return [idx[ptr[i]:ptr[i + 1]] for i in range(self.num_nodes)]
        return self._lazy("succ_lists", build)

    @property
    def is_seq_list(self) -> list[bool]:
        return self._lazy("is_seq_list", self.is_sequential.tolist)

    @property
    def token_list(self) -> list[str]:
        def build():
            tokens = Vocabulary.standard().tokens
            base = _NUM_SPECIAL
            return [tokens[t - base] for t in self.token_ids.tolist()]
        return self._lazy("token_list", build)

    def source_ids(self) -> list[int]:
        """Sequential vertices with outgoing edges, in id order."""
        def build():
            out_deg = np.diff(self.succ_indptr)
            return np.nonzero(self.is_sequential & (out_deg > 0))[0].tolist()
        return self._lazy("source_ids", build)

    def ids_of_type(self, node_type: str) -> list[int]:
        """Node ids of one vertex type, in id order."""
        code = _TYPE_CODE.get(node_type)
        if code is None:
            raise ValueError(f"unknown node type: {node_type!r}")
        return np.nonzero(self.type_codes == code)[0].tolist()

    # ------------------------------------------------------------------ #
    # Vectorized statistics (exact equals of ``graphir.stats``).
    # ------------------------------------------------------------------ #
    def token_counts(self) -> Counter:
        def build():
            counts = np.bincount(self.token_ids - _NUM_SPECIAL,
                                 minlength=Vocabulary.standard().circuit_size) \
                if self.num_nodes else np.zeros(0, np.int64)
            tokens = Vocabulary.standard().tokens
            return Counter({tokens[i]: int(c)
                            for i, c in enumerate(counts) if c})
        return self._lazy("token_counts", build)

    def stats_vector(self, vocab: Vocabulary | None = None) -> np.ndarray:
        standard = Vocabulary.standard()
        if vocab is None or vocab is standard:
            def build():
                counts = np.bincount(self.token_ids - _NUM_SPECIAL,
                                     minlength=standard.circuit_size) \
                    if self.num_nodes else np.zeros(standard.circuit_size, np.int64)
                return counts.astype(np.float64)
            return self._lazy("stats_vector", build)
        counts = self.token_counts()
        return np.array([counts.get(token, 0) for token in vocab.tokens],
                        dtype=np.float64)

    def structural_features(self) -> np.ndarray:
        def build():
            if self.num_nodes == 0:
                return np.zeros(NUM_STRUCTURAL_FEATURES)
            out_deg = np.diff(self.succ_indptr)
            return np.array([
                self.num_nodes,
                self.num_edges,
                int(self.is_sequential.sum()),
                int(out_deg.max(initial=0)),
                float(np.mean(self.rounded_widths)),
                float(np.max(self.rounded_widths)),
            ], dtype=np.float64)
        return self._lazy("structural_features", build)

    def weighted_features(self) -> np.ndarray:
        def build():
            totals = np.zeros(NUM_WEIGHTED_FEATURES)
            if self.num_nodes == 0:
                return totals
            tc = self.type_codes
            w = self.rounded_widths.astype(np.float64)
            # Every term is an exact integer in float64 (widths are
            # powers of two >= 4, log2 exact), so summation order cannot
            # change the result vs the reference's sequential loop.
            totals[0] = w.sum()
            quad = w[_IS_QUAD[tc]]
            totals[1] = (quad * quad).sum()
            totals[2] = w[tc == _DFF_CODE].sum()
            totals[3] = w[tc == _MUX_CODE].sum()
            sh = w[tc == _SH_CODE]
            totals[4] = (sh * np.log2(sh)).sum()
            totals[5] = w[_IS_CMP[tc]].sum()
            totals[6] = w[_IS_REDUCE[tc]].sum()
            return totals
        return self._lazy("weighted_features", build)

    # ------------------------------------------------------------------ #
    # Fingerprint (byte-identical to fingerprint_graph on the dict graph)
    # ------------------------------------------------------------------ #
    def fingerprint(self) -> str:
        def build():
            h = hashlib.sha256(b"graph:v2")
            n = self.num_nodes
            ids_widths = np.empty((n, 2), np.int64)
            ids_widths[:, 0] = np.arange(n)
            ids_widths[:, 1] = self.widths
            h.update(ids_widths.tobytes())
            h.update("\x00".join(NODE_TYPES[c]
                                 for c in self.type_codes.tolist()).encode())
            if self.num_edges:
                order = np.lexsort((self.edge_dst, self.edge_src))
                edges = np.column_stack((self.edge_src[order],
                                         self.edge_dst[order]))
            else:
                edges = np.array([], np.int64)
            h.update(edges.tobytes())
            return h.hexdigest()
        return self._lazy("fingerprint", build)

    # ------------------------------------------------------------------ #
    # Interop / serialization
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Raise ``ValueError`` on structural corruption (cheap, vectorized)."""
        n = self.num_nodes
        if len(self.widths) != n or len(self.labels) != n:
            raise ValueError("node array lengths disagree")
        if n and (self.widths < 1).any():
            raise ValueError("node width must be positive")
        if n and ((self.type_codes < 0) | (self.type_codes >= len(NODE_TYPES))).any():
            raise ValueError("node type code out of range")
        for arr in (self.edge_src, self.edge_dst):
            if len(arr) and (n == 0 or (arr < 0).any() or (arr >= n).any()):
                raise ValueError("edge endpoints must exist")

    def to_circuit_graph(self) -> CircuitGraph:
        """Rebuild the equivalent dict-of-lists graph (same ids, same
        adjacency order — ``fingerprint_graph`` and sampling agree)."""
        graph = CircuitGraph(self.name)
        for code, width, label in zip(self.type_codes.tolist(),
                                      self.widths.tolist(), self.labels):
            graph.add_node(NODE_TYPES[code], width, label)
        for src, dst in zip(self.edge_src.tolist(), self.edge_dst.tolist()):
            graph.add_edge(src, dst)
        return graph

    def to_payload(self) -> dict:
        """JSON-serializable form (the FrontendCache disk schema)."""
        return {
            "format": PAYLOAD_FORMAT,
            "version": PAYLOAD_VERSION,
            "name": self.name,
            "types": self.type_codes.tolist(),
            "widths": self.widths.tolist(),
            "labels": list(self.labels),
            "edge_src": self.edge_src.tolist(),
            "edge_dst": self.edge_dst.tolist(),
        }

    @classmethod
    def from_payload(cls, doc: dict) -> "CompiledGraph":
        if doc.get("format") != PAYLOAD_FORMAT:
            raise ValueError(
                f"not a {PAYLOAD_FORMAT} document: format={doc.get('format')!r}")
        if doc.get("version") != PAYLOAD_VERSION:
            raise ValueError(f"unsupported version {doc.get('version')!r}")
        cg = cls(doc.get("name", "design"), doc["types"], doc["widths"],
                 list(doc["labels"]), doc["edge_src"], doc["edge_dst"])
        cg.validate()
        return cg


# ---------------------------------------------------------------------- #
# Compiling an existing dict graph
# ---------------------------------------------------------------------- #
def compile_graph(graph: CircuitGraph, memo: bool = True) -> CompiledGraph:
    """Flatten a :class:`CircuitGraph` into a :class:`CompiledGraph`.

    With ``memo=True`` (the default) the result is cached on the graph
    instance, keyed by its (num_nodes, num_edges) — sound because the
    only public mutations (``add_node``/``add_edge``/``merge``) are
    additive, so any structural change moves at least one count.
    """
    if memo:
        token = (graph.num_nodes, graph.num_edges)
        cached = graph.__dict__.get("_compiled_cache")
        if cached is not None and cached[0] == token:
            return cached[1]
    nodes = graph.nodes()
    num = len(nodes)
    if any(n.node_id != i for i, n in enumerate(nodes)):
        raise ValueError("compile_graph requires contiguous node ids")
    type_codes = np.fromiter((_TYPE_CODE[n.node_type] for n in nodes),
                             np.int64, num)
    widths = np.fromiter((n.width for n in nodes), np.int64, num)
    labels = [n.label for n in nodes]
    log = graph._edge_log
    if len(log) != graph.num_edges:
        raise ValueError("edge journal out of sync with adjacency lists")
    if log:
        edges = np.array(log, np.int64)
        edge_src, edge_dst = edges[:, 0], edges[:, 1]
    else:
        edge_src = edge_dst = np.zeros(0, np.int64)
    compiled = CompiledGraph(graph.name, type_codes, widths, labels,
                             edge_src, edge_dst)
    if memo:
        graph.__dict__["_compiled_cache"] = ((num, graph.num_edges), compiled)
    return compiled


def as_compiled(design) -> CompiledGraph:
    """Coerce a design (CompiledGraph / CircuitGraph / hdl Module) to a
    :class:`CompiledGraph` along the cheapest exact route."""
    if isinstance(design, CompiledGraph):
        return design
    if isinstance(design, CircuitGraph):
        return compile_graph(design)
    elaborate = getattr(design, "elaborate_compiled", None)
    if elaborate is not None:
        return elaborate()
    raise TypeError(f"cannot compile {type(design).__name__} to a CompiledGraph")


# ---------------------------------------------------------------------- #
# Flat construction (skips the dict graph entirely)
# ---------------------------------------------------------------------- #
class GraphBuilder:
    """Array-backed construction target with the :class:`CircuitGraph`
    builder API (``add_node``/``add_edge`` plus the journal hooks the
    memoizing elaborator uses).

    Node/edge validation matches the dict graph's (``ValueError`` for bad
    types/widths, ``KeyError`` for dangling endpoints); adjacency order
    is insertion order, so :meth:`compile` yields exactly what
    :func:`compile_graph` would produce from the equivalent
    :class:`CircuitGraph` — just ~2x faster to build, since it appends to
    flat lists instead of allocating a Node dataclass and two adjacency
    lists per vertex.
    """

    def __init__(self, name: str = "design"):
        self.name = name
        self._types: list[int] = []
        self._widths: list[int] = []
        self._labels: list[str] = []
        self._esrc: list[int] = []
        self._edst: list[int] = []
        self._eset: set[int] = set()
        self._n = 0

    # -- construction (Circuit-facing API) ----------------------------- #
    def add_node(self, node_type: str, width: int, label: str = "") -> int:
        code = _TYPE_CODE.get(node_type)
        if code is None:
            raise ValueError(f"unknown node type: {node_type!r}")
        if width < 1:
            raise ValueError(f"node width must be positive: {width}")
        node_id = self._n
        self._n = node_id + 1
        self._types.append(code)
        self._widths.append(width)
        self._labels.append(label)
        return node_id

    def add_edge(self, src: int, dst: int) -> None:
        n = self._n
        if not (0 <= src < n and 0 <= dst < n):
            raise KeyError(f"edge endpoints must exist: {src} -> {dst}")
        key = (src << 32) | dst
        if key not in self._eset:
            self._eset.add(key)
            self._esrc.append(src)
            self._edst.append(dst)

    # -- queries / journal hooks --------------------------------------- #
    @property
    def num_nodes(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return len(self._esrc)

    @property
    def next_node_id(self) -> int:
        return self._n

    def edge_mark(self) -> int:
        return len(self._esrc)

    def edges_since(self, mark: int) -> list[tuple[int, int]]:
        return list(zip(self._esrc[mark:], self._edst[mark:]))

    def nodes_since(self, start: int) -> list[tuple[str, int, str]]:
        return [(NODE_TYPES[c], w, l)
                for c, w, l in zip(self._types[start:], self._widths[start:],
                                   self._labels[start:])]

    def validate(self) -> None:
        """No-op: every invariant is enforced at construction time."""

    # -- finalize ------------------------------------------------------ #
    def compile(self) -> CompiledGraph:
        return CompiledGraph(
            self.name,
            np.array(self._types, np.int64),
            np.array(self._widths, np.int64),
            list(self._labels),
            np.array(self._esrc, np.int64),
            np.array(self._edst, np.int64),
        )
