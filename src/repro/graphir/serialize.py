"""GraphIR JSON serialization (Yosys-JSON-inspired interchange format).

Lets circuit graphs be stored, diffed, and exchanged without re-running
elaboration:

.. code-block:: json

    {
      "format": "repro-graphir",
      "version": 1,
      "name": "mac8",
      "nodes": [{"id": 0, "type": "io", "width": 8, "label": "a"}, ...],
      "edges": [[0, 2], [1, 2], ...]
    }
"""

from __future__ import annotations

import json
import os

from .graph import CircuitGraph

__all__ = ["to_json", "from_json", "save_graph", "load_graph"]

_FORMAT = "repro-graphir"
_VERSION = 1


def to_json(graph: CircuitGraph, indent: int | None = None) -> str:
    """Serialize a circuit graph to a JSON string."""
    doc = {
        "format": _FORMAT,
        "version": _VERSION,
        "name": graph.name,
        "nodes": [
            {"id": n.node_id, "type": n.node_type, "width": n.width,
             "label": n.label}
            for n in graph.nodes()
        ],
        "edges": [[src, dst] for src, dst in graph.edges()],
    }
    return json.dumps(doc, indent=indent)


def from_json(text: str) -> CircuitGraph:
    """Parse a graph serialized by :func:`to_json`.

    Node ids are preserved, so path records and activity maps referring
    to the original graph remain valid on the loaded copy.
    """
    doc = json.loads(text)
    if doc.get("format") != _FORMAT:
        raise ValueError(f"not a {_FORMAT} document: format={doc.get('format')!r}")
    if doc.get("version") != _VERSION:
        raise ValueError(f"unsupported version {doc.get('version')!r}")

    graph = CircuitGraph(doc.get("name", "design"))
    remap: dict[int, int] = {}
    for node in sorted(doc["nodes"], key=lambda n: n["id"]):
        new_id = graph.add_node(node["type"], node["width"], node.get("label", ""))
        remap[node["id"]] = new_id
        if new_id != node["id"]:
            raise ValueError(
                f"non-contiguous node ids not supported: {node['id']} -> {new_id}")
    for src, dst in doc["edges"]:
        graph.add_edge(remap[src], remap[dst])
    graph.validate()
    return graph


def save_graph(graph: CircuitGraph, path: str | os.PathLike) -> None:
    """Write a graph to a ``.json`` file."""
    with open(path, "w") as f:
        f.write(to_json(graph, indent=1))


def load_graph(path: str | os.PathLike) -> CircuitGraph:
    """Load a graph written by :func:`save_graph`."""
    with open(path) as f:
        return from_json(f.read())
