"""Graph statistics fed to the Aggregation MLP (Figure 2(c) of the paper).

The primary statistic is the count of each distinct vocabulary token; we
also expose a handful of whole-graph structural features that the
Aggregation MLP consumes alongside the per-path predictions.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from .graph import CircuitGraph
from .vocab import Vocabulary

__all__ = ["token_counts", "stats_vector", "structural_features",
           "weighted_features", "NUM_STRUCTURAL_FEATURES", "NUM_WEIGHTED_FEATURES"]

NUM_STRUCTURAL_FEATURES = 6
NUM_WEIGHTED_FEATURES = 7

# Vertex types whose hardware cost grows quadratically with width
# (array multipliers/dividers), versus linearly (everything else).
_QUADRATIC_TYPES = frozenset({"mul", "div", "mod"})


def token_counts(graph: CircuitGraph) -> Counter:
    """Count of each vocabulary token name in the graph.

    Accepts either a :class:`CircuitGraph` (reference per-node loop) or a
    :class:`repro.graphir.compiled.CompiledGraph` (vectorized bincount) —
    as do the other statistics below; the compiled results are exactly
    equal (asserted per registry design by the test suite).
    """
    if not isinstance(graph, CircuitGraph):
        return graph.token_counts()
    return Counter(node.token for node in graph.nodes())


def stats_vector(graph: CircuitGraph, vocab: Vocabulary | None = None) -> np.ndarray:
    """Fixed-length vector of per-token counts, in vocabulary order."""
    if not isinstance(graph, CircuitGraph):
        return graph.stats_vector(vocab)
    vocab = vocab or Vocabulary.standard()
    counts = token_counts(graph)
    return np.array([counts.get(token, 0) for token in vocab.tokens], dtype=np.float64)


def weighted_features(graph: CircuitGraph) -> np.ndarray:
    """Width-weighted aggregate statistics.

    Pure graph statistics (no library access) that correlate strongly
    with physical cost, giving the Aggregation MLP a low-dimensional
    signal alongside the raw 79-token histogram:

    [total bits, quadratic-type bits^2, dff bits, mux bits,
     shifter bits*log2(bits), compare bits, reduce bits]
    """
    if not isinstance(graph, CircuitGraph):
        return graph.weighted_features()
    totals = np.zeros(NUM_WEIGHTED_FEATURES)
    for node in graph.nodes():
        w = node.rounded_width
        totals[0] += w
        if node.node_type in _QUADRATIC_TYPES:
            totals[1] += w * w
        elif node.node_type == "dff":
            totals[2] += w
        elif node.node_type == "mux":
            totals[3] += w
        elif node.node_type == "sh":
            totals[4] += w * np.log2(max(w, 2))
        elif node.node_type in ("eq", "lgt"):
            totals[5] += w
        elif node.node_type.startswith("reduce_"):
            totals[6] += w
    return totals


def structural_features(graph: CircuitGraph) -> np.ndarray:
    """Whole-graph structural features:

    [num_nodes, num_edges, num_sequential, max_fanout, mean_width, max_width]
    """
    if not isinstance(graph, CircuitGraph):
        return graph.structural_features()
    if graph.num_nodes == 0:
        return np.zeros(NUM_STRUCTURAL_FEATURES)
    widths = [node.rounded_width for node in graph.nodes()]
    max_fanout = max((len(graph.successors(nid)) for nid in graph.node_ids()), default=0)
    return np.array([
        graph.num_nodes,
        graph.num_edges,
        len(graph.sequential_ids()),
        max_fanout,
        float(np.mean(widths)),
        float(np.max(widths)),
    ], dtype=np.float64)
