"""``repro.nn`` — a from-scratch numpy autograd engine and layer zoo.

The SNS paper builds its models (Circuitformer, Aggregation MLP, SeqGAN)
on PyTorch + HuggingFace Transformers; this package is the offline,
self-contained substitute. It provides:

- :class:`~repro.nn.tensor.Tensor`: reverse-mode autodiff over numpy.
- Layers: Linear, Embedding, LayerNorm, Dropout, multi-head attention,
  Transformer encoder stacks, GRUs.
- Optimizers: Adam and SGD with momentum (Table 6 of the paper).
- Losses and serialization helpers.
"""

from .tensor import Tensor, tensor, zeros, ones, no_grad, is_grad_enabled, assert_no_grad
from .pool import ScratchPool, scratch_pool
from .executor import (
    ExecutorError,
    PrecisionToleranceError,
    ForwardPlan,
    TrainStepPlan,
    compile_forward,
    compile_train_step,
    max_relative_error,
    DEFAULT_TOLERANCES,
    PRECISIONS,
)
from .module import Module, Parameter, ParamData
from .layers import Linear, Embedding, LayerNorm, Dropout, ReLU, Tanh, GELU, Sequential
from .attention import MultiHeadSelfAttention, TransformerEncoderLayer, TransformerEncoder
from .rnn import GRU, GRUCell
from .optim import SGD, Adam, Optimizer, ReferenceSGD, ReferenceAdam, clip_grad_norm
from .schedule import LRScheduler, StepLR, CosineAnnealingLR, WarmupLR, EarlyStopping
from .functional import (
    concatenate,
    stack,
    mse_loss,
    l1_loss,
    huber_loss,
    cross_entropy,
    binary_cross_entropy,
)
from .serialize import save_module, load_module

__all__ = [
    "Tensor", "tensor", "zeros", "ones", "no_grad", "is_grad_enabled",
    "assert_no_grad",
    "ScratchPool", "scratch_pool",
    "ExecutorError", "PrecisionToleranceError", "ForwardPlan", "TrainStepPlan",
    "compile_forward", "compile_train_step", "max_relative_error",
    "DEFAULT_TOLERANCES", "PRECISIONS",
    "Module", "Parameter", "ParamData",
    "Linear", "Embedding", "LayerNorm", "Dropout", "ReLU", "Tanh", "GELU", "Sequential",
    "MultiHeadSelfAttention", "TransformerEncoderLayer", "TransformerEncoder",
    "GRU", "GRUCell",
    "SGD", "Adam", "Optimizer", "ReferenceSGD", "ReferenceAdam", "clip_grad_norm",
    "LRScheduler", "StepLR", "CosineAnnealingLR", "WarmupLR", "EarlyStopping",
    "concatenate", "stack", "mse_loss", "l1_loss", "huber_loss",
    "cross_entropy", "binary_cross_entropy",
    "save_module", "load_module",
]
