"""Functional helpers: losses and tensor-list combinators."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["concatenate", "stack", "mse_loss", "l1_loss", "huber_loss",
           "cross_entropy", "binary_cross_entropy"]


def concatenate(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    if not tensors:
        raise ValueError("concatenate() needs at least one tensor")
    data = np.concatenate([t.data for t in tensors], axis=axis)
    out = tensors[0]._make_child(data, tuple(tensors), "concatenate")
    if out.requires_grad:
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def _backward(grad):
            for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    index = [slice(None)] * grad.ndim
                    index[axis] = slice(lo, hi)
                    t._accumulate(grad[tuple(index)])
        out._backward = _backward
    return out


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    if not tensors:
        raise ValueError("stack() needs at least one tensor")
    data = np.stack([t.data for t in tensors], axis=axis)
    out = tensors[0]._make_child(data, tuple(tensors), "stack")
    if out.requires_grad:
        def _backward(grad):
            slices = np.moveaxis(grad, axis, 0)
            for t, piece in zip(tensors, slices):
                if t.requires_grad:
                    t._accumulate(piece)
        out._backward = _backward
    return out


def mse_loss(pred: Tensor, target) -> Tensor:
    """Mean squared error."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target
    return (diff * diff).mean()


def l1_loss(pred: Tensor, target) -> Tensor:
    """Mean absolute error via a smooth |x| = sqrt(x^2 + eps)."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target
    return ((diff * diff + 1e-12).sqrt()).mean()


def huber_loss(pred: Tensor, target, delta: float = 1.0) -> Tensor:
    """Huber loss, quadratic within ``delta`` and linear beyond.

    Implemented with a clip-based decomposition so it stays differentiable
    through the autograd primitives.
    """
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target
    clipped = diff.clip(-delta, delta)
    # 0.5*c^2 + delta*(|d| - |c|)  where |x| ~ sqrt(x^2+eps)
    abs_d = (diff * diff + 1e-12).sqrt()
    abs_c = (clipped * clipped + 1e-12).sqrt()
    return (0.5 * clipped * clipped + delta * (abs_d - abs_c)).mean()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy for integer class targets.

    ``logits``: ``(batch, num_classes)``, ``targets``: ``(batch,)`` ints.
    """
    targets = np.asarray(targets, dtype=np.int64)
    log_probs = logits.log_softmax(axis=-1)
    batch = log_probs.shape[0]
    picked = log_probs[np.arange(batch), targets]
    return -picked.mean()


def binary_cross_entropy(probs: Tensor, targets) -> Tensor:
    """BCE on probabilities in (0, 1)."""
    target = targets if isinstance(targets, Tensor) else Tensor(targets)
    eps = 1e-9
    p = probs.clip(eps, 1.0 - eps)
    return -(target * p.log() + (1.0 - target) * (1.0 - p).log()).mean()
