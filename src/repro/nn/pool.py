"""A (shape, dtype)-keyed scratch-buffer pool for autograd temporaries.

Training allocates the same large temporaries every step — the
``(batch, heads, seq, seq)`` attention products in the backward pass are
the worst offenders.  Recycling those buffers across steps keeps peak RSS
flat and spares the allocator/GC the churn of multi-megabyte arrays.

The pool is deliberately dumb: buffers are keyed by exact ``(shape,
dtype)`` — float64 autograd temporaries and the executor's float32
activation slots pool side by side — ``take`` pops a free buffer or
allocates a fresh one, ``give`` returns a buffer once the caller is done
with it.  Stored bytes are capped; over-cap buffers are simply dropped
for the GC.  Callers must only ``give`` back arrays they own outright —
never views into tensors that outlive the call.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ScratchPool", "scratch_pool"]


class ScratchPool:
    """Reusable scratch arrays, keyed by (shape, dtype)."""

    def __init__(self, max_bytes: int = 256 * 1024 * 1024):
        self.max_bytes = int(max_bytes)
        self._free: dict[tuple[tuple[int, ...], str], list[np.ndarray]] = {}
        self._stored_bytes = 0
        self.hits = 0
        self.misses = 0

    def take(self, shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """Return an uninitialized array of ``shape`` and ``dtype``."""
        shape = tuple(int(s) for s in shape)
        dtype = np.dtype(dtype)
        bucket = self._free.get((shape, dtype.str))
        if bucket:
            self.hits += 1
            arr = bucket.pop()
            self._stored_bytes -= arr.nbytes
            return arr
        self.misses += 1
        return np.empty(shape, dtype=dtype)

    def give(self, arr: np.ndarray) -> None:
        """Return ``arr`` to the pool (dropped if the byte cap is hit)."""
        if arr.base is not None:
            return
        if self._stored_bytes + arr.nbytes > self.max_bytes:
            return
        self._free.setdefault((arr.shape, arr.dtype.str), []).append(arr)
        self._stored_bytes += arr.nbytes

    def clear(self) -> None:
        self._free.clear()
        self._stored_bytes = 0

    @property
    def stored_bytes(self) -> int:
        return self._stored_bytes

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stored_bytes": self._stored_bytes,
                "shapes": len(self._free)}


# The process-wide pool used by the autograd backward kernels.  Training
# engines read its stats for profiling; tests may ``clear()`` it.
scratch_pool = ScratchPool()
