"""Gated recurrent units, used by the SeqGAN generator and discriminator."""

from __future__ import annotations

import numpy as np

from .layers import Linear
from .module import Module
from .tensor import Tensor

__all__ = ["GRUCell", "GRU"]


class GRUCell(Module):
    """Single GRU step: ``h' = GRUCell(x, h)``."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        # Fused gates: reset, update, candidate.
        self.x2h = Linear(input_size, 3 * hidden_size, rng=rng)
        self.h2h = Linear(hidden_size, 3 * hidden_size, rng=rng)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        gx = self.x2h(x)
        gh = self.h2h(h)
        H = self.hidden_size
        r = (gx[:, :H] + gh[:, :H]).sigmoid()
        z = (gx[:, H:2 * H] + gh[:, H:2 * H]).sigmoid()
        n = (gx[:, 2 * H:] + r * gh[:, 2 * H:]).tanh()
        return (1.0 - z) * n + z * h


class GRU(Module):
    """Unidirectional single-layer GRU over a ``(batch, seq, input)`` tensor.

    Returns ``(outputs, final_hidden)`` where ``outputs`` is
    ``(batch, seq, hidden)``.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(self, x: Tensor, h0: Tensor | None = None) -> tuple[Tensor, Tensor]:
        from .functional import stack

        batch, seq, _ = x.shape
        h = h0 if h0 is not None else Tensor(np.zeros((batch, self.hidden_size)))
        steps = []
        for t in range(seq):
            h = self.cell(x[:, t, :], h)
            steps.append(h)
        return stack(steps, axis=1), h
