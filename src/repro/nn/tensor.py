"""Reverse-mode automatic differentiation over numpy arrays.

This module is the foundation of the ``repro.nn`` package: a small,
self-contained autograd engine in the style of PyTorch's eager autograd.
Every differentiable operation builds a node in a dynamic computation
graph; calling :meth:`Tensor.backward` on a scalar loss walks the graph in
reverse topological order and accumulates gradients into every tensor
created with ``requires_grad=True``.

The engine supports full numpy broadcasting.  Gradients flowing into a
broadcast operand are reduced back to the operand's shape with
:func:`_unbroadcast`.
"""

from __future__ import annotations

import functools
import threading

import numpy as np

from .pool import scratch_pool

__all__ = ["Tensor", "tensor", "zeros", "ones", "no_grad", "is_grad_enabled",
           "assert_no_grad"]


class _GradMode(threading.local):
    # Grad mode is per-thread (like torch's): concurrent serve workers
    # each toggle their own flag, so one worker leaving ``no_grad``
    # cannot re-enable graph construction under another mid-replay.
    # Threads spawned *inside* a ``no_grad`` region start back at the
    # enabled default and must enter ``no_grad`` themselves.
    enabled = True


_grad_mode = _GradMode()


class no_grad:
    """Disable graph construction (inference mode) for the current thread.

    Usable three ways, mirroring ``torch.no_grad``::

        with no_grad(): ...          # context manager

        @no_grad                     # bare decorator
        def serve(x): ...

        @no_grad()                   # called decorator
        def serve(x): ...

    Like torch's, the mode is thread-local: worker threads spawned
    inside the block do not inherit it.
    """

    def __init__(self, func=None):
        self._func = func
        if func is not None:
            functools.update_wrapper(self, func)

    def __enter__(self):
        self._prev = _grad_mode.enabled
        _grad_mode.enabled = False
        return self

    def __exit__(self, *exc):
        _grad_mode.enabled = self._prev
        return False

    def __call__(self, *args, **kwargs):
        if self._func is None:
            # ``@no_grad()`` decoration: the lone argument is the function.
            if len(args) == 1 and not kwargs and callable(args[0]):
                return no_grad(args[0])
            raise TypeError("no_grad() takes no arguments; use it as a "
                            "context manager or decorator")
        with no_grad():
            return self._func(*args, **kwargs)

    def __get__(self, obj, objtype=None):
        # Bound-method support for ``@no_grad`` on methods.
        if obj is None:
            return self
        return functools.partial(self.__call__, obj)


def is_grad_enabled() -> bool:
    """Return whether this thread records new operations for autodiff."""
    return _grad_mode.enabled


def assert_no_grad(context: str = "") -> None:
    """Raise if autodiff recording is enabled.

    Guard for code that must not build a graph — e.g. compiled-plan
    replay, where a stray enabled-grad op would silently re-introduce
    the per-op object churn the plan exists to eliminate.
    """
    if _grad_mode.enabled:
        where = f" in {context}" if context else ""
        raise RuntimeError(
            f"gradients are enabled{where}; wrap the call in nn.no_grad()")


# ---------------------------------------------------------------------- #
# Trace hooks (repro.nn.executor)
#
# The executor compiles a static kernel schedule out of one dynamic
# forward (+ backward) pass.  Rather than re-implementing every op, it
# installs a hook that observes each ``_make_child`` call — the one
# choke point every primitive already routes through — together with the
# op name, parent tensors, and the op's non-tensor attributes (axes,
# keys, masks, scales).  A second hook lets rng-driven constants
# (dropout masks) identify themselves so replays can redraw them.
# Both hooks are None except while the executor is actively tracing.
# ---------------------------------------------------------------------- #
_TRACE_HOOK = None
_RNG_NOTE_HOOK = None


def _set_trace_hooks(trace_hook, rng_note_hook) -> None:
    global _TRACE_HOOK, _RNG_NOTE_HOOK
    _TRACE_HOOK = trace_hook
    _RNG_NOTE_HOOK = rng_note_hook


def _trace_note_rng_mask(mask: np.ndarray, rng, keep: float) -> None:
    """Mark ``mask`` as freshly drawn from ``rng`` (see Dropout.forward)."""
    if _RNG_NOTE_HOOK is not None:
        _RNG_NOTE_HOOK(mask, rng, keep)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` (shaped like a broadcast result) back to ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _pooled_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a @ b`` into a scratch-pool buffer (caller gives it back)."""
    shape = np.broadcast_shapes(a.shape[:-2], b.shape[:-2]) \
        + (a.shape[-2], b.shape[-1])
    out = scratch_pool.take(shape)
    np.matmul(a, b, out=out)
    return out


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything convertible to a float64 numpy array.
    requires_grad:
        If True, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op",
                 "__weakref__")
    __array_priority__ = 100  # make numpy defer to our __radd__/__rmul__ etc.

    def __init__(self, data, requires_grad: bool = False, _parents=(), _op: str = ""):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        enabled = _grad_mode.enabled
        self.requires_grad = bool(requires_grad) and enabled
        self._backward = None
        self._parents = _parents if enabled else ()
        self._op = _op

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_tag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_tag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a view of this tensor cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------ #
    # Graph plumbing
    # ------------------------------------------------------------------ #
    def _make_child(self, data, parents, op: str, attrs: dict | None = None) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _parents=tuple(parents), _op=op)
        if _TRACE_HOOK is not None:
            _TRACE_HOOK(out, parents, op, attrs)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: np.ndarray | None = None,
                 free_graph: bool = True) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to 1.0 and must be supplied for non-scalar
        outputs.  With ``free_graph=True`` (the default) the computation
        graph is torn down once gradients have flowed: every visited
        node drops its parent references and backward closure, so the
        forward intermediates those closures capture become collectible
        immediately instead of living until the loss tensor dies.  Pass
        ``free_graph=False`` to keep the graph (e.g. to call backward
        again with a different seed gradient).
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() on non-scalar tensor requires an explicit gradient")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        # Topological order via iterative DFS (paths can be deep).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
            if free_graph:
                node._backward = None
                node._parents = ()

    # ------------------------------------------------------------------ #
    # Elementwise arithmetic
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out = self._make_child(self.data + other.data, (self, other), "add")
        if out.requires_grad:
            def _backward(grad):
                if self.requires_grad:
                    self._accumulate(_unbroadcast(grad, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(grad, other.shape))
            out._backward = _backward
        return out

    __radd__ = __add__

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out = self._make_child(self.data * other.data, (self, other), "mul")
        if out.requires_grad:
            def _backward(grad):
                if self.requires_grad:
                    self._accumulate(_unbroadcast(grad * other.data, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(grad * self.data, other.shape))
            out._backward = _backward
        return out

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        out = self._make_child(-self.data, (self,), "neg")
        if out.requires_grad:
            def _backward(grad):
                self._accumulate(-grad)
            out._backward = _backward
        return out

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out = self._make_child(self.data / other.data, (self, other), "div")
        if out.requires_grad:
            def _backward(grad):
                if self.requires_grad:
                    self._accumulate(_unbroadcast(grad / other.data, self.shape))
                if other.requires_grad:
                    other._accumulate(
                        _unbroadcast(-grad * self.data / (other.data ** 2), other.shape)
                    )
            out._backward = _backward
        return out

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out = self._make_child(self.data ** exponent, (self,), "pow",
                               attrs={"exponent": exponent})
        if out.requires_grad:
            def _backward(grad):
                self._accumulate(grad * exponent * self.data ** (exponent - 1))
            out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # Matrix / shape ops
    # ------------------------------------------------------------------ #
    def matmul(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        a, b = self.data, other.data
        if a.ndim == 1 or b.ndim == 1:
            raise ValueError("matmul requires operands with ndim >= 2; reshape vectors first")
        out = self._make_child(a @ b, (self, other), "matmul")
        if out.requires_grad:
            def _backward(grad):
                if self.requires_grad:
                    ga = _pooled_matmul(grad, np.swapaxes(b, -1, -2))
                    try:
                        self._accumulate(_unbroadcast(ga, a.shape))
                    finally:
                        scratch_pool.give(ga)
                if other.requires_grad:
                    gb = _pooled_matmul(np.swapaxes(a, -1, -2), grad)
                    try:
                        other._accumulate(_unbroadcast(gb, b.shape))
                    finally:
                        scratch_pool.give(gb)
            out._backward = _backward
        return out

    def __matmul__(self, other) -> "Tensor":
        return self.matmul(other)

    def matmul_scaled(self, other: "Tensor", scale: float) -> "Tensor":
        """Fused ``(self @ other) * scale`` (attention's score kernel).

        Bit-identical to the two-op composition, but the scale is applied
        in place on the matmul output, so no second full-size intermediate
        (nor its gradient buffer) is ever materialized — on attention's
        ``(batch, heads, seq, seq)`` score matrices that is the largest
        allocation of the whole forward pass.
        """
        other = self._coerce(other)
        a, b = self.data, other.data
        if a.ndim == 1 or b.ndim == 1:
            raise ValueError("matmul requires operands with ndim >= 2; reshape vectors first")
        scale = float(scale)
        data = a @ b
        np.multiply(data, scale, out=data)
        out = self._make_child(data, (self, other), "matmul_scaled",
                               attrs={"scale": scale})
        if out.requires_grad:
            def _backward(grad):
                g = scratch_pool.take(grad.shape)
                try:
                    np.multiply(grad, scale, out=g)
                    if self.requires_grad:
                        ga = _pooled_matmul(g, np.swapaxes(b, -1, -2))
                        try:
                            self._accumulate(_unbroadcast(ga, a.shape))
                        finally:
                            scratch_pool.give(ga)
                    if other.requires_grad:
                        gb = _pooled_matmul(np.swapaxes(a, -1, -2), g)
                        try:
                            other._accumulate(_unbroadcast(gb, b.shape))
                        finally:
                            scratch_pool.give(gb)
                finally:
                    scratch_pool.give(g)
            out._backward = _backward
        return out

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self._make_child(self.data.reshape(shape), (self,), "reshape",
                               attrs={"shape": tuple(shape)})
        if out.requires_grad:
            def _backward(grad):
                self._accumulate(grad.reshape(self.shape))
            out._backward = _backward
        return out

    def transpose(self, *axes) -> "Tensor":
        axes = axes or None
        if axes and len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out = self._make_child(self.data.transpose(axes) if axes else self.data.T,
                               (self,), "transpose", attrs={"axes": axes})
        if out.requires_grad:
            def _backward(grad):
                if axes:
                    inverse = np.argsort(axes)
                    self._accumulate(grad.transpose(inverse))
                else:
                    self._accumulate(grad.T)
            out._backward = _backward
        return out

    def swapaxes(self, ax1: int, ax2: int) -> "Tensor":
        out = self._make_child(np.swapaxes(self.data, ax1, ax2), (self,), "swapaxes",
                               attrs={"ax1": ax1, "ax2": ax2})
        if out.requires_grad:
            def _backward(grad):
                self._accumulate(np.swapaxes(grad, ax1, ax2))
            out._backward = _backward
        return out

    def __getitem__(self, key) -> "Tensor":
        out = self._make_child(self.data[key], (self,), "getitem",
                               attrs={"key": key})
        if out.requires_grad:
            def _backward(grad):
                full = np.zeros_like(self.data)
                np.add.at(full, key, grad)
                self._accumulate(full)
            out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self._make_child(self.data.sum(axis=axis, keepdims=keepdims), (self,), "sum",
                               attrs={"axis": axis, "keepdims": keepdims})
        if out.requires_grad:
            def _backward(grad):
                g = grad
                if axis is not None and not keepdims:
                    g = np.expand_dims(g, axis)
                buf = scratch_pool.take(self.shape)
                try:
                    np.copyto(buf, g)
                    self._accumulate(buf)
                finally:
                    scratch_pool.give(buf)
            out._backward = _backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else np.prod(
            [self.shape[a] for a in (axis if isinstance(axis, tuple) else (axis,))]
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = self._make_child(out_data, (self,), "max",
                               attrs={"axis": axis, "keepdims": keepdims})
        if out.requires_grad:
            def _backward(grad):
                g = grad
                o = out_data
                if axis is not None and not keepdims:
                    g = np.expand_dims(g, axis)
                    o = np.expand_dims(o, axis)
                mask = (self.data == o)
                # Split gradient between ties, matching subgradient convention.
                counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
                self._accumulate(mask * g / counts)
            out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # Elementwise nonlinearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        out = self._make_child(out_data, (self,), "exp")
        if out.requires_grad:
            def _backward(grad):
                self._accumulate(grad * out_data)
            out._backward = _backward
        return out

    def log(self) -> "Tensor":
        out = self._make_child(np.log(self.data), (self,), "log")
        if out.requires_grad:
            def _backward(grad):
                self._accumulate(grad / self.data)
            out._backward = _backward
        return out

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        out = self._make_child(out_data, (self,), "tanh")
        if out.requires_grad:
            def _backward(grad):
                self._accumulate(grad * (1.0 - out_data ** 2))
            out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        out = self._make_child(out_data, (self,), "sigmoid")
        if out.requires_grad:
            def _backward(grad):
                self._accumulate(grad * out_data * (1.0 - out_data))
            out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = self._make_child(self.data * mask, (self,), "relu")
        if out.requires_grad:
            def _backward(grad):
                self._accumulate(grad * mask)
            out._backward = _backward
        return out

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation)."""
        c = np.sqrt(2.0 / np.pi)
        inner = (self * c) * (1.0 + 0.044715 * self * self)
        # tanh-approx GELU built from differentiable primitives
        return self * 0.5 * (1.0 + inner.tanh())

    # ------------------------------------------------------------------ #
    # Softmax family (stable, fused backward)
    # ------------------------------------------------------------------ #
    def softmax(self, axis: int = -1) -> "Tensor":
        # One full-size allocation instead of three: the shifted logits
        # buffer is exponentiated and normalized in place (bit-identical
        # to the out-of-place composition).
        probs = self.data - self.data.max(axis=axis, keepdims=True)
        np.exp(probs, out=probs)
        np.divide(probs, probs.sum(axis=axis, keepdims=True), out=probs)
        out = self._make_child(probs, (self,), "softmax", attrs={"axis": axis})
        if out.requires_grad:
            def _backward(grad):
                buf = scratch_pool.take(probs.shape)
                try:
                    np.multiply(grad, probs, out=buf)
                    dot = buf.sum(axis=axis, keepdims=True)
                    np.subtract(grad, dot, out=buf)
                    np.multiply(buf, probs, out=buf)
                    self._accumulate(buf)
                finally:
                    scratch_pool.give(buf)
            out._backward = _backward
        return out

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        e = scratch_pool.take(shifted.shape)
        try:
            np.exp(shifted, out=e)
            logsumexp = np.log(e.sum(axis=axis, keepdims=True))
        finally:
            scratch_pool.give(e)
        out_data = np.subtract(shifted, logsumexp, out=shifted)
        out = self._make_child(out_data, (self,), "log_softmax",
                               attrs={"axis": axis})
        if out.requires_grad:
            def _backward(grad):
                softmax = np.exp(out_data)
                self._accumulate(grad - softmax * grad.sum(axis=axis, keepdims=True))
            out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # Misc structured ops
    # ------------------------------------------------------------------ #
    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        mask = np.asarray(mask, dtype=bool)
        data = np.where(mask, value, self.data)
        out = self._make_child(data, (self,), "masked_fill",
                               attrs={"mask": mask, "value": value})
        if out.requires_grad:
            def _backward(grad):
                self._accumulate(np.where(mask, 0.0, grad))
            out._backward = _backward
        return out

    def clip(self, lo: float, hi: float) -> "Tensor":
        data = np.clip(self.data, lo, hi)
        pass_through = (self.data >= lo) & (self.data <= hi)
        out = self._make_child(data, (self,), "clip",
                               attrs={"lo": lo, "hi": hi})
        if out.requires_grad:
            def _backward(grad):
                self._accumulate(grad * pass_through)
            out._backward = _backward
        return out


# ---------------------------------------------------------------------- #
# Free functions
# ---------------------------------------------------------------------- #
def tensor(data, requires_grad: bool = False) -> Tensor:
    """Create a :class:`Tensor` (convenience constructor)."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(*shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)
