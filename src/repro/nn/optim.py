"""Optimizers matching Table 6 of the paper: Adam and SGD (momentum).

Both optimizers run *fused in-place kernels*: every update is a short
sequence of ``np.<op>(..., out=...)`` calls writing into persistent
per-optimizer scratch buffers and directly into the parameter storage,
so a step allocates nothing after the first call.  The arithmetic is
ordered exactly like the naive out-of-place formulation, making the
fused kernels bit-identical to :class:`ReferenceAdam` /
:class:`ReferenceSGD` (asserted in the test suite).  In-place parameter
writes still bump :attr:`Parameter.version` via the :class:`ParamData`
storage class, so content-addressed prediction caches invalidate
correctly after every step.

``step(max_grad_norm=...)`` additionally fuses global-norm gradient
clipping into the update, replacing the separate
``clip_grad_norm`` + ``step`` call pair in training loops.
"""

from __future__ import annotations

import numpy as np

from .module import Parameter
from .pool import scratch_pool

__all__ = ["Optimizer", "SGD", "Adam", "ReferenceSGD", "ReferenceAdam",
           "clip_grad_norm"]


class Optimizer:
    """Base optimizer over a list of :class:`Parameter`."""

    def __init__(self, params: list[Parameter], lr: float):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def _scratch(self) -> tuple[np.ndarray, np.ndarray]:
        """Two flat scratch buffers sized for the largest parameter.

        Per-parameter views of these buffers hold every temporary of the
        fused update kernels; nothing else is allocated per step.
        """
        size = max(p.size for p in self.params)
        return np.empty(size, dtype=np.float64), np.empty(size, dtype=np.float64)

    def step(self, max_grad_norm: float | None = None) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum (fused)."""

    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros(p.shape, dtype=np.float64) for p in self.params]
        self._buffers = None

    def step(self, max_grad_norm: float | None = None) -> None:
        if max_grad_norm is not None:
            clip_grad_norm(self.params, max_grad_norm)
        if self._buffers is None:
            self._buffers = self._scratch()
        flat1, _ = self._buffers
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            s1 = flat1[:p.size].reshape(p.shape)
            if self.weight_decay:
                # grad + wd * p.data, ordered like the reference kernel.
                np.multiply(p.data, self.weight_decay, out=s1)
                np.add(grad, s1, out=s1)
                grad = s1
            np.multiply(v, self.momentum, out=v)
            np.add(v, grad, out=v)
            # p.data -= lr * v  (the out= write bumps Parameter.version)
            np.multiply(v, self.lr, out=s1)
            np.subtract(p.data, s1, out=p.data)


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) with bias correction (fused)."""

    def __init__(self, params, lr: float = 0.001, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros(p.shape, dtype=np.float64) for p in self.params]
        self._v = [np.zeros(p.shape, dtype=np.float64) for p in self.params]
        self._t = 0
        self._buffers = None

    def step(self, max_grad_norm: float | None = None) -> None:
        if max_grad_norm is not None:
            clip_grad_norm(self.params, max_grad_norm)
        if self._buffers is None:
            self._buffers = self._scratch()
        flat1, flat2 = self._buffers
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            s1 = flat1[:p.size].reshape(p.shape)
            s2 = flat2[:p.size].reshape(p.shape)
            if self.weight_decay:
                np.multiply(p.data, self.weight_decay, out=s1)
                np.add(grad, s1, out=s1)
                grad = s1  # s1 now pinned until the moment updates finish
            # m = b1*m + (1-b1)*grad
            np.multiply(m, b1, out=m)
            np.multiply(grad, 1.0 - b1, out=s2)
            np.add(m, s2, out=m)
            # v = b2*v + ((1-b2)*grad)*grad  (reference evaluation order)
            np.multiply(grad, 1.0 - b2, out=s2)
            np.multiply(s2, grad, out=s2)
            np.multiply(v, b2, out=v)
            np.add(v, s2, out=v)
            # p.data -= (lr * (m/bias1)) / (sqrt(v/bias2) + eps)
            np.divide(v, bias2, out=s2)
            np.sqrt(s2, out=s2)
            np.add(s2, self.eps, out=s2)
            np.divide(m, bias1, out=s1)
            np.multiply(s1, self.lr, out=s1)
            np.divide(s1, s2, out=s1)
            np.subtract(p.data, s1, out=p.data)


class ReferenceSGD(Optimizer):
    """The naive allocate-per-step SGD kernel.

    Kept as the bit-exact reference for :class:`SGD` (parity-tested) and
    as the seed-cost baseline in the training throughput benchmark.
    """

    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(np.asarray(p.data)) for p in self.params]

    def step(self, max_grad_norm: float | None = None) -> None:
        if max_grad_norm is not None:
            clip_grad_norm(self.params, max_grad_norm)
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            v *= self.momentum
            v += grad
            p.data = p.data - self.lr * v


class ReferenceAdam(Optimizer):
    """The naive allocate-per-step Adam kernel (see :class:`ReferenceSGD`)."""

    def __init__(self, params, lr: float = 0.001, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(np.asarray(p.data)) for p in self.params]
        self._v = [np.zeros_like(np.asarray(p.data)) for p in self.params]
        self._t = 0

    def step(self, max_grad_norm: float | None = None) -> None:
        if max_grad_norm is not None:
            clip_grad_norm(self.params, max_grad_norm)
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad * grad
            p.data = p.data - self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)


def clip_grad_norm(params, max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    The norm is computed in a single BLAS pass (one ``dot``) over the
    flattened gradients — gathered into a pooled scratch vector when
    there is more than one — instead of a Python loop of per-array
    square-sums.  Returns the pre-clip norm.
    """
    grads = [p.grad for p in params if p.grad is not None]
    if not grads:
        return 0.0
    if len(grads) == 1:
        flat = grads[0].reshape(-1)
        total = float(np.dot(flat, flat))
    else:
        size = sum(g.size for g in grads)
        buf = scratch_pool.take((size,))
        try:
            pos = 0
            for g in grads:
                n = g.size
                np.copyto(buf[pos:pos + n], g.reshape(-1))
                pos += n
            total = float(np.dot(buf, buf))
        finally:
            scratch_pool.give(buf)
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for g in grads:
            np.multiply(g, scale, out=g)
    return norm
