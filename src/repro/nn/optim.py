"""Optimizers matching Table 6 of the paper: Adam and SGD (momentum)."""

from __future__ import annotations

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


class Optimizer:
    """Base optimizer over a list of :class:`Parameter`."""

    def __init__(self, params: list[Parameter], lr: float):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            v *= self.momentum
            v += grad
            p.data -= self.lr * v


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) with bias correction."""

    def __init__(self, params, lr: float = 0.001, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad * grad
            p.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)


def clip_grad_norm(params, max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.
    """
    total = 0.0
    grads = [p.grad for p in params if p.grad is not None]
    for g in grads:
        total += float((g * g).sum())
    norm = np.sqrt(total)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for g in grads:
            g *= scale
    return norm
