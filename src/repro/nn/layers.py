"""Standard neural-network layers on top of the autograd engine."""

from __future__ import annotations

import numpy as np

from .module import Module, Parameter
from .tensor import Tensor, _trace_note_rng_mask

__all__ = [
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "ReLU",
    "Tanh",
    "GELU",
    "Sequential",
]


def _kaiming_uniform(fan_in: int, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    bound = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape)


class Linear(Module):
    """Affine transform ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(_kaiming_uniform(in_features, (in_features, out_features), rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        flat = x if x.ndim == 2 else x.reshape(-1, self.in_features)
        out = flat.matmul(self.weight)
        if self.bias is not None:
            out = out + self.bias
        if x.ndim != 2:
            out = out.reshape(*x.shape[:-1], self.out_features)
        return out


class Embedding(Module):
    """Lookup table mapping integer token ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(rng.normal(0.0, 0.02, size=(num_embeddings, embedding_dim)))

    def forward(self, token_ids: np.ndarray) -> Tensor:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.min(initial=0) < 0 or token_ids.max(initial=0) >= self.num_embeddings:
            raise IndexError(
                f"token id out of range [0, {self.num_embeddings}): "
                f"got min={token_ids.min()} max={token_ids.max()}"
            )
        return self.weight[token_ids]


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.weight = Parameter(np.ones(normalized_shape))
        self.bias = Parameter(np.zeros(normalized_shape))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.weight + self.bias


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.1, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1): {p}")
        self.p = p
        self._rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep) / keep
        # No-op unless the executor is tracing: marks the mask constant
        # as rng-driven so plan replays redraw it from the same stream.
        _trace_note_rng_mask(mask, self._rng, keep)
        return x * Tensor(mask)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.gelu()


class Sequential(Module):
    """Chain modules; ``Sequential(a, b, c)(x) == c(b(a(x)))``."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.steps = list(modules)

    def forward(self, x):
        for step in self.steps:
            x = step(x)
        return x

    def __iter__(self):
        return iter(self.steps)

    def __len__(self):
        return len(self.steps)
