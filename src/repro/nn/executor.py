"""Plan-once/run-many compiled executor for the ``repro.nn`` autograd engine.

The dynamic engine rebuilds the same computation graph for every batch of
a given bucket shape: one Python ``Tensor`` object, one closure, and one
fresh output allocation per op, every step.  This module compiles that
repetition away.  One dynamic forward (plus backward, for training) is
*traced* through the ``_make_child`` hook in :mod:`repro.nn.tensor`, and
the observed op sequence is lowered to a **plan**: a flat list of numpy
kernel calls (mostly ``functools.partial`` objects over ``np.<ufunc>``
with ``out=`` targets) whose input/output/activation slots are allocated
once and reused on every replay.  Replaying a plan builds no graph,
allocates nothing, and dispatches no Python-level op logic — it is a
straight ``for step in steps: step()`` loop over C-implemented callables.

Correctness contract
--------------------
Every compile is *self-gating*: after lowering, the plan is immediately
replayed on the very inputs it was traced on and compared against the
dynamic run's output.

- ``precision="fp64"`` plans must be **bit-identical** to the dynamic
  engine (``np.array_equal``; for training plans, the loss *and every
  parameter gradient*).  The emitters below therefore mirror the exact
  kernel sequence and evaluation order of ``tensor.py`` — same ufuncs,
  same association, same accumulation order.  A mismatch is a compiler
  bug and raises :class:`ExecutorError`.
- ``precision="fp32"`` / ``"int8"`` plans run reduced-precision kernels
  and are gated by :func:`max_relative_error` against the float64
  reference; exceeding the tolerance raises
  :class:`PrecisionToleranceError` (the caller falls back to fp64 or the
  dynamic path).  int8 is weight-only quantization (per-row-scaled
  embedding gathers, per-column-scaled linear weights dequantized once
  per weight version) and is inference-only.

Dropout masks are redrawn at replay from the same generator stream the
dynamic path would consume (the trace records draw order), so a compiled
training step is bit-identical to a dynamic step *including* rng
consumption.  The gate replay itself reuses the recorded trace masks and
consumes no rng.

Plans are thread-compatible: replay serializes on a per-plan lock, and
*different* plans (one per bucket shape) replay concurrently — the numpy
kernels release the GIL.  Compilation itself serializes on a global lock
because the trace hooks are process-global.
"""

from __future__ import annotations

import threading
from functools import partial

import numpy as np

from .module import Parameter
from .tensor import Tensor, assert_no_grad, is_grad_enabled, no_grad, \
    _set_trace_hooks

__all__ = [
    "ExecutorError",
    "PrecisionToleranceError",
    "ForwardPlan",
    "TrainStepPlan",
    "compile_forward",
    "compile_train_step",
    "max_relative_error",
    "DEFAULT_TOLERANCES",
    "PRECISIONS",
]

# Tracing mutates process-global hooks in repro.nn.tensor: all compiles
# serialize here.  Replays do not take this lock.
_COMPILE_LOCK = threading.RLock()

PRECISIONS = ("fp64", "fp32", "int8")

# Gate thresholds for max_relative_error(plan, fp64 reference).  fp32
# transformer forwards land around 1e-6; int8 weight-only quantization
# of the embedding/linear weights is far coarser.  Callers may tighten
# or loosen per compile via ``tolerance=``.
DEFAULT_TOLERANCES = {"fp32": 1e-4, "int8": 0.25}

_FLOAT_DTYPE = {"fp64": np.float64, "fp32": np.float32, "int8": np.float32}


class ExecutorError(RuntimeError):
    """A plan could not be compiled, failed its self-gate, or went stale."""


class PrecisionToleranceError(ExecutorError):
    """A reduced-precision plan exceeded its tolerance gate."""


def max_relative_error(got: np.ndarray, ref: np.ndarray) -> float:
    """``max |got - ref| / (1 + |ref|)`` — scale-aware elementwise error."""
    got = np.asarray(got, dtype=np.float64)
    ref = np.asarray(ref, dtype=np.float64)
    if got.size == 0:
        return 0.0
    return float(np.max(np.abs(got - ref) / (1.0 + np.abs(ref))))


def _pow_step(a: np.ndarray, exponent: float, out: np.ndarray):
    """A kernel step computing ``a ** exponent`` into ``out``.

    Mirrors numpy's own ``ndarray.__pow__`` scalar fast paths so fp64
    plans stay bit-identical to the dynamic engine.
    """
    if exponent == 2:
        return partial(np.square, a, out=out)
    if exponent == 1:
        return partial(np.copyto, out, a)
    if exponent == 0.5:
        return partial(np.sqrt, a, out=out)
    if exponent == -1:
        return partial(np.reciprocal, a, out=out)
    return partial(np.power, a, exponent, out=out)


# ---------------------------------------------------------------------- #
# Trace graph
# ---------------------------------------------------------------------- #
class _ParamLeaf:
    __slots__ = ("param",)
    requires_grad = True

    def __init__(self, param: Parameter):
        self.param = param


class _InputLeaf:
    __slots__ = ("name", "array")
    requires_grad = False

    def __init__(self, name: str, array: np.ndarray):
        self.name = name
        self.array = array


class _ConstLeaf:
    __slots__ = ("array",)
    requires_grad = False

    def __init__(self, array: np.ndarray):
        self.array = array


class _RngLeaf:
    """A dropout mask: redrawn from ``rng`` on every replay."""

    __slots__ = ("seq", "rng", "keep", "traced_mask")
    requires_grad = False

    def __init__(self, seq: int, rng, keep: float, traced_mask: np.ndarray):
        self.seq = seq
        self.rng = rng
        self.keep = keep
        self.traced_mask = traced_mask


class _Node:
    __slots__ = ("op", "attrs", "parents", "data", "requires_grad")

    def __init__(self, op: str, attrs, parents, data: np.ndarray):
        self.op = op
        self.attrs = attrs or {}
        self.parents = parents
        self.data = data
        self.requires_grad = any(p.requires_grad for p in parents)


class _Trace:
    """Records one dynamic run through the ``_make_child`` hook."""

    def __init__(self):
        self.records: list[_Node] = []
        self._nodes: dict[int, _Node] = {}     # id(Tensor) -> _Node
        self._leaves: dict[int, object] = {}   # id(Tensor) -> leaf
        self._input_ids: dict[int, str] = {}   # id(buffer) -> name
        self._rng_notes: dict[int, _RngLeaf] = {}  # id(mask) -> leaf
        self._rng_seq = 0
        self._keep: list = []                  # pin tensors: stable ids

    def register_input(self, name: str, buffer: np.ndarray) -> None:
        self._input_ids[id(buffer)] = name

    def __enter__(self):
        _set_trace_hooks(self._on_child, self._on_rng_mask)
        return self

    def __exit__(self, *exc):
        _set_trace_hooks(None, None)
        return False

    def _on_rng_mask(self, mask: np.ndarray, rng, keep: float) -> None:
        self._rng_notes[id(mask)] = _RngLeaf(self._rng_seq, rng, keep, mask)
        self._rng_seq += 1
        self._keep.append(mask)

    def _on_child(self, out: Tensor, parents, op: str, attrs) -> None:
        node = _Node(op, attrs, [self._resolve(p) for p in parents], out.data)
        self._nodes[id(out)] = node
        self.records.append(node)
        self._keep.append(out)

    def _resolve(self, t: Tensor):
        node = self._nodes.get(id(t))
        if node is not None:
            return node
        leaf = self._leaves.get(id(t))
        if leaf is None:
            if isinstance(t, Parameter):
                leaf = _ParamLeaf(t)
            else:
                data_id = id(t.data)
                name = self._input_ids.get(data_id)
                if name is not None:
                    leaf = _InputLeaf(name, t.data)
                else:
                    rng_leaf = self._rng_notes.get(data_id)
                    leaf = rng_leaf if rng_leaf is not None \
                        else _ConstLeaf(t.data)
            self._leaves[id(t)] = leaf
            self._keep.append(t)
        return leaf

    def node_for(self, t: Tensor) -> _Node:
        node = self._nodes.get(id(t))
        if node is None:
            raise ExecutorError(
                "traced function returned a tensor that was not produced "
                "by a traced op (a leaf or a tensor made outside the trace)")
        return node


# ---------------------------------------------------------------------- #
# Cells: the plan's storage slots
# ---------------------------------------------------------------------- #
class _Cell:
    """One storage slot of a plan.

    ``owned`` cells live in the arena (allocated at build, reused across
    non-overlapping lifetimes); ``pinned`` cells are bound to a specific
    array up front (input buffers, parameter storage, rng masks, param
    gradients); ``view`` cells are recipes over a parent cell, resolved
    once after the arena is bound.
    """

    __slots__ = ("shape", "dtype", "kind", "a", "parent", "recipe",
                 "birth", "last", "never_free")

    def __init__(self, shape, dtype, kind, a=None, parent=None, recipe=None):
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self.kind = kind
        self.a = a
        self.parent = parent
        self.recipe = recipe
        self.birth = None
        self.last = None
        self.never_free = False

    def root(self) -> "_Cell":
        c = self
        while c.kind == "view":
            c = c.parent
        return c


# ---------------------------------------------------------------------- #
# Plan builder
# ---------------------------------------------------------------------- #
class _PlanBuilder:
    def __init__(self, trace: _Trace, precision: str, cast_cache, train: bool):
        if precision not in PRECISIONS:
            raise ExecutorError(f"unknown precision {precision!r}; "
                                f"expected one of {PRECISIONS}")
        self.trace = trace
        self.precision = precision
        self.fdtype = np.dtype(_FLOAT_DTYPE[precision])
        self.train = train
        # Shared across plans of one model so each parameter is cast /
        # quantized once, not once per bucket shape.
        self.cast_cache = cast_cache if cast_cache is not None else {}

        self.cells: list[_Cell] = []
        # (maker, reads, writes): maker() is called after arena binding
        # and returns the zero-argument kernel callable.
        self._emitted: list[tuple] = []
        self._prologue_makers: list = []      # param-refresh closures
        self._rng_draw_makers: list = []      # (seq, maker)
        self._cell_of: dict[int, _Cell] = {}  # id(node/leaf) -> cell
        self._aux: dict[tuple, _Cell] = {}    # (id(node), tag) -> cell
        self._grad_cells: dict[int, list] = {}  # id -> [cell, contributed]
        self._param_order: list[_ParamLeaf] = []
        self._param_captures: list[tuple] = []  # (Parameter, ParamData)
        self._input_cells: dict[str, _Cell] = {}
        self._mask_pairs: list[tuple] = []    # (mask_cell, traced_mask)

    # -- cell constructors --------------------------------------------- #
    def owned(self, shape, dtype=None) -> _Cell:
        c = _Cell(shape, dtype or self.fdtype, "owned")
        self.cells.append(c)
        return c

    def pinned(self, array: np.ndarray) -> _Cell:
        c = _Cell(array.shape, array.dtype, "pinned", a=array)
        self.cells.append(c)
        return c

    def view(self, parent: _Cell, shape, recipe) -> _Cell:
        c = _Cell(shape, parent.dtype, "view", parent=parent, recipe=recipe)
        self.cells.append(c)
        return c

    def emit(self, maker, reads, writes) -> None:
        self._emitted.append((maker, tuple(reads), tuple(writes)))

    # -- leaf binding --------------------------------------------------- #
    def cell(self, obj) -> _Cell:
        c = self._cell_of.get(id(obj))
        if c is not None:
            return c
        if isinstance(obj, _Node):
            raise ExecutorError(f"node {obj.op!r} used before it was emitted")
        c = self._bind_leaf(obj)
        self._cell_of[id(obj)] = c
        return c

    def _bind_leaf(self, leaf) -> _Cell:
        if isinstance(leaf, _ParamLeaf):
            return self._bind_param(leaf)
        if isinstance(leaf, _InputLeaf):
            return self._bind_input(leaf)
        if isinstance(leaf, _RngLeaf):
            return self._bind_rng(leaf)
        if isinstance(leaf, _ConstLeaf):
            arr = leaf.array
            if self.fdtype != np.float64 and arr.dtype == np.float64:
                arr = arr.astype(self.fdtype)
            return self.pinned(arr)
        raise ExecutorError(f"unknown leaf type {type(leaf).__name__}")

    def _bind_param(self, leaf: _ParamLeaf) -> _Cell:
        param = leaf.param
        self._param_order.append(leaf)
        if self.precision == "fp64":
            storage = param.data  # the ParamData object itself
            self._param_captures.append((param, storage))
            # Plain-ndarray view of the same buffer: kernels skip the
            # ParamData ufunc-interception machinery on every read.
            return self.pinned(storage.view(np.ndarray))
        # fp32 / int8 dense path: one cast per (param, version), shared
        # across plans via cast_cache.  Refreshed in the prologue.
        key = ("fp32", id(param))
        entry = self.cast_cache.get(key)
        if entry is None:
            arr32 = np.asarray(param.data, dtype=np.float32)
            entry = [param, param.version, arr32]
            self.cast_cache[key] = entry

        def refresh(entry=entry):
            param = entry[0]
            if entry[1] != param.version:
                np.copyto(entry[2], param.data.view(np.ndarray))
                entry[1] = param.version

        self._prologue_makers.append(lambda refresh=refresh: refresh)
        return self.pinned(entry[2])

    def _bind_input(self, leaf: _InputLeaf) -> _Cell:
        c = self._input_cells.get(leaf.name)
        if c is not None:
            return c
        buf = leaf.array
        if self.fdtype != np.float64 and buf.dtype == np.float64:
            # Float inputs get a reduced-precision twin; int/bool inputs
            # keep the traced buffer itself, because op attrs (index
            # keys, attention masks) hold *views* of that exact buffer.
            c = self.pinned(np.asarray(buf, dtype=self.fdtype))
        else:
            c = self.pinned(buf)
        self._input_cells[leaf.name] = c
        return c

    def ensure_inputs(self, bufs: dict) -> None:
        """Bind input cells for buffers consumed only through op attrs.

        Index keys (token ids) and attention masks never appear as
        Tensor leaves — the ops hold views of the registered buffers in
        their attrs — but they still need a plan input slot so replays
        refresh them.
        """
        for name, buf in bufs.items():
            if name not in self._input_cells:
                self._bind_input(_InputLeaf(name, buf))

    def _bind_rng(self, leaf: _RngLeaf) -> _Cell:
        shape = leaf.traced_mask.shape
        mask_cell = self.pinned(np.empty(shape, dtype=self.fdtype))
        draw64 = np.empty(shape, dtype=np.float64)
        lt = np.empty(shape, dtype=bool)
        mask = mask_cell.a

        def maker(rng=leaf.rng, keep=leaf.keep, draw64=draw64, lt=lt, mask=mask):
            def draw():
                # Same stream consumption and arithmetic as Dropout:
                # (rng.random(shape) < keep) / keep
                rng.random(out=draw64)
                np.less(draw64, keep, out=lt)
                np.divide(lt, keep, out=mask)
            return draw

        self._rng_draw_makers.append((leaf.seq, maker))
        self._mask_pairs.append((mask_cell, leaf.traced_mask))
        return mask_cell

    # -- forward emission ----------------------------------------------- #
    def emit_forward(self, until: _Node) -> _Cell:
        emitted_until = False
        for node in self.trace.records:
            self._emit_forward_node(node)
            if node is until:
                emitted_until = True
        if not emitted_until:
            raise ExecutorError("output node missing from trace records")
        return self._cell_of[id(until)]

    def _emit_forward_node(self, node: _Node) -> None:
        emitter = _FORWARD_EMITTERS.get(node.op)
        if emitter is None:
            raise ExecutorError(
                f"op {node.op!r} has no executor lowering; run this "
                f"function on the dynamic path instead")
        out_cell = emitter(self, node)
        self._cell_of[id(node)] = out_cell

    # -- backward emission ---------------------------------------------- #
    def emit_backward(self, loss: _Node) -> None:
        # Mirror Tensor.backward()'s iterative DFS exactly so the
        # gradient accumulation order (float addition is order-
        # sensitive) matches the dynamic engine bit for bit.
        topo: list = []
        visited: set[int] = set()
        stack: list[tuple] = [(loss, False)]
        while stack:
            obj, processed = stack.pop()
            if processed:
                topo.append(obj)
                continue
            if id(obj) in visited:
                continue
            visited.add(id(obj))
            stack.append((obj, True))
            if isinstance(obj, _Node):
                for parent in obj.parents:
                    if id(parent) not in visited:
                        stack.append((parent, False))

        seed = self.pinned(np.ones(loss.data.shape, dtype=self.fdtype))
        self._grad_cells[id(loss)] = [seed, True]
        for obj in reversed(topo):
            if not isinstance(obj, _Node) or not obj.requires_grad:
                continue
            entry = self._grad_cells.get(id(obj))
            if entry is None:
                continue  # dynamic: node.grad is None -> closure skipped
            emitter = _BACKWARD_EMITTERS.get(obj.op)
            if emitter is None:
                raise ExecutorError(f"op {obj.op!r} has no backward lowering")
            emitter(self, obj, entry[0])

    def _grad_cell(self, target) -> _Cell:
        entry = self._grad_cells.get(id(target))
        if entry is not None:
            return entry[0]
        if isinstance(target, _ParamLeaf):
            cell = self.pinned(np.empty(target.param.shape, dtype=self.fdtype))
        else:
            cell = self.owned(target.data.shape)
        self._grad_cells[id(target)] = [cell, False]
        return cell

    def acc(self, target, value: _Cell) -> None:
        """Accumulate ``value`` into ``target``'s gradient cell.

        First contribution copies (dynamic: ``np.array(grad, copy=True)``),
        later contributions add in place (dynamic: ``grad += g``).
        """
        g = self._grad_cell(target)
        entry = self._grad_cells[id(target)]
        if not entry[1]:
            self.emit(lambda g=g, v=value: partial(np.copyto, g.a, v.a),
                      [value], [g])
            entry[1] = True
        else:
            self.emit(lambda g=g, v=value: partial(np.add, g.a, v.a, out=g.a),
                      [value, g], [g])

    def emit_unbroadcast(self, cell: _Cell, shape: tuple) -> _Cell:
        """Lower tensor._unbroadcast: reduce a broadcast grad to ``shape``."""
        if cell.shape == shape:
            return cell
        cur = cell
        while len(cur.shape) > len(shape):
            nxt = self.owned(cur.shape[1:])
            self.emit(lambda a=cur, o=nxt:
                      partial(np.sum, a.a, axis=0, out=o.a), [cur], [nxt])
            cur = nxt
        for axis, size in enumerate(shape):
            if size == 1 and cur.shape[axis] != 1:
                new_shape = list(cur.shape)
                new_shape[axis] = 1
                nxt = self.owned(tuple(new_shape))
                self.emit(lambda a=cur, o=nxt, ax=axis:
                          partial(np.sum, a.a, axis=ax, keepdims=True, out=o.a),
                          [cur], [nxt])
                cur = nxt
        if cur.shape != shape:
            cur = self.view(cur, shape,
                            lambda arr, shape=shape: arr.reshape(shape))
        return cur

    # -- finalization ---------------------------------------------------- #
    def finalize(self, keep_roots: list[_Cell]):
        """Bind the arena, resolve views, and build the final step list."""
        for c in keep_roots:
            c.root().never_free = True
        n = len(self._emitted)
        births: list[list[_Cell]] = [[] for _ in range(n)]
        deaths: list[list[_Cell]] = [[] for _ in range(n)]
        for idx, (_, reads, writes) in enumerate(self._emitted):
            for c in reads + writes:
                root = c.root()
                if root.kind != "owned":
                    continue
                if root.birth is None:
                    root.birth = idx
                root.last = idx
        for c in self.cells:
            if c.kind == "owned" and c.birth is not None:
                births[c.birth].append(c)
                if not c.never_free:
                    deaths[c.last].append(c)
        free: dict[tuple, list[np.ndarray]] = {}
        for idx in range(n):
            # Bind step outputs before releasing the step's last-read
            # inputs: a kernel's out= must never alias its inputs.
            for c in births[idx]:
                bucket = free.get((c.shape, c.dtype.str))
                c.a = bucket.pop() if bucket else np.empty(c.shape, c.dtype)
            for c in deaths[idx]:
                free.setdefault((c.shape, c.dtype.str), []).append(c.a)
        for c in self.cells:
            if c.kind == "owned" and c.a is None:
                c.a = np.empty(c.shape, c.dtype)
            elif c.kind == "view" and c.a is None:
                c.a = c.recipe(c.parent.a)

        steps = [maker() for maker, _, _ in self._emitted]
        prologue = [maker() for maker in self._prologue_makers]
        rng_draws = [maker() for _, maker in
                     sorted(self._rng_draw_makers, key=lambda kv: kv[0])]
        return steps, prologue, rng_draws


# ---------------------------------------------------------------------- #
# Forward emitters.  ``b`` is the builder; each returns the output cell.
# Comments cite the dynamic kernel being mirrored (tensor.py).
# ---------------------------------------------------------------------- #
def _fw_binary(ufunc):
    def emit(b: _PlanBuilder, node: _Node) -> _Cell:
        x, y = b.cell(node.parents[0]), b.cell(node.parents[1])
        o = b.owned(node.data.shape)
        b.emit(lambda x=x, y=y, o=o: partial(ufunc, x.a, y.a, out=o.a),
               [x, y], [o])
        return o
    return emit


def _fw_neg(b, node):
    x = b.cell(node.parents[0])
    o = b.owned(node.data.shape)
    b.emit(lambda x=x, o=o: partial(np.negative, x.a, out=o.a), [x], [o])
    return o


def _fw_pow(b, node):
    x = b.cell(node.parents[0])
    o = b.owned(node.data.shape)
    e = node.attrs["exponent"]
    b.emit(lambda x=x, o=o, e=e: _pow_step(x.a, e, o.a), [x], [o])
    return o


def _fw_matmul(b, node):
    x, y = b.cell(node.parents[0]), b.cell(node.parents[1])
    o = b.owned(node.data.shape)
    b.emit(lambda x=x, y=y, o=o: partial(np.matmul, x.a, y.a, out=o.a),
           [x, y], [o])
    return o


def _fw_matmul_scaled(b, node):
    o = _fw_matmul(b, node)
    scale = node.attrs["scale"]
    b.emit(lambda o=o, s=scale: partial(np.multiply, o.a, s, out=o.a),
           [o], [o])
    return o


def _fw_reshape(b, node):
    x = b.cell(node.parents[0])
    shape = node.data.shape
    if np.shares_memory(node.data, node.parents[0].data):
        # The dynamic reshape produced a view; keep it a view.
        return b.view(x, shape, lambda arr, shape=shape: arr.reshape(shape))
    # Non-contiguous source: the dynamic engine materialized a C-order
    # copy.  Equivalent: C-order write of the source into the output.
    o = b.owned(shape)
    src_shape = node.parents[0].data.shape
    b.emit(lambda x=x, o=o, ss=src_shape:
           partial(np.copyto, o.a.reshape(ss), x.a), [x], [o])
    return o


def _fw_transpose(b, node):
    x = b.cell(node.parents[0])
    axes = node.attrs["axes"]
    if axes:
        return b.view(x, node.data.shape,
                      lambda arr, axes=axes: arr.transpose(axes))
    return b.view(x, node.data.shape, lambda arr: arr.T)


def _fw_swapaxes(b, node):
    x = b.cell(node.parents[0])
    ax1, ax2 = node.attrs["ax1"], node.attrs["ax2"]
    return b.view(x, node.data.shape,
                  lambda arr, ax1=ax1, ax2=ax2: np.swapaxes(arr, ax1, ax2))


def _fw_getitem(b, node):
    parent = node.parents[0]
    key = node.attrs["key"]
    shape = node.data.shape
    # View detection must be exact: advanced-indexing copies carry a
    # non-None .base (an internal intermediate) in numpy 2.x, so test
    # actual memory sharing with the parent instead.
    parent_data = node.parents[0].data if isinstance(parent, _Node) else None
    if parent_data is None:
        parent_data = (parent.param.data.view(np.ndarray)
                       if isinstance(parent, _ParamLeaf) else
                       parent.array if isinstance(parent, (_InputLeaf, _ConstLeaf))
                       else parent.traced_mask)
    if np.shares_memory(node.data, parent_data):
        # Basic indexing: stays a view.
        return b.view(b.cell(parent), shape,
                      lambda arr, key=key: arr[key])
    if isinstance(key, np.ndarray) and key.dtype.kind in "iu":
        if (b.precision == "int8" and isinstance(parent, _ParamLeaf)
                and parent.param.data.ndim == 2
                and id(parent) not in b._cell_of):
            # Quantized gather; skip binding the dense fp32 cast.
            return _fw_int8_gather(b, parent, key, shape)
        x = b.cell(parent)
        o = b.owned(shape)
        # np.take re-reads ``key`` each call: index buffers refreshed by
        # the replay prologue are picked up automatically.
        b.emit(lambda x=x, o=o, key=key:
               partial(np.take, x.a, key, axis=0, out=o.a), [x], [o])
        return o
    # Generic advanced-indexing fallback (allocates per call; unused by
    # the model, kept for completeness).
    x = b.cell(parent)
    o = b.owned(shape)

    def maker(x=x, o=o, key=key):
        def step():
            np.copyto(o.a, x.a[key])
        return step

    b.emit(maker, [x], [o])
    return o


def _int8_quantize_rows(w: np.ndarray):
    """Per-row symmetric int8: q[i,:] = round(w[i,:] / s[i]), s = max|row|/127."""
    s = np.abs(w).max(axis=1) / 127.0
    s[s == 0.0] = 1.0
    q = np.clip(np.round(w / s[:, None]), -127, 127).astype(np.int8)
    return q, s.astype(np.float32)


def _fw_int8_gather(b: _PlanBuilder, leaf: _ParamLeaf, key: np.ndarray, shape):
    param = leaf.param
    b._param_order.append(leaf)
    cache_key = ("int8", id(param))
    entry = b.cast_cache.get(cache_key)
    if entry is None:
        q, s = _int8_quantize_rows(param.data.view(np.ndarray))
        entry = [param, param.version, q, s]
        b.cast_cache[cache_key] = entry

    def refresh(entry=entry):
        param = entry[0]
        if entry[1] != param.version:
            q, s = _int8_quantize_rows(param.data.view(np.ndarray))
            entry[2][...] = q
            entry[3][...] = s
            entry[1] = param.version

    b._prologue_makers.append(lambda refresh=refresh: refresh)
    qcell = b.pinned(entry[2])
    scell = b.pinned(entry[3])
    qo = b.owned(shape, np.int8)
    so = b.owned(key.shape, np.float32)
    o = b.owned(shape)
    b.emit(lambda q=qcell, o=qo, key=key:
           partial(np.take, q.a, key, axis=0, out=o.a), [qcell], [qo])
    b.emit(lambda s=scell, o=so, key=key:
           partial(np.take, s.a, key, axis=0, out=o.a), [scell], [so])
    b.emit(lambda qo=qo, so=so, o=o:
           partial(np.multiply, qo.a, so.a[..., None], out=o.a),
           [qo, so], [o])
    return o


def _fw_sum(b, node):
    x = b.cell(node.parents[0])
    o = b.owned(node.data.shape)
    axis, keepdims = node.attrs["axis"], node.attrs["keepdims"]
    b.emit(lambda x=x, o=o, axis=axis, kd=keepdims:
           partial(np.sum, x.a, axis=axis, keepdims=kd, out=o.a), [x], [o])
    return o


def _fw_max(b, node):
    x = b.cell(node.parents[0])
    o = b.owned(node.data.shape)
    axis, keepdims = node.attrs["axis"], node.attrs["keepdims"]
    b.emit(lambda x=x, o=o, axis=axis, kd=keepdims:
           partial(np.amax, x.a, axis=axis, keepdims=kd, out=o.a), [x], [o])
    return o


def _fw_unary(ufunc):
    def emit(b, node):
        x = b.cell(node.parents[0])
        o = b.owned(node.data.shape)
        b.emit(lambda x=x, o=o: partial(ufunc, x.a, out=o.a), [x], [o])
        return o
    return emit


def _fw_sigmoid(b, node):
    # 1.0 / (1.0 + np.exp(-x)), fused in place on the output slot.
    x = b.cell(node.parents[0])
    o = b.owned(node.data.shape)
    b.emit(lambda x=x, o=o: partial(np.negative, x.a, out=o.a), [x], [o])
    b.emit(lambda o=o: partial(np.exp, o.a, out=o.a), [o], [o])
    b.emit(lambda o=o: partial(np.add, o.a, 1.0, out=o.a), [o], [o])
    b.emit(lambda o=o: partial(np.divide, 1.0, o.a, out=o.a), [o], [o])
    return o


def _fw_relu(b, node):
    # mask = x > 0; out = x * mask   (mask kept for the backward pass)
    x = b.cell(node.parents[0])
    o = b.owned(node.data.shape)
    m = b.owned(node.data.shape, bool)
    b.emit(lambda x=x, m=m: partial(np.greater, x.a, 0, out=m.a), [x], [m])
    b.emit(lambda x=x, m=m, o=o: partial(np.multiply, x.a, m.a, out=o.a),
           [x, m], [o])
    b._aux[(id(node), "mask")] = m
    return o


def _fw_softmax(b, node):
    # probs = x - x.max(axis, keepdims); exp in place; /= sum in place.
    x = b.cell(node.parents[0])
    axis = node.attrs["axis"]
    red_shape = list(node.data.shape)
    red_shape[axis] = 1
    mx = b.owned(tuple(red_shape))
    sm = b.owned(tuple(red_shape))
    o = b.owned(node.data.shape)
    b.emit(lambda x=x, o=mx, axis=axis:
           partial(np.amax, x.a, axis=axis, keepdims=True, out=o.a),
           [x], [mx])
    b.emit(lambda x=x, m=mx, o=o: partial(np.subtract, x.a, m.a, out=o.a),
           [x, mx], [o])
    b.emit(lambda o=o: partial(np.exp, o.a, out=o.a), [o], [o])
    b.emit(lambda o=o, s=sm, axis=axis:
           partial(np.sum, o.a, axis=axis, keepdims=True, out=s.a), [o], [sm])
    b.emit(lambda o=o, s=sm: partial(np.divide, o.a, s.a, out=o.a),
           [o, sm], [o])
    return o


def _fw_masked_fill(b, node):
    # np.where(mask, value, x): copy then masked overwrite.  ``mask`` is
    # (a view of) a registered input buffer, re-read on every replay.
    x = b.cell(node.parents[0])
    o = b.owned(node.data.shape)
    mask, value = node.attrs["mask"], node.attrs["value"]
    b.emit(lambda x=x, o=o: partial(np.copyto, o.a, x.a), [x], [o])
    b.emit(lambda o=o, m=mask, v=value:
           partial(np.copyto, o.a, v, where=m), [o], [o])
    return o


def _fw_clip(b, node):
    x = b.cell(node.parents[0])
    o = b.owned(node.data.shape)
    lo, hi = node.attrs["lo"], node.attrs["hi"]
    b.emit(lambda x=x, o=o, lo=lo, hi=hi:
           partial(np.clip, x.a, lo, hi, out=o.a), [x], [o])
    if b.train and node.requires_grad:
        # pass_through = (x >= lo) & (x <= hi), captured at forward time.
        m = b.owned(node.data.shape, bool)
        m2 = b.owned(node.data.shape, bool)
        b.emit(lambda x=x, m=m, lo=lo:
               partial(np.greater_equal, x.a, lo, out=m.a), [x], [m])
        b.emit(lambda x=x, m=m2, hi=hi:
               partial(np.less_equal, x.a, hi, out=m.a), [x], [m2])
        b.emit(lambda m=m, m2=m2:
               partial(np.logical_and, m.a, m2.a, out=m.a), [m, m2], [m])
        b._aux[(id(node), "mask")] = m
    return o


_FORWARD_EMITTERS = {
    "add": _fw_binary(np.add),
    "mul": _fw_binary(np.multiply),
    "div": _fw_binary(np.divide),
    "neg": _fw_neg,
    "pow": _fw_pow,
    "matmul": _fw_matmul,
    "matmul_scaled": _fw_matmul_scaled,
    "reshape": _fw_reshape,
    "transpose": _fw_transpose,
    "swapaxes": _fw_swapaxes,
    "getitem": _fw_getitem,
    "sum": _fw_sum,
    "max": _fw_max,
    "exp": _fw_unary(np.exp),
    "log": _fw_unary(np.log),
    "tanh": _fw_unary(np.tanh),
    "sigmoid": _fw_sigmoid,
    "relu": _fw_relu,
    "softmax": _fw_softmax,
    "masked_fill": _fw_masked_fill,
    "clip": _fw_clip,
}


# ---------------------------------------------------------------------- #
# Backward emitters.  Each mirrors the dynamic closure of the same op:
# same kernel sequence, same evaluation order, flows to requires_grad
# parents only, in parent order.
# ---------------------------------------------------------------------- #
def _bw_add(b, node, g):
    for p in node.parents:
        if p.requires_grad:
            b.acc(p, b.emit_unbroadcast(g, _shape_of(b, p)))


def _shape_of(b, obj):
    return obj.data.shape if isinstance(obj, _Node) else \
        (obj.param.shape if isinstance(obj, _ParamLeaf) else
         obj.array.shape if isinstance(obj, _ConstLeaf) else
         obj.array.shape if isinstance(obj, _InputLeaf) else
         obj.traced_mask.shape)


def _bw_mul(b, node, g):
    p0, p1 = node.parents
    if p0.requires_grad:
        t = b.owned(node.data.shape)
        other = b.cell(p1)
        b.emit(lambda g=g, y=other, t=t:
               partial(np.multiply, g.a, y.a, out=t.a), [g, other], [t])
        b.acc(p0, b.emit_unbroadcast(t, _shape_of(b, p0)))
    if p1.requires_grad:
        t = b.owned(node.data.shape)
        other = b.cell(p0)
        b.emit(lambda g=g, y=other, t=t:
               partial(np.multiply, g.a, y.a, out=t.a), [g, other], [t])
        b.acc(p1, b.emit_unbroadcast(t, _shape_of(b, p1)))


def _bw_neg(b, node, g):
    p = node.parents[0]
    t = b.owned(node.data.shape)
    b.emit(lambda g=g, t=t: partial(np.negative, g.a, out=t.a), [g], [t])
    b.acc(p, t)


def _bw_div(b, node, g):
    p0, p1 = node.parents
    if p0.requires_grad:
        t = b.owned(node.data.shape)
        y = b.cell(p1)
        b.emit(lambda g=g, y=y, t=t:
               partial(np.divide, g.a, y.a, out=t.a), [g, y], [t])
        b.acc(p0, b.emit_unbroadcast(t, _shape_of(b, p0)))
    if p1.requires_grad:
        # -grad * a / (b ** 2)
        x, y = b.cell(p0), b.cell(p1)
        t = b.owned(node.data.shape)
        t2 = b.owned(_shape_of(b, p1))
        b.emit(lambda g=g, t=t: partial(np.negative, g.a, out=t.a), [g], [t])
        b.emit(lambda x=x, t=t: partial(np.multiply, t.a, x.a, out=t.a),
               [x, t], [t])
        b.emit(lambda y=y, t2=t2: partial(np.square, y.a, out=t2.a),
               [y], [t2])
        b.emit(lambda t=t, t2=t2: partial(np.divide, t.a, t2.a, out=t.a),
               [t, t2], [t])
        b.acc(p1, b.emit_unbroadcast(t, _shape_of(b, p1)))


def _bw_pow(b, node, g):
    p = node.parents[0]
    e = node.attrs["exponent"]
    x = b.cell(p)
    t = b.owned(node.data.shape)
    t2 = b.owned(node.data.shape)
    # grad * exponent * x ** (exponent - 1)
    b.emit(lambda g=g, t=t, e=e: partial(np.multiply, g.a, e, out=t.a),
           [g], [t])
    b.emit(lambda x=x, t2=t2, e=e: _pow_step(x.a, e - 1, t2.a), [x], [t2])
    b.emit(lambda t=t, t2=t2: partial(np.multiply, t.a, t2.a, out=t.a),
           [t, t2], [t])
    b.acc(p, t)


def _matmul_out_shape(a_shape, b_shape):
    return np.broadcast_shapes(a_shape[:-2], b_shape[:-2]) \
        + (a_shape[-2], b_shape[-1])


def _bw_matmul_flows(b, node, g):
    p0, p1 = node.parents
    x, y = b.cell(p0), b.cell(p1)
    xs, ys = _shape_of(b, p0), _shape_of(b, p1)
    if p0.requires_grad:
        yT = b.view(y, ys[:-2] + (ys[-1], ys[-2]),
                    lambda arr: np.swapaxes(arr, -1, -2))
        t = b.owned(_matmul_out_shape(g.shape, yT.shape))
        b.emit(lambda g=g, yT=yT, t=t:
               partial(np.matmul, g.a, yT.a, out=t.a), [g, yT], [t])
        b.acc(p0, b.emit_unbroadcast(t, xs))
    if p1.requires_grad:
        xT = b.view(x, xs[:-2] + (xs[-1], xs[-2]),
                    lambda arr: np.swapaxes(arr, -1, -2))
        t = b.owned(_matmul_out_shape(xT.shape, g.shape))
        b.emit(lambda g=g, xT=xT, t=t:
               partial(np.matmul, xT.a, g.a, out=t.a), [xT, g], [t])
        b.acc(p1, b.emit_unbroadcast(t, ys))


def _bw_matmul(b, node, g):
    _bw_matmul_flows(b, node, g)


def _bw_matmul_scaled(b, node, g):
    scale = node.attrs["scale"]
    gs = b.owned(g.shape)
    b.emit(lambda g=g, gs=gs, s=scale:
           partial(np.multiply, g.a, s, out=gs.a), [g], [gs])
    _bw_matmul_flows(b, node, gs)


def _bw_reshape(b, node, g):
    p = node.parents[0]
    shape = _shape_of(b, p)
    b.acc(p, b.view(g, shape, lambda arr, shape=shape: arr.reshape(shape)))


def _bw_transpose(b, node, g):
    p = node.parents[0]
    axes = node.attrs["axes"]
    if axes:
        inverse = tuple(np.argsort(axes))
        v = b.view(g, _shape_of(b, p),
                   lambda arr, inv=inverse: arr.transpose(inv))
    else:
        v = b.view(g, _shape_of(b, p), lambda arr: arr.T)
    b.acc(p, v)


def _bw_swapaxes(b, node, g):
    p = node.parents[0]
    ax1, ax2 = node.attrs["ax1"], node.attrs["ax2"]
    b.acc(p, b.view(g, _shape_of(b, p),
                    lambda arr, ax1=ax1, ax2=ax2: np.swapaxes(arr, ax1, ax2)))


def _bw_getitem(b, node, g):
    # full = zeros_like(parent); np.add.at(full, key, grad)
    p = node.parents[0]
    key = node.attrs["key"]
    t = b.owned(_shape_of(b, p))

    def maker(t=t, g=g, key=key):
        def step():
            t.a.fill(0.0)
            np.add.at(t.a, key, g.a)
        return step

    b.emit(maker, [g], [t])
    b.acc(p, t)


def _bw_sum(b, node, g):
    p = node.parents[0]
    axis, keepdims = node.attrs["axis"], node.attrs["keepdims"]
    gv = g
    if axis is not None and not keepdims:
        exp_shape = np.expand_dims(np.empty(g.shape), axis).shape
        gv = b.view(g, exp_shape,
                    lambda arr, axis=axis: np.expand_dims(arr, axis))
    t = b.owned(_shape_of(b, p))
    b.emit(lambda gv=gv, t=t: partial(np.copyto, t.a, gv.a), [gv], [t])
    b.acc(p, t)


def _bw_max(b, node, g):
    p = node.parents[0]
    axis, keepdims = node.attrs["axis"], node.attrs["keepdims"]
    x = b.cell(p)
    o = b._cell_of[id(node)]
    gv, ov = g, o
    if axis is not None and not keepdims:
        g_shape = np.expand_dims(np.empty(g.shape), axis).shape
        gv = b.view(g, g_shape, lambda arr, ax=axis: np.expand_dims(arr, ax))
        ov = b.view(o, g_shape, lambda arr, ax=axis: np.expand_dims(arr, ax))
    mask = b.owned(x.shape, bool)
    b.emit(lambda x=x, ov=ov, m=mask:
           partial(np.equal, x.a, ov.a, out=m.a), [x, ov], [mask])
    counts_shape = () if axis is None else np.sum(
        np.empty(x.shape, dtype=np.int8), axis=axis, keepdims=True).shape
    counts = b.owned(counts_shape, np.int64)
    if axis is not None:
        b.emit(lambda m=mask, c=counts, ax=axis:
               partial(np.sum, m.a, axis=ax, keepdims=True, out=c.a),
               [mask], [counts])
    else:
        b.emit(lambda m=mask, c=counts: partial(np.sum, m.a, out=c.a),
               [mask], [counts])
    t = b.owned(x.shape)
    b.emit(lambda m=mask, gv=gv, t=t:
           partial(np.multiply, m.a, gv.a, out=t.a), [mask, gv], [t])
    b.emit(lambda t=t, c=counts: partial(np.divide, t.a, c.a, out=t.a),
           [t, counts], [t])
    b.acc(p, t)


def _bw_exp(b, node, g):
    p = node.parents[0]
    o = b._cell_of[id(node)]
    t = b.owned(node.data.shape)
    b.emit(lambda g=g, o=o, t=t: partial(np.multiply, g.a, o.a, out=t.a),
           [g, o], [t])
    b.acc(p, t)


def _bw_log(b, node, g):
    p = node.parents[0]
    x = b.cell(p)
    t = b.owned(node.data.shape)
    b.emit(lambda g=g, x=x, t=t: partial(np.divide, g.a, x.a, out=t.a),
           [g, x], [t])
    b.acc(p, t)


def _bw_tanh(b, node, g):
    # grad * (1.0 - out ** 2)
    p = node.parents[0]
    o = b._cell_of[id(node)]
    t = b.owned(node.data.shape)
    b.emit(lambda o=o, t=t: partial(np.square, o.a, out=t.a), [o], [t])
    b.emit(lambda t=t: partial(np.subtract, 1.0, t.a, out=t.a), [t], [t])
    b.emit(lambda g=g, t=t: partial(np.multiply, g.a, t.a, out=t.a),
           [g, t], [t])
    b.acc(p, t)


def _bw_sigmoid(b, node, g):
    # grad * out * (1.0 - out)
    p = node.parents[0]
    o = b._cell_of[id(node)]
    t = b.owned(node.data.shape)
    t2 = b.owned(node.data.shape)
    b.emit(lambda g=g, o=o, t=t: partial(np.multiply, g.a, o.a, out=t.a),
           [g, o], [t])
    b.emit(lambda o=o, t2=t2: partial(np.subtract, 1.0, o.a, out=t2.a),
           [o], [t2])
    b.emit(lambda t=t, t2=t2: partial(np.multiply, t.a, t2.a, out=t.a),
           [t, t2], [t])
    b.acc(p, t)


def _bw_relu(b, node, g):
    p = node.parents[0]
    m = b._aux[(id(node), "mask")]
    t = b.owned(node.data.shape)
    b.emit(lambda g=g, m=m, t=t: partial(np.multiply, g.a, m.a, out=t.a),
           [g, m], [t])
    b.acc(p, t)


def _bw_softmax(b, node, g):
    # buf = grad*probs; dot = buf.sum(axis, keepdims); buf = grad - dot;
    # buf *= probs   (the dynamic pooled-buffer sequence)
    p = node.parents[0]
    o = b._cell_of[id(node)]
    axis = node.attrs["axis"]
    red_shape = list(node.data.shape)
    red_shape[axis] = 1
    t = b.owned(node.data.shape)
    dot = b.owned(tuple(red_shape))
    b.emit(lambda g=g, o=o, t=t: partial(np.multiply, g.a, o.a, out=t.a),
           [g, o], [t])
    b.emit(lambda t=t, d=dot, axis=axis:
           partial(np.sum, t.a, axis=axis, keepdims=True, out=d.a),
           [t], [dot])
    b.emit(lambda g=g, d=dot, t=t: partial(np.subtract, g.a, d.a, out=t.a),
           [g, dot], [t])
    b.emit(lambda t=t, o=o: partial(np.multiply, t.a, o.a, out=t.a),
           [t, o], [t])
    b.acc(p, t)


def _bw_masked_fill(b, node, g):
    # np.where(mask, 0.0, grad)
    p = node.parents[0]
    mask = node.attrs["mask"]
    t = b.owned(node.data.shape)
    b.emit(lambda g=g, t=t: partial(np.copyto, t.a, g.a), [g], [t])
    b.emit(lambda t=t, m=mask: partial(np.copyto, t.a, 0.0, where=m),
           [t], [t])
    b.acc(p, t)


def _bw_clip(b, node, g):
    p = node.parents[0]
    m = b._aux[(id(node), "mask")]
    t = b.owned(node.data.shape)
    b.emit(lambda g=g, m=m, t=t: partial(np.multiply, g.a, m.a, out=t.a),
           [g, m], [t])
    b.acc(p, t)


_BACKWARD_EMITTERS = {
    "add": _bw_add,
    "mul": _bw_mul,
    "div": _bw_div,
    "neg": _bw_neg,
    "pow": _bw_pow,
    "matmul": _bw_matmul,
    "matmul_scaled": _bw_matmul_scaled,
    "reshape": _bw_reshape,
    "transpose": _bw_transpose,
    "swapaxes": _bw_swapaxes,
    "getitem": _bw_getitem,
    "sum": _bw_sum,
    "max": _bw_max,
    "exp": _bw_exp,
    "log": _bw_log,
    "tanh": _bw_tanh,
    "sigmoid": _bw_sigmoid,
    "relu": _bw_relu,
    "softmax": _bw_softmax,
    "masked_fill": _bw_masked_fill,
    "clip": _bw_clip,
}


# ---------------------------------------------------------------------- #
# Plans
# ---------------------------------------------------------------------- #
class _PlanBase:
    def __init__(self, precision, steps, prologue, rng_draws, input_cells,
                 param_captures, mask_pairs):
        self.precision = precision
        self.gate_error: float = 0.0
        self.lock = threading.Lock()
        self._steps = steps
        self._prologue = prologue
        self._rng_draws = rng_draws
        self._inputs = {name: c.a for name, c in input_cells.items()}
        self._param_captures = param_captures
        self._mask_pairs = mask_pairs
        self.replays = 0

    @property
    def num_steps(self) -> int:
        return len(self._steps)

    @property
    def input_names(self) -> tuple:
        return tuple(sorted(self._inputs))

    def is_stale(self) -> bool:
        """True if a traced parameter's storage was *rebound* (not merely
        written in place) since compile — fp64 plans alias the storage
        directly and must be recompiled after a rebind."""
        return any(p.data is not captured
                   for p, captured in self._param_captures)

    def _load_inputs(self, arrays: dict) -> None:
        inputs = self._inputs
        if arrays.keys() != inputs.keys():
            raise ExecutorError(
                f"plan inputs are {sorted(inputs)}, got {sorted(arrays)}")
        for name, arr in arrays.items():
            buf = inputs[name]
            if np.shape(arr) != buf.shape:
                raise ExecutorError(
                    f"input {name!r}: expected shape {buf.shape}, "
                    f"got {np.shape(arr)}")
            np.copyto(buf, arr)

    def _run(self, arrays: dict, _gate: bool = False) -> None:
        if self.is_stale():
            raise ExecutorError(
                "plan is stale: a traced parameter's storage was rebound "
                "(e.g. by a reference optimizer or load_state_dict); "
                "recompile the plan")
        self._load_inputs(arrays)
        for fn in self._prologue:
            fn()
        if _gate:
            # Replay the exact masks of the trace; consume no rng.
            for cell, traced in self._mask_pairs:
                np.copyto(cell.a, traced)
        else:
            for draw in self._rng_draws:
                draw()
        for fn in self._steps:
            fn()
        self.replays += 1


class ForwardPlan(_PlanBase):
    """A compiled inference plan.  ``replay`` returns a plan-owned array
    valid until the next replay — copy it if you keep it."""

    def __init__(self, precision, steps, prologue, rng_draws, input_cells,
                 param_captures, mask_pairs, out_cell):
        super().__init__(precision, steps, prologue, rng_draws, input_cells,
                         param_captures, mask_pairs)
        self._out = out_cell

    def replay(self, **arrays) -> np.ndarray:
        assert_no_grad("ForwardPlan.replay")
        with self.lock:
            self._run(arrays)
            return self._out.a

    def _replay_gate(self, arrays: dict) -> np.ndarray:
        with self.lock:
            self._run(arrays, _gate=True)
            return self._out.a


class TrainStepPlan(_PlanBase):
    """A compiled forward+backward training step.

    ``step(**arrays)`` refreshes the plan's input slots, replays the
    kernel schedule, publishes per-parameter gradients to
    ``Parameter.grad`` (float64), and returns the scalar loss.  The
    caller still owns the optimizer update.
    """

    def __init__(self, precision, steps, prologue, rng_draws, input_cells,
                 param_captures, mask_pairs, loss_cell, param_grads):
        super().__init__(precision, steps, prologue, rng_draws, input_cells,
                         param_captures, mask_pairs)
        self._loss = loss_cell
        self._param_grads = param_grads  # (Parameter, grad_cell, out64|None)

    def step(self, **arrays) -> float:
        with self.lock:
            self._run(arrays)
            self._publish_grads()
            return float(self._loss.a)

    def _step_gate(self, arrays: dict) -> float:
        with self.lock:
            self._run(arrays, _gate=True)
            self._publish_grads()
            return float(self._loss.a)

    def _publish_grads(self) -> None:
        for param, gcell, out64 in self._param_grads:
            if out64 is None:
                param.grad = gcell.a
            else:
                np.copyto(out64, gcell.a)
                param.grad = out64


# ---------------------------------------------------------------------- #
# Compilation entry points
# ---------------------------------------------------------------------- #
def _trace_call(fn, inputs: dict):
    bufs = {}
    for name, value in inputs.items():
        arr = np.array(value)  # plan-owned copy, dtype preserved
        bufs[name] = arr
    trace = _Trace()
    for name, buf in bufs.items():
        trace.register_input(name, buf)
    with trace:
        out = fn(**bufs)
    if not isinstance(out, Tensor):
        raise ExecutorError("traced function must return a Tensor")
    return trace, bufs, out


def _resolve_tolerance(precision, tolerance):
    if precision == "fp64":
        return 0.0
    return DEFAULT_TOLERANCES[precision] if tolerance is None else float(tolerance)


def compile_forward(fn, inputs: dict, precision: str = "fp64",
                    tolerance: float | None = None,
                    cast_cache: dict | None = None) -> ForwardPlan:
    """Trace ``fn(**inputs)`` once and compile it into a ForwardPlan.

    ``fn`` receives plan-owned buffer copies of ``inputs`` (dtypes
    preserved — pass int64 ids, bool masks, float64 features) and must
    return a single :class:`Tensor`.  The compiled plan is immediately
    replayed on the trace inputs and gated against the dynamic output:
    bit-equality for fp64, :func:`max_relative_error` ``<= tolerance``
    for fp32/int8.
    """
    tol = _resolve_tolerance(precision, tolerance)
    with _COMPILE_LOCK:
        trace, bufs, out = _trace_call(fn, inputs)
        node = trace.node_for(out)
        builder = _PlanBuilder(trace, precision, cast_cache, train=False)
        out_cell = builder.emit_forward(node)
        builder.ensure_inputs(bufs)
        steps, prologue, rng_draws = builder.finalize([out_cell])
        plan = ForwardPlan(precision, steps, prologue, rng_draws,
                           builder._input_cells, builder._param_captures,
                           builder._mask_pairs, out_cell)
        got = plan._replay_gate(bufs)
        _gate(plan, got, out.data, tol)
    return plan


def compile_train_step(fn, inputs: dict, precision: str = "fp64",
                       tolerance: float | None = None,
                       cast_cache: dict | None = None,
                       free_graph: bool = True):
    """Trace one training step and compile forward+backward into a plan.

    ``fn(**buffers)`` must return a scalar loss Tensor.  The dynamic
    trace run *is* the first training step: this returns ``(plan,
    loss)`` with every traced parameter's ``.grad`` holding the dynamic
    gradients, so the caller applies the optimizer update for step one
    and calls ``plan.step(...)`` from step two on.  The plan's gate
    compares the replayed loss and gradients against that dynamic step
    (bitwise for fp64; loss within tolerance for fp32).  int8 is
    inference-only and rejected here.
    """
    if precision == "int8":
        raise ExecutorError("int8 precision is inference-only; "
                            "use fp64 or fp32 for training")
    if not is_grad_enabled():
        raise ExecutorError("compile_train_step requires gradients enabled")
    tol = _resolve_tolerance(precision, tolerance)
    with _COMPILE_LOCK:
        trace, bufs, loss = _trace_call(fn, inputs)
        if loss.size != 1:
            raise ExecutorError("traced training step must return a scalar loss")
        loss_node = trace.node_for(loss)
        builder = _PlanBuilder(trace, precision, cast_cache, train=True)
        loss_cell = builder.emit_forward(loss_node)
        builder.emit_backward(loss_node)

        params: list[Parameter] = []
        seen: set[int] = set()
        for leaf in builder._param_order:
            if id(leaf.param) not in seen:
                seen.add(id(leaf.param))
                params.append(leaf.param)
        param_grads = []
        leaf_of = {id(leaf.param): leaf for leaf in builder._param_order}
        for param in params:
            leaf = leaf_of[id(param)]
            entry = builder._grad_cells.get(id(leaf))
            if entry is None:
                continue  # parameter traced but unreached by gradients
            gcell = entry[0]
            out64 = None if precision == "fp64" \
                else np.empty(param.shape, dtype=np.float64)
            param_grads.append((param, gcell, out64))

        builder.ensure_inputs(bufs)
        keep = [loss_cell] + [g for _, g, _ in param_grads]
        steps, prologue, rng_draws = builder.finalize(keep)
        plan = TrainStepPlan(precision, steps, prologue, rng_draws,
                             builder._input_cells, builder._param_captures,
                             builder._mask_pairs, loss_cell, param_grads)

        # Dynamic oracle step: zero traced grads, backprop.
        for param in params:
            param.zero_grad()
        loss.backward(free_graph=free_graph)
        dyn_grads = [(param, param.grad) for param in params]

        got_loss = plan._step_gate(bufs)
        ref_loss = float(loss.data)
        if precision == "fp64":
            if got_loss != ref_loss and not (np.isnan(got_loss)
                                             and np.isnan(ref_loss)):
                raise ExecutorError(
                    f"fp64 train plan loss diverged from dynamic oracle: "
                    f"{got_loss!r} != {ref_loss!r} (compiler bug)")
            for param, gcell, _ in plan._param_grads:
                dyn = dict((id(p), gr) for p, gr in dyn_grads)[id(param)]
                if dyn is None or not np.array_equal(gcell.a, dyn):
                    raise ExecutorError(
                        "fp64 train plan gradients diverged from the "
                        "dynamic oracle (compiler bug)")
        else:
            err = max_relative_error(np.float64(got_loss),
                                     np.float64(ref_loss))
            if err > tol:
                raise PrecisionToleranceError(
                    f"{precision} train plan loss error {err:.3e} exceeds "
                    f"tolerance {tol:.3e}")
            plan.gate_error = err
        # Hand the dynamic gradients back: the caller's step-one
        # optimizer update uses the oracle values.
        for param, grad in dyn_grads:
            param.grad = grad
    return plan, ref_loss


def _gate(plan, got: np.ndarray, ref: np.ndarray, tol: float) -> None:
    if plan.precision == "fp64":
        if not np.array_equal(got, ref):
            raise ExecutorError(
                "fp64 plan output diverged from the dynamic reference "
                "(compiler bug: plans must be bit-identical)")
        plan.gate_error = 0.0
        return
    err = max_relative_error(got, ref)
    if err > tol:
        raise PrecisionToleranceError(
            f"{plan.precision} plan error {err:.3e} exceeds tolerance "
            f"{tol:.3e}; fall back to fp64 or raise the tolerance")
    plan.gate_error = err
