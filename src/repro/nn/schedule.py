"""Learning-rate schedules and early stopping for the training loops."""

from __future__ import annotations

import math

from .optim import Optimizer

__all__ = ["LRScheduler", "StepLR", "CosineAnnealingLR", "WarmupLR", "EarlyStopping"]


class LRScheduler:
    """Base class: mutates ``optimizer.lr`` on each :meth:`step`."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self, epoch: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch; returns the new learning rate."""
        self.epoch += 1
        lr = self.get_lr(self.epoch)
        self.optimizer.lr = lr
        return lr


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError(f"step_size must be >= 1: {step_size}")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base rate to ``min_lr`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        if t_max < 1:
            raise ValueError(f"t_max must be >= 1: {t_max}")
        self.t_max = t_max
        self.min_lr = min_lr

    def get_lr(self, epoch: int) -> float:
        progress = min(epoch, self.t_max) / self.t_max
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * progress))


class WarmupLR(LRScheduler):
    """Linear warmup for ``warmup_epochs``, then delegate to ``after``."""

    def __init__(self, optimizer: Optimizer, warmup_epochs: int,
                 after: LRScheduler | None = None):
        super().__init__(optimizer)
        if warmup_epochs < 1:
            raise ValueError(f"warmup_epochs must be >= 1: {warmup_epochs}")
        self.warmup_epochs = warmup_epochs
        self.after = after

    def get_lr(self, epoch: int) -> float:
        if epoch <= self.warmup_epochs:
            return self.base_lr * epoch / self.warmup_epochs
        if self.after is not None:
            return self.after.get_lr(epoch - self.warmup_epochs)
        return self.base_lr


class EarlyStopping:
    """Stop when a monitored metric hasn't improved for ``patience`` epochs.

    >>> stopper = EarlyStopping(patience=3)
    >>> for epoch in range(100):
    ...     val = 1.0  # compute validation loss
    ...     if stopper.update(val):
    ...         break
    """

    def __init__(self, patience: int = 5, min_delta: float = 0.0):
        if patience < 1:
            raise ValueError(f"patience must be >= 1: {patience}")
        self.patience = patience
        self.min_delta = min_delta
        self.best = float("inf")
        self.best_epoch = -1
        self._epoch = -1
        self._stale = 0

    def update(self, value: float) -> bool:
        """Record one epoch's metric; returns True when training should stop."""
        self._epoch += 1
        if value < self.best - self.min_delta:
            self.best = value
            self.best_epoch = self._epoch
            self._stale = 0
        else:
            self._stale += 1
        return self._stale >= self.patience
