"""Module/Parameter containers for the numpy autograd engine.

Mirrors the small slice of ``torch.nn.Module`` the SNS models need:
recursive parameter discovery, train/eval mode flags, and a flat
state-dict for serialization.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module"]


# The slot descriptor for Tensor.data — Parameter shadows the slot with a
# property below, so the raw storage must be reached through the descriptor.
_TENSOR_DATA = Tensor.__dict__["data"]


class Parameter(Tensor):
    """A trainable tensor; always created with ``requires_grad=True``.

    Every assignment to :attr:`data` — including augmented assignments
    like the optimizer's ``p.data -= lr * v``, which re-assign after the
    in-place op — increments :attr:`version`.  Consumers such as the
    prediction cache's model fingerprint use the counter to detect weight
    changes without re-hashing unchanged weights.  Direct element writes
    that never re-assign (``p.data[0] = x``) bypass the counter; mutate
    through assignment instead.
    """

    __slots__ = ("version",)

    def __init__(self, data):
        self.version = -1
        super().__init__(data, requires_grad=True)  # assigns .data -> 0

    @property
    def data(self):
        return _TENSOR_DATA.__get__(self, Parameter)

    @data.setter
    def data(self, value):
        _TENSOR_DATA.__set__(self, value)
        self.version += 1


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; :meth:`parameters` and :meth:`state_dict` discover them
    recursively in attribute-definition order.
    """

    def __init__(self):
        self.training = True

    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = ""):
        """Yield ``(name, Parameter)`` pairs for this module and children."""
        for name, value in vars(self).items():
            if name == "training":
                continue
            qualified = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield qualified, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{qualified}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{qualified}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{qualified}.{i}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return int(sum(p.size for p in self.parameters()))

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._children():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def _children(self):
        for value in vars(self).values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item

    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping from parameter name to a copy of its data."""
        return {name: np.array(p.data) for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {param.shape}")
            param.data = value.copy()
