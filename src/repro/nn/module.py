"""Module/Parameter containers for the numpy autograd engine.

Mirrors the small slice of ``torch.nn.Module`` the SNS models need:
recursive parameter discovery, train/eval mode flags, and a flat
state-dict for serialization.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "ParamData", "Module"]


# The slot descriptor for Tensor.data — Parameter shadows the slot with a
# property below, so the raw storage must be reached through the descriptor.
_TENSOR_DATA = Tensor.__dict__["data"]


class ParamData(np.ndarray):
    """Parameter weight storage that tracks in-place mutation.

    A :class:`Parameter`'s ``.data`` is stored as this ndarray subclass
    with a back-reference to its owner.  Any in-place write — a ufunc
    with this array as an ``out`` target (``np.add(w, g, out=w)``, the
    fused optimizer kernels, augmented assignments like ``w += g``),
    ``ufunc.at`` indexed updates, or element assignment (``w[0] = x``) —
    bumps the owner's :attr:`Parameter.version`, so content-addressed
    consumers (the prediction cache's model fingerprint) can never serve
    stale entries after an in-place optimizer step.  Views and results of
    ordinary ops carry no owner and bump nothing.
    """

    _owner = None  # the owning Parameter (None for views/derived arrays)

    def __array_finalize__(self, obj):
        self._owner = None

    def _bump(self) -> None:
        owner = self._owner
        if owner is not None:
            owner.version += 1

    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        # Strip the subclass before dispatching so numpy runs its normal
        # kernels, then bump owners whose buffers were written in place.
        out = kwargs.get("out")
        mutated_at = inputs[0] if method == "at" and inputs else None
        inputs = tuple(x.view(np.ndarray) if isinstance(x, ParamData) else x
                       for x in inputs)
        if out is not None:
            kwargs["out"] = tuple(o.view(np.ndarray) if isinstance(o, ParamData)
                                  else o for o in out)
        result = getattr(ufunc, method)(*inputs, **kwargs)
        if out is not None:
            for o in out:
                if isinstance(o, ParamData):
                    o._bump()
            # Hand back the original out objects so augmented assignment
            # (``w += g``) rebinds to the tracked array, not a plain view.
            result = out[0] if ufunc.nout == 1 else tuple(out)
        elif isinstance(mutated_at, ParamData):
            # ufunc.at writes its first operand in place.
            mutated_at._bump()
        return result

    def __setitem__(self, key, value):
        super().__setitem__(key, value)
        self._bump()


class Parameter(Tensor):
    """A trainable tensor; always created with ``requires_grad=True``.

    :attr:`version` counts weight mutations: every assignment to
    :attr:`data` (including ``load_state_dict``) and — via the
    :class:`ParamData` storage class — every *in-place* write
    (``p.data += g``, ``np.multiply(..., out=p.data)``, ``p.data[0] = x``,
    the fused optimizer kernels) increments it.  Consumers such as the
    prediction cache's model fingerprint use the counter to detect weight
    changes without re-hashing unchanged weights.
    """

    __slots__ = ("version",)

    def __init__(self, data):
        self.version = -1
        super().__init__(data, requires_grad=True)  # assigns .data -> 0

    @property
    def data(self):
        return _TENSOR_DATA.__get__(self, Parameter)

    @data.setter
    def data(self, value):
        if (isinstance(value, ParamData) and value._owner is self
                and value is _TENSOR_DATA.__get__(self, Parameter)):
            # Re-assignment of the *current* storage (the tail of an
            # augmented assignment like ``p.data -= x``): the in-place
            # ufunc already bumped the version, so nothing to do.
            return
        arr = np.asarray(value, dtype=np.float64).view(ParamData)
        arr._owner = self
        _TENSOR_DATA.__set__(self, arr)
        self.version += 1


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; :meth:`parameters` and :meth:`state_dict` discover them
    recursively in attribute-definition order.
    """

    def __init__(self):
        self.training = True

    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = ""):
        """Yield ``(name, Parameter)`` pairs for this module and children."""
        for name, value in vars(self).items():
            if name == "training":
                continue
            qualified = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield qualified, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{qualified}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{qualified}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{qualified}.{i}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return int(sum(p.size for p in self.parameters()))

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._children():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def _children(self):
        for value in vars(self).values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item

    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping from parameter name to a copy of its data."""
        return {name: np.array(p.data) for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {param.shape}")
            param.data = value.copy()
