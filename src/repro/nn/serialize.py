"""Saving and loading model weights as ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from .module import Module

__all__ = ["save_module", "load_module"]


def save_module(module: Module, path: str | os.PathLike) -> None:
    """Write ``module``'s state dict to ``path`` (numpy ``.npz``)."""
    state = module.state_dict()
    np.savez(path, **state)


def load_module(module: Module, path: str | os.PathLike) -> Module:
    """Load weights saved by :func:`save_module` into ``module`` in place."""
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
    return module
