"""Transformer building blocks: multi-head attention and encoder layers.

These implement the encoder side of Vaswani et al. (2017) at the scale the
Circuitformer needs (2 layers, 2 heads, d_model=128 — Table 2 of the SNS
paper).
"""

from __future__ import annotations

import numpy as np

from .layers import Dropout, LayerNorm, Linear
from .module import Module
from .tensor import Tensor

__all__ = ["MultiHeadSelfAttention", "TransformerEncoderLayer", "TransformerEncoder"]

_NEG_INF = -1e9


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention with ``num_heads`` heads.

    Input/output shape: ``(batch, seq, d_model)``.  ``key_padding_mask`` is
    a boolean array of shape ``(batch, seq)`` that is True at *padding*
    positions; those keys receive zero attention weight.
    """

    def __init__(self, d_model: int, num_heads: int, dropout: float = 0.0,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(f"d_model={d_model} not divisible by num_heads={num_heads}")
        rng = rng or np.random.default_rng(0)
        self.d_model = d_model
        self.num_heads = num_heads
        self.d_head = d_model // num_heads
        self.q_proj = Linear(d_model, d_model, rng=rng)
        self.k_proj = Linear(d_model, d_model, rng=rng)
        self.v_proj = Linear(d_model, d_model, rng=rng)
        self.out_proj = Linear(d_model, d_model, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        # (B, S, D) -> (B, H, S, Dh)
        return x.reshape(batch, seq, self.num_heads, self.d_head).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, key_padding_mask: np.ndarray | None = None) -> Tensor:
        batch, seq, _ = x.shape
        q = self._split_heads(self.q_proj(x), batch, seq)
        k = self._split_heads(self.k_proj(x), batch, seq)
        v = self._split_heads(self.v_proj(x), batch, seq)

        # Fused (q @ k^T) * scale: one (B, H, S, S) buffer instead of two,
        # bit-identical to the two-op composition.
        scores = q.matmul_scaled(k.transpose(0, 1, 3, 2), 1.0 / np.sqrt(self.d_head))
        if key_padding_mask is not None:
            mask = np.asarray(key_padding_mask, dtype=bool)[:, None, None, :]
            scores = scores.masked_fill(np.broadcast_to(mask, scores.shape), _NEG_INF)
        weights = scores.softmax(axis=-1)
        weights = self.dropout(weights)
        context = weights.matmul(v)  # (B, H, S, Dh)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.d_model)
        return self.out_proj(merged)


class TransformerEncoderLayer(Module):
    """Post-norm encoder layer: self-attention + position-wise FFN."""

    def __init__(self, d_model: int, num_heads: int, dim_feedforward: int | None = None,
                 dropout: float = 0.0, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        dim_feedforward = dim_feedforward or 4 * d_model
        self.attn = MultiHeadSelfAttention(d_model, num_heads, dropout=dropout, rng=rng)
        self.norm1 = LayerNorm(d_model)
        self.ff1 = Linear(d_model, dim_feedforward, rng=rng)
        self.ff2 = Linear(dim_feedforward, d_model, rng=rng)
        self.norm2 = LayerNorm(d_model)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, key_padding_mask: np.ndarray | None = None) -> Tensor:
        x = self.norm1(x + self.dropout(self.attn(x, key_padding_mask)))
        ff = self.ff2(self.dropout(self.ff1(x).gelu()))
        return self.norm2(x + self.dropout(ff))


class TransformerEncoder(Module):
    """A stack of :class:`TransformerEncoderLayer`."""

    def __init__(self, num_layers: int, d_model: int, num_heads: int,
                 dim_feedforward: int | None = None, dropout: float = 0.0,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.layers = [
            TransformerEncoderLayer(d_model, num_heads, dim_feedforward, dropout, rng=rng)
            for _ in range(num_layers)
        ]

    def forward(self, x: Tensor, key_padding_mask: np.ndarray | None = None) -> Tensor:
        for layer in self.layers:
            x = layer(x, key_padding_mask)
        return x
