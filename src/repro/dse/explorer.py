"""A generic design-space explorer over any parameterizable Module.

Drives the paper's DSE recipe end to end for arbitrary user designs:
elaborate each parameter combination, evaluate it with SNS (or the
reference synthesizer), attach an optional user-supplied performance
score, and extract Pareto-optimal picks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..core import SNS
from ..hdl import Module
from ..synth import Synthesizer
from .grid import ParameterGrid

__all__ = ["EvaluatedDesign", "ExplorationResult", "DesignSpaceExplorer"]


@dataclass(frozen=True)
class EvaluatedDesign:
    """One evaluated parameter combination."""

    params: dict[str, Any]
    timing_ps: float
    area_um2: float
    power_mw: float
    score: float      # user metric (defaults to predicted frequency)

    @property
    def frequency_ghz(self) -> float:
        return 1000.0 / self.timing_ps if self.timing_ps > 0 else 0.0

    @property
    def score_per_watt(self) -> float:
        return self.score / self.power_mw if self.power_mw > 0 else 0.0

    @property
    def score_per_area(self) -> float:
        return self.score / self.area_um2 if self.area_um2 > 0 else 0.0


@dataclass(frozen=True)
class ExplorationResult:
    points: tuple[EvaluatedDesign, ...]
    runtime_s: float

    def best(self, key: Callable[[EvaluatedDesign], float] | str = "score"
             ) -> EvaluatedDesign:
        """Best point by a metric name or key function."""
        fn = (key if callable(key)
              else lambda p, attr=key: getattr(p, attr))
        return max(self.points, key=fn)

    def pareto(self, cost: str = "area_um2") -> tuple[EvaluatedDesign, ...]:
        """Pareto frontier: minimize ``cost``, maximize score."""
        ordered = sorted(self.points,
                         key=lambda p: (getattr(p, cost), -p.score))
        front, best = [], -np.inf
        for p in ordered:
            if p.score > best:
                front.append(p)
                best = p.score
        return tuple(front)


class DesignSpaceExplorer:
    """Sweep a :class:`ParameterGrid` over a Module factory.

    Parameters
    ----------
    factory:
        Callable mapping a parameter dict to a :class:`Module`
        (typically the Module class itself).
    engine:
        A trained :class:`SNS` (the fast path the paper advocates) or a
        :class:`Synthesizer` (ground truth).
    score:
        Optional callable ``(params, timing_ps, area_um2, power_mw) ->
        float``; defaults to predicted clock frequency.
    cache:
        Optional :class:`repro.runtime.PredictionCache` shared across
        ``explore`` calls (SNS engines only).  When omitted, an
        in-memory cache is created per explorer, so re-exploring an
        overlapping grid is near-free.
    frontend_cache:
        Optional :class:`repro.runtime.FrontendCache` (SNS engines only).
        When omitted, an in-memory one is created per explorer, so the
        sweep elaborates and samples each configuration at most once
        even when the prediction cache misses (e.g. after retraining).
    """

    def __init__(self, factory: Callable[..., Module], engine,
                 score: Callable | None = None, cache=None,
                 batch_size: int = 32, frontend_cache=None):
        if not isinstance(engine, (SNS, Synthesizer)):
            raise TypeError(
                f"engine must be SNS or Synthesizer, got {type(engine).__name__}")
        self.factory = factory
        self.engine = engine
        self.score = score
        self.batch_size = batch_size
        if isinstance(engine, SNS):
            from ..runtime import (BatchPredictor, FrontendCache,
                                   PredictionCache)

            self.frontend_cache = frontend_cache or FrontendCache()
            self._batch_engine = BatchPredictor(
                engine, cache=cache or PredictionCache(),
                batch_size=batch_size, frontend_cache=self.frontend_cache)
        else:
            self.frontend_cache = None
            self._batch_engine = None

    # ------------------------------------------------------------------ #
    def _score_point(self, params: dict[str, Any], timing: float,
                     area: float, power: float) -> EvaluatedDesign:
        timing = max(timing, 1e-9)
        if self.score is not None:
            score = float(self.score(params, timing, area, power))
        else:
            score = 1000.0 / timing
        return EvaluatedDesign(params=dict(params), timing_ps=timing,
                               area_um2=area, power_mw=power, score=score)

    def evaluate(self, params: dict[str, Any]) -> EvaluatedDesign:
        module = self.factory(**params)
        if self._batch_engine is not None:
            # Hand the Module straight to the batch engine: it compiles
            # through the shared FrontendCache (flat builder elaboration,
            # cached per configuration).  The synthesizer path keeps the
            # dict CircuitGraph it operates on.
            pred = self._batch_engine.predict_batch([module])[0]
            timing, area, power = pred.timing_ps, pred.area_um2, pred.power_mw
        else:
            result = self.engine.synthesize(module.elaborate())
            timing, area, power = result.timing_ps, result.area_um2, result.power_mw
        return self._score_point(params, timing, area, power)

    def explore(self, grid: ParameterGrid | list[dict],
                constraint: Callable[[dict], bool] | None = None,
                stride: int = 1, verbose: bool = False) -> ExplorationResult:
        """Evaluate every (filtered, strided) point of the grid.

        With an SNS engine, all points are evaluated through the batched
        runtime (:class:`repro.runtime.BatchPredictor`): one pooled,
        deduplicated, length-bucketed inference pass instead of one
        model invocation per point.
        """
        if isinstance(grid, ParameterGrid):
            points = grid.subset(constraint=constraint, stride=stride)
        else:
            points = [p for p in grid if constraint is None or constraint(p)][::stride]
        if not points:
            raise ValueError("nothing to explore after filtering")
        start = time.perf_counter()
        if self._batch_engine is not None:
            modules = [self.factory(**params) for params in points]
            if verbose:
                print(f"[dse] batch-predicting {len(modules)} designs")
            preds = self._batch_engine.predict_batch(modules)
            evaluated = [
                self._score_point(params, p.timing_ps, p.area_um2, p.power_mw)
                for params, p in zip(points, preds)]
        else:
            evaluated = []
            for i, params in enumerate(points):
                evaluated.append(self.evaluate(params))
                if verbose and (i + 1) % 50 == 0:
                    print(f"[dse] {i + 1}/{len(points)} evaluated")
        return ExplorationResult(points=tuple(evaluated),
                                 runtime_s=time.perf_counter() - start)
