"""A generic design-space explorer over any parameterizable Module.

Drives the paper's DSE recipe end to end for arbitrary user designs:
elaborate each parameter combination, evaluate it with SNS (or the
reference synthesizer), attach an optional user-supplied performance
score, and extract Pareto-optimal picks.

This exhaustive explorer is the *parity oracle* for the streaming
budgeted engine (:mod:`repro.dse.engine`): on grids small enough to
enumerate, the engine in exhaustive mode reproduces its results
exactly.  For spaces beyond a few thousand points, use
:meth:`DesignSpaceExplorer.explore_budgeted`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ..core import SNS
from ..hdl import Module
from ..synth import Synthesizer
from .grid import ParameterGrid
from .pareto import ParetoFront

__all__ = ["EvaluatedDesign", "ExplorationResult", "DesignSpaceExplorer",
           "pareto_points"]


@dataclass(frozen=True)
class EvaluatedDesign:
    """One evaluated parameter combination."""

    params: dict[str, Any]
    timing_ps: float
    area_um2: float
    power_mw: float
    score: float      # user metric (defaults to predicted frequency)

    @property
    def frequency_ghz(self) -> float:
        return 1000.0 / self.timing_ps if self.timing_ps > 0 else 0.0

    @property
    def score_per_watt(self) -> float:
        return self.score / self.power_mw if self.power_mw > 0 else 0.0

    @property
    def score_per_area(self) -> float:
        return self.score / self.area_um2 if self.area_um2 > 0 else 0.0


def pareto_points(points: Iterable, cost: str = "area_um2",
                  score: str = "score") -> tuple:
    """2-objective frontier (minimize ``cost``, maximize ``score``).

    Shared by every result type; implemented on the incremental
    k-objective :class:`~repro.dse.pareto.ParetoFront`, whose output
    order (ascending cost) matches the old sort-based extraction.
    """
    front = ParetoFront(2, maximize=(False, True))
    for p in points:
        front.add((getattr(p, cost), getattr(p, score)), p)
    return tuple(front.items())


@dataclass(frozen=True)
class ExplorationResult:
    points: tuple[EvaluatedDesign, ...]
    runtime_s: float

    def best(self, key: Callable[[EvaluatedDesign], float] | str = "score"
             ) -> EvaluatedDesign:
        """Best point by a metric name or key function."""
        if not self.points:
            raise ValueError("exploration produced no evaluated points "
                             "(empty result has no best design)")
        fn = (key if callable(key)
              else lambda p, attr=key: getattr(p, attr))
        return max(self.points, key=fn)

    def pareto(self, cost: str = "area_um2") -> tuple[EvaluatedDesign, ...]:
        """Pareto frontier: minimize ``cost``, maximize score."""
        if not self.points:
            raise ValueError("exploration produced no evaluated points "
                             "(empty result has no Pareto front)")
        return pareto_points(self.points, cost=cost)


class DesignSpaceExplorer:
    """Sweep a :class:`ParameterGrid` over a Module factory.

    Parameters
    ----------
    factory:
        Callable mapping a parameter dict to a :class:`Module`
        (typically the Module class itself).
    engine:
        A trained :class:`SNS` (the fast path the paper advocates) or a
        :class:`Synthesizer` (ground truth).
    score:
        Optional callable ``(params, timing_ps, area_um2, power_mw) ->
        float``; defaults to predicted clock frequency.
    cache:
        Optional :class:`repro.runtime.PredictionCache` shared across
        ``explore`` calls (SNS engines only).  When omitted, an
        in-memory cache is created per explorer, so re-exploring an
        overlapping grid is near-free.
    frontend_cache:
        Optional :class:`repro.runtime.FrontendCache` (SNS engines only).
        When omitted, an in-memory one is created per explorer, so the
        sweep elaborates and samples each configuration at most once
        even when the prediction cache misses (e.g. after retraining).
    """

    def __init__(self, factory: Callable[..., Module], engine,
                 score: Callable | None = None, cache=None,
                 batch_size: int = 32, frontend_cache=None):
        if not isinstance(engine, (SNS, Synthesizer)):
            raise TypeError(
                f"engine must be SNS or Synthesizer, got {type(engine).__name__}")
        self.factory = factory
        self.engine = engine
        self.score = score
        self.batch_size = batch_size
        # Peak simultaneously-live modules of the last explore() call —
        # pinned by the streaming regression test.
        self.last_peak_live_modules = 0
        if isinstance(engine, SNS):
            from ..runtime import (BatchPredictor, FrontendCache,
                                   PredictionCache)

            self.frontend_cache = frontend_cache or FrontendCache()
            self._batch_engine = BatchPredictor(
                engine, cache=cache or PredictionCache(),
                batch_size=batch_size, frontend_cache=self.frontend_cache)
        else:
            self.frontend_cache = None
            self._batch_engine = None

    # ------------------------------------------------------------------ #
    def _score_point(self, params: dict[str, Any], timing: float,
                     area: float, power: float) -> EvaluatedDesign:
        timing = max(timing, 1e-9)
        if self.score is not None:
            score = float(self.score(params, timing, area, power))
        else:
            score = 1000.0 / timing
        return EvaluatedDesign(params=dict(params), timing_ps=timing,
                               area_um2=area, power_mw=power, score=score)

    def evaluate(self, params: dict[str, Any]) -> EvaluatedDesign:
        module = self.factory(**params)
        if self._batch_engine is not None:
            # Hand the Module straight to the batch engine: it compiles
            # through the shared FrontendCache (flat builder elaboration,
            # cached per configuration).  The synthesizer path keeps the
            # dict CircuitGraph it operates on.
            pred = self._batch_engine.predict_batch([module])[0]
            timing, area, power = pred.timing_ps, pred.area_um2, pred.power_mw
        else:
            result = self.engine.synthesize(module.elaborate())
            timing, area, power = result.timing_ps, result.area_um2, result.power_mw
        return self._score_point(params, timing, area, power)

    def explore(self, grid: ParameterGrid | list[dict],
                constraint: Callable[[dict], bool] | None = None,
                stride: int = 1, verbose: bool = False,
                chunk_size: int | None = None) -> ExplorationResult:
        """Evaluate every (filtered, strided) point of the grid.

        With an SNS engine, points are evaluated through the batched
        runtime (:class:`repro.runtime.BatchPredictor`) in chunks of
        ``chunk_size`` (default: the constructor's ``batch_size``):
        modules are instantiated per chunk and released before the next
        one, so peak live modules is O(chunk), not O(grid) — the
        predictions are chunk-size invariant, so the results are
        identical to the old all-at-once sweep.
        """
        if isinstance(grid, ParameterGrid):
            point_stream = grid.iter_subset(constraint=constraint, stride=stride)
        else:
            if stride < 1:
                raise ValueError(f"stride must be >= 1: {stride}")
            point_stream = iter(
                [p for p in grid
                 if constraint is None or constraint(p)][::stride])
        chunk = self.batch_size if chunk_size is None else chunk_size
        if chunk < 1:
            raise ValueError(f"chunk_size must be >= 1: {chunk}")
        start = time.perf_counter()
        evaluated: list[EvaluatedDesign] = []
        self.last_peak_live_modules = 0
        if self._batch_engine is not None:
            pending: list[dict] = []
            for params in point_stream:
                pending.append(params)
                if len(pending) >= chunk:
                    evaluated.extend(self._evaluate_chunk(pending))
                    pending = []
            if pending:
                evaluated.extend(self._evaluate_chunk(pending))
        else:
            for i, params in enumerate(point_stream):
                self.last_peak_live_modules = max(self.last_peak_live_modules, 1)
                evaluated.append(self.evaluate(params))
                if verbose and (i + 1) % 50 == 0:
                    print(f"[dse] {i + 1} evaluated")
        if not evaluated:
            raise ValueError("nothing to explore after filtering")
        if verbose and self._batch_engine is not None:
            print(f"[dse] batch-predicted {len(evaluated)} designs")
        return ExplorationResult(points=tuple(evaluated),
                                 runtime_s=time.perf_counter() - start)

    def _evaluate_chunk(self, points: list[dict]) -> list[EvaluatedDesign]:
        """Instantiate one chunk of modules, predict, release."""
        modules = [self.factory(**params) for params in points]
        self.last_peak_live_modules = max(self.last_peak_live_modules,
                                          len(modules))
        preds = self._batch_engine.predict_batch(modules)
        del modules
        return [self._score_point(params, p.timing_ps, p.area_um2, p.power_mw)
                for params, p in zip(points, preds)]

    # ------------------------------------------------------------------ #
    def explore_budgeted(self, grid: ParameterGrid, budget: int,
                         verbose: bool = False, **engine_config):
        """Budgeted streaming exploration via :class:`ExplorationEngine`.

        Accepts every :class:`repro.dse.engine.EngineConfig` field as a
        keyword; returns an :class:`repro.dse.engine.EngineResult`.
        """
        from .engine import EngineConfig, ExplorationEngine

        engine = ExplorationEngine(
            self.factory, self.engine, grid, score=self.score,
            config=EngineConfig(budget=budget, **engine_config),
            frontend_cache=self.frontend_cache)
        return engine.explore(verbose=verbose)
