"""Parameter grids for design-space exploration.

The paper's usage model (Section 5.5): "a parameterizable design is first
compiled with combinations of design parameters to form fixed RTL
designs" — :class:`ParameterGrid` enumerates those combinations for any
``Module`` subclass.

The grid is *combinatorial*, never materialized: every point has a
mixed-radix index in ``range(len(grid))``, and :meth:`point_at` /
:meth:`decode_indices` turn indices back into parameter bindings without
enumerating the Cartesian product.  That is what lets the streaming DSE
engine (:mod:`repro.dse.engine`) sample a 10^6+ space with O(sample)
memory.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Callable, Iterator

import numpy as np

__all__ = ["ParameterGrid"]


@dataclass(frozen=True)
class ParameterGrid:
    """The Cartesian product of named parameter choices.

    >>> grid = ParameterGrid({"width": (8, 16), "lanes": (1, 2, 4)})
    >>> len(grid)
    6
    >>> grid.subset(constraint=lambda p: p["width"] * p["lanes"] <= 32)[0]
    {'width': 8, 'lanes': 1}
    """

    parameters: dict[str, tuple]

    def __post_init__(self):
        for name, values in self.parameters.items():
            if not values:
                raise ValueError(f"parameter {name!r} has no values")

    def __len__(self) -> int:
        size = 1
        for values in self.parameters.values():
            size *= len(values)
        return size

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self.parameters)

    @property
    def radices(self) -> tuple[int, ...]:
        """Number of choices per parameter, in declaration order."""
        return tuple(len(v) for v in self.parameters.values())

    def __iter__(self) -> Iterator[dict[str, Any]]:
        keys = list(self.parameters)
        for combo in itertools.product(*(self.parameters[k] for k in keys)):
            yield dict(zip(keys, combo))

    # -- combinatorial indexing ---------------------------------------- #
    # Index order matches ``__iter__``/``itertools.product``: the LAST
    # parameter varies fastest (big-endian mixed radix).
    def point_at(self, index: int) -> dict[str, Any]:
        """The ``index``-th point of the product, without enumeration."""
        if not 0 <= index < len(self):
            raise IndexError(f"index {index} out of range for {len(self)} points")
        keys = list(self.parameters)
        digits = {}
        for name in reversed(keys):
            values = self.parameters[name]
            index, digit = divmod(index, len(values))
            digits[name] = values[digit]
        return {name: digits[name] for name in keys}

    def index_of(self, params: dict[str, Any]) -> int:
        """Inverse of :meth:`point_at` (raises if a value is off-grid)."""
        index = 0
        for name, values in self.parameters.items():
            index = index * len(values) + values.index(params[name])
        return index

    def decode_indices(self, indices) -> np.ndarray:
        """Vectorized ``point_at``: (n,) indices -> (n, num_params) digit
        matrix, where column j holds positions into the j-th value tuple.

        This is the zero-object form the DSE engine's screening rung
        consumes: a million candidates become one int matrix, and only
        survivors are ever turned into parameter dicts.
        """
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= len(self)):
            raise IndexError(f"indices out of range for {len(self)} points")
        radices = self.radices
        digits = np.empty((idx.shape[0], len(radices)), dtype=np.int64)
        for j in range(len(radices) - 1, -1, -1):
            idx, digits[:, j] = np.divmod(idx, radices[j])
        return digits

    def neighbors(self, index: int) -> list[int]:
        """Indices one parameter step away (±1 position per dimension).

        The move set of the engine's guided local search: deterministic
        order (dimension-major, minus before plus), no enumeration.
        """
        digits = self.decode_indices([index])[0]
        radices = self.radices
        out = []
        for j, radix in enumerate(radices):
            for step in (-1, 1):
                d = digits[j] + step
                if 0 <= d < radix:
                    moved = digits.copy()
                    moved[j] = d
                    idx = 0
                    for dj, rj in zip(moved, radices):
                        idx = idx * rj + int(dj)
                    out.append(idx)
        return out

    def points_at(self, indices) -> list[dict[str, Any]]:
        """Materialize parameter dicts for a (small) batch of indices."""
        names = self.names
        values = [self.parameters[n] for n in names]
        return [{n: v[d] for n, v, d in zip(names, values, row)}
                for row in self.decode_indices(indices)]

    # -- lazy subsets and seeded samples -------------------------------- #
    def iter_subset(self, constraint: Callable[[dict], bool] | None = None,
                    stride: int = 1) -> Iterator[dict[str, Any]]:
        """Lazily yield points, optionally filtered and strided.

        Never materializes the product: points stream one at a time, the
        constraint is applied on the fly, and the stride counts
        *surviving* points (matching the old eager ``subset``).
        """
        if stride < 1:
            raise ValueError(f"stride must be >= 1: {stride}")
        kept = 0
        for point in self:
            if constraint is None or constraint(point):
                if kept % stride == 0:
                    yield point
                kept += 1

    def subset(self, constraint: Callable[[dict], bool] | None = None,
               stride: int = 1) -> list[dict[str, Any]]:
        """Eager form of :meth:`iter_subset` (kept for small grids)."""
        return list(self.iter_subset(constraint=constraint, stride=stride))

    def sample(self, n: int, seed: int = 0) -> list[dict[str, Any]]:
        """``n`` distinct points drawn uniformly without replacement.

        Sampling happens in *index* space (``random.sample`` over a lazy
        ``range``), so memory is O(n) no matter how large the product is;
        a fixed seed gives the same points in the same order.
        """
        return self.points_at(self.sample_indices(n, seed))

    def sample_indices(self, n: int, seed: int = 0) -> list[int]:
        """The index form of :meth:`sample` (what the engine streams)."""
        if n < 0:
            raise ValueError(f"sample size must be >= 0: {n}")
        total = len(self)
        if n >= total:
            return list(range(total))
        return random.Random(seed).sample(range(total), n)

    def describe(self) -> str:
        lines = [f"{name}: {', '.join(map(str, values))} ({len(values)})"
                 for name, values in self.parameters.items()]
        lines.append(f"total combinations: {len(self)}")
        return "\n".join(lines)
