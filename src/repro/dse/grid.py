"""Parameter grids for design-space exploration.

The paper's usage model (Section 5.5): "a parameterizable design is first
compiled with combinations of design parameters to form fixed RTL
designs" — :class:`ParameterGrid` enumerates those combinations for any
``Module`` subclass.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Iterator

__all__ = ["ParameterGrid"]


@dataclass(frozen=True)
class ParameterGrid:
    """The Cartesian product of named parameter choices.

    >>> grid = ParameterGrid({"width": (8, 16), "lanes": (1, 2, 4)})
    >>> len(grid)
    6
    >>> grid.subset(constraint=lambda p: p["width"] * p["lanes"] <= 32)[0]
    {'width': 8, 'lanes': 1}
    """

    parameters: dict[str, tuple]

    def __post_init__(self):
        for name, values in self.parameters.items():
            if not values:
                raise ValueError(f"parameter {name!r} has no values")

    def __len__(self) -> int:
        size = 1
        for values in self.parameters.values():
            size *= len(values)
        return size

    def __iter__(self) -> Iterator[dict[str, Any]]:
        keys = list(self.parameters)
        for combo in itertools.product(*(self.parameters[k] for k in keys)):
            yield dict(zip(keys, combo))

    def subset(self, constraint: Callable[[dict], bool] | None = None,
               stride: int = 1) -> list[dict[str, Any]]:
        """Enumerate points, optionally filtered and strided."""
        if stride < 1:
            raise ValueError(f"stride must be >= 1: {stride}")
        points = [p for p in self if constraint is None or constraint(p)]
        return points[::stride]

    def describe(self) -> str:
        lines = [f"{name}: {', '.join(map(str, values))} ({len(values)})"
                 for name, values in self.parameters.items()]
        lines.append(f"total combinations: {len(self)}")
        return "\n".join(lines)
