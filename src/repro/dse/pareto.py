"""Incremental k-objective Pareto-front maintenance and hypervolume.

The exhaustive explorers extracted 2-objective frontiers with a post-hoc
sort over the full evaluated set.  The streaming DSE engine cannot do
that — it never holds the full set — so :class:`ParetoFront` maintains
the non-dominated set *online*: each candidate is checked against (and
may evict members of) the current front only.

All objectives are normalized to **minimization** internally; pass
``maximize`` flags per objective.  The front is kept sorted by the first
objective, which makes the 2-objective dominance check a pure
``bisect`` (O(log n)) and prunes the k>2 check to the prefix of members
whose first objective does not exceed the candidate's (points right of
the candidate in a strictly-sorted front cannot dominate it).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Any, Callable, Sequence

import numpy as np

__all__ = ["ParetoFront", "brute_force_front", "hypervolume"]


def _dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True if ``a`` dominates ``b`` (all <=, at least one <)."""
    not_worse = all(x <= y for x, y in zip(a, b))
    return not_worse and any(x < y for x, y in zip(a, b))


class ParetoFront:
    """An online non-dominated set over k minimized objectives.

    Parameters
    ----------
    num_objectives:
        k >= 2.
    maximize:
        Optional per-objective flags; ``True`` entries are negated on the
        way in (and back on the way out via :meth:`objectives`).
    """

    def __init__(self, num_objectives: int,
                 maximize: Sequence[bool] | None = None):
        if num_objectives < 2:
            raise ValueError(f"need >= 2 objectives: {num_objectives}")
        if maximize is not None and len(maximize) != num_objectives:
            raise ValueError("maximize flags must match num_objectives")
        self.k = num_objectives
        self._signs = tuple(-1.0 if (maximize and maximize[i]) else 1.0
                            for i in range(num_objectives))
        # Members sorted by (obj0, obj1, ...) — tuples of minimized
        # objectives; payloads live in a parallel dict keyed by the
        # objective tuple (strict duplicates collapse onto one entry).
        self._keys: list[tuple[float, ...]] = []
        self._items: dict[tuple[float, ...], Any] = {}

    # ------------------------------------------------------------------ #
    def _to_internal(self, values: Sequence[float]) -> tuple[float, ...]:
        if len(values) != self.k:
            raise ValueError(f"expected {self.k} objectives, got {len(values)}")
        return tuple(s * float(v) for s, v in zip(self._signs, values))

    def _dominated_by_front(self, key: tuple[float, ...]) -> bool:
        keys = self._keys
        if not keys:
            return False
        if self.k == 2:
            # Sorted by obj0: the best candidate dominator is the member
            # with the largest obj0 <= key[0].  Because the maintained
            # front is mutually non-dominated, obj1 strictly decreases
            # with obj0, so that single member minimizes obj1 over the
            # prefix — one O(log n) lookup decides dominance.
            i = bisect_right(keys, (key[0], np.inf))
            if i == 0:
                return False
            left = keys[i - 1]
            return _dominates(left, key)
        # k > 2: only members with obj0 <= key[0] can dominate; scan that
        # bisect-bounded prefix (fronts stay small in practice).
        i = bisect_right(keys, (key[0],) + (np.inf,) * (self.k - 1))
        return any(_dominates(keys[j], key) for j in range(i))

    def dominated(self, values: Sequence[float]) -> bool:
        """Would ``values`` be dominated by the current front?"""
        return self._dominated_by_front(self._to_internal(values))

    def add(self, values: Sequence[float], item: Any = None) -> bool:
        """Offer a point; returns True if it joined the front.

        Members the new point dominates are evicted.  An exact duplicate
        of an existing member keeps the incumbent (first-seen wins,
        matching the legacy sort-based extraction) and returns False.
        """
        key = self._to_internal(values)
        if key in self._items:
            return False
        if self._dominated_by_front(key):
            return False
        # Evict members the newcomer dominates.  Only members with
        # obj0 >= key[0] are candidates; for k == 2 they form a
        # contiguous run (obj1 decreases along the sorted front, so the
        # dominated members are exactly the prefix of that suffix whose
        # obj1 >= key[1]).
        start = bisect_left(self._keys, key)
        if self.k == 2:
            stop = start
            while stop < len(self._keys) and self._keys[stop][1] >= key[1]:
                stop += 1
            doomed = self._keys[start:stop]
        else:
            doomed = [k2 for k2 in self._keys[start:] if _dominates(key, k2)]
        for k2 in doomed:
            self._keys.remove(k2)
            del self._items[k2]
        insort(self._keys, key)
        self._items[key] = item
        return True

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._keys)

    def __bool__(self) -> bool:
        return bool(self._keys)

    def items(self) -> list[Any]:
        """Payloads in front order (ascending first objective)."""
        return [self._items[k] for k in self._keys]

    def objectives(self) -> np.ndarray:
        """(n, k) objective matrix in the *caller's* orientation."""
        if not self._keys:
            return np.zeros((0, self.k))
        return np.array(self._keys) * np.array(self._signs)

    def minimized(self) -> np.ndarray:
        """(n, k) matrix with every objective minimized (internal form)."""
        if not self._keys:
            return np.zeros((0, self.k))
        return np.array(self._keys)

    def hypervolume(self, reference: Sequence[float]) -> float:
        """Hypervolume dominated by the front up to ``reference``.

        The reference is given in the caller's orientation and must be
        weakly worse than every member in every objective.
        """
        ref = self._to_internal(reference)
        return hypervolume(self.minimized(), ref)


# ---------------------------------------------------------------------- #
def brute_force_front(points: np.ndarray) -> np.ndarray:
    """Boolean non-dominated mask via the O(n^2) definition (minimize all).

    The oracle the incremental front is tested against.
    """
    pts = np.asarray(points, dtype=float)
    n = pts.shape[0]
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        if not mask[i]:
            continue
        for j in range(n):
            if i != j and _dominates(tuple(pts[j]), tuple(pts[i])):
                mask[i] = False
                break
    # Collapse exact duplicates onto one representative, matching the
    # incremental front's de-duplicating behavior.
    seen: set[tuple[float, ...]] = set()
    for i in range(n):
        if mask[i]:
            key = tuple(pts[i])
            if key in seen:
                mask[i] = False
            else:
                seen.add(key)
    return mask


def hypervolume(points: np.ndarray, reference: Sequence[float]) -> float:
    """Hypervolume of a minimized, mutually non-dominated set.

    Exact for any k via recursive dimension sweep: slice along the first
    objective and multiply each slab's width by the hypervolume of the
    remaining objectives of the points alive in that slab.  Costs
    O(n^2 * k) — fronts here hold tens of points, so exactness is cheap.
    """
    pts = np.asarray(points, dtype=float)
    ref = np.asarray(tuple(reference), dtype=float)
    if pts.size == 0:
        return 0.0
    pts = pts[np.all(pts <= ref, axis=1)]
    if pts.size == 0:
        return 0.0
    if pts.shape[1] == 1:
        return float(ref[0] - pts[:, 0].min())
    order = np.argsort(pts[:, 0], kind="stable")
    pts = pts[order]
    total = 0.0
    cuts = list(pts[:, 0]) + [ref[0]]
    for i in range(len(pts)):
        width = cuts[i + 1] - cuts[i]
        if width <= 0:
            continue
        alive = pts[: i + 1, 1:]
        total += width * hypervolume(_nondominated(alive), ref[1:])
    return float(total)


def _nondominated(points: np.ndarray) -> np.ndarray:
    mask = brute_force_front(points)
    return np.asarray(points)[mask]
