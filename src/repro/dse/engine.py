"""The streaming, budgeted design-space exploration engine.

The exhaustive explorer materializes every parameter combination,
instantiates every Module, and predicts the whole space — fine for the
paper's 2,592-config BOOM study, hopeless at the 10^6+ scale ROADMAP
item 2 targets.  This engine replaces "enumerate then evaluate" with a
predictor-guided, multi-fidelity stream:

1. **Lazy candidate stream.**  Configurations are drawn from a
   :class:`~repro.dse.grid.ParameterGrid` *by index* — a seeded
   without-replacement sample plus guided proposals one parameter step
   from current Pareto-front members.  The Cartesian product is never
   materialized; candidates live as rows of an int digit matrix until
   they survive screening.

2. **Multi-fidelity successive halving.**  Rung 0 screens candidates
   with an online ridge surrogate fitted to the configurations
   evaluated so far (parameter digits -> log timing/area/power) — a few
   microseconds per config.  Rung 1 spends the real budget
   (factory -> delta-elaboration -> batched SNS prediction, or the
   reference synthesizer) in four moves:

   a. a seeded random *warmup* (surrogate training set, unbiased
      coverage);
   b. the surrogate-predicted per-objective *extremes* of the whole
      candidate stream (scanned in O(block) digit matrices);
   c. per-objective *hill climbs* — evaluate every unevaluated grid
      neighbor of the incumbent best, move, repeat until
      ``climb_patience`` consecutive expansions stop improving (the
      predictor-guided random search of the DSE literature: true-metric
      local search is what actually pins the front's corners);
   d. *gap filling* — expand the neighborhood of the widest gaps along
      each (cost, score) projection of the running front until the
      rung-1 budget is spent.

   Rung 2 optionally re-synthesizes the front with the reference
   :class:`~repro.synth.Synthesizer` as a final check.

3. **Incremental k-objective Pareto front.**  Every evaluated point is
   offered to a :class:`~repro.dse.pareto.ParetoFront` over
   (timing, area, power, score) — dominance is decided against the
   current front only, never the full history.

Determinism: all randomness derives from ``config.seed``, every phase
decision depends only on the set (not batching) of completed
evaluations, and the batched predictor is batch-composition invariant —
so the same seed yields the same evaluated set and front for any
``chunk``, which only bounds live modules and prediction batch size.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from ..core import SNS
from ..synth import Synthesizer
from .grid import ParameterGrid
from .pareto import ParetoFront
from .explorer import EvaluatedDesign, pareto_points

__all__ = ["EngineConfig", "EngineProfile", "EngineResult", "ExplorationEngine"]

# Objective names the engine knows, with their orientation.
_MAXIMIZED = {"score": True, "timing_ps": False, "area_um2": False,
              "power_mw": False}


# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class EngineConfig:
    """Budgets and knobs of one exploration run.

    Parameters
    ----------
    budget:
        Size of the seeded candidate stream the rung-0 scan sees, capped
        at the grid size.  Guided local-search proposals (climbs, gap
        filling) may consider a few candidates beyond the stream; the
        total appears in ``EngineProfile.candidates``.
    predict_budget:
        Rung-1 evaluations (factory + elaborate + predict).  ``None``
        means every candidate is evaluated — the exhaustive parity mode.
    synth_budget:
        Rung-2 finalists re-evaluated with the reference synthesizer
        (0 disables the rung).
    chunk:
        Peak live modules / prediction batch size.  An execution detail:
        results are identical for any value >= 1.
    block:
        Granularity of the rung-0 surrogate scan — candidates are
        screened as (block, num_params) digit matrices, so scan memory
        is O(block) however large the space.
    warmup_fraction:
        Fraction of the rung-1 budget spent on unscreened seeded-random
        candidates before the surrogate exists (also the surrogate's
        first training set; never below the surrogate's minimum fit).
    climb_patience:
        Consecutive non-improving neighborhood expansions before a
        per-objective hill climb gives up.
    refit_every:
        Refit the surrogate after this many new rung-1 evaluations.
    min_fit:
        Evaluations required before the surrogate screens at all
        (``None``: twice the feature count).
    objectives:
        Front objectives, drawn from ``timing_ps`` / ``area_um2`` /
        ``power_mw`` / ``score``.
    """

    budget: int = 4096
    predict_budget: int | None = None
    synth_budget: int = 0
    chunk: int = 256
    block: int = 1024
    seed: int = 0
    warmup_fraction: float = 0.25
    climb_patience: int = 2
    refit_every: int = 64
    min_fit: int | None = None
    objectives: tuple[str, ...] = ("timing_ps", "area_um2", "power_mw", "score")

    def __post_init__(self):
        if self.budget < 1:
            raise ValueError(f"budget must be >= 1: {self.budget}")
        if self.predict_budget is not None and self.predict_budget < 1:
            raise ValueError(f"predict_budget must be >= 1: {self.predict_budget}")
        if self.chunk < 1:
            raise ValueError(f"chunk must be >= 1: {self.chunk}")
        if self.block < 1:
            raise ValueError(f"block must be >= 1: {self.block}")
        if not 0.0 <= self.warmup_fraction <= 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1]: {self.warmup_fraction}")
        if self.climb_patience < 0:
            raise ValueError(
                f"climb_patience must be >= 0: {self.climb_patience}")
        unknown = set(self.objectives) - set(_MAXIMIZED)
        if unknown:
            raise ValueError(f"unknown objectives: {sorted(unknown)}")
        if len(self.objectives) < 2:
            raise ValueError("need >= 2 objectives")


@dataclass
class EngineProfile:
    """Where one exploration run spent its wall-clock."""

    wall_s: float = 0.0
    screen_s: float = 0.0
    evaluate_s: float = 0.0
    synth_s: float = 0.0
    refit_s: float = 0.0
    candidates: int = 0
    screened_out: int = 0
    evaluated: int = 0
    synthesized: int = 0
    refits: int = 0
    peak_live_modules: int = 0
    front_size: int = 0

    @property
    def configs_per_second(self) -> float:
        return self.candidates / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def evals_per_second(self) -> float:
        return self.evaluated / self.evaluate_s if self.evaluate_s > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "wall_s": self.wall_s, "screen_s": self.screen_s,
            "evaluate_s": self.evaluate_s, "synth_s": self.synth_s,
            "refit_s": self.refit_s, "candidates": self.candidates,
            "screened_out": self.screened_out, "evaluated": self.evaluated,
            "synthesized": self.synthesized, "refits": self.refits,
            "peak_live_modules": self.peak_live_modules,
            "front_size": self.front_size,
            "configs_per_second": self.configs_per_second,
            "evals_per_second": self.evals_per_second,
        }

    def format(self) -> str:
        lines = [
            f"  candidates  {self.candidates:8d}  "
            f"({self.configs_per_second:10.0f} configs/s)",
            f"  screened    {self.screened_out:8d} out  "
            f"({self.screen_s * 1e3:8.1f} ms)",
            f"  evaluated   {self.evaluated:8d}      "
            f"({self.evaluate_s * 1e3:8.1f} ms, "
            f"{self.evals_per_second:6.1f}/s)",
        ]
        if self.synthesized:
            lines.append(f"  synthesized {self.synthesized:8d}      "
                         f"({self.synth_s * 1e3:8.1f} ms)")
        lines.append(f"  front       {self.front_size:8d} designs; "
                     f"peak live modules {self.peak_live_modules}; "
                     f"{self.refits} surrogate refits")
        lines.append(f"  wall        {self.wall_s:11.2f} s")
        return "\n".join(lines)


@dataclass(frozen=True)
class EngineResult:
    """Everything one exploration run produced.

    ``points`` holds every rung-1-evaluated design; ``front`` the
    incremental k-objective Pareto subset of it (in the order of the
    first objective); ``finalists`` the rung-2 synthesizer-confirmed
    re-evaluations (empty unless ``synth_budget > 0``).
    """

    points: tuple[EvaluatedDesign, ...]
    front: tuple[EvaluatedDesign, ...]
    objectives: tuple[str, ...]
    finalists: tuple[EvaluatedDesign, ...]
    profile: EngineProfile
    runtime_s: float

    def best(self, key: Callable[[EvaluatedDesign], float] | str = "score"
             ) -> EvaluatedDesign:
        if not self.points:
            raise ValueError("exploration produced no evaluated points "
                             "(empty result has no best design)")
        fn = (key if callable(key) else lambda p, attr=key: getattr(p, attr))
        return max(self.points, key=fn)

    def pareto(self, cost: str = "area_um2") -> tuple[EvaluatedDesign, ...]:
        """2-objective frontier (minimize ``cost``, maximize score) —
        the exhaustive explorer's signature, served by the k-objective
        front code."""
        if not self.points:
            raise ValueError("exploration produced no evaluated points "
                             "(empty result has no Pareto front)")
        return pareto_points(self.points, cost=cost)

    def hypervolume(self, objectives: Sequence[str] | None = None,
                    reference: Sequence[float] | None = None) -> float:
        """Dominated hypervolume of the front in ``objectives`` space.

        ``reference`` defaults to the worst evaluated value per
        objective (a shared reference must be passed when comparing two
        runs).
        """
        objectives = tuple(objectives or self.objectives)
        maximize = [_MAXIMIZED[o] for o in objectives]
        front = ParetoFront(len(objectives), maximize=maximize)
        for p in self.points:
            front.add([getattr(p, o) for o in objectives], p)
        if reference is None:
            values = np.array([[getattr(p, o) for o in objectives]
                               for p in self.points])
            reference = [values[:, i].min() if maximize[i] else values[:, i].max()
                         for i in range(len(objectives))]
        return front.hypervolume(reference)


# ---------------------------------------------------------------------- #
class _Surrogate:
    """Online ridge regression: parameter digits -> log(timing/area/power).

    Features per candidate: intercept, per-dimension ordinal position in
    [0, 1] (captures monotone trends), and a one-hot per (dimension,
    value) (captures categorical / non-monotone effects).  Fitting is a
    closed-form solve over at most a few dozen features — microseconds —
    so the engine refits freely as evaluations accumulate.
    """

    def __init__(self, radices: Sequence[int], ridge: float = 1e-3):
        self.radices = tuple(radices)
        self.ridge = ridge
        self.num_features = 1 + len(radices) + sum(radices)
        self._theta: np.ndarray | None = None

    def featurize(self, digits: np.ndarray) -> np.ndarray:
        n, d = digits.shape
        X = np.zeros((n, self.num_features))
        X[:, 0] = 1.0
        col = 1 + d
        for j, radix in enumerate(self.radices):
            X[:, 1 + j] = digits[:, j] / max(radix - 1, 1)
            X[np.arange(n), col + digits[:, j]] = 1.0
            col += radix
        return X

    @property
    def fitted(self) -> bool:
        return self._theta is not None

    def fit(self, digits: np.ndarray, targets: np.ndarray) -> None:
        """``targets``: (n, 3) positive metrics, regressed in log space."""
        X = self.featurize(digits)
        Y = np.log(np.maximum(targets, 1e-12))
        A = X.T @ X + self.ridge * np.eye(self.num_features)
        self._theta = np.linalg.solve(A, X.T @ Y)

    def predict(self, digits: np.ndarray) -> np.ndarray:
        """(n, 3) predicted (timing_ps, area_um2, power_mw)."""
        if self._theta is None:
            raise RuntimeError("surrogate not fitted")
        return np.exp(self.featurize(digits) @ self._theta)


# ---------------------------------------------------------------------- #
class ExplorationEngine:
    """Predictor-guided streaming exploration of a :class:`ParameterGrid`.

    Parameters
    ----------
    factory:
        ``factory(**params) -> Module`` for one grid point.
    engine:
        A fitted :class:`SNS` (rung-1 evaluations run through the
        batched runtime with delta-elaboration) or a
        :class:`Synthesizer` (rung-1 synthesizes directly — the
        ground-truth mode small parity tests use).
    grid:
        The design space.
    score:
        Optional ``(params, timing_ps, area_um2, power_mw) -> float``;
        defaults to predicted clock frequency.  Also applied to
        *surrogate* metrics during screening, so score-aware spaces are
        guided by the same preference.
    config:
        An :class:`EngineConfig`; keyword overrides may be passed
        directly to :meth:`explore`.
    """

    def __init__(self, factory: Callable[..., Any], engine,
                 grid: ParameterGrid, score: Callable | None = None,
                 config: EngineConfig | None = None, cache=None,
                 frontend_cache=None):
        if not isinstance(engine, (SNS, Synthesizer)):
            raise TypeError(
                f"engine must be SNS or Synthesizer, got {type(engine).__name__}")
        self.factory = factory
        self.engine = engine
        self.grid = grid
        self.score = score
        self.config = config or EngineConfig()
        if isinstance(engine, SNS):
            from ..runtime import (BatchPredictor, DeltaElaborator,
                                   PredictionCache)

            self.delta = DeltaElaborator(cache=frontend_cache)
            self._batch_engine = BatchPredictor(
                engine, cache=cache or PredictionCache(),
                frontend_cache=self.delta.cache)
        else:
            self.delta = None
            self._batch_engine = None

    # ------------------------------------------------------------------ #
    def _score_point(self, params: dict, timing: float, area: float,
                     power: float) -> EvaluatedDesign:
        timing = max(timing, 1e-9)
        if self.score is not None:
            score = float(self.score(params, timing, area, power))
        else:
            score = 1000.0 / timing
        return EvaluatedDesign(params=dict(params), timing_ps=timing,
                               area_um2=area, power_mw=power, score=score)

    def _evaluate_chunk(self, params_list: list[dict],
                        profile: EngineProfile) -> list[EvaluatedDesign]:
        """Rung 1 for one chunk: factory -> compile -> predict/synthesize.

        Modules are compiled (or synthesized) one at a time and dropped
        immediately; only their compiled graphs ride into the batched
        predictor — peak live modules per chunk is exactly one.
        """
        profile.peak_live_modules = max(profile.peak_live_modules, 1)
        if self._batch_engine is not None:
            graphs = []
            for params in params_list:
                module = self.factory(**params)
                graphs.append(self.delta.compile(module))
                del module
            preds = self._batch_engine.predict_batch(graphs)
            return [self._score_point(params, p.timing_ps, p.area_um2, p.power_mw)
                    for params, p in zip(params_list, preds)]
        out = []
        for params in params_list:
            module = self.factory(**params)
            result = self.engine.synthesize(module.elaborate())
            del module
            out.append(self._score_point(params, result.timing_ps,
                                         result.area_um2, result.power_mw))
        return out

    def _surrogate_objectives(self, indices: list[int], digits: np.ndarray,
                              surrogate: _Surrogate,
                              objectives: tuple[str, ...]) -> np.ndarray:
        """(n, k) predicted objective columns for one scan block."""
        pred = surrogate.predict(digits)                  # (n, 3) t/a/p
        cols = {"timing_ps": pred[:, 0], "area_um2": pred[:, 1],
                "power_mw": pred[:, 2]}
        if "score" in objectives:
            if self.score is None:
                cols["score"] = 1000.0 / np.maximum(pred[:, 0], 1e-9)
            else:
                # Materialize dicts for this block only — the score
                # callable's contract takes a parameter binding.
                dicts = self.grid.points_at(indices)
                cols["score"] = np.array([
                    float(self.score(p, max(t, 1e-9), a, pw))
                    for p, t, a, pw in zip(dicts, pred[:, 0], pred[:, 1],
                                           pred[:, 2])])
        return np.column_stack([cols[o] for o in objectives])

    # ------------------------------------------------------------------ #
    def explore(self, verbose: bool = False, **overrides) -> EngineResult:
        """Run the budgeted exploration; see the module docstring."""
        from dataclasses import replace

        cfg = replace(self.config, **overrides) if overrides else self.config
        grid = self.grid
        objectives = cfg.objectives
        maximize = [_MAXIMIZED[o] for o in objectives]
        signs = [1.0 if m else -1.0 for m in maximize]
        budget = min(cfg.budget, len(grid))
        predict_budget = (budget if cfg.predict_budget is None
                          else min(cfg.predict_budget, budget))

        profile = EngineProfile()
        start = time.perf_counter()
        clock = time.perf_counter

        surrogate = _Surrogate(grid.radices)
        min_fit = cfg.min_fit if cfg.min_fit is not None \
            else 2 * surrogate.num_features
        front = ParetoFront(len(objectives), maximize=maximize)

        # Seeded candidate stream over grid indices, O(budget) memory —
        # the grid itself is never enumerated.
        stream = grid.sample_indices(budget, cfg.seed)
        considered: set[int] = set(stream)
        evaluated: dict[int, EvaluatedDesign] = {}
        state = {"last_fit": 0}

        def quota() -> int:
            return predict_budget - len(evaluated)

        def evaluate(indices: list[int]) -> None:
            """Rung 1 for a deterministic index list, chunked.

            Dedups, skips already-evaluated indices, and feeds every new
            point to the incremental front.  Chunking is invisible to
            the algorithm: decisions only ever read ``evaluated``.
            """
            todo = [i for i in dict.fromkeys(indices) if i not in evaluated]
            t0 = clock()
            for lo in range(0, len(todo), cfg.chunk):
                batch = todo[lo:lo + cfg.chunk]
                points = self._evaluate_chunk(grid.points_at(batch), profile)
                for i, point in zip(batch, points):
                    evaluated[i] = point
                    front.add([getattr(point, o) for o in objectives], point)
            profile.evaluated = len(evaluated)
            profile.evaluate_s += clock() - t0

        def refit(force: bool = False) -> None:
            if len(evaluated) < min_fit:
                return
            if surrogate.fitted and not force \
                    and len(evaluated) - state["last_fit"] < cfg.refit_every:
                return
            t0 = clock()
            idxs = list(evaluated)
            targets = np.array([[evaluated[i].timing_ps,
                                 evaluated[i].area_um2,
                                 evaluated[i].power_mw] for i in idxs])
            surrogate.fit(grid.decode_indices(idxs), targets)
            state["last_fit"] = len(evaluated)
            profile.refits += 1
            profile.refit_s += clock() - t0

        def admit(candidates: list[int]) -> list[int]:
            """Unevaluated proposals, recorded as considered candidates."""
            out: list[int] = []
            for i in candidates:
                if i in evaluated or i in out:
                    continue
                considered.add(i)
                out.append(i)
            return out

        def best_on(name: str, sgn: float) -> int:
            """Grid index of the best evaluated point on an attribute.

            Ties resolve to the earliest evaluation (dict insertion
            order), which is chunk-independent.
            """
            return max(evaluated,
                       key=lambda i: sgn * getattr(evaluated[i], name))

        if predict_budget >= budget:
            # Exhaustive parity mode: evaluate the entire stream in
            # order; identical results to DesignSpaceExplorer.explore.
            evaluate(stream)
        else:
            # ---- rung 0a: seeded random warmup ------------------------ #
            n_warm = min(predict_budget,
                         max(int(round(cfg.warmup_fraction * predict_budget)),
                             min(min_fit, predict_budget)))
            evaluate(stream[:n_warm])
            refit(force=True)
            if verbose:
                print(f"[dse-engine] warmup: {len(evaluated)} evaluated, "
                      f"front {len(front)}")

            # ---- rung 0b: surrogate scan -> predicted extremes -------- #
            rest = stream[n_warm:]
            if rest and surrogate.fitted and quota() > 0:
                t0 = clock()
                top_k = 2
                tops: list[list[tuple[float, int]]] = [[] for _ in objectives]
                for lo in range(0, len(rest), cfg.block):
                    blk = rest[lo:lo + cfg.block]
                    digits = grid.decode_indices(blk)
                    cols = self._surrogate_objectives(blk, digits, surrogate,
                                                      objectives)
                    for j in range(len(objectives)):
                        v = signs[j] * cols[:, j]
                        for pos in np.argsort(-v, kind="stable")[:top_k]:
                            tops[j].append((float(v[pos]), blk[int(pos)]))
                for picks in tops:
                    picks.sort(key=lambda t: -t[0])
                extremes: list[int] = []
                for rank in range(top_k):
                    for picks in tops:
                        if rank < len(picks) and picks[rank][1] not in extremes:
                            extremes.append(picks[rank][1])
                profile.screen_s += clock() - t0
                evaluate(admit(extremes)[:quota()])
                refit()
                if verbose:
                    print(f"[dse-engine] extremes: {len(evaluated)} "
                          f"evaluated, front {len(front)}")

            # ---- rung 1b: per-objective hill climbs ------------------- #
            # True-metric local search from each incumbent: evaluate all
            # unevaluated grid neighbors, move if the objective improved,
            # give up after climb_patience stagnant expansions.  Beyond
            # the raw objectives, climb the derived efficiency ratios
            # (score per cost) — they chase the knees of the (cost,
            # score) frontiers that pure extremes miss.
            climb_targets = [(objectives[j], signs[j])
                             for j in range(len(objectives))]
            if evaluated and "score" in objectives:
                probe = next(iter(evaluated.values()))
                for cost_name, ratio in (("area_um2", "score_per_area"),
                                         ("power_mw", "score_per_watt")):
                    if cost_name in objectives and hasattr(probe, ratio):
                        climb_targets.append((ratio, 1.0))
            for name, sgn in climb_targets:
                stall = 0
                while quota() > 0 and stall <= cfg.climb_patience:
                    base = best_on(name, sgn)
                    moves = admit(grid.neighbors(base))
                    if not moves:
                        # Incumbent neighborhood exhausted: expand around
                        # the runner-up objective value instead.
                        vals = sorted({sgn * getattr(p, name)
                                       for p in evaluated.values()},
                                      reverse=True)
                        if len(vals) < 2:
                            break
                        runners = [i for i, p in evaluated.items()
                                   if sgn * getattr(p, name) == vals[1]]
                        moves = admit([n for r in runners
                                       for n in grid.neighbors(r)])
                        if not moves:
                            break
                    before = sgn * getattr(evaluated[base], name)
                    evaluate(moves[:quota()])
                    after = sgn * getattr(evaluated[best_on(name, sgn)], name)
                    stall = 0 if after > before else stall + 1
                refit()
            if verbose:
                print(f"[dse-engine] climbs: {len(evaluated)} evaluated, "
                      f"front {len(front)}")

            # ---- rung 1c: gap filling along 2-objective fronts -------- #
            # Spend the rest of the budget expanding the widest gaps of
            # each (cost, score) projection of the running front.
            cost_objs = [j for j, m in enumerate(maximize) if not m]
            score_objs = [j for j, m in enumerate(maximize) if m]
            if cost_objs and score_objs:
                pairs = [(c, s) for s in score_objs for c in cost_objs]
            else:
                pairs = [(a, b) for a in range(len(objectives))
                         for b in range(a + 1, len(objectives))]
            while quota() > 0:
                added = 0
                for a, b in pairs:
                    if quota() <= 0:
                        break
                    fr2 = ParetoFront(2, maximize=(maximize[a], maximize[b]))
                    for i, p in evaluated.items():
                        fr2.add((getattr(p, objectives[a]),
                                 getattr(p, objectives[b])), i)
                    members = fr2.items()
                    if len(members) < 2:
                        continue
                    xs = np.array([getattr(evaluated[i], objectives[a])
                                   for i in members], dtype=float)
                    ys = np.array([getattr(evaluated[i], objectives[b])
                                   for i in members], dtype=float)
                    xs = (xs - xs.min()) / (float(np.ptp(xs)) or 1.0)
                    ys = (ys - ys.min()) / (float(np.ptp(ys)) or 1.0)
                    gaps = np.hypot(np.diff(xs), np.diff(ys))
                    for g in np.argsort(-gaps, kind="stable")[:2]:
                        picks: list[int] = []
                        for end in (members[g], members[g + 1]):
                            picks.extend(admit(grid.neighbors(end))[:3])
                        if picks:
                            evaluate(picks[:quota()])
                            added += len(picks)
                        if quota() <= 0:
                            break
                if added == 0:
                    # Every front neighborhood is exhausted: fall back to
                    # stream-order leftovers so the budget is never idle.
                    leftovers = [i for i in stream if i not in evaluated]
                    if not leftovers:
                        break
                    evaluate(leftovers[:quota()])
                refit()
            if verbose:
                print(f"[dse-engine] gap fill: {len(evaluated)} evaluated, "
                      f"front {len(front)}")

        profile.candidates = len(considered)
        profile.screened_out = profile.candidates - profile.evaluated

        # ---- rung 2: reference synthesis of the finalists ------------- #
        finalists: list[EvaluatedDesign] = []
        if cfg.synth_budget > 0 and evaluated:
            t0 = clock()
            members = front.items()
            if len(members) > cfg.synth_budget:
                pick = np.linspace(0, len(members) - 1, cfg.synth_budget)
                members = [members[int(i)] for i in pick]
            synth = (self.engine if isinstance(self.engine, Synthesizer)
                     else Synthesizer(effort="medium"))
            for point in members:
                module = self.factory(**point.params)
                result = synth.synthesize(module.elaborate())
                del module
                finalists.append(self._score_point(
                    point.params, result.timing_ps, result.area_um2,
                    result.power_mw))
            profile.synthesized = len(finalists)
            profile.synth_s += clock() - t0

        profile.front_size = len(front)
        profile.wall_s = time.perf_counter() - start
        return EngineResult(
            points=tuple(evaluated.values()),
            front=tuple(front.items()),
            objectives=objectives,
            finalists=tuple(finalists),
            profile=profile,
            runtime_s=profile.wall_s,
        )
