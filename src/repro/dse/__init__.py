"""``repro.dse`` — design-space exploration, exhaustive and streaming.

The paper's Section 5.5 usage model, packaged for arbitrary user designs:
enumerate a :class:`ParameterGrid` over any ``Module``, evaluate each
point with a trained SNS (or the reference synthesizer), and read off
Pareto-optimal configurations.

Two drivers share that recipe:

- :class:`DesignSpaceExplorer` — the exhaustive sweep (every point
  evaluated, streamed in chunks).  The parity oracle for small grids.
- :class:`ExplorationEngine` — the streaming budgeted engine for 10^6+
  spaces: lazy seeded sampling plus Pareto-guided proposals, a
  multi-fidelity successive-halving ladder (surrogate screen -> batched
  prediction -> reference synthesis), delta-elaboration, and an
  incremental k-objective :class:`ParetoFront`.
"""

from .grid import ParameterGrid
from .pareto import ParetoFront, brute_force_front, hypervolume
from .explorer import (DesignSpaceExplorer, EvaluatedDesign,
                       ExplorationResult, pareto_points)
from .engine import EngineConfig, EngineProfile, EngineResult, ExplorationEngine

__all__ = ["ParameterGrid", "DesignSpaceExplorer", "EvaluatedDesign",
           "ExplorationResult", "pareto_points",
           "ParetoFront", "brute_force_front", "hypervolume",
           "EngineConfig", "EngineProfile", "EngineResult",
           "ExplorationEngine"]
