"""``repro.dse`` — generic design-space exploration utilities.

The paper's Section 5.5 usage model, packaged for arbitrary user designs:
enumerate a :class:`ParameterGrid` over any ``Module``, evaluate each
point with a trained SNS (or the reference synthesizer), and read off
Pareto-optimal configurations.
"""

from .grid import ParameterGrid
from .explorer import DesignSpaceExplorer, EvaluatedDesign, ExplorationResult

__all__ = ["ParameterGrid", "DesignSpaceExplorer", "EvaluatedDesign",
           "ExplorationResult"]
