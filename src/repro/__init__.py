"""repro — a full reproduction of *"SNS's not a Synthesizer: A
Deep-Learning-Based Synthesis Predictor"* (Xu, Kjellqvist, Wills — ISCA 2022).

Package map
-----------
- :mod:`repro.core` — the SNS predictor: path sampler, Circuitformer,
  Aggregation MLP, metrics, end-to-end API.
- :mod:`repro.graphir` — the circuit-graph IR and Table 1 vocabulary.
- :mod:`repro.hdl` — a Chisel-like hardware construction DSL.
- :mod:`repro.verilog` — a Verilog-subset front-end (Yosys substitute).
- :mod:`repro.synth` — the reference synthesizer (Synopsys DC substitute)
  that provides ground-truth labels.
- :mod:`repro.designs` — the 41-design hardware dataset (Table 3).
- :mod:`repro.datagen` — path dataset generation: sampling, Markov chain,
  SeqGAN.
- :mod:`repro.baselines` — linear regression and D-SAGE-style GNN baselines.
- :mod:`repro.boom` — the BOOM out-of-order-core design-space-exploration
  case study (Section 5.6).
- :mod:`repro.diannao` — the DianNao accelerator case study (Section 5.7).

Quickstart
----------
>>> from repro.designs import get_design
>>> from repro.synth import Synthesizer
>>> result = Synthesizer().synthesize(get_design("fft16").module.elaborate())
>>> result.area_um2 > 0
True
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
