"""Processor-core designs (Table 3: Rocket, Ariane, Sodor).

These are structural stand-ins for the open-source RISC-V cores the paper
collects from Chipyard: in-order pipelines with fetch, decode, register
file, ALU, and writeback stages at realistic relative complexity
(Sodor < Rocket < Ariane).
"""

from __future__ import annotations

from ..hdl import (
    Circuit,
    Module,
    counter,
    mux_tree,
    pipeline,
    register_file,
)

__all__ = ["SodorCore", "RocketCore", "ArianeCore"]


def _alu(c: Circuit, a, b, op_sel):
    """A classic single-cycle ALU: add/sub/logic/shift/compare behind a mux."""
    results = [
        a + b,
        a - b,
        a & b,
        a | b,
        a ^ b,
        a << b.resized(6),
        a >> b.resized(6),
        c.mux(a.lt(b), (a ^ a) + 1, a ^ a),  # slt
    ]
    return mux_tree(c, op_sel, results)


def _decoder(c: Circuit, instr, out_width: int):
    """Instruction decode: field extraction and control signal logic."""
    opcode = (instr >> 0).resized(7)
    funct3 = (instr >> 12).resized(3)
    funct7 = (instr >> 25).resized(7)
    rs1 = (instr >> 15).resized(5)
    rs2 = (instr >> 20).resized(5)
    rd = (instr >> 7).resized(5)
    imm = (instr >> 20).resized(out_width)
    is_alu = opcode.eq(0x33) | opcode.eq(0x13)
    is_load = opcode.eq(0x03)
    is_store = opcode.eq(0x23)
    is_branch = opcode.eq(0x63)
    ctrl = (funct3 ^ funct7.resized(3)) | (is_alu | is_branch).resized(3)
    return rs1, rs2, rd, imm, ctrl, is_load, is_store, is_branch


class SodorCore(Module):
    """A minimal 3-stage in-order educational core (Sodor-like)."""

    def __init__(self, xlen: int = 32):
        super().__init__(xlen=xlen)

    def build(self, c: Circuit) -> None:
        xlen = self.params["xlen"]
        # Fetch: PC + instruction input port.
        pc = counter(c, xlen, "pc")
        instr = c.reg(c.input("imem_data", 32), "if_ir")
        # Decode + register file read.
        rs1, rs2, rd, imm, ctrl, is_load, is_store, is_branch = _decoder(c, instr, xlen)
        wdata = c.input("wb_data", xlen)
        r1 = register_file(c, wdata, rd, rs1, depth=8, label="rf_r1")
        r2 = register_file(c, wdata, rd, rs2, depth=8, label="rf_r2")
        # Execute.
        opnd_b = c.mux(is_load | is_store, imm, r2)
        result = _alu(c, r1, opnd_b, ctrl)
        taken = r1.eq(r2) & is_branch
        next_pc = c.mux(taken, pc + imm, pc + 4)
        c.output("pc_out", c.reg(next_pc, "pc_next"))
        c.output("result", c.reg(result, "wb"))


class RocketCore(Module):
    """A 5-stage in-order core with bypass network (Rocket-like)."""

    def __init__(self, xlen: int = 64, rf_depth: int = 16):
        super().__init__(xlen=xlen, rf_depth=rf_depth)

    def build(self, c: Circuit) -> None:
        xlen = self.params["xlen"]
        depth = self.params["rf_depth"]
        # IF
        pc = counter(c, xlen, "pc")
        instr = c.reg(c.input("imem_data", 32), "if_ir")
        # ID
        rs1, rs2, rd, imm, ctrl, is_load, is_store, is_branch = _decoder(c, instr, xlen)
        wdata = c.input("wb_data", xlen)
        r1 = register_file(c, wdata, rd, rs1, depth=depth, label="rf_a")
        r2 = register_file(c, wdata, rd, rs2, depth=depth, label="rf_b")
        id_ex_r1 = c.reg(r1, "id_ex_r1")
        id_ex_r2 = c.reg(r2, "id_ex_r2")
        id_ex_imm = c.reg(imm, "id_ex_imm")
        # EX with bypass from MEM/WB.
        mem_fwd = c.input("mem_fwd", xlen)
        bypass_a = c.mux(rs1.eq(rd), mem_fwd, id_ex_r1)
        bypass_b = c.mux(rs2.eq(rd), mem_fwd, id_ex_r2)
        opnd_b = c.mux(is_load | is_store, id_ex_imm, bypass_b)
        result = _alu(c, bypass_a, opnd_b, ctrl)
        # M extension: multiplier plus a word-width (divw-style) divider —
        # full-width division is iterative in real cores and would not sit
        # on the single-cycle critical path.
        mul_lo = (bypass_a * bypass_b).resized(xlen)
        half = max(xlen // 2, 8)
        div_q = (bypass_a.resized(half) // bypass_b.resized(half)).resized(xlen)
        rem = (bypass_a.resized(half) % bypass_b.resized(half)).resized(xlen)
        muldiv = mux_tree(c, ctrl.resized(2), [mul_lo, div_q, rem, mul_lo])
        ex_out = c.mux(ctrl.eq(7), muldiv, result)
        ex_mem = c.reg(ex_out, "ex_mem")
        # MEM: address generation + data select.
        addr = bypass_a + id_ex_imm
        mem_data = c.input("dmem_data", xlen)
        mem_out = c.mux(is_load, mem_data, ex_mem)
        mem_wb = c.reg(mem_out, "mem_wb")
        # Branch resolution back to fetch.
        taken = bypass_a.eq(bypass_b) & is_branch
        next_pc = c.mux(taken, pc + id_ex_imm, pc + 4)
        c.output("pc_out", c.reg(next_pc, "pc_next"))
        c.output("dmem_addr", c.reg(addr, "dmem_addr"))
        c.output("wb_out", mem_wb)


class ArianeCore(Module):
    """A 6-stage core with scoreboard and branch target buffer (Ariane-like)."""

    def __init__(self, xlen: int = 64, rf_depth: int = 32, btb_entries: int = 8):
        super().__init__(xlen=xlen, rf_depth=rf_depth, btb_entries=btb_entries)

    def build(self, c: Circuit) -> None:
        xlen = self.params["xlen"]
        depth = self.params["rf_depth"]
        btb = self.params["btb_entries"]
        # Frontend with BTB.
        pc = counter(c, xlen, "pc")
        btb_idx = pc.resized(max(btb.bit_length() - 1, 1))
        btb_target = register_file(c, pc, btb_idx, btb_idx, depth=btb, label="btb")
        instr = c.reg(c.input("imem_data", 32), "if_ir")
        # Decode.
        rs1, rs2, rd, imm, ctrl, is_load, is_store, is_branch = _decoder(c, instr, xlen)
        # Scoreboard: per-register busy bits.
        busy_bits = [c.reg(rd.eq(i), f"sb{i}") for i in range(min(depth, 16))]
        stall = busy_bits[0]
        for bit in busy_bits[1:]:
            stall = stall | bit
        # Issue / regfile.
        wdata = c.input("wb_data", xlen)
        r1 = register_file(c, wdata, rd, rs1, depth=depth, label="rf_a")
        r2 = register_file(c, wdata, rd, rs2, depth=depth, label="rf_b")
        iss_r1 = c.reg(r1, "iss_r1")
        iss_r2 = c.reg(r2, "iss_r2")
        # Execute: ALU + multiplier + divider.
        opnd_b = c.mux(is_load | is_store, imm, iss_r2)
        alu_out = _alu(c, iss_r1, opnd_b, ctrl)
        mul_out = (iss_r1 * iss_r2).resized(xlen)
        div_out = iss_r1 // iss_r2
        ex_out = mux_tree(c, ctrl, [alu_out, mul_out, div_out, alu_out])
        ex_out = c.mux(stall, iss_r1, ex_out)
        ex_pipe = pipeline(c, ex_out, 2, "ex_pipe")
        # Commit.
        taken = iss_r1.eq(iss_r2) & is_branch
        next_pc = c.mux(taken, btb_target, pc + 4)
        c.output("pc_out", c.reg(next_pc, "pc_next"))
        c.output("commit", c.reg(ex_pipe, "commit"))
