"""Vector arithmetic designs (Table 3: SIMD ALUs, Hwacha)."""

from __future__ import annotations

from ..hdl import Circuit, Module, mux_tree, register_file

__all__ = ["SIMDALU", "HwachaVectorUnit"]


class SIMDALU(Module):
    """N parallel ALU lanes sharing one operation select."""

    def __init__(self, lanes: int = 4, width: int = 32):
        super().__init__(lanes=lanes, width=width)

    def build(self, c: Circuit) -> None:
        lanes = self.params["lanes"]
        w = self.params["width"]
        op = c.input("op", 4)
        for i in range(lanes):
            a = c.input(f"a{i}", w)
            b = c.input(f"b{i}", w)
            half = max(w // 2, 8)
            results = [a + b, a - b, a & b, a | b, a ^ b,
                       a << b.resized(6), (a * b).resized(w),
                       c.mux(a.lt(b), b, a),
                       (a.resized(half) // b.resized(half)).resized(w)]
            c.output(f"y{i}", c.reg(mux_tree(c, op, results), f"lane{i}"))


class HwachaVectorUnit(Module):
    """A vector-fetch unit: vector register file + multiply-add lanes."""

    def __init__(self, lanes: int = 2, vregs: int = 8, width: int = 64):
        super().__init__(lanes=lanes, vregs=vregs, width=width)

    def build(self, c: Circuit) -> None:
        lanes = self.params["lanes"]
        vregs = self.params["vregs"]
        w = self.params["width"]
        vd = c.input("vd", 5)
        vs1 = c.input("vs1", 5)
        vs2 = c.input("vs2", 5)
        use_div = c.input("use_div", 1)
        for lane in range(lanes):
            wdata = c.input(f"wd{lane}", w)
            src1 = register_file(c, wdata, vd, vs1, depth=vregs, label=f"vrf{lane}a")
            src2 = register_file(c, wdata, vd, vs2, depth=vregs, label=f"vrf{lane}b")
            fma = (src1 * src2).resized(w) + wdata
            vdiv = src1 // src2
            result = c.mux(use_div, vdiv, fma)
            c.output(f"vout{lane}", c.reg(result, f"vpipe{lane}"))
