"""Non-linear function approximation (Table 3: lookup tables, piecewise).

Includes the paper's smallest benchmark shape — a 128-entry 8-bit lookup
table (Section 5.4 / Figure 7 highlights).
"""

from __future__ import annotations

from ..hdl import Circuit, Module, mux_tree

__all__ = ["LookupTable", "PiecewiseApprox"]


class LookupTable(Module):
    """A loadable N-entry lookup table: register array + read mux tree."""

    def __init__(self, entries: int = 128, width: int = 8):
        super().__init__(entries=entries, width=width)

    def build(self, c: Circuit) -> None:
        entries, w = self.params["entries"], self.params["width"]
        addr_w = max((entries - 1).bit_length(), 1)
        wdata = c.input("wdata", w)
        waddr = c.input("waddr", addr_w)
        raddr = c.input("raddr", addr_w)
        rows = []
        for i in range(entries):
            row = c.reg_declare(w, f"lut{i}")
            c.connect_next(row, c.mux(waddr.eq(i), wdata, row))
            rows.append(row)
        c.output("rdata", c.reg(mux_tree(c, raddr, rows), "rdata"))


class PiecewiseApprox(Module):
    """Piecewise-linear approximation: breakpoint compare ladder + slope MAC.

    This is the NFU-3 activation structure of DianNao: breakpoints,
    slopes, and offsets in small tables, one multiply-add per evaluation.
    """

    def __init__(self, segments: int = 8, width: int = 16):
        super().__init__(segments=segments, width=width)

    def build(self, c: Circuit) -> None:
        segs, w = self.params["segments"], self.params["width"]
        x = c.input("x", w)
        # Segment select: compare against each breakpoint register.
        breakpoints = [c.reg(c.input(f"bp{i}", w), f"bp_reg{i}") for i in range(segs)]
        above = [x.gt(bp) for bp in breakpoints]
        seg_index = above[0].resized(max((segs - 1).bit_length(), 1))
        for a in above[1:]:
            seg_index = seg_index + a.resized(seg_index.width)
        # Slope/offset tables.
        slopes = [c.reg(c.input(f"sl{i}", w), f"sl_reg{i}") for i in range(segs)]
        offsets = [c.reg(c.input(f"of{i}", w), f"of_reg{i}") for i in range(segs)]
        slope = mux_tree(c, seg_index, slopes)
        offset = mux_tree(c, seg_index, offsets)
        y = (x * slope).resized(w) + offset
        c.output("y", c.reg(y, "y_reg"))
        # On-line slope calibration: recompute slope = dy / dx for the
        # active segment from its endpoints.
        dy = c.input("cal_dy", w)
        dx = c.input("cal_dx", w)
        c.output("cal_slope", c.reg(dy // dx, "cal_reg"))
