"""Linear-algebra kernels (Table 3: GEMM, SPMV)."""

from __future__ import annotations

from ..hdl import Circuit, Module, adder_tree, pipeline

__all__ = ["GEMMUnit", "SPMVUnit"]


class GEMMUnit(Module):
    """A dense matrix-multiply tile: rows x cols dot-product engines."""

    def __init__(self, rows: int = 4, cols: int = 4, depth: int = 4, width: int = 16):
        super().__init__(rows=rows, cols=cols, depth=depth, width=width)

    def build(self, c: Circuit) -> None:
        rows, cols = self.params["rows"], self.params["cols"]
        depth, w = self.params["depth"], self.params["width"]
        acc_w = min(2 * w + 8, 64)
        a = [[c.input(f"a{r}_{k}", w) for k in range(depth)] for r in range(rows)]
        b = [[c.input(f"b{k}_{j}", w) for k in range(depth)] for j in range(cols)]
        for r in range(rows):
            for j in range(cols):
                prods = [(a[r][k] * b[j][k]).resized(acc_w) for k in range(depth)]
                dot = adder_tree(c, prods)
                acc = c.reg_declare(acc_w, f"cacc{r}_{j}")
                c.connect_next(acc, acc + dot)
                c.output(f"c{r}_{j}", acc)


class SPMVUnit(Module):
    """Sparse matrix-vector multiply: index match, gather mux, MAC chain."""

    def __init__(self, lanes: int = 4, width: int = 32, vec_entries: int = 8):
        super().__init__(lanes=lanes, width=width, vec_entries=vec_entries)

    def build(self, c: Circuit) -> None:
        from ..hdl import mux_tree

        lanes = self.params["lanes"]
        w = self.params["width"]
        entries = self.params["vec_entries"]
        acc_w = min(2 * w, 64)
        # Dense vector x held in registers.
        x_regs = [c.reg(c.input(f"x{i}", w), f"xreg{i}") for i in range(entries)]
        partials = []
        for lane in range(lanes):
            val = c.input(f"val{lane}", w)
            col = c.input(f"col{lane}", 8)
            gathered = mux_tree(c, col, x_regs)
            row_end = c.input(f"row_end{lane}", 1)
            prod = (val * gathered).resized(acc_w)
            acc = c.reg_declare(acc_w, f"yacc{lane}")
            flushed = c.mux(row_end, prod, acc + prod)
            c.connect_next(acc, flushed)
            partials.append(acc)
        total = pipeline(c, adder_tree(c, partials), 1, "y_pipe")
        c.output("y_out", total)
