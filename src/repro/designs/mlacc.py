"""Machine-learning accelerators (Table 3: Gemmini, NVDLA).

Structural equivalents of the open-source accelerators the paper uses:
a weight-stationary systolic array (Gemmini-like) and a convolution MAC
engine with accumulator banks (NVDLA-like).
"""

from __future__ import annotations

from ..hdl import Circuit, Module, adder_tree, pipeline

__all__ = ["GemminiSystolicArray", "NVDLAConvCore"]


class GemminiSystolicArray(Module):
    """A dim x dim weight-stationary systolic MAC array."""

    def __init__(self, dim: int = 8, width: int = 8):
        super().__init__(dim=dim, width=width)

    def build(self, c: Circuit) -> None:
        dim = self.params["dim"]
        w = self.params["width"]
        acc_w = min(4 * w, 64)
        # Activations stream in from the west, one per row.
        acts = [c.input(f"act{r}", w) for r in range(dim)]
        outs = []
        for col in range(dim):
            partials = []
            for row in range(dim):
                weight = c.reg(c.input(f"w{row}_{col}", w), f"wreg{row}_{col}")
                act = acts[row] if col == 0 else c.reg(acts[row], f"skew{row}_{col}")
                acts[row] = act  # systolic forwarding
                prod = act * weight
                partials.append(prod.resized(acc_w))
            col_sum = adder_tree(c, partials)
            acc = c.reg_declare(acc_w, f"acc{col}")
            c.connect_next(acc, acc + col_sum)
            outs.append(acc)
        for i, o in enumerate(outs):
            c.output(f"out{i}", o)


class NVDLAConvCore(Module):
    """A convolution MAC engine with output accumulator banks (NVDLA CMAC-like)."""

    def __init__(self, atoms: int = 16, width: int = 8, banks: int = 4):
        super().__init__(atoms=atoms, width=width, banks=banks)

    def build(self, c: Circuit) -> None:
        atoms = self.params["atoms"]
        w = self.params["width"]
        banks = self.params["banks"]
        acc_w = min(4 * w, 64)
        feats = [c.input(f"feat{i}", w) for i in range(atoms)]
        weights = [c.reg(c.input(f"wt{i}", w), f"wt_reg{i}") for i in range(atoms)]
        prods = [ (f * wt).resized(acc_w) for f, wt in zip(feats, weights)]
        mac_out = pipeline(c, adder_tree(c, prods), 2, "cmac_pipe")
        # Accumulator banks with bank-select write.
        bank_sel = c.input("bank_sel", 4)
        for b in range(banks):
            acc = c.reg_declare(acc_w, f"cacc{b}")
            hit = bank_sel.eq(b)
            c.connect_next(acc, c.mux(hit, acc + mac_out, acc))
            # Truncation/ReLU on the way out (SDP-like post-processing).
            relu = c.mux(acc.gt(0), acc, acc ^ acc)
            c.output(f"res{b}", c.reg(relu, f"sdp{b}"))
