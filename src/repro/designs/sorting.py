"""Sorting accelerators (Table 3: MergeSort, RadixSort)."""

from __future__ import annotations

from ..hdl import Circuit, Module, Signal, counter

__all__ = ["MergeSortNetwork", "RadixSortUnit"]


def _compare_exchange(c: Circuit, a: Signal, b: Signal) -> tuple[Signal, Signal]:
    swap = a.gt(b)
    lo = c.mux(swap, b, a)
    hi = c.mux(swap, a, b)
    return lo, hi


class MergeSortNetwork(Module):
    """A Batcher odd-even merge sorting network with pipeline stages."""

    def __init__(self, n: int = 8, width: int = 16):
        super().__init__(n=n, width=width)

    def build(self, c: Circuit) -> None:
        n, w = self.params["n"], self.params["width"]
        vals = [c.input(f"in{i}", w) for i in range(n)]

        # Batcher odd-even mergesort comparator schedule.
        def oddeven_merge_sort(lo: int, length: int):
            if length > 1:
                m = length // 2
                yield from oddeven_merge_sort(lo, m)
                yield from oddeven_merge_sort(lo + m, m)
                yield from oddeven_merge(lo, length, 1)

        def oddeven_merge(lo: int, length: int, r: int):
            step = r * 2
            if step < length:
                yield from oddeven_merge(lo, length, step)
                yield from oddeven_merge(lo + r, length, step)
                for i in range(lo + r, lo + length - r, step):
                    yield (i, i + r)
            else:
                yield (lo, lo + r)

        stage = 0
        for i, j in oddeven_merge_sort(0, n):
            vals[i], vals[j] = _compare_exchange(c, vals[i], vals[j])
            stage += 1
            if stage % n == 0:  # periodic pipeline cut
                vals = [c.reg(v, f"p{stage}_{k}") for k, v in enumerate(vals)]
        for i, v in enumerate(vals):
            c.output(f"out{i}", c.reg(v, f"sorted{i}"))


class RadixSortUnit(Module):
    """A counting-sort digit pass: bucket histogram + prefix-sum network."""

    def __init__(self, buckets: int = 8, width: int = 32):
        super().__init__(buckets=buckets, width=width)

    def build(self, c: Circuit) -> None:
        buckets, w = self.params["buckets"], self.params["width"]
        key = c.input("key", w)
        # Digit extraction for a general (non-power-of-two-capable) radix:
        # quotient feeds the next pass, remainder selects the bucket.
        base = c.input("radix_base", 8)
        quotient = key // base
        digit_val = key % base
        c.output("next_key", c.reg(quotient, "next_key"))
        digit = digit_val.resized(max((buckets - 1).bit_length(), 1))
        # Histogram counters, one per bucket.
        counts = []
        for b in range(buckets):
            hit = digit.eq(b)
            cnt = c.reg_declare(16, f"hist{b}")
            c.connect_next(cnt, c.mux(hit, cnt + 1, cnt))
            counts.append(cnt)
        # Prefix sums give scatter offsets.
        prefix = counts[0]
        offsets = [prefix]
        for b in range(1, buckets):
            prefix = prefix + counts[b]
            offsets.append(prefix)
        # Output offset for the current key's digit.
        from ..hdl import mux_tree

        offset = mux_tree(c, digit, offsets)
        write_ptr = counter(c, 16, "wptr")
        c.output("scatter_addr", c.reg(offset + write_ptr, "scatter"))
