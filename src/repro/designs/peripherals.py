"""Peripheral components (Table 3: IceNet NIC, Rocket GPIO)."""

from __future__ import annotations

from ..hdl import Circuit, Module, counter, fifo, mux_tree, reduce_tree, shift_register

__all__ = ["IceNetNIC", "GPIOController"]


class IceNetNIC(Module):
    """A NIC datapath: RX/TX FIFOs, checksum tree, length filter (IceNet-like)."""

    def __init__(self, data_width: int = 64, fifo_depth: int = 8):
        super().__init__(data_width=data_width, fifo_depth=fifo_depth)

    def build(self, c: Circuit) -> None:
        w = self.params["data_width"]
        depth = self.params["fifo_depth"]
        rx = c.input("rx_data", w)
        # RX FIFO + running checksum over a window of beats.
        rx_q = fifo(c, rx, depth, "rx_fifo")
        taps = shift_register(c, rx_q, 4, "csum_win")
        checksum = reduce_tree(c, [t.resized(16) for t in taps], "xor")
        # Header parse: length/type extraction + match.
        length = (rx_q >> 48).resized(16)
        ethertype = (rx_q >> 32).resized(16)
        is_ipv4 = ethertype.eq(0x0800)
        drop = length.gt(1500) | ~is_ipv4.resized(1)
        # TX path: FIFO + sequence counter stamped into the beat.
        tx = c.input("tx_data", w)
        seq = counter(c, 16, "tx_seq")
        stamped = tx ^ seq.resized(w)
        tx_q = fifo(c, stamped, depth, "tx_fifo")
        c.output("tx_out", tx_q)
        c.output("rx_out", c.reg(c.mux(drop, rx_q ^ rx_q, rx_q), "rx_out"))
        c.output("csum", c.reg(checksum, "csum_reg"))


class GPIOController(Module):
    """A memory-mapped GPIO block: direction/output/input registers per pin."""

    def __init__(self, num_pins: int = 16):
        super().__init__(num_pins=num_pins)

    def build(self, c: Circuit) -> None:
        pins = self.params["num_pins"]
        wdata = c.input("wdata", 32)
        addr = c.input("addr", 8)
        pad_in = c.input("pad_in", pins)
        out_regs = []
        dir_regs = []
        for i in range(pins):
            sel = addr.eq(i)
            out_r = c.reg_declare(1, f"out{i}")
            c.connect_next(out_r, c.mux(sel, wdata.resized(1), out_r))
            dir_r = c.reg_declare(1, f"dir{i}")
            c.connect_next(dir_r, c.mux(sel, (wdata >> 1).resized(1), dir_r))
            out_regs.append(out_r)
            dir_regs.append(dir_r)
        # Pad drive: out where dir=1, tristate (input echo) otherwise.
        driven = [c.mux(d, o, (pad_in >> i).resized(1))
                  for i, (d, o) in enumerate(zip(dir_regs, out_regs))]
        readback = mux_tree(c, addr, driven)
        irq = reduce_tree(c, driven, "or")
        c.output("rdata", c.reg(readback, "rdata"))
        c.output("irq", c.reg(irq, "irq"))
