"""Signal-processing kernels (Table 3: FFT, Convolution)."""

from __future__ import annotations

from ..hdl import Circuit, Module, adder_tree, pipeline, shift_register

__all__ = ["FFTPipeline", "Convolution2D"]


class FFTPipeline(Module):
    """A radix-2 decimation-in-time FFT datapath, one butterfly column per stage.

    Complex arithmetic uses the 4-multiplier form; each stage is
    pipeline-registered, matching streaming FFT implementations.
    """

    def __init__(self, points: int = 16, width: int = 16):
        super().__init__(points=points, width=width)

    def build(self, c: Circuit) -> None:
        import math

        points = self.params["points"]
        w = self.params["width"]
        stages = int(math.log2(points))
        re = [c.input(f"re{i}", w) for i in range(points)]
        im = [c.input(f"im{i}", w) for i in range(points)]
        for s in range(stages):
            span = 1 << s
            new_re, new_im = list(re), list(im)
            for i in range(0, points, 2 * span):
                for j in range(span):
                    a, b = i + j, i + j + span
                    # Twiddle rotation of input b (4 muls, 2 adds).
                    tw_re = c.input(f"twr_s{s}_{b}", w)
                    tw_im = c.input(f"twi_s{s}_{b}", w)
                    br = ((re[b] * tw_re) - (im[b] * tw_im)).resized(w)
                    bi = ((re[b] * tw_im) + (im[b] * tw_re)).resized(w)
                    new_re[a] = c.reg(re[a] + br, f"s{s}re{a}")
                    new_im[a] = c.reg(im[a] + bi, f"s{s}im{a}")
                    new_re[b] = c.reg(re[a] - br, f"s{s}re{b}")
                    new_im[b] = c.reg(im[a] - bi, f"s{s}im{b}")
            re, im = new_re, new_im
        for i in range(points):
            c.output(f"Xre{i}", re[i])
            c.output(f"Xim{i}", im[i])


class Convolution2D(Module):
    """A 2D convolution window engine: line-buffer taps into a MAC tree."""

    def __init__(self, kernel: int = 3, width: int = 16, unroll: int = 1):
        super().__init__(kernel=kernel, width=width, unroll=unroll)

    def build(self, c: Circuit) -> None:
        k = self.params["kernel"]
        w = self.params["width"]
        unroll = self.params["unroll"]
        acc_w = min(2 * w + 4, 64)
        for u in range(unroll):
            pixel = c.input(f"pixel{u}", w)
            # k line buffers feeding a k x k tap window.
            taps = []
            row_in = pixel
            for r in range(k):
                row_taps = shift_register(c, row_in, k, f"win{u}_{r}")
                taps.extend(row_taps)
                row_in = row_taps[-1]
            coeffs = [c.reg(c.input(f"coef{u}_{i}", w), f"coefreg{u}_{i}")
                      for i in range(k * k)]
            prods = [(t * cf).resized(acc_w) for t, cf in zip(taps, coeffs)]
            total = pipeline(c, adder_tree(c, prods), 1, f"conv_pipe{u}")
            c.output(f"conv_out{u}", total)
