"""Remaining Table 3 designs: FP unit, Stencil2D accelerator, Viterbi."""

from __future__ import annotations

from ..hdl import Circuit, Module, Signal, adder_tree, max_tree, pipeline

__all__ = ["FPUnit", "Stencil2DAccelerator", "ViterbiDecoder", "fp_multiply_add"]


def fp_multiply_add(c: Circuit, a: Signal, b: Signal, acc: Signal,
                    exp_w: int, man_w: int, tag: str) -> Signal:
    """A floating-point multiply-add datapath (Berkeley-Hardfloat-like).

    Unpack -> exponent add / mantissa multiply -> align shift ->
    significand add -> leading-zero normalize -> round -> pack.
    Width bookkeeping follows the given exponent/mantissa split.
    """
    total_w = 1 + exp_w + man_w
    # Unpack.
    exp_a = (a >> man_w).resized(exp_w)
    exp_b = (b >> man_w).resized(exp_w)
    man_a = a.resized(man_w) | (1 << (man_w - 1) if man_w > 1 else 1)
    man_b = b.resized(man_w) | 1
    # Multiply path.
    exp_sum = exp_a + exp_b
    man_prod = man_a * man_b
    # Align with accumulator exponent.
    exp_acc = (acc >> man_w).resized(exp_w)
    shift_amt = c.mux(exp_sum.gt(exp_acc), exp_sum - exp_acc, exp_acc - exp_sum)
    aligned = man_prod >> shift_amt.resized(6)
    # Significand add + normalize.
    sig_sum = aligned + acc.resized(man_prod.width)
    lz = sig_sum.reduce_or()
    normalized = c.mux(lz, sig_sum << 1, sig_sum)
    rounded = (normalized + 1) >> 1
    # Pack.
    packed = (exp_sum.resized(total_w) << man_w) | rounded.resized(man_w)
    return packed.resized(total_w)


class FPUnit(Module):
    """A standalone floating-point MAC unit (fp16/bf16/fp32 by parameters)."""

    def __init__(self, exp_w: int = 8, man_w: int = 24):
        super().__init__(exp_w=exp_w, man_w=man_w)

    def build(self, c: Circuit) -> None:
        exp_w, man_w = self.params["exp_w"], self.params["man_w"]
        total_w = 1 + exp_w + man_w
        a = c.input("a", total_w)
        b = c.input("b", total_w)
        acc = c.reg_declare(total_w, "fpacc")
        result = fp_multiply_add(c, a, b, acc, exp_w, man_w, "fpu")
        c.connect_next(acc, result)
        c.output("sum", acc)


class Stencil2DAccelerator(Module):
    """A multi-core FP 2D-stencil engine — the paper's largest benchmark.

    Each core holds an unrolled 3x3 stencil of FP multiply-adds; the
    16-core configuration is Figure 7's "16-core stencil accelerator"
    highlight.
    """

    def __init__(self, cores: int = 4, unroll: int = 8,
                 exp_w: int = 8, man_w: int = 24):
        super().__init__(cores=cores, unroll=unroll, exp_w=exp_w, man_w=man_w)

    def build(self, c: Circuit) -> None:
        cores = self.params["cores"]
        unroll = self.params["unroll"]
        exp_w, man_w = self.params["exp_w"], self.params["man_w"]
        total_w = min(1 + exp_w + man_w, 64)
        for core in range(cores):
            outputs = []
            coeffs = [c.reg(c.input(f"c{core}_{k}", total_w), f"coef{core}_{k}")
                      for k in range(9)]
            for u in range(unroll):
                pts = [c.input(f"p{core}_{u}_{k}", total_w) for k in range(9)]
                acc = c.reg_declare(total_w, f"sacc{core}_{u}")
                terms = []
                for k in range(9):
                    terms.append(fp_multiply_add(
                        c, pts[k], coeffs[k], acc, exp_w, man_w, f"st{core}_{u}_{k}"))
                total = adder_tree(c, [t.resized(total_w) for t in terms])
                c.connect_next(acc, total)
                outputs.append(acc)
            merged = pipeline(c, adder_tree(c, outputs), 2, f"core_out{core}")
            c.output(f"stencil{core}", merged)


class ViterbiDecoder(Module):
    """A Viterbi add-compare-select array over a trellis of N states."""

    def __init__(self, states: int = 16, metric_w: int = 16):
        super().__init__(states=states, metric_w=metric_w)

    def build(self, c: Circuit) -> None:
        states = self.params["states"]
        w = self.params["metric_w"]
        branch = [c.input(f"bm{i}", w) for i in range(states)]
        metrics = [c.reg_declare(w, f"pm{i}") for i in range(states)]
        new_metrics = []
        for s in range(states):
            # Two predecessors in a butterfly trellis.
            p0 = metrics[(2 * s) % states]
            p1 = metrics[(2 * s + 1) % states]
            cand0 = p0 + branch[s]
            cand1 = p1 + branch[(s + states // 2) % states]
            best = c.mux(cand0.lt(cand1), cand0, cand1)
            decision = cand0.lt(cand1)
            c.output(f"dec{s}", c.reg(decision, f"survivor{s}"))
            new_metrics.append(best)
        # Metric normalization: subtract the running max.
        peak = max_tree(c, new_metrics)
        for s, (reg, nm) in enumerate(zip(metrics, new_metrics)):
            c.connect_next(reg, nm - peak)
