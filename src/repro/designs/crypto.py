"""Cryptographic designs (Table 3: AES, SHA-3)."""

from __future__ import annotations

from ..hdl import Circuit, Module, Signal

__all__ = ["AESRound", "Sha3Round"]


def _sbox(c: Circuit, byte: Signal, tag: str) -> Signal:
    """A composite-field style S-box: a small fixed network of xor/and layers.

    Logic-minimized AES S-boxes are ~120 gates of GF(2^8) inversion plus
    an affine transform; we model that depth and mix with three
    nonlinear layers over the byte.
    """
    t1 = (byte ^ (byte << 1)) & (byte >> 2)
    t2 = (t1 | (byte >> 4)) ^ byte
    t3 = (t2 & (t2 << 3)) ^ (byte >> 1)
    affine = (t3 ^ (t3 << 2)) ^ 0x63
    return affine


class AESRound(Module):
    """One AES-128 round: SubBytes, ShiftRows, MixColumns, AddRoundKey."""

    def __init__(self, rounds: int = 1):
        super().__init__(rounds=rounds)

    def build(self, c: Circuit) -> None:
        rounds = self.params["rounds"]
        state = [c.input(f"s{i}", 8) for i in range(16)]
        for rnd in range(rounds):
            # SubBytes.
            state = [_sbox(c, b, f"r{rnd}b{i}") for i, b in enumerate(state)]
            # ShiftRows: pure wiring permutation.
            perm = [0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11]
            state = [state[p] for p in perm]
            # MixColumns: xtime = shift+conditional xor per byte.
            mixed = []
            for col in range(4):
                a = state[4 * col: 4 * col + 4]
                x = [ (b << 1) ^ (b >> 7) for b in a ]  # xtime
                mixed.extend([
                    x[0] ^ (a[1] ^ x[1]) ^ a[2] ^ a[3],
                    a[0] ^ x[1] ^ (a[2] ^ x[2]) ^ a[3],
                    a[0] ^ a[1] ^ x[2] ^ (a[3] ^ x[3]),
                    (a[0] ^ x[0]) ^ a[1] ^ a[2] ^ x[3],
                ])
            # AddRoundKey + round register.
            keys = [c.input(f"k{rnd}_{i}", 8) for i in range(16)]
            state = [c.reg(m ^ k, f"r{rnd}st{i}")
                     for i, (m, k) in enumerate(zip(mixed, keys))]
        for i, b in enumerate(state):
            c.output(f"o{i}", b)


class Sha3Round(Module):
    """One Keccak-f round over a 5x5x64 state: theta, rho/pi, chi, iota."""

    def __init__(self, lanes_width: int = 64):
        super().__init__(lanes_width=lanes_width)

    def build(self, c: Circuit) -> None:
        w = self.params["lanes_width"]
        lanes = [[c.input(f"a{x}{y}", w) for y in range(5)] for x in range(5)]
        # Theta: column parity then mix.
        parity = []
        for x in range(5):
            p = lanes[x][0]
            for y in range(1, 5):
                p = p ^ lanes[x][y]
            parity.append(p)
        themed = [[lanes[x][y] ^ parity[(x - 1) % 5] ^ (parity[(x + 1) % 5] << 1)
                   for y in range(5)] for x in range(5)]
        # Rho/pi: per-lane rotations (shift nodes) + permutation.
        rotated = [[themed[x][y] << ((x * 5 + y * 7) % w or 1) for y in range(5)]
                   for x in range(5)]
        pied = [[rotated[(x + 3 * y) % 5][x] for y in range(5)] for x in range(5)]
        # Chi: a ^= (~b & c) along rows.
        chied = [[pied[x][y] ^ (~pied[(x + 1) % 5][y] & pied[(x + 2) % 5][y])
                  for y in range(5)] for x in range(5)]
        # Iota + output registers.
        rc = c.input("round_const", w)
        chied[0][0] = chied[0][0] ^ rc
        for x in range(5):
            for y in range(5):
                c.output(f"o{x}{y}", c.reg(chied[x][y], f"st{x}{y}"))
