"""The Hardware Design Dataset registry (Tables 3 and 4 of the paper).

``standard_designs()`` returns the 41 concrete designs used throughout
the evaluation — parameter sweeps over the Table 3 generators, spanning
three orders of magnitude in size from a 128-entry lookup table to a
multi-core floating-point stencil accelerator.

Designs derived from the same parameterizable base share a ``family``
tag; the train/test splitter keeps families on one side of the split
(Section 4.1: "we avoid putting designs generated from the same
parameterizable base design in both the training and the testing sets").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hdl import Module
from .approx import LookupTable, PiecewiseApprox
from .cores import ArianeCore, RocketCore, SodorCore
from .crypto import AESRound, Sha3Round
from .dsp import Convolution2D, FFTPipeline
from .linalg import GEMMUnit, SPMVUnit
from .mlacc import GemminiSystolicArray, NVDLAConvCore
from .misc import FPUnit, Stencil2DAccelerator, ViterbiDecoder
from .peripherals import GPIOController, IceNetNIC
from .sorting import MergeSortNetwork, RadixSortUnit
from .vector import HwachaVectorUnit, SIMDALU

__all__ = ["DesignEntry", "standard_designs", "design_families", "get_design"]


@dataclass(frozen=True)
class DesignEntry:
    """One row of the hardware design dataset."""

    name: str
    family: str
    category: str
    module: Module


def standard_designs() -> list[DesignEntry]:
    """The 41-design evaluation dataset."""
    entries: list[tuple[str, str, Module]] = [
        # --- Processor cores ------------------------------------------- #
        ("sodor32", "sodor", SodorCore(xlen=32)),
        ("sodor64", "sodor", SodorCore(xlen=64)),
        ("rocket32", "rocket", RocketCore(xlen=32, rf_depth=16)),
        ("rocket64", "rocket", RocketCore(xlen=64, rf_depth=16)),
        ("rocket64_rf32", "rocket", RocketCore(xlen=64, rf_depth=32)),
        ("ariane64", "ariane", ArianeCore(xlen=64, rf_depth=32)),
        ("ariane64_btb16", "ariane", ArianeCore(xlen=64, rf_depth=32, btb_entries=16)),
        # --- Peripheral components -------------------------------------- #
        ("icenet64", "icenet", IceNetNIC(data_width=64, fifo_depth=8)),
        ("icenet64_deep", "icenet", IceNetNIC(data_width=64, fifo_depth=16)),
        ("gpio16", "gpio", GPIOController(num_pins=16)),
        ("gpio32", "gpio", GPIOController(num_pins=32)),
        # --- Machine learning accelerators ------------------------------ #
        ("gemmini8x8", "gemmini", GemminiSystolicArray(dim=8, width=8)),
        ("gemmini16x16", "gemmini", GemminiSystolicArray(dim=16, width=8)),
        ("gemmini8x8_w16", "gemmini", GemminiSystolicArray(dim=8, width=16)),
        ("nvdla16", "nvdla", NVDLAConvCore(atoms=16, width=8, banks=4)),
        ("nvdla32", "nvdla", NVDLAConvCore(atoms=32, width=8, banks=8)),
        # --- Vector arithmetic ------------------------------------------ #
        ("simd4x32", "simd", SIMDALU(lanes=4, width=32)),
        ("simd8x32", "simd", SIMDALU(lanes=8, width=32)),
        ("simd4x64", "simd", SIMDALU(lanes=4, width=64)),
        ("hwacha2", "hwacha", HwachaVectorUnit(lanes=2, vregs=8, width=64)),
        ("hwacha4", "hwacha", HwachaVectorUnit(lanes=4, vregs=8, width=64)),
        # --- Signal processing ------------------------------------------ #
        ("fft16", "fft", FFTPipeline(points=16, width=16)),
        ("fft32", "fft", FFTPipeline(points=32, width=16)),
        ("conv3x3", "conv", Convolution2D(kernel=3, width=16, unroll=1)),
        ("conv5x5", "conv", Convolution2D(kernel=5, width=16, unroll=1)),
        ("conv3x3_u4", "conv", Convolution2D(kernel=3, width=16, unroll=4)),
        # --- Cryptographic arithmetic ------------------------------------ #
        ("aes1", "aes", AESRound(rounds=1)),
        ("aes4", "aes", AESRound(rounds=4)),
        ("sha3", "sha3", Sha3Round(lanes_width=64)),
        # --- Linear algebra ---------------------------------------------- #
        ("gemm4x4", "gemm", GEMMUnit(rows=4, cols=4, depth=4, width=16)),
        ("gemm8x8", "gemm", GEMMUnit(rows=8, cols=8, depth=4, width=16)),
        ("spmv4", "spmv", SPMVUnit(lanes=4, width=32, vec_entries=8)),
        ("spmv8", "spmv", SPMVUnit(lanes=8, width=32, vec_entries=16)),
        # --- Sort --------------------------------------------------------- #
        ("mergesort8", "mergesort", MergeSortNetwork(n=8, width=16)),
        ("mergesort16", "mergesort", MergeSortNetwork(n=16, width=16)),
        ("radixsort8", "radixsort", RadixSortUnit(buckets=8, width=32)),
        # --- Non-linear function approximation ----------------------------- #
        ("lut128x8", "lut", LookupTable(entries=128, width=8)),
        ("piecewise8", "piecewise", PiecewiseApprox(segments=8, width=16)),
        # --- Other ---------------------------------------------------------- #
        ("fpu32", "fpu", FPUnit(exp_w=8, man_w=24)),
        ("stencil16", "stencil", Stencil2DAccelerator(cores=16, unroll=8)),
        ("viterbi16", "viterbi", ViterbiDecoder(states=16, metric_w=16)),
    ]
    categories = {
        "sodor": "Processor Core", "rocket": "Processor Core", "ariane": "Processor Core",
        "icenet": "Peripheral Component", "gpio": "Peripheral Component",
        "gemmini": "Machine Learning Acc.", "nvdla": "Machine Learning Acc.",
        "simd": "Vector Arithmetic", "hwacha": "Vector Arithmetic",
        "fft": "Signal Processing", "conv": "Signal Processing",
        "aes": "Cryptographic Arithmetic", "sha3": "Cryptographic Arithmetic",
        "gemm": "Linear Algebra", "spmv": "Linear Algebra",
        "mergesort": "Sort", "radixsort": "Sort",
        "lut": "Non-linear Function Approximation",
        "piecewise": "Non-linear Function Approximation",
        "fpu": "Other", "stencil": "Other", "viterbi": "Other",
    }
    return [DesignEntry(name, family, categories[family], module)
            for name, family, module in entries]


def design_families(entries: list[DesignEntry] | None = None) -> dict[str, list[DesignEntry]]:
    """Group dataset entries by parameterizable base design."""
    entries = entries if entries is not None else standard_designs()
    families: dict[str, list[DesignEntry]] = {}
    for entry in entries:
        families.setdefault(entry.family, []).append(entry)
    return families


def get_design(name: str) -> DesignEntry:
    """Look up one dataset design by name."""
    for entry in standard_designs():
        if entry.name == name:
            return entry
    raise KeyError(f"unknown design: {name!r}")
