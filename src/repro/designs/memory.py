"""Memory-subsystem components: a set-associative cache controller and a
DMA engine.

Not part of the fixed 41-design evaluation dataset (Table 3), but
commonly needed building blocks for user SoCs explored with
:mod:`repro.dse`.
"""

from __future__ import annotations

from ..hdl import Circuit, Module, counter, mux_tree, priority_arbiter, reduce_tree

__all__ = ["CacheController", "DMAEngine"]


class CacheController(Module):
    """A set-associative cache lookup path: tag compare, way select, LRU.

    Models the synthesis-relevant structure — tag array (register rows at
    reduced density), per-way comparators, way-select mux, LRU counters,
    and a write-back dirty tracker.
    """

    def __init__(self, ways: int = 4, sets: int = 8, tag_bits: int = 20,
                 line_bits: int = 64):
        super().__init__(ways=ways, sets=sets, tag_bits=tag_bits,
                         line_bits=line_bits)

    def build(self, c: Circuit) -> None:
        ways = self.params["ways"]
        sets = self.params["sets"]
        tag_w = self.params["tag_bits"]
        line_w = self.params["line_bits"]
        index_w = max((sets - 1).bit_length(), 1)

        addr = c.input("addr", 32)
        wdata = c.input("wdata", line_w)
        index = addr.resized(index_w)
        tag = (addr >> index_w).resized(tag_w)

        hits = []
        lines = []
        for way in range(ways):
            # Tag array row per set (reduced density: area scales with
            # ways x sets regardless).
            rows = []
            for s in range(sets):
                row = c.reg_declare(tag_w, f"tag{way}_{s}")
                c.connect_next(row, c.mux(index.eq(s), tag, row))
                rows.append(row)
            stored_tag = mux_tree(c, index, rows)
            valid = c.reg_declare(1, f"valid{way}")
            c.connect_next(valid, valid | index.eq(0))
            hit = stored_tag.eq(tag) & valid
            hits.append(hit)
            # Data line register (one per way at reduced density).
            line = c.reg_declare(line_w, f"data{way}")
            c.connect_next(line, c.mux(hit, wdata, line))
            lines.append(c.mux(hit, line, line ^ line))
        any_hit = reduce_tree(c, hits, "or")
        # Way-select: OR of per-way gated lines.
        rdata = reduce_tree(c, lines, "or")
        # LRU: one counter per way, reset on hit.
        lru_victims = []
        for way, hit in enumerate(hits):
            age = c.reg_declare(8, f"lru{way}")
            c.connect_next(age, c.mux(hit, age ^ age, age + 1))
            lru_victims.append(age)
        oldest = lru_victims[0]
        for age in lru_victims[1:]:
            oldest = c.mux(oldest.gt(age), oldest, age)
        # Dirty/writeback tracking.
        dirty = c.reg_declare(ways, "dirty")
        c.connect_next(dirty, dirty | any_hit.resized(ways))
        c.output("hit", c.reg(any_hit, "hit_r"))
        c.output("rdata", c.reg(rdata, "rdata_r"))
        c.output("victim_age", c.reg(oldest, "victim_r"))


class DMAEngine(Module):
    """A multi-channel DMA engine: per-channel address generators,
    length counters, a priority arbiter, and a data aligner."""

    def __init__(self, channels: int = 4, addr_bits: int = 32,
                 data_bits: int = 64):
        super().__init__(channels=channels, addr_bits=addr_bits,
                         data_bits=data_bits)

    def build(self, c: Circuit) -> None:
        channels = self.params["channels"]
        addr_w = self.params["addr_bits"]
        data_w = self.params["data_bits"]

        requests = []
        sources = []
        for ch in range(channels):
            start = c.input(f"start{ch}", addr_w)
            length = c.input(f"len{ch}", 16)
            src = c.reg_declare(addr_w, f"src{ch}")
            c.connect_next(src, src + (data_w // 8))
            remaining = c.reg_declare(16, f"rem{ch}")
            c.connect_next(remaining, c.mux(remaining.eq(0), length, remaining - 1))
            busy = ~remaining.eq(0)
            requests.append(busy)
            sources.append(src + start.resized(addr_w))
        grants = priority_arbiter(c, requests)
        # Grant-gated address onto the shared bus.
        gated = [c.mux(g, a, a ^ a) for g, a in zip(grants, sources)]
        bus_addr = reduce_tree(c, gated, "or")
        # Byte aligner: barrel shift by the low address bits.
        data_in = c.input("mem_data", data_w)
        aligned = data_in >> bus_addr.resized(3)
        beat = counter(c, 16, "beat")
        checksum = aligned.resized(16) ^ beat
        c.output("bus_addr", c.reg(bus_addr, "bus_addr_r"))
        c.output("data_out", c.reg(aligned, "data_r"))
        c.output("csum", c.reg(checksum, "csum_r"))
