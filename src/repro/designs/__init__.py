"""``repro.designs`` — the hardware design dataset (Table 3 of the paper).

Parameterizable design generators across every category the paper draws
from Chipyard / NVDLA / MachSuite, plus a registry (`standard_designs`)
that instantiates the 41 concrete evaluation designs.
"""

from .cores import SodorCore, RocketCore, ArianeCore
from .peripherals import IceNetNIC, GPIOController
from .mlacc import GemminiSystolicArray, NVDLAConvCore
from .vector import SIMDALU, HwachaVectorUnit
from .dsp import FFTPipeline, Convolution2D
from .crypto import AESRound, Sha3Round
from .linalg import GEMMUnit, SPMVUnit
from .sorting import MergeSortNetwork, RadixSortUnit
from .approx import LookupTable, PiecewiseApprox
from .misc import FPUnit, Stencil2DAccelerator, ViterbiDecoder
from .memory import CacheController, DMAEngine
from .registry import DesignEntry, standard_designs, design_families, get_design

__all__ = [
    "SodorCore", "RocketCore", "ArianeCore",
    "IceNetNIC", "GPIOController",
    "GemminiSystolicArray", "NVDLAConvCore",
    "SIMDALU", "HwachaVectorUnit",
    "FFTPipeline", "Convolution2D",
    "AESRound", "Sha3Round",
    "GEMMUnit", "SPMVUnit",
    "MergeSortNetwork", "RadixSortUnit",
    "LookupTable", "PiecewiseApprox",
    "FPUnit", "Stencil2DAccelerator", "ViterbiDecoder",
    "CacheController", "DMAEngine",
    "DesignEntry", "standard_designs", "design_families", "get_design",
]
