"""Path-dataset augmentation orchestration (Section 4.2).

Combines directly-sampled paths with Markov-chain and SeqGAN generations
(the paper: 684 sampled + ~1000 Markov + ~3000 SeqGAN = 4000+ unique
paths), then labels the synthetic paths with the reference synthesizer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graphir import Vocabulary
from ..synth import Synthesizer
from .dataset import PathRecord
from .markov import MarkovChainGenerator
from .seqgan import SeqGAN, SeqGANConfig

__all__ = ["AugmentationConfig", "augment_path_dataset"]


@dataclass(frozen=True)
class AugmentationConfig:
    """How many synthetic paths to generate from each method."""

    markov_paths: int = 256
    seqgan_paths: int = 512
    max_len: int = 32
    seed: int = 0
    seqgan: SeqGANConfig | None = None


def augment_path_dataset(sampled: list[PathRecord],
                         config: AugmentationConfig | None = None,
                         synthesizer: Synthesizer | None = None,
                         vocab: Vocabulary | None = None) -> list[PathRecord]:
    """Return sampled + generated PathRecords (all unique, all labeled)."""
    config = config or AugmentationConfig()
    synthesizer = synthesizer or Synthesizer(effort="medium")
    vocab = vocab or Vocabulary.standard()

    real_tokens = [r.tokens for r in sampled]
    seen = set(real_tokens)
    generated: list[tuple[str, ...]] = []

    if config.markov_paths > 0 and real_tokens:
        markov = MarkovChainGenerator(seed=config.seed).fit(real_tokens)
        generated.extend(markov.generate(
            config.markov_paths, max_len=config.max_len, exclude=seen))
        seen.update(generated)

    if config.seqgan_paths > 0 and real_tokens:
        gan_cfg = config.seqgan or SeqGANConfig(max_len=config.max_len)
        gan = SeqGAN(vocab=vocab, config=gan_cfg, seed=config.seed).fit(real_tokens)
        generated.extend(gan.generate(config.seqgan_paths, exclude=seen))

    out = list(sampled)
    # Batched labeling of the synthetic paths — bit-identical to calling
    # synthesize_path once per generated sequence.
    labels = synthesizer.synthesize_path_batch([list(t) for t in generated])
    for tokens, label in zip(generated, labels):
        out.append(PathRecord(
            tokens=tokens,
            timing_ps=label.timing_ps,
            area_um2=label.area_um2,
            power_mw=label.power_mw,
        ))
    return out
