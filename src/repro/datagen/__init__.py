"""``repro.datagen`` — dataset generation (Section 4 of the paper).

Builds the Hardware Design Dataset (Table 4) and the Circuit Path Dataset
(Table 5), including Markov-chain and SeqGAN augmentation of the path
dataset for training under data scarcity.
"""

from .dataset import (
    DesignRecord,
    PathRecord,
    DatagenProfile,
    build_design_dataset,
    build_design_dataset_profiled,
    sample_path_dataset,
    train_test_split_by_family,
)
from .markov import MarkovChainGenerator
from .seqgan import SeqGAN, SeqGANConfig
from .augment import AugmentationConfig, augment_path_dataset

__all__ = [
    "DesignRecord", "PathRecord", "DatagenProfile",
    "build_design_dataset", "build_design_dataset_profiled",
    "sample_path_dataset", "train_test_split_by_family",
    "MarkovChainGenerator",
    "SeqGAN", "SeqGANConfig",
    "AugmentationConfig", "augment_path_dataset",
]
