"""SeqGAN circuit-path generation (Section 4.2.2, Yu et al. 2017).

A GRU generator proposes token sequences; a GRU discriminator scores
real-vs-generated; the generator trains with policy gradients (REINFORCE)
using the discriminator's score as reward.  Following the original
recipe, the generator is first pretrained with maximum likelihood on the
real sampled paths.

Simplification vs the original paper: rewards are computed on complete
sequences rather than via Monte-Carlo rollouts per step — adequate for
the short (<=64 token) path sequences involved, and orders of magnitude
cheaper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..graphir import Vocabulary

__all__ = ["SeqGANConfig", "SeqGAN"]


@dataclass(frozen=True)
class SeqGANConfig:
    embedding_size: int = 32
    hidden_size: int = 64
    max_len: int = 32
    pretrain_epochs: int = 30
    adversarial_rounds: int = 10
    disc_steps_per_round: int = 2
    batch_size: int = 32
    gen_lr: float = 0.01
    disc_lr: float = 0.005


class _Generator(nn.Module):
    def __init__(self, vocab_size: int, cfg: SeqGANConfig, rng: np.random.Generator):
        super().__init__()
        self.embed = nn.Embedding(vocab_size, cfg.embedding_size, rng=rng)
        self.gru = nn.GRUCell(cfg.embedding_size, cfg.hidden_size, rng=rng)
        self.proj = nn.Linear(cfg.hidden_size, vocab_size, rng=rng)
        self.hidden_size = cfg.hidden_size


class _Discriminator(nn.Module):
    def __init__(self, vocab_size: int, cfg: SeqGANConfig, rng: np.random.Generator):
        super().__init__()
        self.embed = nn.Embedding(vocab_size, cfg.embedding_size, rng=rng)
        self.gru = nn.GRU(cfg.embedding_size, cfg.hidden_size, rng=rng)
        self.proj = nn.Linear(cfg.hidden_size, 1, rng=rng)

    def forward(self, ids: np.ndarray) -> nn.Tensor:
        x = self.embed(ids)
        _, h = self.gru(x)
        return self.proj(h).sigmoid().reshape(ids.shape[0])


class SeqGAN:
    """Sequence GAN over circuit-path tokens."""

    def __init__(self, vocab: Vocabulary | None = None,
                 config: SeqGANConfig | None = None, seed: int = 0):
        self.vocab = vocab or Vocabulary.standard()
        self.config = config or SeqGANConfig()
        self._rng = np.random.default_rng(seed)
        v = len(self.vocab)
        self.generator = _Generator(v, self.config, self._rng)
        self.discriminator = _Discriminator(v, self.config, self._rng)
        self._fitted = False
        self.history: list[dict[str, float]] = []

    # ------------------------------------------------------------------ #
    # Encoding helpers
    # ------------------------------------------------------------------ #
    def _encode(self, paths: list[tuple[str, ...]]) -> np.ndarray:
        """Pack paths into (batch, max_len+1) id arrays: CLS, tokens, PAD(end)."""
        L = self.config.max_len
        ids = np.full((len(paths), L + 1), self.vocab.PAD, dtype=np.int64)
        ids[:, 0] = self.vocab.CLS
        for i, path in enumerate(paths):
            enc = self.vocab.encode(list(path)[:L])
            ids[i, 1:1 + len(enc)] = enc
        return ids

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def fit(self, paths: list[tuple[str, ...]]) -> "SeqGAN":
        """Pretrain with MLE, then adversarial policy-gradient rounds."""
        if not paths:
            raise ValueError("cannot fit SeqGAN on zero paths")
        real_ids = self._encode(paths)
        self._pretrain(real_ids)
        self._adversarial(real_ids)
        self._fitted = True
        return self

    def _pretrain(self, real_ids: np.ndarray) -> None:
        cfg = self.config
        opt = nn.Adam(self.generator.parameters(), lr=cfg.gen_lr)
        n = real_ids.shape[0]
        for epoch in range(cfg.pretrain_epochs):
            idx = self._rng.permutation(n)[:cfg.batch_size]
            batch = real_ids[idx]
            loss = self._mle_loss(batch)
            opt.zero_grad()
            loss.backward()
            nn.clip_grad_norm(self.generator.parameters(), 5.0)
            opt.step()
            self.history.append({"phase": 0.0, "epoch": float(epoch),
                                 "loss": loss.item()})

    def _mle_loss(self, ids: np.ndarray) -> nn.Tensor:
        """Teacher-forced next-token cross-entropy."""
        batch, length = ids.shape
        h = nn.Tensor(np.zeros((batch, self.generator.hidden_size)))
        losses = []
        for t in range(length - 1):
            x = self.generator.embed(ids[:, t])
            h = self.generator.gru(x, h)
            logits = self.generator.proj(h)
            losses.append(nn.cross_entropy(logits, ids[:, t + 1]))
        total = losses[0]
        for piece in losses[1:]:
            total = total + piece
        return total * (1.0 / len(losses))

    def _adversarial(self, real_ids: np.ndarray) -> None:
        cfg = self.config
        g_opt = nn.Adam(self.generator.parameters(), lr=cfg.gen_lr * 0.1)
        d_opt = nn.Adam(self.discriminator.parameters(), lr=cfg.disc_lr)
        n = real_ids.shape[0]
        for round_idx in range(cfg.adversarial_rounds):
            # --- Discriminator updates --------------------------------- #
            for _ in range(cfg.disc_steps_per_round):
                fake_ids, _ = self._rollout(cfg.batch_size)
                idx = self._rng.permutation(n)[:cfg.batch_size]
                both = np.concatenate([real_ids[idx], fake_ids], axis=0)
                labels = np.concatenate([
                    np.ones(len(idx)), np.zeros(len(fake_ids))])
                probs = self.discriminator(both)
                d_loss = nn.binary_cross_entropy(probs, labels)
                d_opt.zero_grad()
                d_loss.backward()
                d_opt.step()
            # --- Generator policy-gradient update ----------------------- #
            fake_ids, log_probs = self._rollout(cfg.batch_size)
            with nn.no_grad():
                rewards = self.discriminator(fake_ids).numpy()
            advantage = rewards - rewards.mean()
            pg_loss = -(log_probs * nn.Tensor(advantage)).mean()
            g_opt.zero_grad()
            pg_loss.backward()
            nn.clip_grad_norm(self.generator.parameters(), 5.0)
            g_opt.step()
            self.history.append({"phase": 1.0, "epoch": float(round_idx),
                                 "loss": d_loss.item(),
                                 "reward": float(rewards.mean())})

    def _rollout(self, batch: int) -> tuple[np.ndarray, nn.Tensor]:
        """Sample sequences from the generator; returns ids and summed log-probs."""
        cfg = self.config
        L = cfg.max_len
        ids = np.full((batch, L + 1), self.vocab.PAD, dtype=np.int64)
        ids[:, 0] = self.vocab.CLS
        h = nn.Tensor(np.zeros((batch, self.generator.hidden_size)))
        done = np.zeros(batch, dtype=bool)
        step_log_probs = []
        for t in range(L):
            x = self.generator.embed(ids[:, t])
            h = self.generator.gru(x, h)
            logits = self.generator.proj(h)
            probs = logits.softmax(axis=-1).numpy()
            # Never sample CLS mid-sequence.
            probs[:, self.vocab.CLS] = 0.0
            probs /= probs.sum(axis=1, keepdims=True)
            choices = np.array([
                self._rng.choice(len(p), p=p) for p in probs
            ])
            choices[done] = self.vocab.PAD
            ids[:, t + 1] = choices
            log_prob = logits.log_softmax(axis=-1)[np.arange(batch), choices]
            step_log_probs.append(log_prob * nn.Tensor((~done).astype(float)))
            done |= choices == self.vocab.PAD
            if done.all():
                break
        total = step_log_probs[0]
        for piece in step_log_probs[1:]:
            total = total + piece
        return ids, total

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #
    def generate(self, count: int, min_len: int = 2,
                 exclude: set[tuple[str, ...]] | None = None,
                 max_attempts_factor: int = 20) -> list[tuple[str, ...]]:
        """Generate up to ``count`` unique paths absent from ``exclude``."""
        if not self._fitted:
            raise RuntimeError("fit() must be called before generation")
        exclude = set(exclude or ())
        seen = set(exclude)
        out: list[tuple[str, ...]] = []
        attempts = 0
        limit = max(count * max_attempts_factor, 1)
        while len(out) < count and attempts < limit:
            attempts += 1
            with nn.no_grad():
                ids, _ = self._rollout(min(self.config.batch_size, count))
            for row in ids:
                tokens = []
                for tid in row[1:]:
                    if tid == self.vocab.PAD:
                        break
                    tokens.append(self.vocab.token_of(int(tid)))
                path = tuple(tokens)
                if len(path) < min_len or path in seen:
                    continue
                seen.add(path)
                out.append(path)
                if len(out) >= count:
                    break
        return out
