"""Markov-chain circuit-path generation (Section 4.2.1).

A first-order transition matrix is fitted over the paths sampled from the
training designs (with virtual START/END states); new unique paths are
then drawn from the chain.  Generated paths are noisier and less biased
than SeqGAN output — the paper keeps both sources in the training mix.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MarkovChainGenerator"]

_START = "<start>"
_END = "<end>"


class MarkovChainGenerator:
    """First-order Markov chain over path token sequences."""

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)
        self._transitions: dict[str, tuple[list[str], np.ndarray]] = {}
        self._fitted = False

    # ------------------------------------------------------------------ #
    def fit(self, paths: list[tuple[str, ...]]) -> "MarkovChainGenerator":
        """Estimate transition probabilities from real sampled paths."""
        if not paths:
            raise ValueError("cannot fit a Markov chain on zero paths")
        counts: dict[str, dict[str, int]] = {}
        for path in paths:
            if not path:
                continue
            chain = [_START, *path, _END]
            for cur, nxt in zip(chain, chain[1:]):
                counts.setdefault(cur, {}).setdefault(nxt, 0)
                counts[cur][nxt] += 1
        self._transitions = {}
        for state, nxt_counts in counts.items():
            tokens = sorted(nxt_counts)
            freqs = np.array([nxt_counts[t] for t in tokens], dtype=np.float64)
            self._transitions[state] = (tokens, freqs / freqs.sum())
        self._fitted = True
        return self

    @property
    def states(self) -> list[str]:
        return sorted(self._transitions)

    def transition_probs(self, state: str) -> dict[str, float]:
        """Conditional next-token distribution for ``state``."""
        tokens, probs = self._transitions[state]
        return dict(zip(tokens, probs))

    # ------------------------------------------------------------------ #
    def generate_one(self, max_len: int = 64) -> tuple[str, ...]:
        """Draw a single path from the chain."""
        if not self._fitted:
            raise RuntimeError("fit() must be called before generation")
        state = _START
        out: list[str] = []
        while len(out) < max_len:
            tokens, probs = self._transitions.get(state, ((), None))
            if not tokens:
                break
            state = self._rng.choice(tokens, p=probs)
            if state == _END:
                break
            out.append(state)
        return tuple(out)

    def generate(self, count: int, max_len: int = 64, min_len: int = 2,
                 exclude: set[tuple[str, ...]] | None = None,
                 max_attempts_factor: int = 50) -> list[tuple[str, ...]]:
        """Generate up to ``count`` unique paths not present in ``exclude``."""
        exclude = set(exclude or ())
        out: list[tuple[str, ...]] = []
        seen = set(exclude)
        attempts = 0
        limit = count * max_attempts_factor
        while len(out) < count and attempts < limit:
            attempts += 1
            path = self.generate_one(max_len=max_len)
            if len(path) < min_len or path in seen:
                continue
            seen.add(path)
            out.append(path)
        return out
