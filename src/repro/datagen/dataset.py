"""Dataset containers and builders (Section 4.1/4.2, Tables 4 and 5).

- :class:`DesignRecord` — one Hardware Design Dataset row: a design (kept
  as its GraphIR rather than Verilog files) plus its synthesized
  timing/area/power labels.
- :class:`PathRecord` — one Circuit Path Dataset row: a token sequence
  plus its per-path synthesized labels.
- Family-aware train/test splitting: designs generated from the same
  parameterizable base never straddle the split (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import TYPE_CHECKING

from ..designs import DesignEntry
from ..graphir import CircuitGraph
from ..synth import Synthesizer

if TYPE_CHECKING:  # avoid a circular import with repro.core at runtime
    from ..core.sampler import PathSampler

__all__ = [
    "DesignRecord",
    "PathRecord",
    "build_design_dataset",
    "sample_path_dataset",
    "train_test_split_by_family",
]


@dataclass(frozen=True)
class DesignRecord:
    """Table 4 row: design + synthesized design-level labels."""

    name: str
    family: str
    graph: CircuitGraph
    timing_ps: float
    area_um2: float
    power_mw: float

    @property
    def labels(self) -> np.ndarray:
        return np.array([self.timing_ps, self.area_um2, self.power_mw])


@dataclass(frozen=True)
class PathRecord:
    """Table 5 row: token sequence + synthesized path-level labels."""

    tokens: tuple[str, ...]
    timing_ps: float
    area_um2: float
    power_mw: float

    @property
    def labels(self) -> np.ndarray:
        return np.array([self.timing_ps, self.area_um2, self.power_mw])


def build_design_dataset(entries: list[DesignEntry],
                         synthesizer: Synthesizer | None = None,
                         max_nodes: int | None = None) -> list[DesignRecord]:
    """Elaborate and synthesize each registry entry into a dataset row.

    ``max_nodes`` optionally skips designs whose elaborated GraphIR
    exceeds the budget (useful for fast test configurations).
    """
    synthesizer = synthesizer or Synthesizer(effort="medium")
    records = []
    for entry in entries:
        graph = entry.module.elaborate()
        if max_nodes is not None and graph.num_nodes > max_nodes:
            continue
        result = synthesizer.synthesize(graph)
        records.append(DesignRecord(
            name=entry.name,
            family=entry.family,
            graph=graph,
            timing_ps=result.timing_ps,
            area_um2=result.area_um2,
            power_mw=result.power_mw,
        ))
    return records


def sample_path_dataset(records: list[DesignRecord],
                        sampler: PathSampler | None = None,
                        synthesizer: Synthesizer | None = None,
                        num_workers: int = 1) -> list[PathRecord]:
    """Sample complete circuit paths from designs and label each one.

    Duplicate token sequences across designs are collapsed — the Circuit
    Path Dataset keys on the path itself (Table 5).

    ``num_workers`` fans the per-design sampling + labeling out over a
    process pool (``repro.runtime.parallel``); the merged result is
    bit-identical to the serial builder.  ``num_workers=None`` uses the
    CPU count.
    """
    if num_workers is None or num_workers != 1:
        from ..runtime.parallel import parallel_sample_path_dataset

        return parallel_sample_path_dataset(
            records, sampler=sampler, synthesizer=synthesizer,
            num_workers=num_workers)
    if sampler is None:
        from ..core.sampler import PathSampler

        sampler = PathSampler()
    synthesizer = synthesizer or Synthesizer(effort="medium")
    seen: set[tuple[str, ...]] = set()
    out: list[PathRecord] = []
    for record in records:
        for path in sampler.sample(record.graph):
            if path.tokens in seen:
                continue
            seen.add(path.tokens)
            label = synthesizer.synthesize_path(list(path.tokens))
            out.append(PathRecord(
                tokens=path.tokens,
                timing_ps=label.timing_ps,
                area_um2=label.area_um2,
                power_mw=label.power_mw,
            ))
    return out


def train_test_split_by_family(records: list[DesignRecord], train_fraction: float = 0.5,
                               seed: int = 0) -> tuple[list[DesignRecord], list[DesignRecord]]:
    """Split designs into train/test without splitting any family.

    Families never straddle the split (Section 4.1 of the paper).  The
    assignment is a size-balanced draft: families are ordered by their
    largest member and dealt to whichever side is furthest below its
    design-count budget (ties broken by the seeded RNG, preferring the
    side with less accumulated size) — so both folds span the dataset's
    orders-of-magnitude size range instead of concentrating all large
    designs on one side.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0, 1): {train_fraction}")
    rng = np.random.default_rng(seed)
    families: dict[str, list[DesignRecord]] = {}
    for r in records:
        families.setdefault(r.family, []).append(r)

    def family_size(name: str) -> int:
        return max(r.graph.num_nodes for r in families[name])

    # Shuffle first so equal-size ties are seed-dependent, then order by
    # size descending (stable sort keeps the shuffled tie order).
    names = sorted(families)
    rng.shuffle(names)
    names.sort(key=family_size, reverse=True)

    total = len(records)
    target_train = train_fraction * total
    target_test = total - target_train
    train: list[DesignRecord] = []
    test: list[DesignRecord] = []
    size_train = size_test = 0
    for name in names:
        group = families[name]
        fill_train = len(train) / target_train
        fill_test = len(test) / target_test
        if abs(fill_train - fill_test) > 1e-9:
            to_train = fill_train < fill_test
        else:
            to_train = size_train <= size_test
        if to_train:
            train.extend(group)
            size_train += sum(r.graph.num_nodes for r in group)
        else:
            test.extend(group)
            size_test += sum(r.graph.num_nodes for r in group)
    if not train or not test:
        raise ValueError("split produced an empty side; need more families")
    return train, test
