"""Dataset containers and builders (Section 4.1/4.2, Tables 4 and 5).

- :class:`DesignRecord` — one Hardware Design Dataset row: a design (kept
  as its GraphIR rather than Verilog files) plus its synthesized
  timing/area/power labels.
- :class:`PathRecord` — one Circuit Path Dataset row: a token sequence
  plus its per-path synthesized labels.
- Family-aware train/test splitting: designs generated from the same
  parameterizable base never straddle the split (Section 4.1).

Path sampling here (and in the ``repro.runtime.parallel`` workers) runs
on the sampler's default array engine: each ``DesignRecord.graph``
compiles once to CSR form (memoized on the graph instance) and the
iterative array walk samples it — bit-identical paths to the reference
engine, so dataset content is unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from typing import TYPE_CHECKING

from ..designs import DesignEntry
from ..graphir import CircuitGraph
from ..synth import Synthesizer

if TYPE_CHECKING:  # avoid a circular import with repro.core at runtime
    from ..core.sampler import PathSampler

__all__ = [
    "DesignRecord",
    "PathRecord",
    "DatagenProfile",
    "build_design_dataset",
    "build_design_dataset_profiled",
    "sample_path_dataset",
    "train_test_split_by_family",
]


@dataclass(frozen=True)
class DesignRecord:
    """Table 4 row: design + synthesized design-level labels."""

    name: str
    family: str
    graph: CircuitGraph
    timing_ps: float
    area_um2: float
    power_mw: float

    @property
    def labels(self) -> np.ndarray:
        return np.array([self.timing_ps, self.area_um2, self.power_mw])


@dataclass(frozen=True)
class PathRecord:
    """Table 5 row: token sequence + synthesized path-level labels."""

    tokens: tuple[str, ...]
    timing_ps: float
    area_um2: float
    power_mw: float

    @property
    def labels(self) -> np.ndarray:
        return np.array([self.timing_ps, self.area_um2, self.power_mw])


@dataclass(frozen=True)
class DatagenProfile:
    """Observability report for one ``build_design_dataset`` run.

    Mirrors the trainer's ``TrainerProfile`` pattern: the builder records
    where the wall-clock went (per-design synthesis seconds, cache
    hit/miss counts, worker fan-out) so dataset-generation regressions
    show up as numbers rather than vague slowness.
    """

    num_designs: int
    num_workers: int
    wall_s: float
    synth_seconds: dict[str, float] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def designs_per_sec(self) -> float:
        return self.num_designs / self.wall_s if self.wall_s > 0 else 0.0

    def format(self) -> str:
        lines = [f"[datagen] {self.num_designs} designs in {self.wall_s:.2f}s "
                 f"({self.designs_per_sec:.2f} designs/s), "
                 f"{self.num_workers} worker(s)"]
        if self.cache_hits or self.cache_misses:
            total = self.cache_hits + self.cache_misses
            lines.append(f"  cache      {self.cache_hits} hits / "
                         f"{self.cache_misses} misses "
                         f"({100.0 * self.cache_hits / total:.0f}% hit rate)")
        for name, secs in sorted(self.synth_seconds.items(),
                                 key=lambda kv: -kv[1])[:8]:
            lines.append(f"  {name:<24s} {secs:8.3f}s")
        return "\n".join(lines)


def build_design_dataset(entries: list[DesignEntry],
                         synthesizer: Synthesizer | None = None,
                         max_nodes: int | None = None,
                         num_workers: int | None = 1,
                         cache_dir=None) -> list[DesignRecord]:
    """Elaborate and synthesize each registry entry into a dataset row.

    ``max_nodes`` optionally skips designs whose elaborated GraphIR
    exceeds the budget (useful for fast test configurations).

    ``num_workers`` fans the per-entry elaborate+synthesize out over a
    process pool (``num_workers=None`` uses the CPU count); records are
    merged back in registry order, bit-identical to the serial builder.
    ``cache_dir`` enables the disk-tier
    :class:`repro.synth.cache.SynthesisCache`, keyed on graph structure
    x library x effort, so rebuilds replay labels instead of
    re-synthesizing.
    """
    records, _ = build_design_dataset_profiled(
        entries, synthesizer=synthesizer, max_nodes=max_nodes,
        num_workers=num_workers, cache_dir=cache_dir)
    return records


def build_design_dataset_profiled(
        entries: list[DesignEntry],
        synthesizer: Synthesizer | None = None,
        max_nodes: int | None = None,
        num_workers: int | None = 1,
        cache_dir=None) -> tuple[list[DesignRecord], DatagenProfile]:
    """:func:`build_design_dataset` plus a :class:`DatagenProfile`."""
    from ..runtime.parallel import parallel_build_design_dataset

    start = time.perf_counter()
    records, per_entry, workers = parallel_build_design_dataset(
        entries, synthesizer=synthesizer, max_nodes=max_nodes,
        num_workers=num_workers, cache_dir=cache_dir)
    wall = time.perf_counter() - start
    kept = {r.name for r in records}
    profile = DatagenProfile(
        num_designs=len(records),
        num_workers=workers,
        wall_s=wall,
        synth_seconds={name: secs for name, secs, _ in per_entry
                       if name in kept},
        cache_hits=sum(1 for _, _, hit in per_entry if hit is True),
        cache_misses=sum(1 for _, _, hit in per_entry if hit is False),
    )
    return records, profile


def sample_path_dataset(records: list[DesignRecord],
                        sampler: PathSampler | None = None,
                        synthesizer: Synthesizer | None = None,
                        num_workers: int = 1) -> list[PathRecord]:
    """Sample complete circuit paths from designs and label each one.

    Duplicate token sequences across designs are collapsed — the Circuit
    Path Dataset keys on the path itself (Table 5).

    ``num_workers`` fans the per-design sampling + labeling out over a
    process pool (``repro.runtime.parallel``); the merged result is
    bit-identical to the serial builder.  ``num_workers=None`` uses the
    CPU count.
    """
    if num_workers is None or num_workers != 1:
        from ..runtime.parallel import parallel_sample_path_dataset

        return parallel_sample_path_dataset(
            records, sampler=sampler, synthesizer=synthesizer,
            num_workers=num_workers)
    if sampler is None:
        from ..core.sampler import PathSampler

        sampler = PathSampler()
    synthesizer = synthesizer or Synthesizer(effort="medium")
    seen: set[tuple[str, ...]] = set()
    unique: list[tuple[str, ...]] = []
    for record in records:
        for path in sampler.sample(record.graph):
            if path.tokens in seen:
                continue
            seen.add(path.tokens)
            unique.append(path.tokens)
    # One batched labeling call over the deduped paths (first-seen order
    # preserved) — bit-identical to per-path synthesize_path.
    labels = synthesizer.synthesize_path_batch([list(t) for t in unique])
    return [PathRecord(
        tokens=tokens,
        timing_ps=label.timing_ps,
        area_um2=label.area_um2,
        power_mw=label.power_mw,
    ) for tokens, label in zip(unique, labels)]


def train_test_split_by_family(records: list[DesignRecord], train_fraction: float = 0.5,
                               seed: int = 0) -> tuple[list[DesignRecord], list[DesignRecord]]:
    """Split designs into train/test without splitting any family.

    Families never straddle the split (Section 4.1 of the paper).  The
    assignment is a size-balanced draft: families are ordered by their
    largest member and dealt to whichever side is furthest below its
    design-count budget (ties broken by the seeded RNG, preferring the
    side with less accumulated size) — so both folds span the dataset's
    orders-of-magnitude size range instead of concentrating all large
    designs on one side.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0, 1): {train_fraction}")
    rng = np.random.default_rng(seed)
    families: dict[str, list[DesignRecord]] = {}
    for r in records:
        families.setdefault(r.family, []).append(r)

    def family_size(name: str) -> int:
        return max(r.graph.num_nodes for r in families[name])

    # Shuffle first so equal-size ties are seed-dependent, then order by
    # size descending (stable sort keeps the shuffled tie order).
    names = sorted(families)
    rng.shuffle(names)
    names.sort(key=family_size, reverse=True)

    total = len(records)
    target_train = train_fraction * total
    target_test = total - target_train
    train: list[DesignRecord] = []
    test: list[DesignRecord] = []
    size_train = size_test = 0
    for name in names:
        group = families[name]
        fill_train = len(train) / target_train
        fill_test = len(test) / target_test
        if abs(fill_train - fill_test) > 1e-9:
            to_train = fill_train < fill_test
        else:
            to_train = size_train <= size_test
        if to_train:
            train.extend(group)
            size_train += sum(r.graph.num_nodes for r in group)
        else:
            test.extend(group)
            size_test += sum(r.graph.num_nodes for r in group)
    if not train or not test:
        raise ValueError("split produced an empty side; need more families")
    return train, test
