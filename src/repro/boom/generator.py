"""A parameterizable out-of-order core generator (BOOM-like).

Builds the synthesis-relevant structure of SonicBOOM for every Table 10
configuration: frontend with a selectable branch predictor, decode,
rename map + free list, re-order buffer, issue queue with wakeup CAM,
physical register file, execution units, load/store unit, and an L1
data-cache way structure.  Every Table 10 parameter changes the hardware
— that sensitivity is what the DSE measures.
"""

from __future__ import annotations

from dataclasses import fields

from ..hdl import (
    Circuit,
    Module,
    Signal,
    adder_tree,
    counter,
    mux_tree,
    pipeline,
    priority_arbiter,
    register_file,
)
from .config import BoomConfig

__all__ = ["BoomCore"]

XLEN = 64
TAG_W = 8    # physical register tag width (rounded)


def _branch_predictor(c: Circuit, pc: Signal, kind: str) -> Signal:
    """Branch predictor structures of increasing sophistication."""
    idx = pc.resized(5)
    if kind == "boom2":
        # gshare-style: one history register xor'd into one table.
        ghist = c.reg_declare(16, "ghist")
        c.connect_next(ghist, (ghist << 1) ^ pc.resized(16))
        table = register_file(c, ghist.resized(2), idx ^ ghist.resized(5), idx, 16, "bht")
        return table.resized(1)
    if kind == "alpha21264":
        # tournament: local + global tables + chooser.
        local = register_file(c, pc.resized(2), idx, idx, 16, "lbht")
        ghist = c.reg_declare(12, "ghist")
        c.connect_next(ghist, (ghist << 1) ^ pc.resized(12))
        global_t = register_file(c, ghist.resized(2), ghist.resized(5), idx, 16, "gbht")
        chooser = register_file(c, pc.resized(2), idx, idx, 16, "chooser")
        return c.mux(chooser.resized(1), global_t.resized(1), local.resized(1))
    if kind == "tage-l":
        # TAGE: several tagged tables over geometric history lengths + LRU-ish
        # provider select; the largest predictor.
        ghist = c.reg_declare(32, "ghist")
        c.connect_next(ghist, (ghist << 1) ^ pc.resized(32))
        prediction = None
        for t, hist_bits in enumerate((4, 8, 16, 32)):
            folded = ghist.resized(hist_bits).reduce_xor()
            index = (pc ^ folded.resized(XLEN)).resized(5)
            entry = register_file(c, pc.resized(10), index, index, 16, f"tage{t}")
            tag_hit = entry.resized(8).eq(pc.resized(8))
            pred = entry.resized(1)
            prediction = pred if prediction is None else c.mux(tag_hit, pred, prediction)
        return prediction
    raise ValueError(f"unknown branch predictor: {kind!r}")


class BoomCore(Module):
    """Structural OoO core for one :class:`BoomConfig`."""

    def __init__(self, config: BoomConfig):
        # Every Table 10 field — including branch_predictor — changes the
        # elaborated hardware, so all of them must be in ``params``: the
        # front-end caches fingerprint Modules by (class source, params),
        # and omitting a structural parameter would alias distinct
        # configurations onto one cached graph.
        super().__init__(**{f.name: getattr(config, f.name)
                            for f in fields(BoomConfig)})
        self.config = config

    @property
    def design_name(self) -> str:
        return self.config.name

    def build(self, c: Circuit) -> None:
        cfg = self.config
        # ---------------- Frontend ------------------------------------- #
        pc = counter(c, XLEN, "pc")
        taken = _branch_predictor(c, pc, cfg.branch_predictor)
        next_pc = c.mux(taken, pc + 4 * cfg.fetch_width, pc + 4)
        fetch_pkt = [c.reg(c.input(f"imem{i}", 32), f"fb{i}")
                     for i in range(cfg.fetch_width)]

        # ---------------- Decode + Rename ------------------------------- #
        uops = []
        for w in range(cfg.core_width):
            instr = fetch_pkt[w % cfg.fetch_width]
            opcode = instr.resized(7)
            rs1 = (instr >> 15).resized(5)
            rs2 = (instr >> 20).resized(5)
            rd = (instr >> 7).resized(5)
            # Rename map: 32 architectural -> physical tags.
            free_tag = counter(c, TAG_W, f"freelist{w}")
            p1 = register_file(c, free_tag, rd, rs1, depth=16, label=f"map{w}a")
            p2 = register_file(c, free_tag, rd, rs2, depth=16, label=f"map{w}b")
            uops.append((opcode, p1, p2, free_tag))

        # ---------------- ROB ------------------------------------------- #
        # One status register per ROB entry (modeled at 1/4 density to keep
        # elaboration tractable; area scales with rob_size regardless).
        rob_head = counter(c, TAG_W, "rob_head")
        rob_entries = []
        for e in range(cfg.rob_size // 4):
            alloc = rob_head.eq(e)
            entry = c.reg_declare(32, f"rob{e}")
            c.connect_next(entry, c.mux(alloc, uops[e % cfg.core_width][1].resized(32), entry))
            rob_entries.append(entry)
        commit = mux_tree(c, rob_head, rob_entries)

        # ---------------- Issue queue with wakeup CAM ------------------- #
        wakeup_tags = [uop[3] for uop in uops]  # one broadcast per write port
        requests = []
        slot_payloads = []
        for s in range(cfg.issue_slots):
            src1 = c.reg(uops[s % cfg.core_width][1], f"iq{s}_src1")
            src2 = c.reg(uops[s % cfg.core_width][2], f"iq{s}_src2")
            ready = None
            for tag in wakeup_tags:
                hit = src1.eq(tag) | src2.eq(tag)
                ready = hit if ready is None else ready | hit
            requests.append(ready)
            slot_payloads.append(src1)
        grants = priority_arbiter(c, requests)
        issue_sel = adder_tree(c, [g.resized(8) for g in grants])

        # ---------------- Physical register file ------------------------ #
        # int_regs entries, 2 read ports per issue lane (modeled at 1/4
        # density; read-port mux trees scale with both depth and width).
        prf_depth = max(cfg.int_regs // 4, 4)
        operands = []
        for w in range(cfg.core_width):
            wdata = c.input(f"wb{w}", XLEN)
            a = register_file(c, wdata, wakeup_tags[w].resized(TAG_W),
                              slot_payloads[w % cfg.issue_slots].resized(TAG_W),
                              depth=prf_depth, label=f"prf{w}a")
            b = register_file(c, wdata, wakeup_tags[w].resized(TAG_W),
                              issue_sel.resized(TAG_W),
                              depth=prf_depth, label=f"prf{w}b")
            operands.append((a, b))

        # ---------------- Execute --------------------------------------- #
        results = []
        for w, (a, b) in enumerate(operands):
            alu = mux_tree(c, uops[w][0].resized(3),
                           [a + b, a - b, a & b, a | b, a ^ b,
                            a << b.resized(6), a >> b.resized(6),
                            c.mux(a.lt(b), b, a)])
            results.append(c.reg(alu, f"ex{w}"))
        mul_unit = pipeline(c, (operands[0][0] * operands[0][1]).resized(XLEN), 2, "mul")
        div_unit = operands[0][0] // operands[0][1]
        results.append(c.reg(c.mux(uops[0][0].resized(1), mul_unit, div_unit), "md"))

        # ---------------- LSU + D-cache --------------------------------- #
        # Each memory port needs its own tag array AND its own port into
        # the data arrays — dual-porting an SRAM roughly doubles its cost,
        # which is why single-port designs dominate the Pareto frontier.
        for port in range(cfg.memory_ports):
            addr = operands[port % cfg.core_width][0] + commit.resized(XLEN)
            line_data = c.input(f"dmem{port}", XLEN)
            row_sel = addr.resized(2)
            ways = []
            for way in range(cfg.dcache_ways):
                tag = c.reg(addr.resized(20), f"dtag{port}_{way}")
                hit = tag.eq(addr.resized(20))
                # Data array rows (reduced density; scales with ways x ports).
                rows = []
                for rr in range(4):
                    row = c.reg_declare(XLEN, f"dline{port}_{way}_{rr}")
                    c.connect_next(row, c.mux(row_sel.eq(rr) & hit, line_data, row))
                    rows.append(row)
                line = mux_tree(c, row_sel, rows)
                ways.append(c.mux(hit, line, line ^ line))
            way_sel = ways[0]
            for wy in ways[1:]:
                way_sel = way_sel | wy
            results.append(c.reg(way_sel, f"lsu{port}"))

        # ---------------- Commit/outputs --------------------------------- #
        c.output("pc_out", c.reg(next_pc, "pc_next"))
        c.output("commit_data", c.reg(adder_tree(c, results), "commit"))
        c.output("rob_out", commit)
