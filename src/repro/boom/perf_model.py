"""A CoreMark-like analytic performance model for BOOM configurations.

The paper obtains per-configuration CoreMark scores from Chipyard's
cycle-accurate simulator; this model is the offline substitute.  It
follows standard analytic out-of-order processor modeling: sustained IPC
is the minimum of the structural throughput limits (decode width, fetch
bandwidth, issue queue, ROB-window ILP, physical registers, memory
ports), degraded by branch-misprediction and cache-miss stall cycles.

The model is deliberately tuned to CoreMark's character: compute-bound
(memory ports rarely bind — the paper's third observation), branchy
enough that predictor quality matters, and with diminishing returns from
very large windows (the paper's second observation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import BoomConfig

__all__ = ["WorkloadProfile", "COREMARK", "CoreMarkModel"]


@dataclass(frozen=True)
class WorkloadProfile:
    """Instruction-mix characteristics of the benchmark being modeled."""

    name: str
    branch_fraction: float
    memory_fraction: float
    mispredict_penalty: float    # cycles
    miss_penalty: float          # cycles
    ilp_scale: float             # ILP extracted per sqrt(window entry)


COREMARK = WorkloadProfile(
    name="coremark",
    branch_fraction=0.18,
    memory_fraction=0.22,
    mispredict_penalty=9.0,
    miss_penalty=22.0,
    ilp_scale=0.62,
)

_PREDICTOR_ACCURACY = {"tage-l": 0.975, "alpha21264": 0.958, "boom2": 0.940}
_DCACHE_MISS_RATE = {4: 0.016, 8: 0.011}


def _dcache_miss_rate(ways: int) -> float:
    """Miss rate per d-cache associativity.

    Table 10 values come from the table verbatim; the extended DSE
    space's other way counts follow the power law fitted through those
    two points (more ways, fewer conflict misses, diminishing returns).
    """
    rate = _DCACHE_MISS_RATE.get(ways)
    if rate is None:
        rate = 0.016 * (4.0 / ways) ** 0.5406
    return rate


class CoreMarkModel:
    """Analytic IPC + score model."""

    def __init__(self, profile: WorkloadProfile = COREMARK):
        self.profile = profile

    # ------------------------------------------------------------------ #
    def ipc(self, config: BoomConfig) -> float:
        """Sustained instructions per cycle for one configuration."""
        p = self.profile
        # Structural throughput limits (instructions/cycle).
        limit_decode = float(config.core_width)
        limit_fetch = config.fetch_width / 2.0          # taken-branch fetch loss
        limit_issue = config.issue_slots / 4.0          # ~4 cycles queue residency
        limit_window = p.ilp_scale * np.sqrt(config.rob_size)
        limit_regs = max((config.int_regs - 32) / 12.0, 0.5)
        limit_mem = config.memory_ports / max(p.memory_fraction, 1e-9)
        peak = min(limit_decode, limit_fetch, limit_issue,
                   limit_window, limit_regs, limit_mem)

        # Stall cycles per instruction.
        accuracy = _PREDICTOR_ACCURACY[config.branch_predictor]
        cpi_branch = p.branch_fraction * (1.0 - accuracy) * p.mispredict_penalty
        miss_rate = _dcache_miss_rate(config.dcache_ways)
        cpi_miss = p.memory_fraction * miss_rate * p.miss_penalty

        return 1.0 / (1.0 / peak + cpi_branch + cpi_miss)

    def score(self, config: BoomConfig, frequency_ghz: float) -> float:
        """CoreMark-style score: IPC x clock frequency (iterations/sec scale)."""
        if frequency_ghz <= 0:
            raise ValueError(f"frequency must be positive: {frequency_ghz}")
        return self.ipc(config) * frequency_ghz

    # ------------------------------------------------------------------ #
    def bottleneck(self, config: BoomConfig) -> str:
        """Which structural limit binds — used in the Figure 8 discussion."""
        p = self.profile
        limits = {
            "decode": float(config.core_width),
            "fetch": config.fetch_width / 2.0,
            "issue": config.issue_slots / 4.0,
            "window": p.ilp_scale * np.sqrt(config.rob_size),
            "registers": max((config.int_regs - 32) / 12.0, 0.5),
            "memory": config.memory_ports / max(p.memory_fraction, 1e-9),
        }
        return min(limits, key=limits.get)
