"""BOOM design-space parameters (Table 10 of the paper)."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields

__all__ = ["BRANCH_PREDICTORS", "BoomConfig", "full_design_space", "TABLE10",
           "EXTENDED_SPACE", "boom_grid", "extended_grid"]

BRANCH_PREDICTORS = ("tage-l", "boom2", "alpha21264")

# Table 10, verbatim: parameter -> possible values.
TABLE10: dict[str, tuple] = {
    "branch_predictor": BRANCH_PREDICTORS,
    "core_width": (1, 2, 3, 4),
    "memory_ports": (1, 2),
    "fetch_width": (4, 8),
    "rob_size": (32, 64, 96),
    "int_regs": (52, 80, 100),
    "issue_slots": (8, 16, 32),
    "dcache_ways": (4, 8),
}


# Inclusive bounds per integer parameter (the union of TABLE10 and
# EXTENDED_SPACE below; the generator is width-generic inside them).
_RANGES: dict[str, tuple[int, int]] = {
    "core_width": (1, 4),
    "memory_ports": (1, 2),
    "fetch_width": (2, 8),
    "rob_size": (16, 128),
    "int_regs": (32, 128),
    "issue_slots": (4, 32),
    "dcache_ways": (1, 8),
}


@dataclass(frozen=True)
class BoomConfig:
    """One point in the BOOM configuration space.

    Validation admits the Table 10 values *and* the finer-grained
    :data:`EXTENDED_SPACE` axes the streaming DSE engine sweeps —
    structural parameters are range-checked (the generator handles any
    in-range value), while the branch predictor must name a known
    implementation.
    """

    branch_predictor: str = "tage-l"
    core_width: int = 2
    memory_ports: int = 1
    fetch_width: int = 4
    rob_size: int = 64
    int_regs: int = 80
    issue_slots: int = 16
    dcache_ways: int = 4

    def __post_init__(self):
        if self.branch_predictor not in BRANCH_PREDICTORS:
            raise ValueError(
                f"branch_predictor={self.branch_predictor!r} not one of "
                f"{BRANCH_PREDICTORS}")
        for f in fields(self):
            if f.name == "branch_predictor":
                continue
            value = getattr(self, f.name)
            lo, hi = _RANGES[f.name]
            if not isinstance(value, int) or not lo <= value <= hi:
                raise ValueError(
                    f"{f.name}={value!r} outside the supported range "
                    f"[{lo}, {hi}]")

    @property
    def name(self) -> str:
        return (f"boom_{self.branch_predictor}_w{self.core_width}"
                f"_m{self.memory_ports}_f{self.fetch_width}_r{self.rob_size}"
                f"_p{self.int_regs}_i{self.issue_slots}_c{self.dcache_ways}")


def full_design_space() -> list[BoomConfig]:
    """All 2592 Table 10 combinations, in deterministic order."""
    keys = list(TABLE10)
    combos = itertools.product(*(TABLE10[k] for k in keys))
    return [BoomConfig(**dict(zip(keys, combo))) for combo in combos]


# A BOOM-style space three orders of magnitude past Table 10 (~1.12M
# combinations): the same microarchitectural axes at a finer grain.
# ``BoomCore`` accepts any of these values — the grid exists for the
# streaming DSE engine, which never materializes it.
EXTENDED_SPACE: dict[str, tuple] = {
    "branch_predictor": BRANCH_PREDICTORS,
    "core_width": (1, 2, 3, 4),
    "memory_ports": (1, 2),
    "fetch_width": (2, 4, 6, 8),
    "rob_size": tuple(range(16, 129, 8)),      # 15 values
    "int_regs": tuple(range(32, 129, 8)),      # 13 values
    "issue_slots": tuple(range(4, 33, 2)),     # 15 values
    "dcache_ways": (1, 2, 4, 8),
}


def boom_grid():
    """The Table 10 space as a combinatorial :class:`ParameterGrid`."""
    from ..dse import ParameterGrid

    return ParameterGrid(dict(TABLE10))


def extended_grid():
    """The ~1.12M-point extended space as a :class:`ParameterGrid`."""
    from ..dse import ParameterGrid

    return ParameterGrid(dict(EXTENDED_SPACE))
