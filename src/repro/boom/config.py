"""BOOM design-space parameters (Table 10 of the paper)."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields

__all__ = ["BRANCH_PREDICTORS", "BoomConfig", "full_design_space", "TABLE10"]

BRANCH_PREDICTORS = ("tage-l", "boom2", "alpha21264")

# Table 10, verbatim: parameter -> possible values.
TABLE10: dict[str, tuple] = {
    "branch_predictor": BRANCH_PREDICTORS,
    "core_width": (1, 2, 3, 4),
    "memory_ports": (1, 2),
    "fetch_width": (4, 8),
    "rob_size": (32, 64, 96),
    "int_regs": (52, 80, 100),
    "issue_slots": (8, 16, 32),
    "dcache_ways": (4, 8),
}


@dataclass(frozen=True)
class BoomConfig:
    """One point in the 2592-design BOOM space."""

    branch_predictor: str = "tage-l"
    core_width: int = 2
    memory_ports: int = 1
    fetch_width: int = 4
    rob_size: int = 64
    int_regs: int = 80
    issue_slots: int = 16
    dcache_ways: int = 4

    def __post_init__(self):
        for f in fields(self):
            value = getattr(self, f.name)
            if value not in TABLE10[f.name]:
                raise ValueError(
                    f"{f.name}={value!r} not in Table 10 range {TABLE10[f.name]}")

    @property
    def name(self) -> str:
        return (f"boom_{self.branch_predictor}_w{self.core_width}"
                f"_m{self.memory_ports}_f{self.fetch_width}_r{self.rob_size}"
                f"_p{self.int_regs}_i{self.issue_slots}_c{self.dcache_ways}")


def full_design_space() -> list[BoomConfig]:
    """All 2592 Table 10 combinations, in deterministic order."""
    keys = list(TABLE10)
    combos = itertools.product(*(TABLE10[k] for k in keys))
    return [BoomConfig(**dict(zip(keys, combo))) for combo in combos]
