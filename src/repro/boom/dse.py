"""The BOOM design-space exploration (Section 5.6, Figure 8, Table 11).

Runs SNS predictions over the Table 10 space, scores each configuration
with the CoreMark model at its predicted frequency, extracts the Pareto
frontier, and selects the three paper-style designs: HighPerf (fastest),
PowerEff (best performance/power), and AreaEff (best performance/area).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core import SNS
from ..synth import Synthesizer
from .config import BoomConfig
from .generator import BoomCore
from .perf_model import CoreMarkModel

__all__ = ["DSEPoint", "DSEResult", "BoomDSE", "pareto_front"]


@dataclass(frozen=True)
class DSEPoint:
    """One evaluated configuration."""

    config: BoomConfig
    timing_ps: float
    area_um2: float
    power_mw: float
    score: float                 # normalized CoreMark (fastest = 1.0 post-normalize)

    @property
    def perf_per_watt(self) -> float:
        return self.score / self.power_mw if self.power_mw > 0 else 0.0

    @property
    def perf_per_area(self) -> float:
        return self.score / self.area_um2 if self.area_um2 > 0 else 0.0


@dataclass(frozen=True)
class DSEResult:
    points: tuple[DSEPoint, ...]
    runtime_s: float
    high_perf: DSEPoint
    power_eff: DSEPoint
    area_eff: DSEPoint
    # Populated by the budgeted path (BoomDSE.explore): the underlying
    # repro.dse.engine.EngineResult with the k-objective front, profile,
    # and finalists.
    engine_result: object = None

    @property
    def pareto_power(self) -> tuple[DSEPoint, ...]:
        """Pareto frontier in (power, score) space."""
        return pareto_front(self.points, lambda p: p.power_mw)

    @property
    def pareto_area(self) -> tuple[DSEPoint, ...]:
        """Pareto frontier in (area, score) space."""
        return pareto_front(self.points, lambda p: p.area_um2)


def pareto_front(points, cost_key) -> tuple[DSEPoint, ...]:
    """Points not dominated in (minimize cost, maximize score).

    Served by the incremental 2-objective front
    (:class:`repro.dse.pareto.ParetoFront`); output order (ascending
    cost) matches the old sort-based extraction exactly.
    """
    from ..dse.pareto import ParetoFront

    front = ParetoFront(2, maximize=(False, True))
    for p in points:
        front.add((cost_key(p), p.score), p)
    return tuple(front.items())


class BoomDSE:
    """Evaluate BOOM configurations with either SNS or the synthesizer."""

    def __init__(self, predictor: SNS | None = None,
                 synthesizer: Synthesizer | None = None,
                 perf_model: CoreMarkModel | None = None,
                 cache=None, batch_size: int = 32, frontend_cache=None):
        if (predictor is None) == (synthesizer is None):
            raise ValueError("provide exactly one of predictor / synthesizer")
        self.predictor = predictor
        self.synthesizer = synthesizer
        self.perf_model = perf_model or CoreMarkModel()
        if predictor is not None:
            from ..runtime import (BatchPredictor, FrontendCache,
                                   PredictionCache)

            self.frontend_cache = frontend_cache or FrontendCache()
            self._batch_engine = BatchPredictor(
                predictor, cache=cache or PredictionCache(),
                batch_size=batch_size, frontend_cache=self.frontend_cache)
        else:
            self.frontend_cache = None
            self._batch_engine = None

    # ------------------------------------------------------------------ #
    def _make_point(self, config: BoomConfig, timing: float, area: float,
                    power: float) -> DSEPoint:
        timing = max(timing, 1.0)
        freq = 1000.0 / timing
        score = self.perf_model.score(config, freq)
        return DSEPoint(config, timing, area, power, score)

    def evaluate(self, config: BoomConfig) -> DSEPoint:
        if self._batch_engine is not None:
            # Module in, compiled front end inside: flat elaboration and
            # sampled paths cached per configuration by the FrontendCache.
            pred = self._batch_engine.predict_batch([BoomCore(config)])[0]
            timing, area, power = pred.timing_ps, pred.area_um2, pred.power_mw
        else:
            result = self.synthesizer.synthesize(BoomCore(config).elaborate())
            timing, area, power = result.timing_ps, result.area_um2, result.power_mw
        return self._make_point(config, timing, area, power)

    def run(self, configs: list[BoomConfig], verbose: bool = False) -> DSEResult:
        """Evaluate all configs; scores are normalized so the best is 1.0.

        SNS-backed runs evaluate the whole space through the batched
        runtime: paths shared between sibling configurations (BOOM
        variants reuse most of their datapath) are predicted once, and
        the content-addressed cache makes re-running an overlapping
        sweep near-free.
        """
        if not configs:
            raise ValueError("no configurations to explore")
        start = time.perf_counter()
        if self._batch_engine is not None:
            cores = [BoomCore(config) for config in configs]
            if verbose:
                print(f"[boom-dse] batch-predicting {len(cores)} configs")
            preds = self._batch_engine.predict_batch(cores)
            points = [self._make_point(c, p.timing_ps, p.area_um2, p.power_mw)
                      for c, p in zip(configs, preds)]
        else:
            points = []
            for i, config in enumerate(configs):
                points.append(self.evaluate(config))
                if verbose and (i + 1) % 100 == 0:
                    print(f"[boom-dse] {i + 1}/{len(configs)} evaluated")
        top = max(p.score for p in points)
        normalized = [DSEPoint(p.config, p.timing_ps, p.area_um2, p.power_mw,
                               p.score / top) for p in points]
        return DSEResult(
            points=tuple(normalized),
            runtime_s=time.perf_counter() - start,
            high_perf=max(normalized, key=lambda p: p.score),
            power_eff=max(normalized, key=lambda p: p.perf_per_watt),
            area_eff=max(normalized, key=lambda p: p.perf_per_area),
        )

    # ------------------------------------------------------------------ #
    def explore(self, grid=None, budget: int = 4096,
                verbose: bool = False, **engine_config) -> "DSEResult":
        """Budgeted streaming exploration of a BOOM parameter grid.

        Instead of materializing and evaluating every configuration
        (:meth:`run` — the parity oracle), this drives the
        :class:`repro.dse.engine.ExplorationEngine`: seeded lazy
        sampling plus Pareto-guided proposals, surrogate screening, and
        chunked batched prediction, so spaces like the ~1.12M-point
        :func:`repro.boom.extended_grid` stay tractable.  ``grid``
        defaults to the Table 10 space; every
        :class:`~repro.dse.engine.EngineConfig` field is accepted as a
        keyword.  Returns a :class:`DSEResult` over the rung-1-evaluated
        configurations (scores normalized so the best is 1.0), with the
        engine result attached as ``result.engine_result``.
        """
        from ..dse.engine import EngineConfig, ExplorationEngine
        from .config import boom_grid

        if self.predictor is None:
            raise ValueError("budgeted exploration needs an SNS predictor")
        grid = grid if grid is not None else boom_grid()

        def factory(**params):
            return BoomCore(BoomConfig(**params))

        def score(params, timing_ps, area_um2, power_mw):
            return self.perf_model.score(BoomConfig(**params),
                                         1000.0 / max(timing_ps, 1.0))

        engine = ExplorationEngine(
            factory, self.predictor, grid, score=score,
            config=EngineConfig(budget=budget, **engine_config),
            frontend_cache=self.frontend_cache)
        eresult = engine.explore(verbose=verbose)

        points = [DSEPoint(BoomConfig(**p.params), p.timing_ps, p.area_um2,
                           p.power_mw, p.score) for p in eresult.points]
        top = max(p.score for p in points)
        normalized = [DSEPoint(p.config, p.timing_ps, p.area_um2, p.power_mw,
                               p.score / top) for p in points]
        return DSEResult(
            points=tuple(normalized),
            runtime_s=eresult.runtime_s,
            high_perf=max(normalized, key=lambda p: p.score),
            power_eff=max(normalized, key=lambda p: p.perf_per_watt),
            area_eff=max(normalized, key=lambda p: p.perf_per_area),
            engine_result=eresult,
        )
