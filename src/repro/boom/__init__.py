"""``repro.boom`` — the BOOM case study (Section 5.6).

A parameterizable out-of-order RISC-V core generator over the Table 10
parameter space (2592 configurations), a CoreMark-like analytic
performance model (the Chipyard cycle-accurate simulator substitute),
and the Pareto design-space exploration that produces Figure 8 and
Table 11.
"""

from .config import (BRANCH_PREDICTORS, EXTENDED_SPACE, TABLE10, BoomConfig,
                     boom_grid, extended_grid, full_design_space)
from .generator import BoomCore
from .perf_model import COREMARK, CoreMarkModel, WorkloadProfile
from .dse import BoomDSE, DSEPoint, DSEResult, pareto_front

__all__ = [
    "BRANCH_PREDICTORS", "TABLE10", "EXTENDED_SPACE", "BoomConfig",
    "full_design_space", "boom_grid", "extended_grid",
    "BoomCore",
    "COREMARK", "CoreMarkModel", "WorkloadProfile",
    "BoomDSE", "DSEPoint", "DSEResult", "pareto_front",
]
