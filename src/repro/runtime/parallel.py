"""Process-pool parallelism for the embarrassingly-parallel labeling path.

Building the Circuit Path Dataset (Table 5) spends almost all its time
in per-design work — path sampling plus one reference-synthesizer run
per sampled path — with no cross-design dependency except final dedup.
``parallel_sample_path_dataset`` fans designs out over a process pool
and merges worker outputs back in deterministic design order, so the
result is bit-identical to the serial builder regardless of worker
count or scheduling.

Seeding is deterministic per design: by default every design samples
with the sampler's own seed (exactly matching the serial builder); with
``per_design_seed=True`` each design's seed is derived from the base
seed and the design name via CRC-32, decorrelating sibling designs
while staying reproducible and order-independent.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import replace

from ..datagen.dataset import DesignRecord, PathRecord
from ..synth import Synthesizer

__all__ = ["derive_design_seed", "parallel_sample_path_dataset"]


def derive_design_seed(base_seed: int, design_name: str) -> int:
    """Deterministic per-design seed: stable across runs and processes."""
    return (base_seed * 0x9E3779B1 + zlib.crc32(design_name.encode())) % (2 ** 31)


def _label_one_design(args) -> list[PathRecord]:
    """Worker: sample one design's paths and synthesize a label for each.

    Dedup here is per-design only; the parent re-dedups globally in
    design order, so first-occurrence semantics match the serial builder.
    """
    record, sampler, synthesizer, seed = args
    if seed is not None:
        sampler = replace(sampler, seed=seed)
    seen: set[tuple[str, ...]] = set()
    out: list[PathRecord] = []
    for path in sampler.sample(record.graph):
        if path.tokens in seen:
            continue
        seen.add(path.tokens)
        label = synthesizer.synthesize_path(list(path.tokens))
        out.append(PathRecord(tokens=path.tokens, timing_ps=label.timing_ps,
                              area_um2=label.area_um2, power_mw=label.power_mw))
    return out


def parallel_sample_path_dataset(records: list[DesignRecord],
                                 sampler=None,
                                 synthesizer: Synthesizer | None = None,
                                 num_workers: int | None = None,
                                 per_design_seed: bool = False) -> list[PathRecord]:
    """Parallel drop-in for :func:`repro.datagen.dataset.sample_path_dataset`.

    ``num_workers=None`` uses the CPU count; ``num_workers<=1`` (or any
    pool failure, e.g. a restricted environment without process
    spawning) falls back to in-process execution with identical output.
    """
    if sampler is None:
        from ..core.sampler import PathSampler

        sampler = PathSampler()
    synthesizer = synthesizer or Synthesizer(effort="medium")
    if num_workers is None:
        num_workers = os.cpu_count() or 1
    num_workers = min(num_workers, len(records)) if records else 0

    jobs = [(record, sampler, synthesizer,
             derive_design_seed(sampler.seed, record.name)
             if per_design_seed else None)
            for record in records]

    per_design: list[list[PathRecord]]
    if num_workers > 1:
        try:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=num_workers) as pool:
                per_design = list(pool.map(_label_one_design, jobs))
        except Exception:
            # Pools can fail in sandboxed/importless environments; the
            # serial path produces the identical dataset.
            per_design = [_label_one_design(job) for job in jobs]
    else:
        per_design = [_label_one_design(job) for job in jobs]

    seen: set[tuple[str, ...]] = set()
    merged: list[PathRecord] = []
    for design_records in per_design:
        for path_record in design_records:
            if path_record.tokens in seen:
                continue
            seen.add(path_record.tokens)
            merged.append(path_record)
    return merged
