"""Process-pool parallelism for the embarrassingly-parallel labeling paths.

Building either dataset spends almost all its time in per-design work
with no cross-design dependency except final merge order:

- Circuit Path Dataset (Table 5): path sampling plus one synthesizer
  run per sampled path.  ``parallel_sample_path_dataset`` fans designs
  out over a process pool and merges worker outputs back in
  deterministic design order, so the result is bit-identical to the
  serial builder regardless of worker count or scheduling.
- Hardware Design Dataset (Table 4): one elaborate + synthesize per
  registry entry.  ``parallel_build_design_dataset`` uses the same
  ordered-map-with-serial-fallback shape, and additionally routes each
  entry through the disk-tier :class:`repro.synth.cache.SynthesisCache`
  when a ``cache_dir`` is given — workers share labels through the disk
  tier (atomic JSON writes), so concurrent duplicate synthesis is at
  worst wasted work, never corruption.

Seeding is deterministic per design: by default every design samples
with the sampler's own seed (exactly matching the serial builder); with
``per_design_seed=True`` each design's seed is derived from the base
seed and the design name via CRC-32, decorrelating sibling designs
while staying reproducible and order-independent.
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import replace

from ..datagen.dataset import DesignRecord, PathRecord
from ..synth import Synthesizer

__all__ = ["derive_design_seed", "parallel_sample_path_dataset",
           "parallel_build_design_dataset"]


def derive_design_seed(base_seed: int, design_name: str) -> int:
    """Deterministic per-design seed: stable across runs and processes."""
    return (base_seed * 0x9E3779B1 + zlib.crc32(design_name.encode())) % (2 ** 31)


def _label_one_design(args) -> list[PathRecord]:
    """Worker: sample one design's paths and synthesize a label for each.

    Dedup here is per-design only; the parent re-dedups globally in
    design order, so first-occurrence semantics match the serial builder.
    """
    record, sampler, synthesizer, seed = args
    if seed is not None:
        sampler = replace(sampler, seed=seed)
    seen: set[tuple[str, ...]] = set()
    unique: list[tuple[str, ...]] = []
    for path in sampler.sample(record.graph):
        if path.tokens in seen:
            continue
        seen.add(path.tokens)
        unique.append(path.tokens)
    labels = synthesizer.synthesize_path_batch([list(t) for t in unique])
    return [PathRecord(tokens=tokens, timing_ps=label.timing_ps,
                       area_um2=label.area_um2, power_mw=label.power_mw)
            for tokens, label in zip(unique, labels)]


def parallel_sample_path_dataset(records: list[DesignRecord],
                                 sampler=None,
                                 synthesizer: Synthesizer | None = None,
                                 num_workers: int | None = None,
                                 per_design_seed: bool = False) -> list[PathRecord]:
    """Parallel drop-in for :func:`repro.datagen.dataset.sample_path_dataset`.

    ``num_workers=None`` uses the CPU count; ``num_workers<=1`` (or any
    pool failure, e.g. a restricted environment without process
    spawning) falls back to in-process execution with identical output.
    """
    if sampler is None:
        from ..core.sampler import PathSampler

        sampler = PathSampler()
    synthesizer = synthesizer or Synthesizer(effort="medium")
    if num_workers is None:
        num_workers = os.cpu_count() or 1
    num_workers = min(num_workers, len(records)) if records else 0

    jobs = [(record, sampler, synthesizer,
             derive_design_seed(sampler.seed, record.name)
             if per_design_seed else None)
            for record in records]

    per_design: list[list[PathRecord]]
    if num_workers > 1:
        try:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=num_workers) as pool:
                per_design = list(pool.map(_label_one_design, jobs))
        except Exception:
            # Pools can fail in sandboxed/importless environments; the
            # serial path produces the identical dataset.
            per_design = [_label_one_design(job) for job in jobs]
    else:
        per_design = [_label_one_design(job) for job in jobs]

    seen: set[tuple[str, ...]] = set()
    merged: list[PathRecord] = []
    for design_records in per_design:
        for path_record in design_records:
            if path_record.tokens in seen:
                continue
            seen.add(path_record.tokens)
            merged.append(path_record)
    return merged


# ---------------------------------------------------------------------- #
# Hardware Design Dataset fan-out
# ---------------------------------------------------------------------- #

# One SynthesisCache per cache directory per process: worker processes
# are reused across map items, so the memory tier amortizes repeated
# disk reads within a worker while the disk tier shares across workers.
_SYNTH_CACHES: dict[str, object] = {}


def _design_cache(cache_dir):
    if cache_dir is None:
        return None
    key = str(cache_dir)
    cache = _SYNTH_CACHES.get(key)
    if cache is None:
        from ..synth.cache import SynthesisCache

        cache = _SYNTH_CACHES[key] = SynthesisCache(disk_dir=cache_dir)
    return cache


def _synthesize_one_entry(args):
    """Worker: elaborate + synthesize (or cache-replay) one registry entry.

    Returns ``(record_or_None, seconds, hit)`` where ``record`` is None
    for entries skipped by ``max_nodes`` and ``hit`` is None when no
    cache is configured (or the entry was skipped), else True/False.
    """
    entry, synthesizer, max_nodes, cache_dir = args
    start = time.perf_counter()
    graph = entry.module.elaborate()
    if max_nodes is not None and graph.num_nodes > max_nodes:
        return None, time.perf_counter() - start, None
    cache = _design_cache(cache_dir)
    result = None
    hit = None
    if cache is not None:
        result = cache.get(graph, synthesizer.library, synthesizer.effort)
        hit = result is not None
    if result is None:
        result = synthesizer.synthesize(graph)
        if cache is not None:
            cache.put(graph, synthesizer.library, synthesizer.effort, result)
    record = DesignRecord(
        name=entry.name,
        family=entry.family,
        graph=graph,
        timing_ps=result.timing_ps,
        area_um2=result.area_um2,
        power_mw=result.power_mw,
    )
    return record, time.perf_counter() - start, hit


def parallel_build_design_dataset(entries,
                                  synthesizer: Synthesizer | None = None,
                                  max_nodes: int | None = None,
                                  num_workers: int | None = None,
                                  cache_dir=None):
    """Fan :func:`repro.datagen.dataset.build_design_dataset` over a pool.

    Workers are mapped in entry order and merged in entry order, so the
    record list is bit-identical to the serial builder.  Returns
    ``(records, per_entry, num_workers)`` where ``per_entry`` holds one
    ``(name, seconds, hit)`` triple per registry entry (including
    ``max_nodes``-skipped ones, with ``hit=None``) for profiling.
    ``num_workers=None`` uses the CPU count; pool failures fall back to
    in-process execution with identical output.
    """
    synthesizer = synthesizer or Synthesizer(effort="medium")
    if num_workers is None:
        num_workers = os.cpu_count() or 1
    num_workers = max(1, min(num_workers, len(entries))) if entries else 1

    jobs = [(entry, synthesizer, max_nodes, cache_dir) for entry in entries]
    if num_workers > 1:
        try:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=num_workers) as pool:
                results = list(pool.map(_synthesize_one_entry, jobs))
        except Exception:
            results = [_synthesize_one_entry(job) for job in jobs]
    else:
        results = [_synthesize_one_entry(job) for job in jobs]

    records = [record for record, _, _ in results if record is not None]
    per_entry = [(entry.name, seconds, hit)
                 for entry, (_, seconds, hit) in zip(entries, results)]
    return records, per_entry, num_workers
