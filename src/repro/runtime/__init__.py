"""``repro.runtime`` — the throughput-oriented inference runtime.

Layers a batched, cached serving engine over the core SNS predictor:

- :class:`BatchPredictor` — cross-design path dedup + length-bucketed
  pooled forward passes, bit-identical to serial ``SNS.predict``.
- :class:`PredictionCache` — content-addressed (graph, weights, sampler,
  activity) cache with an in-memory LRU tier and an optional disk tier.
- :class:`TrainingEngine` — length-bucketed minibatching with fused
  in-place optimizer steps, graph-freeing backward, and epoch-persistent
  encodings (:class:`PreparedPathDataset` / :class:`EncodingCache`),
  reporting per-phase :class:`TrainerProfile` timings.
- :func:`parallel_sample_path_dataset` /
  :func:`parallel_build_design_dataset` — process-pool label generation
  for the Circuit Path and Hardware Design Datasets.
- :class:`FrontendCache` / :func:`compile_source` / :func:`compile_module`
  — the content-addressed compiled front end (source -> CompiledGraph
  -> sampled paths) with per-stage :class:`FrontendProfile` timings.
- Fingerprint helpers for cache keying and invalidation.
"""

from .cache import CacheStats, PredictionCache
from .engine import BatchPredictor, resolve_activity_maps
from .frontend import (
    DeltaElaborator,
    FrontendCache,
    FrontendProfile,
    compile_design,
    compile_module,
    compile_source,
    compile_source_profiled,
    fingerprint_frontend_module,
    fingerprint_frontend_source,
)
from .fingerprint import (
    cache_key,
    fingerprint_activity,
    fingerprint_graph,
    fingerprint_library,
    fingerprint_model,
    fingerprint_sampler,
)
from .parallel import (derive_design_seed, parallel_build_design_dataset,
                       parallel_sample_path_dataset)
from .trainer import (EncodingCache, PreparedPathDataset, TrainerProfile,
                      TrainingEngine)

__all__ = [
    "BatchPredictor", "resolve_activity_maps",
    "PredictionCache", "CacheStats",
    "TrainingEngine", "PreparedPathDataset", "EncodingCache", "TrainerProfile",
    "cache_key", "fingerprint_activity", "fingerprint_graph",
    "fingerprint_library", "fingerprint_model", "fingerprint_sampler",
    "derive_design_seed", "parallel_sample_path_dataset",
    "parallel_build_design_dataset",
    "FrontendCache", "FrontendProfile", "DeltaElaborator",
    "compile_design", "compile_module", "compile_source",
    "compile_source_profiled",
    "fingerprint_frontend_module", "fingerprint_frontend_source",
]
