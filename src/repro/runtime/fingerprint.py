"""Content-addressed fingerprints for the prediction cache.

A cached prediction is valid only while three things are unchanged: the
design (graph structure), the model (every trained weight and scaler),
and the sampler configuration (which paths get sampled).  Each gets its
own SHA-256 fingerprint; :func:`cache_key` combines them — so mutating a
single weight, re-seeding the sampler, or editing one node of the design
each yields a different key and an automatic cache miss.
"""

from __future__ import annotations

import hashlib
import json
import struct
import weakref
import zlib

import numpy as np

from ..graphir import CircuitGraph

__all__ = [
    "fingerprint_graph",
    "fingerprint_model",
    "fingerprint_sampler",
    "fingerprint_activity",
    "fingerprint_library",
    "cache_key",
]


def fingerprint_graph(graph: CircuitGraph) -> str:
    """SHA-256 over the graph's structure (nodes, widths, edges).

    The design *name* is deliberately excluded: two parameter sweeps that
    elaborate to identical hardware share one cache entry regardless of
    what they were called.

    A :class:`repro.graphir.CompiledGraph` hashes its own arrays
    directly (byte-identical digest — asserted per registry design by
    the compiled-graph test suite), so PR-1 disk caches stay valid.
    """
    if not isinstance(graph, CircuitGraph):
        return graph.fingerprint()
    h = hashlib.sha256(b"graph:v2")
    nodes = sorted(graph.nodes(), key=lambda n: n.node_id)
    ids_widths = np.array([(n.node_id, n.width) for n in nodes], np.int64)
    h.update(ids_widths.tobytes())
    h.update("\x00".join(n.node_type for n in nodes).encode())
    edges = sorted(graph.edges())
    h.update(np.array(edges, np.int64).tobytes())
    return h.hexdigest()


def _update_with_arrays(h, named_arrays) -> None:
    # Each array contributes (name, dtype, shape, CRC-32 of its raw
    # buffer) to the running SHA-256.  CRC-32 reads the weight bytes at
    # memory-bandwidth speed (hardware-accelerated, no copy via
    # memoryview), so fingerprinting a 100 MB model costs ~30 ms instead
    # of ~170 ms — this runs on every cached predict_batch call.  Any
    # single-bit weight change still flips the combined digest; the
    # 2^-32 per-array collision odds only risk a stale cache entry, not
    # correctness of fresh predictions.
    for name, value in named_arrays:
        arr = np.ascontiguousarray(value)
        h.update(name.encode())
        h.update(str(arr.dtype).encode())
        h.update(struct.pack("<q", arr.ndim) + struct.pack(f"<{arr.ndim}q", *arr.shape))
        flat = arr.reshape(-1)
        h.update(struct.pack("<I", zlib.crc32(memoryview(flat).cast("B"))))


# Memoized model fingerprints: hashing ~100 MB of weights costs ~30 ms,
# which would dominate a warm-cache predict_batch call.  The token below
# captures every Parameter's (identity, version) — the version counter
# bumps on any .data assignment, including optimizer steps and state-dict
# loads — plus the identity and buffer address of each non-Parameter
# scaler array (those are only ever *replaced*, by fit()).  The cache
# entry keeps strong references to the tokenized objects so their ids
# cannot be recycled while the entry is live.
_MODEL_FP_CACHE: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()


def _model_token(sns):
    refs = sns.circuitformer.parameters()
    parts = [(id(p), p.version) for p in refs]
    arrays = [sns.circuitformer.scaler.mean, sns.circuitformer.scaler.std]
    parts.append(len(sns.aggregators))
    for agg in sns.aggregators:
        agg_params = agg.parameters()
        parts += [(id(p), p.version) for p in agg_params]
        refs += agg_params
        arrays += [agg.area_weights, agg.energy_weights, agg.input_mean,
                   agg.input_std, agg.residual_mean, agg.residual_std]
        parts.append(float(agg.timing_scale))
    for a in arrays:
        arr = np.asarray(a)
        parts.append((id(a), arr.ctypes.data if arr.ndim else float(arr)))
        refs.append(a)
    return tuple(parts), refs


def fingerprint_model(sns) -> str:
    """SHA-256 over every trained parameter and scaler of an SNS predictor.

    Covers the Circuitformer weights and target scaler plus each ensemble
    aggregator's MLP weights, physics-layer weights, and input/residual
    scalers — any weight mutation (retraining, fine-tuning, manual edits)
    changes the fingerprint and invalidates cached predictions.  Repeat
    calls on an unchanged model return a memoized digest (see
    ``_MODEL_FP_CACHE``); only a weight assignment triggers re-hashing.
    """
    token, refs = _model_token(sns)
    cached = _MODEL_FP_CACHE.get(sns)
    if cached is not None and cached[0] == token:
        return cached[2]
    h = hashlib.sha256(b"model:v1")
    _update_with_arrays(h, sorted(sns.circuitformer.state_dict().items()))
    _update_with_arrays(h, [("cf_scaler_mean", sns.circuitformer.scaler.mean),
                            ("cf_scaler_std", sns.circuitformer.scaler.std)])
    h.update(struct.pack("<q", len(sns.aggregators)))
    for i, agg in enumerate(sns.aggregators):
        prefix = f"agg{i}:"
        _update_with_arrays(h, ((prefix + k, v)
                                for k, v in sorted(agg.state_dict().items())))
        _update_with_arrays(h, [
            (prefix + "area_weights", agg.area_weights),
            (prefix + "energy_weights", agg.energy_weights),
            (prefix + "input_mean", agg.input_mean),
            (prefix + "input_std", agg.input_std),
            (prefix + "residual_mean", agg.residual_mean),
            (prefix + "residual_std", agg.residual_std),
        ])
        h.update(struct.pack("<d", agg.timing_scale))
    digest = h.hexdigest()
    _MODEL_FP_CACHE[sns] = (token, refs, digest)
    return digest


def fingerprint_sampler(sampler) -> str:
    """SHA-256 over the path-sampler configuration."""
    payload = json.dumps({"k": sampler.k, "max_len": sampler.max_len,
                          "max_paths": sampler.max_paths, "seed": sampler.seed},
                         sort_keys=True)
    return hashlib.sha256(b"sampler:v1" + payload.encode()).hexdigest()


def fingerprint_library(library) -> str:
    """SHA-256 over a :class:`~repro.synth.library.TechLibrary`'s cost basis.

    Covers every unit-cost knob the library exposes (gate area/delay/
    energy/leakage plus the flip-flop constants); two libraries with the
    same knobs produce identical labels, so they share cache entries
    regardless of their names... except the name *is* included — named
    libraries are calibration points and renames are rare, while silently
    sharing entries across differently-named libraries would make cache
    bugs invisible.
    """
    payload = json.dumps({
        "name": library.name,
        "gate_area": library.gate_area,
        "gate_delay": library.gate_delay,
        "gate_energy": library.gate_energy,
        "gate_leakage": library.gate_leakage,
        "dff_setup": library.dff_setup,
        "dff_clk_q": library.dff_clk_q,
    }, sort_keys=True)
    return hashlib.sha256(b"library:v1" + payload.encode()).hexdigest()


def fingerprint_activity(activity: dict[int, float] | None) -> str:
    """SHA-256 over a register-activity map (power gating input)."""
    if not activity:
        return "none"
    payload = json.dumps(sorted((int(k), float(v)) for k, v in activity.items()))
    return hashlib.sha256(b"activity:v1" + payload.encode()).hexdigest()


def cache_key(graph_fp: str, model_fp: str, sampler_fp: str,
              activity_fp: str = "none") -> str:
    """Combine component fingerprints into one cache key.

    Delegates to :func:`repro.store.keys.prediction_key` — the unified
    key schema — with an unchanged byte layout, so entries written by
    earlier revisions keep their addresses.
    """
    from ..store.keys import prediction_key

    return prediction_key(graph_fp, model_fp, sampler_fp, activity_fp)
