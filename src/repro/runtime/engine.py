"""The batched, cached inference engine over a trained SNS predictor.

``BatchPredictor.predict_batch`` is the throughput path the paper's
headline numbers (Figure 7) and every DSE driver depend on.  It differs
from looping ``SNS.predict`` in three ways:

1. **Global path dedup** — sampled paths are deduplicated *across* the
   whole batch, so the hundreds of identical paths that sibling DSE
   configurations share are predicted once and broadcast.
2. **Length-bucketed forward passes** — unique sequences from every
   design are pooled and run through
   :meth:`~repro.core.circuitformer.Circuitformer.predict_unique`, whose
   bucket-padded batches avoid padding a 4-token path to the longest
   path in the pool.  The kernel is batch-composition invariant, so the
   engine's predictions are bit-identical to serial ``SNS.predict``.
3. **Content-addressed caching** — each (graph, model weights, sampler
   config, activity map) tuple is fingerprinted; repeat evaluations skip
   sampling and inference entirely, and any weight or config change
   invalidates automatically.
"""

from __future__ import annotations

import time
import warnings

import numpy as np

from ..core.predictor import SNS, SNSPrediction
from ..core.sampler import SampledPath
from .cache import PredictionCache
from .fingerprint import (cache_key, fingerprint_activity, fingerprint_graph,
                          fingerprint_model, fingerprint_sampler)

__all__ = ["BatchPredictor", "resolve_activity_maps"]


def resolve_activity_maps(graphs, activity_maps) -> list[dict | None]:
    """Match activity maps to designs by elaborated graph name.

    ``activity_maps`` may be a dict keyed by design name or a sequence
    aligned with ``graphs`` (one entry per design, ``None`` allowed).
    Dict keys that match no design raise a ``UserWarning`` instead of
    being silently dropped.
    """
    if not activity_maps:
        return [None] * len(graphs)
    if isinstance(activity_maps, (list, tuple)):
        if len(activity_maps) != len(graphs):
            raise ValueError(
                f"got {len(activity_maps)} activity maps for {len(graphs)} designs")
        resolved = list(activity_maps)
        # A sequence entry that is a non-empty dict of all-None values is
        # almost always a misplaced *name-keyed* mapping (the dict form)
        # riding in the sequence slot: {"alu": None} at position i means
        # "no activity" only if the design at i IS "alu".  Normalize to
        # None and warn when the keys don't match that design's name.
        for i, entry in enumerate(resolved):
            if (isinstance(entry, dict) and entry
                    and all(v is None for v in entry.values())):
                if set(entry) != {graphs[i].name}:
                    warnings.warn(
                        f"activity map for design {graphs[i].name!r} "
                        f"(position {i}) is a dict of all-None values keyed "
                        f"{sorted(entry)} — it looks like a name-keyed "
                        "mapping passed in sequence form; treating it as "
                        "no activity", UserWarning, stacklevel=3)
                resolved[i] = None
        return resolved
    names = [g.name for g in graphs]
    unmatched = set(activity_maps) - set(names)
    if unmatched:
        warnings.warn(
            "activity maps matched no design and were ignored: "
            f"{sorted(unmatched)}", UserWarning, stacklevel=3)
    return [activity_maps.get(name) for name in names]


def _entry_from_parts(timing: float, area: float, power: float,
                      num_paths: int, spread: dict | None,
                      critical: SampledPath | None) -> dict:
    """Serialize one prediction into the cache's JSON-friendly schema."""
    return {
        "timing_ps": timing,
        "area_um2": area,
        "power_mw": power,
        "num_paths": num_paths,
        "spread": spread,
        "critical": None if critical is None else {
            "node_ids": list(critical.node_ids),
            "tokens": list(critical.tokens),
        },
    }


def _prediction_from_entry(entry: dict, design_name: str,
                           runtime_s: float) -> SNSPrediction:
    critical = entry.get("critical")
    return SNSPrediction(
        design=design_name,
        timing_ps=float(entry["timing_ps"]),
        area_um2=float(entry["area_um2"]),
        power_mw=float(entry["power_mw"]),
        runtime_s=runtime_s,
        num_paths=int(entry["num_paths"]),
        critical_path=None if critical is None else SampledPath(
            node_ids=tuple(critical["node_ids"]),
            tokens=tuple(critical["tokens"])),
        spread=None if entry.get("spread") is None
        else {k: float(v) for k, v in entry["spread"].items()},
    )


class BatchPredictor:
    """Throughput-oriented batch inference over a trained :class:`SNS`.

    Parameters
    ----------
    sns:
        A fitted predictor; the engine never mutates it.
    cache:
        A :class:`PredictionCache` (defaults to a fresh in-memory LRU).
        Pass ``cache=None`` explicitly via ``caching=False`` to disable.
    batch_size:
        Forward-pass chunk size handed to ``predict_unique``.  The
        default 32 keeps each flattened GEMM inside the CPU cache; on a
        pooled bucket it measures ~25% faster than 128-row chunks, and
        the kernel's output is chunk-size independent.
    caching:
        Set False to skip fingerprinting and cache lookups entirely.
    encoding_cache:
        Optional :class:`repro.runtime.trainer.EncodingCache` handed to
        ``predict_unique`` so repeated bucket chunks skip re-encoding —
        share the training engine's cache to reuse epoch encodings at
        serving time.
    executor:
        Route inference through a compiled
        :class:`~repro.core.circuitformer.CircuitformerExecutor`: one
        static kernel schedule per padded bucket shape, traced on first
        use and replayed for every later chunk of that shape.  At
        ``precision="fp64"`` (default) the compiled path is bit-identical
        to the dynamic one, so cached entries remain valid across modes.
    precision:
        Executor arithmetic: ``"fp64"``, ``"fp32"``, or the weight-only
        quantized ``"int8"`` (see :mod:`repro.nn.executor`).  Reduced
        precisions change outputs within a gated tolerance, so they are
        fingerprinted into the cache key.
    threads:
        Executor bucket-parallelism (independent padded buckets run on a
        thread pool; the merged output is bitwise equal to serial).
    """

    def __init__(self, sns: SNS, cache: PredictionCache | None = None,
                 batch_size: int = 32, caching: bool = True,
                 encoding_cache=None, frontend_cache=None,
                 executor: bool = False, precision: str = "fp64",
                 threads: int = 1):
        self.sns = sns
        self.caching = caching
        self.cache = (cache if cache is not None else PredictionCache()) \
            if caching else None
        self.batch_size = batch_size
        self.encoding_cache = encoding_cache
        # Optional repro.runtime.FrontendCache: Modules skip elaboration
        # on repeat configurations and sampled paths replay from the
        # (graph content x sampler) tier.
        self.frontend_cache = frontend_cache
        self.precision = precision
        self._executor = (sns.circuitformer.compile_executor(
            precision=precision, threads=threads) if executor else None)

    # ------------------------------------------------------------------ #
    def predict_batch(self, designs, activity_maps=None) -> list[SNSPrediction]:
        """Predict a batch of designs; results align with the input order.

        Per-design ``runtime_s`` is the batch wall-clock divided evenly
        across the batch — the quantity that matters for throughput
        accounting (designs/sec), since the whole point of batching is
        that per-design cost is amortized.
        """
        designs = list(designs)
        if not designs:
            return []
        if not self.sns._fitted:
            raise RuntimeError("SNS.fit() must run before batch prediction")
        start = time.perf_counter()

        # All design forms normalize to CompiledGraph: flat builder
        # elaboration for Modules (through the front-end cache when one
        # is attached), instance-memoized compile for CircuitGraphs.
        from .frontend import compile_design

        graphs = [compile_design(d, self.frontend_cache) for d in designs]
        activities = resolve_activity_maps(graphs, activity_maps)

        results: list[SNSPrediction | None] = [None] * len(graphs)
        keys: list[str | None] = [None] * len(graphs)
        pending: dict[str | int, list[int]] = {}
        if self.caching:
            model_fp = fingerprint_model(self.sns)
            if self._executor is not None and self.precision != "fp64":
                # Reduced-precision outputs differ (within the gated
                # tolerance) from fp64, so they get their own cache rows.
                model_fp = f"{model_fp}:{self.precision}"
            sampler_fp = fingerprint_sampler(self.sns.sampler)
            for i, (graph, activity) in enumerate(zip(graphs, activities)):
                keys[i] = cache_key(fingerprint_graph(graph), model_fp,
                                    sampler_fp, fingerprint_activity(activity))
                entry = self.cache.get(keys[i])
                if entry is not None:
                    results[i] = entry
                else:
                    # Identical (graph, activity) pairs inside one batch
                    # collapse onto one computation.
                    pending.setdefault(keys[i], []).append(i)
        else:
            for i in range(len(graphs)):
                pending[i] = [i]

        # ---- sample the misses, dedup sequences across the whole batch
        group_paths: dict[str | int, list[SampledPath]] = {}
        unique: dict[tuple[str, ...], int] = {}
        group_index: dict[str | int, list[int]] = {}
        for key, members in pending.items():
            if self.frontend_cache is not None:
                paths = self.frontend_cache.sample(graphs[members[0]],
                                                   self.sns.sampler)
            else:
                paths = self.sns.sampler.sample(graphs[members[0]])
            group_paths[key] = paths
            group_index[key] = [
                unique.setdefault(p.tokens, len(unique)) for p in paths]

        # ---- one pooled, bucketed inference pass over unique sequences
        physical = (self.sns.circuitformer.predict_unique(
            list(unique), batch_size=self.batch_size,
            encoding_cache=self.encoding_cache, executor=self._executor)
            if unique else np.zeros((0, 3)))

        # ---- aggregate per pending group, fill every member
        for key, members in pending.items():
            first = members[0]
            paths = group_paths[key]
            preds = physical[group_index[key]]
            timing, area, power, spread, critical = self.sns._aggregate(
                graphs[first], paths, preds, activities[first])
            entry = _entry_from_parts(timing, area, power, len(paths),
                                      spread, critical)
            if self.caching:
                self.cache.put(key, entry)
            for i in members:
                results[i] = entry

        per_design = (time.perf_counter() - start) / len(graphs)
        return [_prediction_from_entry(entry, graphs[i].name, per_design)
                for i, entry in enumerate(results)]
