"""The content-addressed prediction cache — a thin adapter over
:class:`repro.store.ArtifactStore`.

Values are plain JSON-serializable dicts (see
:meth:`repro.runtime.engine.BatchPredictor` for the schema) stored under
the ``prediction`` artifact kind.  Constructed with ``disk_dir`` it
mounts the legacy flat directory layout (bit-compatible with entries
written by earlier revisions); constructed with ``store`` it shares one
:class:`ArtifactStore` — and therefore one persistent backend and one
set of LRU tiers — with the front-end and synthesis caches, which is
how many serve workers and datagen processes make every warm hit
cluster-wide.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..store import ArtifactStore, DirectoryBackend

__all__ = ["CacheStats", "PredictionCache"]


@dataclass
class CacheStats:
    """Hit/miss counters (memory and disk tiers counted separately)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {"memory_hits": self.memory_hits, "disk_hits": self.disk_hits,
                "misses": self.misses, "hit_rate": self.hit_rate}


class PredictionCache:
    """Two-tier (memory LRU, optional persistent) prediction store.

    Parameters
    ----------
    max_entries:
        In-memory LRU capacity (ignored when ``store`` is shared).
    disk_dir:
        Optional directory for a private persistent tier in the legacy
        flat layout; a disk hit is promoted back into the memory tier.
    store:
        Optional shared :class:`ArtifactStore` to adapt instead of
        owning a private one.
    """

    KIND = "prediction"

    def __init__(self, max_entries: int = 4096,
                 disk_dir: str | Path | None = None,
                 store: ArtifactStore | None = None):
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        if store is None:
            backend = (DirectoryBackend(self.disk_dir, flat=True)
                       if self.disk_dir is not None else None)
            store = ArtifactStore(max_entries=max_entries, backend=backend)
        self.store = store
        self.max_entries = store.max_entries

    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> CacheStats:
        """Atomic snapshot of this cache's (kind-scoped) counters."""
        c = self.store.counters((self.KIND,))
        return CacheStats(memory_hits=c["memory_hits"] + c["object_hits"],
                          disk_hits=c["persistent_hits"],
                          misses=c["misses"])

    def get(self, key: str) -> dict | None:
        """Look up ``key``; returns the cached dict or ``None`` on miss."""
        return self.store.get(self.KIND, key)

    def get_many(self, keys: list[str]) -> dict[str, dict]:
        """Batched lookup — one backend round trip for the misses."""
        return self.store.get_many(self.KIND, keys)

    def put(self, key: str, value: dict) -> None:
        """Store ``value`` in the memory tier (and backend if attached).

        Persistent writes are safe under concurrent writers from any
        number of threads or processes: the directory backend stages
        into uniquely-named temp files and publishes with an atomic
        rename; the SQLite backend inserts write-once rows — readers
        only ever see complete payloads.
        """
        self.store.put(self.KIND, key, value)

    def put_many(self, items: dict[str, dict]) -> None:
        self.store.put_many(self.KIND, items)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.store.memory_len(self.KIND)

    def __contains__(self, key: str) -> bool:
        return self.store.contains(self.KIND, key)

    def clear(self, memory_only: bool = True) -> None:
        """Drop the memory tier (and the persistent tier if requested)."""
        self.store.clear(memory_only=memory_only)
