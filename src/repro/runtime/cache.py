"""The content-addressed prediction cache (memory LRU + optional disk).

Values are plain JSON-serializable dicts (see
:meth:`repro.runtime.engine.BatchPredictor` for the schema), so the disk
tier is just one small JSON file per key under ``disk_dir``.  The
in-memory tier is an LRU bounded by ``max_entries``; the disk tier is
unbounded and survives across processes, which is what makes repeated
DSE sweeps of overlapping configuration spaces near-free.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

# Distinct temp-file names for concurrent writers of the same key: the
# pid separates processes, the counter separates threads.  A shared
# ``path + ".tmp"`` would let two writers interleave on one temp file
# and publish a torn entry.
_TMP_COUNTER = itertools.count()

__all__ = ["CacheStats", "PredictionCache"]


@dataclass
class CacheStats:
    """Hit/miss counters (memory and disk tiers counted separately)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {"memory_hits": self.memory_hits, "disk_hits": self.disk_hits,
                "misses": self.misses, "hit_rate": self.hit_rate}


class PredictionCache:
    """Two-tier (memory LRU, optional disk) store for cached predictions.

    Parameters
    ----------
    max_entries:
        In-memory LRU capacity; the least-recently-used entry is evicted
        once exceeded.
    disk_dir:
        Optional directory for the persistent tier.  Created on first
        write; a disk hit is promoted back into the memory tier.
    """

    def __init__(self, max_entries: int = 4096,
                 disk_dir: str | Path | None = None):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1: {max_entries}")
        self.max_entries = max_entries
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.stats = CacheStats()
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def _disk_path(self, key: str) -> Path:
        # Two-level fanout keeps directories small for big sweeps.
        return self.disk_dir / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """Look up ``key``; returns the cached dict or ``None`` on miss."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.memory_hits += 1
                return self._entries[key]
        if self.disk_dir is not None:
            path = self._disk_path(key)
            try:
                value = json.loads(path.read_text())
            except (OSError, ValueError):
                value = None
            if value is not None:
                with self._lock:
                    self.stats.disk_hits += 1
                    self._insert(key, value)
                return value
        with self._lock:
            self.stats.misses += 1
        return None

    def put(self, key: str, value: dict) -> None:
        """Store ``value`` in the memory tier (and disk tier if enabled).

        The disk write is safe under concurrent writers from any number
        of threads or processes: each writer stages into its own
        uniquely-named temp file and publishes with an atomic rename, so
        readers only ever see complete JSON (last writer wins — the
        values are content-addressed, so every writer carries the same
        payload anyway).
        """
        with self._lock:
            self._insert(key, value)
        if self.disk_dir is not None:
            path = self._disk_path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.parent / \
                f".{key}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp"
            try:
                tmp.write_text(json.dumps(value))
                tmp.replace(path)  # atomic publish
            except OSError:
                tmp.unlink(missing_ok=True)
                raise

    def _insert(self, key: str, value: dict) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._entries:
                return True
        return (self.disk_dir is not None and self._disk_path(key).is_file())

    def clear(self, memory_only: bool = True) -> None:
        """Drop the memory tier (and the disk tier if requested)."""
        with self._lock:
            self._entries.clear()
        if not memory_only and self.disk_dir is not None and self.disk_dir.is_dir():
            for path in self.disk_dir.glob("*/*.json"):
                path.unlink(missing_ok=True)
            for path in self.disk_dir.glob("*/.*.tmp"):
                path.unlink(missing_ok=True)  # crashed writers' staging files
