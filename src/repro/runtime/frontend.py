"""The compiled front end: source -> :class:`CompiledGraph` (+ paths), cached.

This is the driver layer over the pieces introduced by the compiled
front-end work:

- :func:`compile_source` / :func:`compile_module` elaborate straight
  into a flat :class:`repro.graphir.GraphBuilder` and return a
  :class:`CompiledGraph` (CSR adjacency, int-coded tokens) — the form
  the array path sampler and vectorized statistics consume.
- :class:`FrontendCache` content-addresses the whole front end: a
  fingerprint of (source text x top x defines) — or (module class
  source x parameters) — short-circuits to a serialized CompiledGraph,
  and a second tier keyed on (graph content x sampler config) replays
  previously sampled paths.  Both engines of the sampler are
  bit-identical, so replayed paths equal a fresh sample exactly.
- :class:`FrontendProfile` times each stage (lex / parse / elaborate /
  compile / sample) for the ``repro compile --profile`` CLI verb.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import time
from dataclasses import dataclass
from pathlib import Path

from ..graphir import CircuitGraph, CompiledGraph, as_compiled, compile_graph
from ..store import ArtifactStore, DirectoryBackend
from .fingerprint import fingerprint_sampler

__all__ = [
    "FrontendProfile",
    "FrontendCache",
    "DeltaElaborator",
    "fingerprint_frontend_source",
    "fingerprint_frontend_module",
    "compile_source",
    "compile_source_profiled",
    "compile_module",
    "compile_design",
]


# ---------------------------------------------------------------------- #
@dataclass
class FrontendProfile:
    """Per-stage wall-clock timings of one front-end run (seconds)."""

    lex_s: float = 0.0
    parse_s: float = 0.0
    elaborate_s: float = 0.0
    compile_s: float = 0.0
    sample_s: float = 0.0
    cache_hit: bool = False

    @property
    def total_s(self) -> float:
        return (self.lex_s + self.parse_s + self.elaborate_s
                + self.compile_s + self.sample_s)

    def as_dict(self) -> dict:
        return {"lex_s": self.lex_s, "parse_s": self.parse_s,
                "elaborate_s": self.elaborate_s, "compile_s": self.compile_s,
                "sample_s": self.sample_s, "total_s": self.total_s,
                "cache_hit": self.cache_hit}

    def format(self) -> str:
        lines = [f"  {name:<10} {value * 1e3:9.2f} ms"
                 for name, value in (("lex", self.lex_s),
                                     ("parse", self.parse_s),
                                     ("elaborate", self.elaborate_s),
                                     ("compile", self.compile_s),
                                     ("sample", self.sample_s))
                 if value]
        lines.append(f"  {'total':<10} {self.total_s * 1e3:9.2f} ms"
                     + ("  (cache hit)" if self.cache_hit else ""))
        return "\n".join(lines)


# ---------------------------------------------------------------------- #
# Front-end fingerprints: what the compile cache keys on.
# ---------------------------------------------------------------------- #
def fingerprint_frontend_source(source: str, top: str | None = None,
                                defines: dict[str, str] | None = None) -> str:
    """SHA-256 over (source text, top module, preprocessor defines).

    Callers that use ``include_paths`` must pass the *preprocessed*
    text (as :func:`compile_source` does) so that edits to included
    files change the fingerprint.
    """
    h = hashlib.sha256(b"frontend-src:v1")
    h.update(source.encode())
    h.update(b"\x00")
    h.update((top or "").encode())
    h.update(b"\x00")
    h.update(json.dumps(sorted((defines or {}).items())).encode())
    return h.hexdigest()


_MODULE_SOURCE_FP: dict[type, str] = {}


def _class_source_fp(cls: type) -> str:
    """SHA-256 of a class's source text, memoized per class.

    Classes whose source is unavailable (defined in a REPL) fall back to
    the qualified name, trading cross-process safety for availability.
    """
    cls_fp = _MODULE_SOURCE_FP.get(cls)
    if cls_fp is None:
        try:
            text = inspect.getsource(cls)
        except (OSError, TypeError):
            text = f"{cls.__module__}.{cls.__qualname__}"
        cls_fp = hashlib.sha256(text.encode()).hexdigest()
        _MODULE_SOURCE_FP[cls] = cls_fp
    return cls_fp


def fingerprint_frontend_module(module, params: dict | None = None) -> str:
    """SHA-256 over a :class:`repro.hdl.Module`'s class source + parameters.

    The class *source code* (not just its name) is hashed — memoized per
    class — so editing ``build()`` invalidates cached graphs.  Pass
    ``params`` to fingerprint a projection of the module's parameters
    (the delta-elaboration structural key) instead of all of them.
    """
    h = hashlib.sha256(b"frontend-mod:v1")
    h.update(_class_source_fp(type(module)).encode())
    if params is None:
        params = module.params
    h.update(json.dumps(sorted(params.items()), default=str).encode())
    return h.hexdigest()


# ---------------------------------------------------------------------- #
class FrontendCache:
    """Content-addressed cache of compiled graphs and sampled paths — a
    schema adapter over :class:`repro.store.ArtifactStore`.

    Three tiers, cheapest first: the store's live-object tier (the
    :class:`CompiledGraph` / path tuples, no deserialization), its
    memory LRU, and its optional persistent backend (survives across
    processes).  Payload serialization is lazy: with no persistent
    backend attached, ``put_graph``/``put_paths`` never call
    ``to_payload()`` — the object tier alone serves in-process reuse.

    The path tier is keyed on (graph *content* fingerprint x sampler
    config), so two differently-named designs that elaborate to the same
    hardware share one sampled-path entry — and because the array and
    reference sampler engines are bit-identical, a replayed entry equals
    a fresh sample exactly.
    """

    GRAPH_KIND = "graph"
    PATHS_KIND = "paths"

    def __init__(self, max_entries: int = 4096,
                 disk_dir: str | Path | None = None,
                 store: ArtifactStore | None = None):
        if store is None:
            backend = (DirectoryBackend(disk_dir, flat=True)
                       if disk_dir is not None else None)
            store = ArtifactStore(max_entries=max_entries, backend=backend)
        self.store = store

    # -- compiled graphs ----------------------------------------------- #
    def get_graph(self, key: str) -> CompiledGraph | None:
        return self.store.get_object(self.GRAPH_KIND, key,
                                     decode=CompiledGraph.from_payload)

    def put_graph(self, key: str, cg: CompiledGraph) -> None:
        self.store.put_object(self.GRAPH_KIND, key, cg, encode=cg.to_payload)

    # -- sampled paths -------------------------------------------------- #
    @staticmethod
    def path_key(cg: CompiledGraph, sampler) -> str:
        from ..store.keys import paths_key

        return paths_key(cg.fingerprint(), fingerprint_sampler(sampler))

    def get_paths(self, cg: CompiledGraph, sampler):
        """Replay cached paths for ``cg`` under ``sampler``, or ``None``."""
        def decode(doc):
            from ..core.sampler import SampledPath

            tokens = cg.token_list
            return tuple(SampledPath(node_ids=tuple(ids),
                                     tokens=tuple(tokens[n] for n in ids))
                         for ids in doc["paths"])

        paths = self.store.get_object(self.PATHS_KIND,
                                      self.path_key(cg, sampler),
                                      decode=decode)
        return None if paths is None else list(paths)

    def put_paths(self, cg: CompiledGraph, sampler, paths) -> None:
        stored = tuple(paths)
        self.store.put_object(
            self.PATHS_KIND, self.path_key(cg, sampler), stored,
            encode=lambda: {"format": "repro-frontend-paths", "version": 1,
                            "paths": [list(p.node_ids) for p in stored]})

    def sample(self, cg: CompiledGraph, sampler):
        """Cached sampling: replay if keyed paths exist, else sample+store."""
        paths = self.get_paths(cg, sampler)
        if paths is None:
            paths = sampler.sample(cg)
            self.put_paths(cg, sampler, paths)
        return paths

    # ------------------------------------------------------------------ #
    @property
    def object_hits(self) -> int:
        return self.store.counters((self.GRAPH_KIND, self.PATHS_KIND))[
            "object_hits"]

    @property
    def stats(self) -> dict:
        c = self.store.counters((self.GRAPH_KIND, self.PATHS_KIND))
        hits = c["object_hits"] + c["memory_hits"] + c["persistent_hits"]
        lookups = hits + c["misses"]
        return {"object_hits": c["object_hits"],
                "memory_hits": c["memory_hits"],
                "disk_hits": c["persistent_hits"],
                "misses": c["misses"],
                "hit_rate": hits / lookups if lookups else 0.0}

    def clear(self, memory_only: bool = True) -> None:
        self.store.clear(memory_only=memory_only)


# ---------------------------------------------------------------------- #
# Compile drivers
# ---------------------------------------------------------------------- #
def _preprocess(source: str, include_paths, defines) -> str:
    if "`" in source or defines:
        from ..verilog.preprocessor import preprocess

        return preprocess(source, include_paths=include_paths, defines=defines)
    return source


def compile_source(source: str, top: str | None = None,
                   include_paths: list[str] | None = None,
                   defines: dict[str, str] | None = None,
                   cache: FrontendCache | None = None) -> CompiledGraph:
    """Compile Verilog text to a :class:`CompiledGraph` (cached).

    On a cache hit the parser and elaborator never run; on a miss the
    source elaborates straight into a flat ``GraphBuilder`` (memoized
    instance stamping on) and the result is stored under the
    (preprocessed source x top x defines) fingerprint.
    """
    from ..verilog.elaborator import elaborate_source

    source = _preprocess(source, include_paths, defines)
    if cache is not None:
        key = fingerprint_frontend_source(source, top, defines)
        cg = cache.get_graph(key)
        if cg is not None:
            return cg
    cg = elaborate_source(source, top, compiled=True)
    if cache is not None:
        cache.put_graph(key, cg)
    return cg


def compile_source_profiled(source: str, top: str | None = None,
                            include_paths: list[str] | None = None,
                            defines: dict[str, str] | None = None,
                            cache: FrontendCache | None = None,
                            sampler=None) -> tuple[CompiledGraph, FrontendProfile]:
    """Like :func:`compile_source`, but times each stage separately.

    The profiled run uses the staged reference pipeline (parse ->
    dict-graph elaborate -> compile) so the per-stage numbers are
    meaningful; pass ``sampler`` to time path sampling too.
    """
    from ..verilog.elaborator import elaborate
    from ..verilog.lexer import tokenize
    from ..verilog.parser import Parser

    profile = FrontendProfile()
    clock = time.perf_counter
    source = _preprocess(source, include_paths, defines)

    key = None
    if cache is not None:
        key = fingerprint_frontend_source(source, top, defines)
        t0 = clock()
        cg = cache.get_graph(key)
        if cg is not None:
            profile.compile_s = clock() - t0
            profile.cache_hit = True
            if sampler is not None:
                t0 = clock()
                cache.sample(cg, sampler)
                profile.sample_s = clock() - t0
            return cg, profile

    t0 = clock()
    tokens = tokenize(source)
    t1 = clock()
    file = Parser(tokens).parse()
    t2 = clock()
    graph = elaborate(file, top)
    t3 = clock()
    cg = compile_graph(graph)
    t4 = clock()
    profile.lex_s = t1 - t0
    profile.parse_s = t2 - t1
    profile.elaborate_s = t3 - t2
    profile.compile_s = t4 - t3
    if cache is not None:
        cache.put_graph(key, cg)
    if sampler is not None:
        t0 = clock()
        if cache is not None:
            cache.sample(cg, sampler)
        else:
            sampler.sample(cg)
        profile.sample_s = clock() - t0
    return cg, profile


def compile_module(module, cache: FrontendCache | None = None) -> CompiledGraph:
    """Compile a :class:`repro.hdl.Module` to a :class:`CompiledGraph`.

    Cached under the module's class-source x parameter fingerprint, so a
    DSE sweep revisiting a configuration skips elaboration entirely.
    """
    if cache is not None:
        key = fingerprint_frontend_module(module)
        cg = cache.get_graph(key)
        if cg is not None:
            return cg
    cg = module.elaborate_compiled()
    if cache is not None:
        cache.put_graph(key, cg)
    return cg


class DeltaElaborator:
    """Delta-elaboration front end for parameter sweeps.

    Neighboring configurations of one parameterizable design share most
    of their structure; this driver compiles each configuration as a
    diff against what previous configurations already built, instead of
    re-elaborating from scratch:

    - **Module sweeps** (:meth:`compile`): the compiled-graph cache key
      projects the parameter binding onto the class's *structural*
      parameters (``STRUCTURAL_PARAMS``, when declared — parameters that
      affect the elaborated hardware, as opposed to score-only or
      floorplan-only knobs).  Sweeping a non-structural axis compiles
      the design exactly once.  The first time a projection collapses
      two distinct bindings of a class, the claim is *verified*: both
      configurations elaborate and their graph fingerprints must match,
      so an unsound declaration fails loudly instead of serving a wrong
      graph.

    - **Verilog sweeps** (:meth:`compile_source`): the source parses
      once (AST cached per source fingerprint) and every elaboration —
      any top, any repetition — shares one PR-4
      :class:`~repro.verilog.elaborator.ElaborationMemo`, so a config
      re-elaborates only the instances whose (module, parameter binding,
      port shape) changed; everything unchanged stamps from recorded
      templates.  Output is node-for-node identical to a fresh
      elaboration (the memo's contract).

    All compiled graphs land in the shared :class:`FrontendCache`, so
    the sampled-path tier and the downstream prediction cache compose
    with both paths.
    """

    def __init__(self, cache: FrontendCache | None = None,
                 verify_projections: bool = True):
        self.cache = cache or FrontendCache()
        self.verify_projections = verify_projections
        from ..verilog.elaborator import ElaborationMemo

        self.memo = ElaborationMemo()
        self._asts: dict[str, object] = {}
        # Per (class fp, structural key): the full-params fingerprint of
        # the configuration that actually elaborated — a projection
        # collapse is detected (and verified once) when a later lookup
        # arrives with a different full fingerprint.
        self._projection_owner: dict[str, str] = {}
        self._verified_classes: set[type] = set()
        self.stats = {"compiles": 0, "graph_hits": 0, "projection_hits": 0,
                      "ast_hits": 0, "verified_projections": 0}

    # -- Module path ---------------------------------------------------- #
    @staticmethod
    def structural_params(module) -> dict:
        """The projection of ``module.params`` the graph depends on."""
        names = getattr(type(module), "STRUCTURAL_PARAMS", None)
        if names is None:
            return dict(module.params)
        unknown = set(names) - set(module.params)
        if unknown:
            raise ValueError(
                f"{type(module).__name__}.STRUCTURAL_PARAMS names unknown "
                f"parameters: {sorted(unknown)}")
        return {k: module.params[k] for k in names}

    def compile(self, module) -> CompiledGraph:
        """Compile a Module, reusing a structural neighbor when possible."""
        projected = self.structural_params(module)
        key = fingerprint_frontend_module(module, projected)
        full_fp = (fingerprint_frontend_module(module)
                   if len(projected) != len(module.params) else key)
        cg = self.cache.get_graph(key)
        if cg is not None:
            self.stats["graph_hits"] += 1
            owner = self._projection_owner.get(key)
            if owner is not None and owner != full_fp:
                self.stats["projection_hits"] += 1
                if self.verify_projections and \
                        type(module) not in self._verified_classes:
                    self._verified_classes.add(type(module))
                    self.stats["verified_projections"] += 1
                    fresh = module.elaborate_compiled()
                    if fresh.fingerprint() != cg.fingerprint():
                        raise ValueError(
                            f"{type(module).__name__}.STRUCTURAL_PARAMS is "
                            "unsound: two configurations with equal "
                            "structural projections elaborate to different "
                            "graphs")
            return cg
        self.stats["compiles"] += 1
        cg = module.elaborate_compiled()
        self.cache.put_graph(key, cg)
        self._projection_owner[key] = full_fp
        return cg

    # -- Verilog path --------------------------------------------------- #
    def compile_source(self, source: str, top: str | None = None,
                       include_paths: list[str] | None = None,
                       defines: dict[str, str] | None = None) -> CompiledGraph:
        """Compile Verilog text, stamping templates shared across configs.

        The graph tier short-circuits exact repeats; on a miss the
        (preprocessed) source parses at most once and elaborates with
        the shared :class:`ElaborationMemo`, so sibling configurations
        re-elaborate only what changed.
        """
        from ..verilog.elaborator import elaborate
        from ..verilog.parser import parse_source

        source = _preprocess(source, include_paths, defines)
        key = fingerprint_frontend_source(source, top, defines)
        cg = self.cache.get_graph(key)
        if cg is not None:
            self.stats["graph_hits"] += 1
            return cg
        src_fp = hashlib.sha256(source.encode()).hexdigest()
        file = self._asts.get(src_fp)
        if file is None:
            file = parse_source(source)
            self._asts[src_fp] = file
        else:
            self.stats["ast_hits"] += 1
        self.stats["compiles"] += 1
        cg = elaborate(file, top, memo=self.memo, compiled=True)
        self.cache.put_graph(key, cg)
        return cg

    @property
    def template_hits(self) -> int:
        """Instance stampings served from the shared elaboration memo."""
        return self.memo.hits


def compile_design(design, cache: FrontendCache | None = None) -> CompiledGraph:
    """Normalize any design form to a :class:`CompiledGraph`.

    Accepts a :class:`CompiledGraph` (returned as-is), a
    :class:`CircuitGraph` (compiled, memoized on the instance), or a
    :class:`repro.hdl.Module` (elaborated via :func:`compile_module`,
    using ``cache`` when given).
    """
    if isinstance(design, (CompiledGraph, CircuitGraph)):
        return as_compiled(design)
    if hasattr(design, "elaborate_compiled"):
        return compile_module(design, cache)
    return as_compiled(design)
