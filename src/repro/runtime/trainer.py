"""The length-bucketed training engine with fused optimizer steps.

:class:`TrainingEngine` is the throughput path for fitting the
Circuitformer and the Aggregation MLP.  It differs from the reference
loops in :mod:`repro.core.training` in four ways:

1. **Length-bucketed minibatching** — path records are grouped into
   padded-length buckets (:data:`~repro.core.circuitformer.BUCKET_BOUNDARIES`),
   so a batch of 6-token paths runs a 9-wide forward pass instead of
   padding to the longest path in the dataset.  Shuffling stays
   deterministic in the training seed: the record order is permuted,
   records are grouped by bucket, and the resulting batch list is
   permuted again — all from the one ``TrainingConfig.seed`` stream.
2. **Fused optimizer steps** — ``opt.step(max_grad_norm=...)`` folds
   global-norm clipping into the in-place :class:`repro.nn.Adam` /
   :class:`repro.nn.SGD` kernels (bit-identical to the reference
   optimizers, allocation-free after the first step).
3. **Autograd memory discipline** — every ``backward`` runs with
   ``free_graph=True``, releasing closure references as soon as each
   node's gradient is propagated, and the big attention temporaries
   recycle through :data:`repro.nn.scratch_pool`.
4. **Epoch-persistent encoding** — each bucket is encoded *once* into a
   :class:`PreparedPathDataset` and sliced per batch for every epoch,
   instead of re-padding per step; an optional :class:`EncodingCache`
   additionally shares encodings with inference
   (:meth:`~repro.core.circuitformer.Circuitformer.predict_unique` and
   the :class:`~repro.runtime.engine.BatchPredictor`).

Compatibility: ``TrainingEngine(bucketed=False)`` replicates the
reference loops' padding, batch composition, and RNG consumption
*exactly*, so its loss curves and final weights match the seed
implementation to the last bit (asserted in the test suite).  Bucketed
mode changes padded widths — and therefore BLAS kernel selection and
rounding — so it reproduces the seed curves statistically, not bitwise
(the same caveat ``predict_unique`` documents for inference).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..core.circuitformer import (TargetScaler, bucket_for_length,
                                  encode_batch)
from ..core.training import EpochStats, TrainingConfig

__all__ = ["EncodingCache", "PreparedPathDataset", "TrainerProfile",
           "TrainingEngine"]

try:
    import resource

    def _peak_rss_kb() -> int:
        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
except ImportError:  # non-posix
    def _peak_rss_kb() -> int:
        return 0


class EncodingCache:
    """LRU cache over :func:`~repro.core.circuitformer.encode_batch`.

    Keyed on ``(vocabulary, padded length, token sequences)``; a hit
    returns the previously-built ``(ids, pad_mask)`` pair without
    touching numpy.  Shared between the training engine (bucket
    encodings reused every epoch) and inference (``predict_unique``
    re-encoding the same bucket chunks across calls).  Entries hold a
    strong reference to their vocabulary so ``id(vocab)`` keys cannot be
    recycled while an entry lives.

    Consumers must treat returned arrays as read-only (they only ever
    index them, which copies).
    """

    def __init__(self, max_entries: int = 512):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1: {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def encode(self, token_seqs, vocab, max_len: int):
        """Cached ``encode_batch(token_seqs, vocab, max_len)``."""
        key = (id(vocab), int(max_len), tuple(tuple(s) for s in token_seqs))
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry[1]
        self.misses += 1
        pair = encode_batch(list(token_seqs), vocab, int(max_len))
        self._entries[key] = (vocab, pair)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return pair

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._entries)}


class PreparedPathDataset:
    """Token sequences encoded once, sliceable per batch across epochs.

    In bucketed mode every sequence is assigned the smallest
    :data:`~repro.core.circuitformer.BUCKET_BOUNDARIES` boundary that
    holds it and each bucket is encoded at its own padded width.  In
    compatibility mode (``bucketed=False``) there is a single global
    bucket padded to ``max_len`` whose row order matches the input —
    ``slice(rows)`` is then exactly ``ids[rows], mask[rows]`` of the
    reference loop's one-shot encoding.
    """

    def __init__(self, token_seqs, vocab, max_len: int, bucketed: bool = True,
                 encoding_cache: EncodingCache | None = None):
        self.max_len = int(max_len)
        self.bucketed = bool(bucketed)
        n = len(token_seqs)
        if bucketed:
            bucket_of = np.fromiter(
                (bucket_for_length(len(s), self.max_len) for s in token_seqs),
                dtype=np.int64, count=n)
        else:
            bucket_of = np.full(n, self.max_len, dtype=np.int64)
        self.bucket_of = bucket_of
        self.local_of = np.empty(n, dtype=np.int64)
        self._store: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for bucket in sorted(set(bucket_of.tolist())):
            idx = np.flatnonzero(bucket_of == bucket)
            seqs = [token_seqs[i] for i in idx]
            if encoding_cache is not None:
                ids, mask = encoding_cache.encode(seqs, vocab, bucket)
            else:
                ids, mask = encode_batch(seqs, vocab, bucket)
            self.local_of[idx] = np.arange(len(idx))
            self._store[int(bucket)] = (ids, mask)

    def __len__(self) -> int:
        return len(self.bucket_of)

    @property
    def buckets(self) -> list[int]:
        return sorted(self._store)

    def bucket_histogram(self) -> dict[int, int]:
        """Rows per padded width (the profile's bucket occupancy report)."""
        return {bucket: int(self._store[bucket][0].shape[0])
                for bucket in self.buckets}

    def padded_cells(self) -> int:
        """Total (row, position) cells across all encodings."""
        return int(sum(ids.size for ids, _ in self._store.values()))

    def slice(self, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(ids, pad_mask)`` for ``rows``, which must share one bucket."""
        bucket = int(self.bucket_of[rows[0]])
        ids, mask = self._store[bucket]
        loc = self.local_of[rows]
        return ids[loc], mask[loc]

    def group_by_bucket(self, rows: np.ndarray) -> dict[int, np.ndarray]:
        """Partition ``rows`` by bucket, preserving order within each."""
        groups: dict[int, list[int]] = {}
        for r in rows:
            groups.setdefault(int(self.bucket_of[r]), []).append(int(r))
        return {b: np.asarray(v, dtype=np.int64) for b, v in groups.items()}


@dataclass
class TrainerProfile:
    """Per-phase timing and allocation report for one training run."""

    model: str
    epochs: int
    steps: int
    wall_s: float
    phase_seconds: dict[str, float]
    steps_per_sec: float
    peak_rss_delta_kb: int
    bucket_rows: dict[int, int] = field(default_factory=dict)
    pool_stats: dict[str, object] = field(default_factory=dict)
    encoding_stats: dict[str, int] | None = None

    def format(self) -> str:
        lines = [f"[{self.model}] {self.epochs} epochs, {self.steps} steps "
                 f"in {self.wall_s:.2f}s ({self.steps_per_sec:.1f} steps/s), "
                 f"peak-RSS +{self.peak_rss_delta_kb} kB"]
        total = max(self.wall_s, 1e-12)
        for phase, secs in sorted(self.phase_seconds.items(),
                                  key=lambda kv: -kv[1]):
            lines.append(f"  {phase:<10s} {secs:8.3f}s  ({100 * secs / total:5.1f}%)")
        if self.bucket_rows:
            occupancy = ", ".join(f"{b}:{c}" for b, c in
                                  sorted(self.bucket_rows.items()))
            lines.append(f"  buckets    {occupancy}")
        if self.encoding_stats:
            lines.append(f"  encoding   {self.encoding_stats['hits']} hits / "
                         f"{self.encoding_stats['misses']} misses "
                         f"({self.encoding_stats['entries']} cached)")
        if self.pool_stats:
            lines.append(f"  pool       {self.pool_stats.get('hits', 0)} hits / "
                         f"{self.pool_stats.get('misses', 0)} misses, "
                         f"{self.pool_stats.get('stored_bytes', 0)} bytes held")
        return "\n".join(lines)


class TrainingEngine:
    """Length-bucketed, fused-optimizer training over the nn stack.

    Parameters
    ----------
    bucketed:
        Group records into padded-length buckets (throughput mode).
        ``False`` is the compatibility mode: padding, batch composition,
        and RNG consumption replicate the reference loops exactly, so
        the engine reproduces the seed loss curves bit-for-bit.
    fused:
        Use the in-place fused optimizers with clipping folded into
        ``step``; ``False`` falls back to the allocate-per-step
        reference kernels (numerically identical either way).
    free_graph:
        Release autograd closures during ``backward`` (memory
        discipline; numerics unaffected).
    encoding_cache:
        Optional :class:`EncodingCache` shared with inference.
    executor:
        Compile one training step per padded batch shape with
        :func:`repro.nn.compile_train_step` and replay the static kernel
        schedule on every later batch of that shape (the compile's
        dynamic trace *is* the first step, so no work is duplicated).
        At ``precision="fp64"`` the compiled run is bit-identical to the
        dynamic fused path — gated per compile; ``"fp32"`` trades that
        for reduced-precision throughput (loss gated against the fp64
        reference at compile time).  Requires ``fused=True``: the
        reference optimizers rebind parameter storage every step, which
        invalidates compiled plans.
    precision:
        Executor arithmetic, ``"fp64"`` or ``"fp32"`` (training rejects
        the inference-only ``"int8"``).  Ignored without ``executor``.
    """

    def __init__(self, bucketed: bool = True, fused: bool = True,
                 free_graph: bool = True,
                 encoding_cache: EncodingCache | None = None,
                 executor: bool = False, precision: str = "fp64"):
        self.bucketed = bool(bucketed)
        self.fused = bool(fused)
        self.free_graph = bool(free_graph)
        self.encoding_cache = encoding_cache
        self.executor = bool(executor)
        self.precision = precision
        if self.executor:
            if not self.fused:
                raise ValueError(
                    "executor training requires fused=True: the reference "
                    "optimizers rebind parameter storage every step, which "
                    "invalidates compiled plans")
            if precision not in ("fp64", "fp32"):
                raise ValueError(
                    f"training precision must be 'fp64' or 'fp32': "
                    f"got {precision!r}")
        self.last_profile: TrainerProfile | None = None
        self.profiles: dict[str, TrainerProfile] = {}

    @classmethod
    def from_config(cls, config: TrainingConfig,
                    encoding_cache: EncodingCache | None = None) -> "TrainingEngine":
        return cls(bucketed=getattr(config, "bucketed", False),
                   fused=getattr(config, "fused", True),
                   encoding_cache=encoding_cache,
                   executor=getattr(config, "executor", False),
                   precision=getattr(config, "precision", "fp64"))

    # ------------------------------------------------------------------ #
    # Circuitformer
    # ------------------------------------------------------------------ #
    def train_circuitformer(self, model, records, config: TrainingConfig | None = None,
                            verbose: bool = False) -> list[EpochStats]:
        """Fit the Circuitformer on the Circuit Path Dataset; returns curves."""
        config = config or TrainingConfig()
        if len(records) < 4:
            raise ValueError(f"need at least 4 path records, got {len(records)}")
        rss0 = _peak_rss_kb()
        wall0 = time.perf_counter()
        phases = {"prepare": 0.0, "forward": 0.0, "backward": 0.0,
                  "optimizer": 0.0, "validation": 0.0}
        if self.executor:
            phases["compile"] = 0.0
            phases["plan_step"] = 0.0
        rng = np.random.default_rng(config.seed)

        t0 = time.perf_counter()
        labels = np.stack([r.labels for r in records])
        model.scaler = TargetScaler.fit(labels)
        targets = model.scaler.transform(labels)
        max_len = min(model.config.max_input_size - 1,
                      max(len(r.tokens) for r in records))
        prepared = PreparedPathDataset(
            [r.tokens for r in records], model.vocab, max_len,
            bucketed=self.bucketed, encoding_cache=self.encoding_cache)
        phases["prepare"] += time.perf_counter() - t0

        n = len(records)
        n_val = max(1, int(round(config.validation_fraction * n)))
        perm = rng.permutation(n)
        val_idx, train_idx = perm[:n_val], perm[n_val:]

        opt_cls = nn.Adam if self.fused else nn.ReferenceAdam
        opt = opt_cls(model.parameters(), lr=config.circuitformer_lr)

        # Executor mode: one compiled train-step plan per padded batch
        # shape, plus forward-only validation plans; weight casts for
        # fp32 are shared across all plans through one cast cache.
        step_plans: dict = {}
        val_plans: dict = {}
        cast_cache: dict = {}

        def step_fn(ids, pad_mask, target):
            return nn.mse_loss(model.forward(ids, pad_mask), target)

        history: list[EpochStats] = []
        steps = 0
        for epoch in range(config.circuitformer_epochs):
            model.train()
            train_losses = []
            for batch in self._epoch_batches(prepared, train_idx,
                                             config.circuitformer_batch, rng):
                ids, mask = prepared.slice(batch)
                if self.executor:
                    plan = step_plans.get(ids.shape)
                    if plan is not None and plan.is_stale():
                        plan = None
                    t0 = time.perf_counter()
                    if plan is None:
                        # The compile's dynamic trace IS this step: it
                        # leaves the oracle gradients in Parameter.grad.
                        opt.zero_grad()
                        plan, loss_val = nn.compile_train_step(
                            step_fn,
                            {"ids": ids, "pad_mask": mask,
                             "target": targets[batch]},
                            precision=self.precision, cast_cache=cast_cache,
                            free_graph=self.free_graph)
                        step_plans[ids.shape] = plan
                        phases["compile"] += time.perf_counter() - t0
                    else:
                        loss_val = plan.step(ids=ids, pad_mask=mask,
                                             target=targets[batch])
                        phases["plan_step"] += time.perf_counter() - t0
                else:
                    t0 = time.perf_counter()
                    pred = model.forward(ids, mask)
                    loss = nn.mse_loss(pred, targets[batch])
                    phases["forward"] += time.perf_counter() - t0
                    opt.zero_grad()
                    t0 = time.perf_counter()
                    loss.backward(free_graph=self.free_graph)
                    phases["backward"] += time.perf_counter() - t0
                    loss_val = loss.item()
                t0 = time.perf_counter()
                if self.fused:
                    opt.step(max_grad_norm=5.0)
                else:
                    nn.clip_grad_norm(model.parameters(), 5.0)
                    opt.step()
                phases["optimizer"] += time.perf_counter() - t0
                train_losses.append(loss_val)
                steps += 1
            model.eval()
            t0 = time.perf_counter()
            val_loss = self._validation_loss(model, prepared, val_idx, targets,
                                             val_plans=val_plans,
                                             cast_cache=cast_cache)
            phases["validation"] += time.perf_counter() - t0
            stats = EpochStats(epoch, float(np.mean(train_losses)), val_loss)
            history.append(stats)
            if verbose:
                print(f"[circuitformer] epoch {epoch:3d} "
                      f"train {stats.train_loss:.4f} val {stats.val_loss:.4f}")
        self._finish_profile("circuitformer", config.circuitformer_epochs,
                             steps, wall0, rss0, phases,
                             prepared.bucket_histogram())
        return history

    def _epoch_batches(self, prepared: PreparedPathDataset,
                       train_idx: np.ndarray, batch_size: int,
                       rng: np.random.Generator):
        """One epoch's batches, deterministic in the rng stream.

        Compatibility mode consumes the rng exactly like the reference
        loop (one ``permutation(train_idx)`` per epoch, contiguous
        slices).  Bucketed mode permutes the row order, groups rows by
        bucket, chunks each group, then permutes the batch list — two
        draws per epoch, but still a pure function of the seed stream.
        """
        if not self.bucketed:
            order = rng.permutation(train_idx)
            for lo in range(0, len(order), batch_size):
                yield order[lo:lo + batch_size]
            return
        shuffled = train_idx[rng.permutation(len(train_idx))]
        batches = []
        for rows in prepared.group_by_bucket(shuffled).values():
            for lo in range(0, len(rows), batch_size):
                batches.append(rows[lo:lo + batch_size])
        for j in rng.permutation(len(batches)):
            yield batches[j]

    def _validation_loss(self, model, prepared: PreparedPathDataset,
                         val_idx: np.ndarray, targets: np.ndarray,
                         val_plans: dict | None = None,
                         cast_cache: dict | None = None) -> float:
        forward = model.forward
        if self.executor:
            val_plans = {} if val_plans is None else val_plans
            cast_cache = {} if cast_cache is None else cast_cache

            def forward(ids, mask, _plans=val_plans, _cache=cast_cache):
                plan = _plans.get(ids.shape)
                if plan is None or plan.is_stale():
                    plan = nn.compile_forward(
                        lambda ids, pad_mask: model.forward(ids, pad_mask),
                        {"ids": ids, "pad_mask": mask},
                        precision=self.precision, cast_cache=_cache)
                    _plans[ids.shape] = plan
                return nn.Tensor(plan.replay(ids=ids, pad_mask=mask))
        with nn.no_grad():
            if not self.bucketed:
                ids, mask = prepared.slice(val_idx)
                val_pred = forward(ids, mask)
                return nn.mse_loss(val_pred, targets[val_idx]).item()
            # Per-bucket forward passes; aggregate as sum-of-squared-errors
            # over element count, which equals the global-batch MSE.
            sse = 0.0
            count = 0
            for rows in prepared.group_by_bucket(val_idx).values():
                ids, mask = prepared.slice(rows)
                pred = forward(ids, mask).numpy()
                err = pred - targets[rows]
                sse += float((err * err).sum())
                count += err.size
            return sse / count

    # ------------------------------------------------------------------ #
    # Aggregation MLP
    # ------------------------------------------------------------------ #
    def prepare_design_features(self, designs, circuitformer, sampler) -> list:
        """Sample + predict + featurize every design once.

        The result can be passed to :meth:`train_aggregator` for each
        ensemble member — ``PathSampler.sample`` reseeds per call, so
        sharing features is bit-identical to recomputing them per member
        while paying the Circuitformer inference cost once.
        """
        from ..core.aggregator import featurize_design

        features = []
        for record in designs:
            paths = sampler.sample(record.graph)
            preds = circuitformer.predict_paths(
                [p.tokens for p in paths], encoding_cache=self.encoding_cache)
            features.append(featurize_design(record.graph, preds, paths,
                                             circuitformer.vocab))
        return features

    def train_aggregator(self, mlp, designs, circuitformer, sampler,
                         config: TrainingConfig | None = None,
                         verbose: bool = False, features: list | None = None) -> list[float]:
        """Fit the Aggregation MLP on design-level labels; returns the curve.

        ``features`` may carry the output of
        :meth:`prepare_design_features` to skip the sampling + inference
        stage (used by ``SNS.fit`` to share it across ensemble members).
        """
        config = config or TrainingConfig()
        if len(designs) < 2:
            raise ValueError(f"need at least 2 design records, got {len(designs)}")
        rss0 = _peak_rss_kb()
        wall0 = time.perf_counter()
        phases = {"prepare": 0.0, "forward": 0.0, "backward": 0.0,
                  "optimizer": 0.0}
        rng = np.random.default_rng(config.seed + 1)

        t0 = time.perf_counter()
        if features is None:
            features = self.prepare_design_features(designs, circuitformer, sampler)
        labels = np.stack([d.labels for d in designs])

        # Stage 1: closed-form physics calibration (area, energy, timing scale).
        mlp.fit_physics(features, labels)
        physics = np.stack([mlp.physics_predict(f) for f in features])

        # Stage 2: the per-target residual MLPs.
        log_inputs = np.stack([f.log_vector(p) for f, p in zip(features, physics)])
        residuals = np.log1p(labels) - np.log1p(physics)
        mlp.fit_scalers(log_inputs, residuals)
        targets = (residuals - mlp.residual_mean) / mlp.residual_std
        phases["prepare"] += time.perf_counter() - t0

        params = [p for head in mlp.heads for p in head.parameters()]
        opt_cls = nn.Adam if self.fused else nn.ReferenceAdam
        opt = opt_cls(params, lr=config.aggregator_lr,
                      weight_decay=config.aggregator_weight_decay)

        n = len(designs)
        curve: list[float] = []
        steps = 0
        for epoch in range(config.aggregator_epochs):
            order = rng.permutation(n)
            losses = []
            for lo in range(0, n, config.aggregator_batch):
                batch = order[lo:lo + config.aggregator_batch]
                t0 = time.perf_counter()
                total = None
                for t in range(3):
                    pred = mlp.forward(log_inputs[batch], t).reshape(len(batch))
                    loss = nn.mse_loss(pred, targets[batch, t])
                    total = loss if total is None else total + loss
                phases["forward"] += time.perf_counter() - t0
                opt.zero_grad()
                t0 = time.perf_counter()
                total.backward(free_graph=self.free_graph)
                phases["backward"] += time.perf_counter() - t0
                t0 = time.perf_counter()
                if self.fused:
                    opt.step(max_grad_norm=5.0)
                else:
                    nn.clip_grad_norm(params, 5.0)
                    opt.step()
                phases["optimizer"] += time.perf_counter() - t0
                losses.append(total.item() / 3.0)
                steps += 1
            curve.append(float(np.mean(losses)))
            if verbose and epoch % max(1, config.aggregator_epochs // 10) == 0:
                print(f"[aggregator] epoch {epoch:4d} loss {curve[-1]:.4f}")
        self._finish_profile("aggregator", config.aggregator_epochs, steps,
                             wall0, rss0, phases, {})
        return curve

    # ------------------------------------------------------------------ #
    def _finish_profile(self, model_name: str, epochs: int, steps: int,
                        wall0: float, rss0: int, phases: dict[str, float],
                        bucket_rows: dict[int, int]) -> None:
        wall = time.perf_counter() - wall0
        profile = TrainerProfile(
            model=model_name,
            epochs=epochs,
            steps=steps,
            wall_s=wall,
            phase_seconds=dict(phases),
            steps_per_sec=steps / wall if wall > 0 else 0.0,
            peak_rss_delta_kb=max(0, _peak_rss_kb() - rss0),
            bucket_rows=dict(bucket_rows),
            pool_stats=nn.scratch_pool.stats(),
            encoding_stats=(self.encoding_cache.stats()
                            if self.encoding_cache is not None else None),
        )
        self.last_profile = profile
        self.profiles[model_name] = profile
