"""Command-line interface: ``python -m repro <command>``.

Commands
--------
synth FILE.v      Synthesize a Verilog design with the reference
                  synthesizer and print timing/area/power.
report FILE.v     Print the full EDA-style report (worst timing paths,
                  area and power breakdowns).
train OUT.npz     Train SNS on the bundled hardware design dataset and
                  save the model.
datagen [OUT.json]
                  Build the Hardware Design Dataset (synthesize all 41
                  bundled designs), optionally in parallel
                  (``--workers``) and against a persistent synthesis
                  cache (``--cache-dir``); ``--profile`` prints where
                  the wall-clock went.
predict MODEL FILE.v [FILE2.v ...]
                  Predict one or more Verilog designs with a trained
                  model through the batched runtime (``--cache-dir``
                  persists the prediction cache across invocations).
dse MODEL         Budgeted streaming DSE over the BOOM space
                  (``--space boom|extended --budget N --fidelity F
                  --chunk N --seed N --profile``): seeded lazy sampling,
                  surrogate screening, chunked SNS prediction, and an
                  incremental Pareto front.
paths FILE.v      Sample complete circuit paths from a design.
compile FILE.v    Compile a design through the array front end (CSR
                  GraphIR); ``--cache-dir`` persists the compile cache
                  and ``--profile`` prints per-stage timings.
serve MODEL       Run the async prediction server: cross-request
                  micro-batching into the warm BatchPredictor, per-
                  client rate limits, bounded-queue load shedding, and
                  JSON metrics on ``/metrics``; SIGINT drains in-flight
                  requests before exit.
bench-serve       Drive a running server with N concurrent closed-loop
                  clients over bundled designs and print requests/sec
                  and p50/p99 latency.
cache stats PATH  Inspect a shared artifact store (directory root or
                  SQLite file): entry counts, bytes, and age per
                  artifact kind.
cache gc PATH     Age/size-bounded sweep of a store's persistent tier
                  (``--max-age-days D --max-bytes N[K|M|G] --dry-run``).
export NAME OUT.v Emit a bundled dataset design as Verilog
                  (``export --list`` shows the 41 names).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

__all__ = ["main"]


def _read_design(path: str):
    from .verilog import elaborate_source

    source = Path(path).read_text()
    return elaborate_source(source)


def _cmd_synth(args) -> int:
    from .synth import Synthesizer

    graph = _read_design(args.design)
    result = Synthesizer(effort=args.effort).synthesize(graph)
    print(f"design:  {result.design}")
    print(f"cells:   {result.num_cells} ({result.gate_count:.0f} NAND2-eq gates)")
    print(f"timing:  {result.timing_ps:.1f} ps ({result.frequency_ghz:.3f} GHz)")
    print(f"area:    {result.area_um2:.1f} um2 ({result.area_mm2:.6f} mm2)")
    print(f"power:   {result.power_mw:.3f} mW")
    print(f"runtime: {result.runtime_s * 1e3:.1f} ms")
    return 0


def _cmd_train(args) -> int:
    from dataclasses import replace

    from .core.persistence import save_sns
    from .datagen import train_test_split_by_family
    from .experiments import FAST, FULL, build_dataset, fit_sns

    settings = FULL if args.preset == "full" else FAST
    if args.buckets:
        settings = replace(settings,
                           training=replace(settings.training, bucketed=True))
    if args.executor:
        settings = replace(settings,
                           training=replace(settings.training, executor=True,
                                            precision=args.precision))
    print(f"building the design dataset ({settings.name} preset)...")
    records = build_dataset(settings)
    train, test = train_test_split_by_family(records, args.train_fraction,
                                             seed=args.seed)
    print(f"training SNS on {len(train)} designs"
          + (" (length-bucketed batches)" if args.buckets else "") + "...")
    sns = fit_sns(train, settings)
    if args.profile:
        for profile in sns.training_profiles.values():
            print(profile.format())
    save_sns(sns, args.output)
    print(f"saved model to {args.output} ({len(test)} designs held out)")
    return 0


def _cmd_datagen(args) -> int:
    import json

    from .datagen import build_design_dataset_profiled
    from .designs import standard_designs
    from .synth import Synthesizer

    workers = None if args.workers == 0 else args.workers
    synth = Synthesizer(effort=args.effort)
    records, profile = build_design_dataset_profiled(
        standard_designs(), synth, max_nodes=args.max_nodes,
        num_workers=workers, cache_dir=args.cache_dir)
    for record in records:
        print(f"{record.name:24s} {record.timing_ps:9.1f} ps "
              f"{record.area_um2:12.1f} um2 {record.power_mw:10.3f} mW")
    print(f"[{len(records)} designs in {profile.wall_s:.2f}s]")
    if args.profile:
        print(profile.format())
    if args.output:
        rows = [{"name": r.name, "family": r.family,
                 "num_nodes": r.graph.num_nodes, "timing_ps": r.timing_ps,
                 "area_um2": r.area_um2, "power_mw": r.power_mw}
                for r in records]
        Path(args.output).write_text(json.dumps(rows, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0


def _print_prediction(pred) -> None:
    print(f"design:  {pred.design}")
    print(f"timing:  {pred.timing_ps:.1f} ps ({pred.frequency_ghz:.3f} GHz)")
    print(f"area:    {pred.area_um2:.1f} um2 ({pred.area_mm2:.6f} mm2)")
    print(f"power:   {pred.power_mw:.3f} mW")
    print(f"paths:   {pred.num_paths} sampled; runtime {pred.runtime_s * 1e3:.1f} ms")
    if pred.critical_path is not None:
        print("critical path: " + " -> ".join(pred.critical_path.tokens))


def _cmd_predict(args) -> int:
    from .core.persistence import load_sns
    from .runtime import BatchPredictor, PredictionCache

    sns = load_sns(args.model)
    graphs = [_read_design(path) for path in args.designs]
    cache = PredictionCache(disk_dir=args.cache_dir)
    engine = BatchPredictor(sns, cache=cache, caching=not args.no_cache,
                            executor=args.executor, precision=args.precision,
                            threads=args.threads)
    preds = engine.predict_batch(graphs)
    for i, pred in enumerate(preds):
        if i:
            print()
        _print_prediction(pred)
    if len(preds) > 1 or args.cache_dir:
        stats = cache.stats
        print(f"\n[{len(preds)} designs; cache: {stats.memory_hits} memory / "
              f"{stats.disk_hits} disk hits, {stats.misses} misses]")
    return 0


def _cmd_dse(args) -> int:
    import json

    from .boom import BoomDSE, boom_grid, extended_grid
    from .core.persistence import load_sns

    sns = load_sns(args.model)
    grid = extended_grid() if args.space == "extended" else boom_grid()
    predict_budget = max(1, int(round(args.budget * args.fidelity)))
    dse = BoomDSE(predictor=sns)
    result = dse.explore(
        grid=grid, budget=args.budget, predict_budget=predict_budget,
        synth_budget=args.synth_finalists, chunk=args.chunk,
        seed=args.seed, verbose=args.verbose)
    eng = result.engine_result

    print(f"space:    {args.space} ({len(grid)} configurations)")
    print(f"budget:   {args.budget} candidates, fidelity {args.fidelity:.2f} "
          f"({predict_budget} SNS evaluations)")
    print(f"explored: {len(result.points)} configurations in "
          f"{result.runtime_s:.2f}s "
          f"({eng.profile.candidates / max(result.runtime_s, 1e-9):.0f} "
          f"configs/sec)")
    print(f"front:    {len(eng.front)} non-dominated designs "
          f"(timing/area/power/score)")
    for label, point in (("HighPerf", result.high_perf),
                         ("PowerEff", result.power_eff),
                         ("AreaEff", result.area_eff)):
        c = point.config
        print(f"  {label:9s} {c.name}  score={point.score:.3f} "
              f"timing={point.timing_ps:.0f}ps area={point.area_um2:.0f}um2 "
              f"power={point.power_mw:.2f}mW")
    if args.profile:
        print("profile:")
        print(eng.profile.format())
    if args.output:
        rows = [{"params": p.params, "timing_ps": p.timing_ps,
                 "area_um2": p.area_um2, "power_mw": p.power_mw,
                 "score": p.score} for p in eng.points]
        payload = {"space": args.space, "grid_size": len(grid),
                   "budget": args.budget, "fidelity": args.fidelity,
                   "chunk": args.chunk, "seed": args.seed,
                   "profile": eng.profile.as_dict(), "points": rows}
        Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from .serve import PredictionServer, ServeConfig

    config = ServeConfig(
        host=args.host, port=args.port, max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms, max_queue=args.max_queue,
        workers=args.workers, rate_limit=args.rate_limit,
        request_timeout_s=args.request_timeout,
        precision=args.precision, executor=args.executor,
        threads=args.threads, cache_dir=args.cache_dir,
        serialized=args.serialized, allow_train=not args.no_train)
    server = PredictionServer(config)
    server.load_model(args.model, name="default")

    async def main() -> None:
        await server.start()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        print(f"serving on http://{config.host}:{server.port} "
              f"(max_batch={config.max_batch}, "
              f"max_wait={config.max_wait_ms}ms, "
              f"workers={config.workers}"
              + (f", rate_limit={config.rate_limit}/s" if config.rate_limit
                 else "")
              + (", serialized baseline" if config.serialized else "") + ")",
              flush=True)  # announce readiness even through a pipe
        await stop.wait()
        print("\ndraining in-flight requests...", flush=True)
        await server.stop(drain_timeout=args.drain_timeout)

    asyncio.run(main())
    print("server stopped")
    return 0


def _cmd_bench_serve(args) -> int:
    import json

    from .designs import standard_designs
    from .serve import ServeClient, run_load

    names = [e.name for e in standard_designs()]
    if args.designs:
        names = [n for n in names if n in set(args.designs.split(","))]
        if not names:
            print(f"no bundled designs match {args.designs!r}", file=sys.stderr)
            return 2
    bodies = [{"design": name} for name in names[:args.requests]]
    while len(bodies) < args.requests:
        bodies.append(dict(bodies[len(bodies) % len(names)]))

    probe = ServeClient(args.host, args.port, timeout=10.0)
    status, health = probe.get("/healthz")
    probe.close()
    if status != 200:
        print(f"server at {args.host}:{args.port} is unhealthy: {health}",
              file=sys.stderr)
        return 1
    print(f"driving {args.clients} clients x {len(bodies)} requests "
          f"against http://{args.host}:{args.port} "
          f"(models: {', '.join(health['models'])})")
    result = run_load(args.host, args.port, bodies, clients=args.clients,
                      timeout=args.timeout, repeat=args.repeat)
    doc = result.as_dict()
    print(f"requests: {doc['requests']} ({doc['ok']} ok) in "
          f"{doc['wall_s']:.2f}s -> {doc['requests_per_second']:.1f} req/s")
    lat = doc["latency_ms"]
    print(f"latency:  p50 {lat['p50']:.1f} ms, p90 {lat['p90']:.1f} ms, "
          f"p99 {lat['p99']:.1f} ms (mean {lat['mean']:.1f} ms)")
    if set(doc["statuses"]) - {"200"}:
        print(f"statuses: {doc['statuses']}")
    if args.output:
        Path(args.output).write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0 if doc["ok"] == doc["requests"] else 1


def _cmd_report(args) -> int:
    from .synth import analyze

    graph = _read_design(args.design)
    print(analyze(graph, num_paths=args.paths).format())
    return 0


def _cmd_export(args) -> int:
    from .designs import get_design, standard_designs
    from .verilog import emit_verilog

    if args.list:
        for entry in standard_designs():
            print(f"{entry.name:20s} {entry.category}")
        return 0
    if not args.name or not args.output:
        print("export requires NAME and OUT.v (or --list)", file=sys.stderr)
        return 2
    entry = get_design(args.name)
    text = emit_verilog(entry.module.elaborate())
    Path(args.output).write_text(text + "\n")
    print(f"wrote {args.output} ({text.count(chr(10)) + 1} lines)")
    return 0


def _cmd_paths(args) -> int:
    from .core import PathSampler

    graph = _read_design(args.design)
    sampler = PathSampler(k=args.k, max_paths=args.max_paths)
    paths = sampler.sample(graph)
    print(f"{len(paths)} complete circuit paths (k={args.k}):")
    for p in paths:
        print("  " + " -> ".join(p.tokens))
    return 0


def _cmd_compile(args) -> int:
    from .core import PathSampler
    from .runtime import FrontendCache, compile_source_profiled

    source = Path(args.design).read_text()
    cache = (FrontendCache(disk_dir=args.cache_dir)
             if args.cache_dir else FrontendCache())
    sampler = PathSampler(k=args.k) if args.sample else None
    cg, profile = compile_source_profiled(source, top=args.top, cache=cache,
                                          sampler=sampler)
    counts = cg.token_counts()
    print(f"design:  {cg.name}")
    print(f"nodes:   {cg.num_nodes} ({len(counts)} distinct tokens)")
    print(f"edges:   {cg.num_edges}")
    print(f"sources: {len(cg.source_ids())} sequential path sources")
    if args.profile:
        print("profile:")
        print(profile.format())
        if args.cache_dir:
            stats = cache.stats
            print(f"cache:   {stats['object_hits']} object hits, "
                  f"{stats['memory_hits']} memory hits, "
                  f"{stats['disk_hits']} disk hits, "
                  f"{stats['misses']} misses")
    return 0


def _parse_size(text: str) -> int:
    """``"500"``/``"500K"``/``"32M"``/``"2G"`` -> bytes."""
    text = text.strip().upper()
    scale = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}.get(text[-1:], 1)
    digits = text[:-1] if scale != 1 else text
    try:
        return int(float(digits) * scale)
    except ValueError as exc:
        raise SystemExit(f"bad size: {text!r} (use N, NK, NM, or NG)") from exc


def _cmd_cache_stats(args) -> int:
    import json as _json
    import time as _time
    from collections import defaultdict

    from .store import open_backend

    backend = open_backend(args.path)
    now = _time.time()
    per_kind = defaultdict(lambda: {"entries": 0, "bytes": 0,
                                    "oldest_s": 0.0, "newest_s": None})
    for entry in backend.entries():
        kind = entry.kind or "(flat)"
        row = per_kind[kind]
        row["entries"] += 1
        row["bytes"] += entry.size
        age = max(0.0, now - entry.created_at)
        row["oldest_s"] = max(row["oldest_s"], age)
        row["newest_s"] = (age if row["newest_s"] is None
                           else min(row["newest_s"], age))
    total_entries = sum(r["entries"] for r in per_kind.values())
    total_bytes = sum(r["bytes"] for r in per_kind.values())
    if args.json:
        print(_json.dumps({"backend": backend.name, "path": args.path,
                           "entries": total_entries, "bytes": total_bytes,
                           "kinds": dict(sorted(per_kind.items()))}, indent=2))
        return 0
    print(f"store:   {args.path} ({backend.name} backend)")
    print(f"entries: {total_entries} ({total_bytes / 1e6:.2f} MB)")
    for kind, row in sorted(per_kind.items()):
        print(f"  {kind:<12} {row['entries']:>7} entries "
              f"{row['bytes'] / 1e6:>9.2f} MB  "
              f"oldest {row['oldest_s'] / 3600.0:.1f}h")
    if not per_kind:
        print("  (empty)")
    return 0


def _cmd_cache_gc(args) -> int:
    from .store import gc_backend, open_backend

    backend = open_backend(args.path)
    report = gc_backend(
        backend,
        max_age_s=(args.max_age_days * 86400.0
                   if args.max_age_days is not None else None),
        max_bytes=(_parse_size(args.max_bytes)
                   if args.max_bytes is not None else None),
        dry_run=args.dry_run)
    verb = "would delete" if args.dry_run else "deleted"
    print(f"store:   {args.path} ({report['backend']} backend)")
    print(f"scanned: {report['scanned']} entries "
          f"({report['bytes_before'] / 1e6:.2f} MB)")
    print(f"{verb}: {report['deleted']} entries "
          f"({report['bytes_freed'] / 1e6:.2f} MB); "
          f"{report['bytes_after'] / 1e6:.2f} MB remain")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p_synth = sub.add_parser("synth", help="synthesize a Verilog design")
    p_synth.add_argument("design")
    p_synth.add_argument("--effort", default="medium",
                         choices=("low", "medium", "high"))
    p_synth.set_defaults(fn=_cmd_synth)

    p_train = sub.add_parser("train", help="train SNS and save the model")
    p_train.add_argument("output")
    p_train.add_argument("--preset", default="fast", choices=("fast", "full"))
    p_train.add_argument("--train-fraction", type=float, default=0.5)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--buckets", action="store_true",
                         help="train with length-bucketed minibatches")
    p_train.add_argument("--executor", action="store_true",
                         help="compile one train step per batch shape and "
                              "replay the static kernel schedule")
    p_train.add_argument("--precision", default="fp64",
                         choices=("fp64", "fp32"),
                         help="executor arithmetic (fp64 is bit-identical "
                              "to the dynamic path)")
    p_train.add_argument("--profile", action="store_true",
                         help="print per-phase training timing/allocation profiles")
    p_train.set_defaults(fn=_cmd_train)

    p_datagen = sub.add_parser("datagen",
                               help="build the hardware design dataset")
    p_datagen.add_argument("output", nargs="?",
                           help="optional JSON file for the labeled rows")
    p_datagen.add_argument("--effort", default="medium",
                           choices=("low", "medium", "high"))
    p_datagen.add_argument("--workers", type=int, default=1,
                           help="process-pool size (0 = CPU count)")
    p_datagen.add_argument("--cache-dir", default=None,
                           help="persist the synthesis cache to this directory")
    p_datagen.add_argument("--max-nodes", type=int, default=None,
                           help="skip designs larger than this many nodes")
    p_datagen.add_argument("--profile", action="store_true",
                           help="print per-design timing and cache statistics")
    p_datagen.set_defaults(fn=_cmd_datagen)

    p_pred = sub.add_parser("predict", help="predict with a trained model")
    p_pred.add_argument("model")
    p_pred.add_argument("designs", nargs="+", metavar="design",
                        help="one or more Verilog files (batched together)")
    p_pred.add_argument("--cache-dir", default=None,
                        help="persist the prediction cache to this directory")
    p_pred.add_argument("--no-cache", action="store_true",
                        help="disable the prediction cache")
    p_pred.add_argument("--executor", action="store_true",
                        help="run inference through compiled per-bucket "
                             "kernel plans (plan-once/run-many)")
    p_pred.add_argument("--precision", default="fp64",
                        choices=("fp64", "fp32", "int8"),
                        help="executor arithmetic; int8 quantizes the "
                             "embedding tables per row (weight-only)")
    p_pred.add_argument("--threads", type=int, default=1,
                        help="executor bucket-parallel threads "
                             "(deterministic merge; 1 = serial)")
    p_pred.set_defaults(fn=_cmd_predict)

    p_paths = sub.add_parser("paths", help="sample complete circuit paths")
    p_paths.add_argument("design")
    p_paths.add_argument("-k", type=int, default=5)
    p_paths.add_argument("--max-paths", type=int, default=100)
    p_paths.set_defaults(fn=_cmd_paths)

    p_compile = sub.add_parser("compile",
                               help="compile a design through the array front end")
    p_compile.add_argument("design")
    p_compile.add_argument("--top", default=None,
                           help="top module (default: inferred)")
    p_compile.add_argument("--cache-dir", default=None,
                           help="persist the compile cache to this directory")
    p_compile.add_argument("--profile", action="store_true",
                           help="print per-stage front-end timings")
    p_compile.add_argument("--sample", action="store_true",
                           help="also sample complete circuit paths")
    p_compile.add_argument("-k", type=int, default=5,
                           help="path-sampling divisor (with --sample)")
    p_compile.set_defaults(fn=_cmd_compile)

    p_dse = sub.add_parser("dse",
                           help="budgeted streaming design-space exploration")
    p_dse.add_argument("model", help="trained SNS model (.npz)")
    p_dse.add_argument("--space", default="boom",
                       choices=("boom", "extended"),
                       help="BOOM grid: Table 10 (2592) or extended (~1.12M)")
    p_dse.add_argument("--budget", type=int, default=4096,
                       help="configurations drawn from the space")
    p_dse.add_argument("--fidelity", type=float, default=0.25,
                       help="fraction of candidates promoted past the "
                            "surrogate screen to SNS prediction")
    p_dse.add_argument("--synth-finalists", type=int, default=0,
                       help="Pareto-front designs re-checked with the "
                            "reference synthesizer")
    p_dse.add_argument("--chunk", type=int, default=256,
                       help="streaming chunk size (bounds live modules)")
    p_dse.add_argument("--seed", type=int, default=0)
    p_dse.add_argument("--profile", action="store_true",
                       help="print per-rung timing and throughput")
    p_dse.add_argument("--verbose", action="store_true",
                       help="print per-block progress")
    p_dse.add_argument("--output", default=None,
                       help="optional JSON file for the evaluated points")
    p_dse.set_defaults(fn=_cmd_dse)

    p_serve = sub.add_parser("serve", help="run the async prediction server")
    p_serve.add_argument("model", help="trained SNS model (.npz)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8100)
    p_serve.add_argument("--max-batch", type=int, default=32,
                         help="micro-batch size flush trigger")
    p_serve.add_argument("--max-wait-ms", type=float, default=2.0,
                         help="micro-batch deadline flush trigger")
    p_serve.add_argument("--max-queue", type=int, default=256,
                         help="queued requests before 503 load shedding")
    p_serve.add_argument("--workers", type=int, default=4,
                         help="prediction worker threads")
    p_serve.add_argument("--rate-limit", type=float, default=None,
                         help="per-client requests/sec (429 beyond; "
                              "default unlimited)")
    p_serve.add_argument("--request-timeout", type=float, default=30.0,
                         help="per-request deadline in seconds (504 beyond)")
    p_serve.add_argument("--cache-dir", default=None,
                         help="persist prediction/front-end caches here")
    p_serve.add_argument("--precision", default="fp64",
                         choices=("fp64", "fp32", "int8"),
                         help="default inference arithmetic")
    p_serve.add_argument("--executor", action="store_true",
                         help="serve through compiled per-bucket kernel plans")
    p_serve.add_argument("--threads", type=int, default=1,
                         help="executor bucket-parallel threads")
    p_serve.add_argument("--serialized", action="store_true",
                         help="one-request-at-a-time baseline mode "
                              "(benchmarking)")
    p_serve.add_argument("--no-train", action="store_true",
                         help="disable the POST /train endpoint")
    p_serve.add_argument("--drain-timeout", type=float, default=10.0,
                         help="seconds to drain in-flight work on SIGINT")
    p_serve.set_defaults(fn=_cmd_serve)

    p_bench = sub.add_parser("bench-serve",
                             help="load-test a running prediction server")
    p_bench.add_argument("--host", default="127.0.0.1")
    p_bench.add_argument("--port", type=int, default=8100)
    p_bench.add_argument("--clients", type=int, default=8,
                         help="concurrent closed-loop clients")
    p_bench.add_argument("--requests", type=int, default=41,
                         help="total /predict requests per pass")
    p_bench.add_argument("--repeat", type=int, default=1,
                         help="passes over the work list per client")
    p_bench.add_argument("--designs", default=None,
                         help="comma-separated bundled design names "
                              "(default: all 41)")
    p_bench.add_argument("--timeout", type=float, default=120.0,
                         help="client-side request timeout")
    p_bench.add_argument("--output", default=None,
                         help="optional JSON file for the load report")
    p_bench.set_defaults(fn=_cmd_bench_serve)

    p_report = sub.add_parser("report", help="full timing/area/power report")
    p_report.add_argument("design")
    p_report.add_argument("--paths", type=int, default=3,
                          help="worst timing paths to show")
    p_report.set_defaults(fn=_cmd_report)

    p_export = sub.add_parser("export", help="emit a dataset design as Verilog")
    p_export.add_argument("name", nargs="?")
    p_export.add_argument("output", nargs="?")
    p_export.add_argument("--list", action="store_true",
                          help="list the 41 dataset designs")
    p_export.set_defaults(fn=_cmd_export)

    p_cache = sub.add_parser("cache",
                             help="inspect or sweep a shared artifact store")
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_cstats = cache_sub.add_parser(
        "stats", help="per-kind entry counts, bytes, and ages")
    p_cstats.add_argument("path",
                          help="store root directory or SQLite file")
    p_cstats.add_argument("--json", action="store_true",
                          help="machine-readable output")
    p_cstats.set_defaults(fn=_cmd_cache_stats)
    p_cgc = cache_sub.add_parser(
        "gc", help="age/size-bounded sweep of the persistent tier")
    p_cgc.add_argument("path", help="store root directory or SQLite file")
    p_cgc.add_argument("--max-age-days", type=float, default=None,
                       help="delete entries older than this many days")
    p_cgc.add_argument("--max-bytes", default=None, metavar="N[K|M|G]",
                       help="evict oldest entries until the store fits")
    p_cgc.add_argument("--dry-run", action="store_true",
                       help="report what would be deleted without deleting")
    p_cgc.set_defaults(fn=_cmd_cache_gc)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
