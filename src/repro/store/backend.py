"""Persistent backends for the :class:`~repro.store.ArtifactStore`.

Two implementations behind one small interface, both safe for many
processes mounting the same store concurrently:

- :class:`DirectoryBackend` — one JSON file per key with two-level
  fanout, unique-temp staging, and atomic-rename publish.  In ``flat``
  layout it is bit-compatible with the directories the PR 1-9 caches
  wrote (``root/<key[:2]>/<key>.json``); the default ``kinds`` layout
  adds one artifact-kind directory level so a single root can hold the
  whole pipeline.
- :class:`SQLiteBackend` — one WAL-mode database file with write-once
  ``INSERT OR IGNORE`` rows and *batched* multi-get/multi-put, which is
  what makes a 1k-entry warm scan one round trip instead of 1k file
  opens.

Both are corruption tolerant: a torn, truncated, or garbage entry reads
as a miss (and, where cheap, is deleted so the next put heals it) —
a reader never sees partial payloads and a crashed writer never poisons
the store.
"""

from __future__ import annotations

import itertools
import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path

__all__ = ["BackendEntry", "PersistentBackend", "DirectoryBackend",
           "SQLiteBackend", "open_backend", "gc_backend"]

# Distinct temp-file names for concurrent writers of the same key: the
# pid separates processes, the counter separates threads.
_TMP_COUNTER = itertools.count()


@dataclass
class BackendEntry:
    """One persisted artifact, as seen by ``stats``/``gc`` sweeps."""

    kind: str
    key: str
    size: int
    created_at: float


class PersistentBackend:
    """Interface of the persistent tier: a (kind, key) -> dict table."""

    name = "abstract"

    def get(self, kind: str, key: str) -> dict | None:
        raise NotImplementedError

    def put(self, kind: str, key: str, value: dict,
            replace: bool = False) -> None:
        raise NotImplementedError

    def get_many(self, kind: str, keys: list[str]) -> dict[str, dict]:
        return {k: v for k in keys if (v := self.get(kind, k)) is not None}

    def put_many(self, kind: str, items: dict[str, dict],
                 replace: bool = False) -> None:
        for key, value in items.items():
            self.put(kind, key, value, replace=replace)

    def contains(self, kind: str, key: str) -> bool:
        return self.get(kind, key) is not None

    def entries(self):
        """Iterate :class:`BackendEntry` rows (for stats and gc)."""
        raise NotImplementedError

    def delete(self, kind: str, key: str) -> None:
        raise NotImplementedError

    def clear(self) -> None:
        for entry in list(self.entries()):
            self.delete(entry.kind, entry.key)

    def close(self) -> None:
        pass


# ---------------------------------------------------------------------- #
class DirectoryBackend(PersistentBackend):
    """One JSON file per artifact under ``root``.

    Parameters
    ----------
    root:
        Store directory; created on first write.
    flat:
        ``True`` mounts the legacy single-purpose layout
        (``root/<key[:2]>/<key>.json``, kind ignored) that
        ``PredictionCache``/``FrontendCache``/``SynthesisCache`` wrote
        in PRs 1-9, keeping those directories readable and writable
        bit-for-bit.  The default layered layout prefixes the artifact
        kind (``root/<kind>/<key[:2]>/<key>.json``).

    Publishes are atomic (unique temp + rename) and last-writer-wins:
    entries are content-addressed so every writer of a key carries the
    same payload, and overwriting is what lets a later put heal a
    corrupt entry left by a crashed pre-staging writer.
    """

    name = "directory"

    def __init__(self, root: str | Path, flat: bool = False):
        self.root = Path(root)
        self.flat = flat

    def _path(self, kind: str, key: str) -> Path:
        base = self.root if self.flat else self.root / kind
        return base / key[:2] / f"{key}.json"

    def get(self, kind: str, key: str) -> dict | None:
        try:
            value = json.loads(self._path(kind, key).read_text())
        except (OSError, ValueError):
            return None
        return value if isinstance(value, dict) else None

    def put(self, kind: str, key: str, value: dict,
            replace: bool = False) -> None:
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{key}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp"
        try:
            tmp.write_text(json.dumps(value))
            tmp.replace(path)  # atomic publish
        except OSError:
            tmp.unlink(missing_ok=True)
            raise

    def contains(self, kind: str, key: str) -> bool:
        return self._path(kind, key).is_file()

    def entries(self):
        if not self.root.is_dir():
            return
        pattern = "*/*.json" if self.flat else "*/*/*.json"
        for path in self.root.glob(pattern):
            try:
                stat = path.stat()
            except OSError:
                continue
            kind = "" if self.flat else path.parts[len(self.root.parts)]
            yield BackendEntry(kind=kind, key=path.stem, size=stat.st_size,
                               created_at=stat.st_mtime)

    def delete(self, kind: str, key: str) -> None:
        self._path(kind, key).unlink(missing_ok=True)

    def clear(self) -> None:
        if not self.root.is_dir():
            return
        patterns = (("*/*.json", "*/.*.tmp") if self.flat
                    else ("*/*/*.json", "*/*/.*.tmp"))
        for pattern in patterns:
            for path in self.root.glob(pattern):
                path.unlink(missing_ok=True)


# ---------------------------------------------------------------------- #
class SQLiteBackend(PersistentBackend):
    """All artifacts in one WAL-mode SQLite file.

    - **write-once**: ``INSERT OR IGNORE`` — the first writer of a key
      wins and later writers are no-ops (entries are content-addressed,
      so they all carry the same payload);
    - **batched**: :meth:`get_many` / :meth:`put_many` are single
      round trips (chunked ``IN`` selects, one-transaction
      ``executemany``), the fast path for warm DSE scans;
    - **concurrent**: WAL mode lets any number of reader processes
      overlap one writer; writers serialize on a busy-timeout;
    - **corruption tolerant**: a row whose payload fails to decode is
      deleted and read as a miss; database-level errors read as misses
      rather than raising into the pipeline.

    Connections are per-thread (sqlite3 objects are not thread-safe),
    created lazily so a backend can be constructed in a parent process
    and used after ``fork``.
    """

    name = "sqlite"

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS artifacts (
            kind       TEXT    NOT NULL,
            key        TEXT    NOT NULL,
            value      BLOB    NOT NULL,
            size       INTEGER NOT NULL,
            created_at REAL    NOT NULL,
            PRIMARY KEY (kind, key)
        )
    """
    _CHUNK = 400  # keys per IN(...) select, well under the 999 cap

    def __init__(self, path: str | Path, timeout_s: float = 30.0):
        self.path = Path(path)
        self.timeout_s = timeout_s
        self._local = threading.local()
        self._conns: list[sqlite3.Connection] = []
        self._conns_lock = threading.Lock()
        self._pid = os.getpid()
        # Fail fast on an unusable location; tolerate a corrupt file at
        # read time instead of import time.
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn()

    def _conn(self) -> sqlite3.Connection:
        if os.getpid() != self._pid:
            # Forked child: drop inherited connections (unsafe to share).
            self._local = threading.local()
            self._conns = []
            self._pid = os.getpid()
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(self.path, timeout=self.timeout_s,
                                   isolation_level=None)
            try:
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=NORMAL")
                conn.execute(self._SCHEMA)
            except sqlite3.Error:
                pass  # corrupt file: reads will miss, puts will raise
            self._local.conn = conn
            with self._conns_lock:
                self._conns.append(conn)
        return conn

    @staticmethod
    def _decode(blob) -> dict | None:
        try:
            value = json.loads(blob)
        except (TypeError, UnicodeDecodeError, ValueError):
            return None
        return value if isinstance(value, dict) else None

    def get(self, kind: str, key: str) -> dict | None:
        try:
            row = self._conn().execute(
                "SELECT value FROM artifacts WHERE kind=? AND key=?",
                (kind, key)).fetchone()
        except sqlite3.Error:
            return None
        if row is None:
            return None
        value = self._decode(row[0])
        if value is None:
            self.delete(kind, key)  # heal: corrupt row reads as a miss
        return value

    def get_many(self, kind: str, keys: list[str]) -> dict[str, dict]:
        found: dict[str, dict] = {}
        try:
            conn = self._conn()
            for lo in range(0, len(keys), self._CHUNK):
                chunk = keys[lo:lo + self._CHUNK]
                marks = ",".join("?" * len(chunk))
                rows = conn.execute(
                    f"SELECT key, value FROM artifacts "
                    f"WHERE kind=? AND key IN ({marks})",
                    (kind, *chunk)).fetchall()
                for key, blob in rows:
                    value = self._decode(blob)
                    if value is not None:
                        found[key] = value
        except sqlite3.Error:
            return found
        return found

    def put(self, kind: str, key: str, value: dict,
            replace: bool = False) -> None:
        self.put_many(kind, {key: value}, replace=replace)

    def put_many(self, kind: str, items: dict[str, dict],
                 replace: bool = False) -> None:
        if not items:
            return
        verb = "INSERT OR REPLACE" if replace else "INSERT OR IGNORE"
        now = time.time()
        rows = []
        for key, value in items.items():
            blob = json.dumps(value).encode()
            rows.append((kind, key, blob, len(blob), now))
        conn = self._conn()
        for attempt in range(5):
            try:
                conn.execute("BEGIN IMMEDIATE")
                conn.executemany(
                    f"{verb} INTO artifacts "
                    "(kind, key, value, size, created_at) "
                    "VALUES (?, ?, ?, ?, ?)", rows)
                conn.execute("COMMIT")
                return
            except sqlite3.OperationalError:
                try:
                    conn.execute("ROLLBACK")
                except sqlite3.Error:
                    pass
                if attempt == 4:
                    raise
                time.sleep(0.05 * (attempt + 1))

    def contains(self, kind: str, key: str) -> bool:
        try:
            return self._conn().execute(
                "SELECT 1 FROM artifacts WHERE kind=? AND key=?",
                (kind, key)).fetchone() is not None
        except sqlite3.Error:
            return False

    def entries(self):
        try:
            rows = self._conn().execute(
                "SELECT kind, key, size, created_at FROM artifacts").fetchall()
        except sqlite3.Error:
            return
        for kind, key, size, created_at in rows:
            yield BackendEntry(kind=kind, key=key, size=size,
                               created_at=created_at)

    def delete(self, kind: str, key: str) -> None:
        try:
            self._conn().execute(
                "DELETE FROM artifacts WHERE kind=? AND key=?", (kind, key))
        except sqlite3.Error:
            pass

    def clear(self) -> None:
        try:
            self._conn().execute("DELETE FROM artifacts")
        except sqlite3.Error:
            pass

    def close(self) -> None:
        with self._conns_lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            try:
                conn.close()
            except sqlite3.Error:
                pass
        self._local = threading.local()


# ---------------------------------------------------------------------- #
def open_backend(spec: str | Path) -> PersistentBackend:
    """Open a persistent tier from a path-like spec.

    ``*.sqlite`` / ``*.sqlite3`` / ``*.db`` (or an existing regular
    file) opens a :class:`SQLiteBackend`; anything else is a
    :class:`DirectoryBackend` root in the layered (per-kind) layout.
    """
    path = Path(spec)
    if path.suffix in (".sqlite", ".sqlite3", ".db") or path.is_file():
        return SQLiteBackend(path)
    return DirectoryBackend(path)


def gc_backend(backend: PersistentBackend, max_age_s: float | None = None,
               max_bytes: int | None = None, now: float | None = None,
               dry_run: bool = False) -> dict:
    """Age/size-bounded sweep of a persistent tier.

    Entries older than ``max_age_s`` are deleted; if the survivors still
    exceed ``max_bytes``, the oldest are deleted until they fit.  Returns
    a report dict (counts and bytes, before/after).  ``dry_run`` only
    reports what would be deleted.
    """
    now = time.time() if now is None else now
    entries = sorted(backend.entries(), key=lambda e: e.created_at)
    total = sum(e.size for e in entries)
    doomed: list[BackendEntry] = []
    kept_bytes = total
    survivors = []
    for entry in entries:
        if max_age_s is not None and now - entry.created_at > max_age_s:
            doomed.append(entry)
            kept_bytes -= entry.size
        else:
            survivors.append(entry)
    if max_bytes is not None:
        for entry in survivors:          # oldest first
            if kept_bytes <= max_bytes:
                break
            doomed.append(entry)
            kept_bytes -= entry.size
    if not dry_run:
        for entry in doomed:
            backend.delete(entry.kind, entry.key)
    return {
        "backend": backend.name,
        "scanned": len(entries),
        "deleted": len(doomed),
        "bytes_before": total,
        "bytes_freed": total - kept_bytes,
        "bytes_after": kept_bytes,
        "dry_run": dry_run,
    }
