"""Trained-model registry over the :class:`~repro.store.ArtifactStore`.

A fitted SNS predictor is itself a content-addressed artifact: its
weights fingerprint (``repro.runtime.fingerprint.fingerprint_model``)
is the key, the ``.npz`` archive :mod:`repro.core.persistence` writes is
the payload (carried base64-inside-JSON so both persistent backends
store it unchanged).  Two small pointer kinds ride along:

- ``model-index``: training-request fingerprint -> model fingerprint,
  which is what makes ``/train`` idempotent across server restarts —
  an identical request replays the stored model instead of retraining;
- ``model-alias``: mutable name -> model fingerprint pointers
  (``replace=True`` puts; the only non-write-once kind in the store).
"""

from __future__ import annotations

import base64
import io

from . import keys
from .store import ArtifactStore

__all__ = ["ModelStore"]

_FORMAT = "sns-npz-b64"


class ModelStore:
    """Weights + metadata registry on a shared artifact store."""

    def __init__(self, store: ArtifactStore):
        self.store = store

    @property
    def persistent(self) -> bool:
        return self.store.backend is not None

    # ------------------------------------------------------------------ #
    def save(self, sns, *, name: str | None = None,
             training_fp: str | None = None,
             meta: dict | None = None) -> str:
        """Persist a fitted model; returns its weights fingerprint.

        ``name`` registers a mutable alias; ``training_fp`` records the
        request -> model index entry used for cross-restart ``/train``
        dedup.
        """
        from ..core.persistence import save_sns
        from ..runtime.fingerprint import fingerprint_model

        model_fp = fingerprint_model(sns)
        buffer = io.BytesIO()
        save_sns(sns, buffer)
        payload = {
            "format": _FORMAT,
            "version": 1,
            "data_b64": base64.b64encode(buffer.getvalue()).decode("ascii"),
            "meta": {"name": name, **(meta or {})},
        }
        self.store.put("model", keys.model_key(model_fp), payload)
        if name:
            self.store.put("model-alias", keys.alias_key(name),
                           {"name": name, "model_fp": model_fp},
                           replace=True)
        if training_fp:
            self.store.put("model-index", training_fp,
                           {"model_fp": model_fp})
        return model_fp

    def load(self, model_fp: str):
        """Rehydrate the SNS stored under ``model_fp`` (or ``None``)."""
        payload = self.store.get("model", keys.model_key(model_fp))
        if payload is None or payload.get("format") != _FORMAT:
            return None
        from ..core.persistence import load_sns

        data = base64.b64decode(payload["data_b64"])
        return load_sns(io.BytesIO(data))

    # ------------------------------------------------------------------ #
    def resolve_alias(self, name: str) -> str | None:
        pointer = self.store.get("model-alias", keys.alias_key(name))
        return pointer.get("model_fp") if pointer else None

    def resolve_training(self, training_fp: str) -> str | None:
        pointer = self.store.get("model-index", training_fp)
        return pointer.get("model_fp") if pointer else None

    def find(self, ref: str) -> str | None:
        """Resolve a name, fingerprint, or fingerprint prefix (>= 8
        chars) to a stored model fingerprint."""
        model_fp = self.resolve_alias(ref)
        if model_fp is not None:
            return model_fp
        if self.store.contains("model", ref):
            return ref
        if len(ref) >= 8:
            matches = {fp for fp in self.store.keys("model")
                       if fp.startswith(ref)}
            if len(matches) == 1:
                return next(iter(matches))
            if len(matches) > 1:
                raise KeyError(f"model ref {ref!r} is ambiguous")
        return None

    def fingerprints(self) -> list[str]:
        """Fingerprints of every stored model."""
        return sorted(self.store.keys("model"))
