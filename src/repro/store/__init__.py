"""``repro.store`` — the unified content-addressed artifact store.

One store, three tiers (live-object LRU, memory LRU, pluggable
persistent backend), dependency-aware keys spanning the whole pipeline:
graph -> paths -> synthesis labels -> predictions -> trained-model
weights.  ``FrontendCache``, ``SynthesisCache``, ``PredictionCache``,
and the serve ``ModelRegistry`` are thin schema adapters over it, and
because both persistent backends (directory, SQLite/WAL) tolerate any
number of concurrent processes, every warm hit is fleet-wide: a
``repro serve`` worker, a ``build_design_dataset`` pool worker, and a
DSE sweep mounting one store all replay each other's work.

See :mod:`repro.store.keys` for the key schema,
:mod:`repro.store.backend` for the persistence contract, and
:mod:`repro.store.models` for the trained-model registry.
"""

from . import keys
from .backend import (BackendEntry, DirectoryBackend, PersistentBackend,
                      SQLiteBackend, gc_backend, open_backend)
from .models import ModelStore
from .store import ArtifactStore

__all__ = [
    "ArtifactStore",
    "ModelStore",
    "PersistentBackend", "DirectoryBackend", "SQLiteBackend",
    "BackendEntry", "open_backend", "gc_backend",
    "keys",
]
