"""The unified content-addressed artifact store.

One :class:`ArtifactStore` replaces the per-purpose object/memory/disk
tier stacks that ``FrontendCache``, ``SynthesisCache``, and
``PredictionCache`` each reimplemented.  Three tiers, cheapest first:

- **object** — live deserialized values (a ``CompiledGraph``, a path
  tuple), LRU-bounded, no (de)serialization on a hit;
- **memory** — JSON payload dicts, LRU-bounded;
- **persistent** — an optional pluggable
  :class:`~repro.store.backend.PersistentBackend` (directory or SQLite)
  that any number of processes can mount concurrently, which is what
  turns a warm hit from per-process into cluster-wide.

Entries are addressed by ``(kind, key)`` where ``kind`` names the
pipeline stage (see :mod:`repro.store.keys`) and ``key`` is a
content-addressed fingerprint, so one store safely holds the whole
pipeline — graphs, paths, synthesis labels, predictions, and trained
model weights — for any number of models and workers at once.

Serialization is lazy: ``put_object`` only invokes its ``encode``
callback when a persistent backend is attached, so memory-only stores
never pay payload construction (the PR-10 fix for ``FrontendCache``
serializing every compiled graph it would never write).

All hit/miss counters are per-kind, per-tier, and mutated only under
the store lock, so ``/metrics`` aggregation and concurrent workers
never race on stats.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from .backend import PersistentBackend

__all__ = ["ArtifactStore"]

_COUNTERS = ("object_hits", "memory_hits", "persistent_hits", "misses",
             "puts", "single_flight_hits")


class _Flight:
    """Single-flight bookkeeping for one in-progress computation."""

    __slots__ = ("event", "value", "error")

    def __init__(self):
        self.event = threading.Event()
        self.value = None
        self.error: BaseException | None = None


class ArtifactStore:
    """Three-tier content-addressed store for pipeline artifacts.

    Parameters
    ----------
    max_entries:
        LRU bound of the memory (payload) tier and of the object tier,
        each counted across all kinds.
    backend:
        Optional persistent tier; ``None`` keeps the store
        process-local.
    """

    def __init__(self, max_entries: int = 4096,
                 backend: PersistentBackend | None = None):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1: {max_entries}")
        self.max_entries = max_entries
        self.backend = backend
        self._objects: OrderedDict[tuple[str, str], object] = OrderedDict()
        self._payloads: OrderedDict[tuple[str, str], dict] = OrderedDict()
        self._stats: dict[str, dict[str, int]] = {}
        self._lock = threading.Lock()
        self._flights: dict[tuple[str, str], _Flight] = {}

    # -- stats ---------------------------------------------------------- #
    def _bump(self, kind: str, counter: str, by: int = 1) -> None:
        # Callers hold self._lock.
        stats = self._stats.get(kind)
        if stats is None:
            stats = self._stats[kind] = dict.fromkeys(_COUNTERS, 0)
        stats[counter] += by

    def counters(self, kinds=None) -> dict[str, int]:
        """Summed per-tier counters, optionally restricted to ``kinds``."""
        with self._lock:
            total = dict.fromkeys(_COUNTERS, 0)
            for kind, stats in self._stats.items():
                if kinds is not None and kind not in kinds:
                    continue
                for name, value in stats.items():
                    total[name] += value
        return total

    def stats(self) -> dict:
        """Per-kind counters plus tier-level aggregates and sizes."""
        with self._lock:
            kinds = {k: dict(v) for k, v in sorted(self._stats.items())}
            object_entries = len(self._objects)
            memory_entries = len(self._payloads)
        total = dict.fromkeys(_COUNTERS, 0)
        for stats in kinds.values():
            for name, value in stats.items():
                total[name] += value
        hits = (total["object_hits"] + total["memory_hits"]
                + total["persistent_hits"])
        lookups = hits + total["misses"]

        def rate(n: int) -> float:
            return n / lookups if lookups else 0.0

        return {
            "backend": self.backend.name if self.backend else None,
            "tiers": {
                "object": {"entries": object_entries,
                           "hits": total["object_hits"],
                           "hit_rate": rate(total["object_hits"])},
                "memory": {"entries": memory_entries,
                           "hits": total["memory_hits"],
                           "hit_rate": rate(total["memory_hits"])},
                "persistent": {"hits": total["persistent_hits"],
                               "hit_rate": rate(total["persistent_hits"])},
            },
            "hit_rate": hits / lookups if lookups else 0.0,
            "misses": total["misses"],
            "puts": total["puts"],
            "single_flight_hits": total["single_flight_hits"],
            "kinds": kinds,
        }

    # -- payload path --------------------------------------------------- #
    def get(self, kind: str, key: str) -> dict | None:
        """Look up a payload artifact; ``None`` on an all-tier miss."""
        ref = (kind, key)
        with self._lock:
            value = self._payloads.get(ref)
            if value is not None:
                self._payloads.move_to_end(ref)
                self._bump(kind, "memory_hits")
                return value
        if self.backend is not None:
            value = self.backend.get(kind, key)
            if value is not None:
                with self._lock:
                    self._bump(kind, "persistent_hits")
                    self._insert(self._payloads, ref, value)
                return value
        with self._lock:
            self._bump(kind, "misses")
        return None

    def put(self, kind: str, key: str, value: dict,
            replace: bool = False) -> None:
        """Store a payload in the memory tier (and the backend, if any)."""
        with self._lock:
            self._bump(kind, "puts")
            self._insert(self._payloads, (kind, key), value)
        if self.backend is not None:
            self.backend.put(kind, key, value, replace=replace)

    def get_many(self, kind: str, keys: list[str]) -> dict[str, dict]:
        """Batched lookup: memory tier first, one backend round trip for
        the rest.  Returns only the keys that hit."""
        found: dict[str, dict] = {}
        missing: list[str] = []
        with self._lock:
            for key in keys:
                value = self._payloads.get((kind, key))
                if value is not None:
                    self._payloads.move_to_end((kind, key))
                    found[key] = value
                else:
                    missing.append(key)
            self._bump(kind, "memory_hits", len(found))
        if missing and self.backend is not None:
            fetched = self.backend.get_many(kind, missing)
            with self._lock:
                self._bump(kind, "persistent_hits", len(fetched))
                self._bump(kind, "misses", len(missing) - len(fetched))
                for key, value in fetched.items():
                    self._insert(self._payloads, (kind, key), value)
            found.update(fetched)
        elif missing:
            with self._lock:
                self._bump(kind, "misses", len(missing))
        return found

    def put_many(self, kind: str, items: dict[str, dict],
                 replace: bool = False) -> None:
        with self._lock:
            self._bump(kind, "puts", len(items))
            for key, value in items.items():
                self._insert(self._payloads, (kind, key), value)
        if self.backend is not None:
            self.backend.put_many(kind, items, replace=replace)

    # -- object path ---------------------------------------------------- #
    def get_object(self, kind: str, key: str, decode=None):
        """Look up a live object; falls back to ``decode(payload)`` from
        the persistent tier (the decoded object is promoted)."""
        ref = (kind, key)
        with self._lock:
            obj = self._objects.get(ref)
            if obj is not None:
                self._objects.move_to_end(ref)
                self._bump(kind, "object_hits")
                return obj
        if self.backend is not None and decode is not None:
            payload = self.backend.get(kind, key)
            if payload is not None:
                obj = decode(payload)
                with self._lock:
                    self._bump(kind, "persistent_hits")
                    self._insert(self._objects, ref, obj)
                return obj
        with self._lock:
            self._bump(kind, "misses")
        return None

    def put_object(self, kind: str, key: str, obj, encode=None,
                   replace: bool = False) -> None:
        """Store a live object; ``encode()`` runs **only** when a
        persistent backend is attached (no wasted payload construction
        on memory-only stores)."""
        with self._lock:
            self._bump(kind, "puts")
            self._insert(self._objects, (kind, key), obj)
        if self.backend is not None and encode is not None:
            self.backend.put(kind, key, encode(), replace=replace)

    # -- single flight -------------------------------------------------- #
    def get_or_compute(self, kind: str, key: str, compute, *,
                       decode=None, encode=None):
        """Cached call of ``compute`` with per-key single-flight dedup.

        Concurrent callers of one key in one process run ``compute``
        exactly once — the rest block on the owner and share its result.
        With ``decode`` the artifact travels through the object tier
        (``encode`` serializing it for the backend); otherwise
        ``compute`` must return a payload dict.
        """
        lookup = ((lambda: self.get_object(kind, key, decode))
                  if decode is not None else (lambda: self.get(kind, key)))
        value = lookup()
        if value is not None:
            return value
        ref = (kind, key)
        with self._lock:
            flight = self._flights.get(ref)
            owner = flight is None
            if owner:
                flight = self._flights[ref] = _Flight()
            else:
                self._bump(kind, "single_flight_hits")
        if owner:
            try:
                value = compute()
                if decode is not None:
                    self.put_object(kind, key, value, encode=encode)
                else:
                    self.put(kind, key, value)
                flight.value = value
            except BaseException as exc:
                flight.error = exc
                raise
            finally:
                flight.event.set()
                with self._lock:
                    self._flights.pop(ref, None)
            return value
        flight.event.wait()
        if flight.error is None:
            return flight.value
        # The owner failed; recover independently rather than replaying
        # its exception against an unrelated caller.
        value = lookup()
        return value if value is not None else compute()

    # -- bookkeeping ---------------------------------------------------- #
    def _insert(self, tier: OrderedDict, ref, value) -> None:
        # Callers hold self._lock.
        tier[ref] = value
        tier.move_to_end(ref)
        while len(tier) > self.max_entries:
            tier.popitem(last=False)

    def contains(self, kind: str, key: str) -> bool:
        with self._lock:
            if (kind, key) in self._payloads or (kind, key) in self._objects:
                return True
        return self.backend is not None and self.backend.contains(kind, key)

    def memory_len(self, kind: str | None = None) -> int:
        """Memory-tier entry count (optionally for one kind)."""
        with self._lock:
            if kind is None:
                return len(self._payloads)
            return sum(1 for k, _ in self._payloads if k == kind)

    def keys(self, kind: str) -> set[str]:
        """All keys of ``kind`` visible in any tier."""
        with self._lock:
            visible = {key for k, key in self._payloads if k == kind}
            visible |= {key for k, key in self._objects if k == kind}
        if self.backend is not None:
            visible |= {e.key for e in self.backend.entries()
                        if e.kind == kind or e.kind == ""}
        return visible

    def clear(self, memory_only: bool = True) -> None:
        """Drop the in-process tiers (and the backend if requested)."""
        with self._lock:
            self._objects.clear()
            self._payloads.clear()
        if not memory_only and self.backend is not None:
            self.backend.clear()

    def close(self) -> None:
        if self.backend is not None:
            self.backend.close()
