"""The unified artifact key schema: one content address per pipeline stage.

Every cached artifact in the pipeline is a pure function of fingerprinted
inputs, and each stage's key embeds the fingerprints of the stages it
depends on — so invalidation is structural, never manual:

    source/module ─► graph ─┬─► paths ──────┬─► prediction
                            └─► synth label │
    library, effort, activity ──┘           │
    model weights ──────────────────────────┤
    sampler config ─────────────────────────┘
    training request ─► model weights (trained-model registry)

Concretely: a ``paths`` key hashes (graph fingerprint x sampler
fingerprint); a ``synth`` key hashes (graph x library x effort x
activity); a ``prediction`` key hashes (graph x model x sampler x
activity).  Editing one Verilog line changes the graph fingerprint and
thereby every downstream key; retraining changes the model fingerprint
and invalidates predictions but leaves graphs, paths, and labels warm.

The byte layouts below are the exact layouts the PR 1-9 caches wrote to
disk (``repro.runtime.fingerprint.cache_key``,
``repro.synth.cache.synthesis_cache_key``, ``FrontendCache.path_key``
now delegate here), so existing on-disk entries stay addressable.

This module is deliberately dependency-free (hashlib/json only): it
takes *fingerprint strings*, not live objects, so ``repro.store`` never
imports the higher pipeline layers that import it.
"""

from __future__ import annotations

import hashlib
import json

__all__ = [
    "KINDS",
    "paths_key",
    "synth_key",
    "prediction_key",
    "model_key",
    "training_request_key",
    "alias_key",
]

#: Artifact kinds the pipeline stores, in dependency order.  ``graph``
#: keys are the raw front-end fingerprints (source/module content hash);
#: the rest are composed here.
KINDS = ("graph", "paths", "synth", "prediction", "model",
         "model-index", "model-alias")


def _chain(prefix: bytes, parts, sep: bytes = b"|") -> str:
    h = hashlib.sha256(prefix)
    for part in parts:
        h.update(part.encode())
        if sep:
            h.update(sep)
    return h.hexdigest()


def paths_key(graph_fp: str, sampler_fp: str) -> str:
    """Sampled-path artifact: depends on (graph, sampler config)."""
    return _chain(b"frontend-paths:v1", (graph_fp, sampler_fp), sep=b"")


def synth_key(graph_fp: str, library_fp: str, effort: str,
              activity_fp: str = "none") -> str:
    """Synthesis label: depends on (graph, library, effort, activity)."""
    return _chain(b"synth:v1", (graph_fp, library_fp, effort, activity_fp))


def prediction_key(graph_fp: str, model_fp: str, sampler_fp: str,
                   activity_fp: str = "none") -> str:
    """Prediction: depends on (graph, model weights, sampler, activity)."""
    return _chain(b"", (graph_fp, model_fp, sampler_fp, activity_fp))


def model_key(model_fp: str) -> str:
    """Trained-model weights are addressed by their own fingerprint."""
    return model_fp


def training_request_key(request: dict) -> str:
    """Content address of one training request (designs, effort, epochs,
    seed, ...) — the ``model-index`` kind maps it to the fingerprint of
    the model that request produced, which is what makes ``/train``
    results replayable across server restarts."""
    payload = json.dumps(request, sort_keys=True, default=str)
    return hashlib.sha256(b"train-request:v1" + payload.encode()).hexdigest()


def alias_key(name: str) -> str:
    """Key of a mutable name -> model-fingerprint pointer."""
    return hashlib.sha256(b"model-alias:v1" + name.encode()).hexdigest()
