"""``repro.core`` — the SNS predictor (the paper's primary contribution).

Prediction flow (Figure 1): GraphIR -> complete-circuit-path sampling
(Algorithm 1) -> Circuitformer per-path inference -> Aggregation MLP
design-level prediction.  Training flow (Figure 4) lives in
:mod:`repro.core.training`; evaluation metrics (RRSE/MAEP) in
:mod:`repro.core.metrics`.
"""

from .sampler import PathSampler, SampledPath
from .metrics import rrse, maep
from .circuitformer import Circuitformer, CircuitformerConfig, TargetScaler, encode_batch
from .aggregator import (
    AggregationMLP,
    DesignFeatures,
    featurize_design,
    reduce_paths,
    design_features,
    path_statistics,
    FEATURE_DIM,
)
from .training import (
    PAPER_HYPERPARAMS,
    TrainingConfig,
    EpochStats,
    train_circuitformer,
    train_aggregator,
)
from .predictor import SNS, SNSPrediction
from .persistence import save_sns, load_sns
from .related import TABLE8_ROWS, TABLE8_SYSTEMS, qualitative_comparison, format_table8

__all__ = [
    "PathSampler", "SampledPath",
    "rrse", "maep",
    "Circuitformer", "CircuitformerConfig", "TargetScaler", "encode_batch",
    "AggregationMLP", "DesignFeatures", "featurize_design",
    "reduce_paths", "design_features", "path_statistics", "FEATURE_DIM",
    "PAPER_HYPERPARAMS", "TrainingConfig", "EpochStats",
    "train_circuitformer", "train_aggregator",
    "SNS", "SNSPrediction", "save_sns", "load_sns",
    "TABLE8_ROWS", "TABLE8_SYSTEMS", "qualitative_comparison", "format_table8",
]
