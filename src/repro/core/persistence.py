"""Saving and loading trained SNS predictors.

A trained SNS bundles the Circuitformer weights, the Aggregation MLP
weights, both models' input/target scalers, and the sampler/model
configuration.  Everything is stored in a single ``.npz`` archive with a
JSON header, so a model trained once can ship with a repository and be
loaded without retraining.
"""

from __future__ import annotations

import json
import os

import numpy as np

from .circuitformer import Circuitformer, CircuitformerConfig, TargetScaler
from .predictor import SNS
from .sampler import PathSampler

__all__ = ["save_sns", "load_sns"]

_FORMAT_VERSION = 1


def save_sns(sns: SNS, path: str | os.PathLike) -> None:
    """Serialize a fitted SNS predictor to ``path`` (numpy ``.npz``)."""
    if not sns._fitted:
        raise ValueError("refusing to save an unfitted SNS predictor")
    header = {
        "format_version": _FORMAT_VERSION,
        "circuitformer_config": vars(sns.circuitformer.config).copy(),
        "sampler": {"k": sns.sampler.k, "max_len": sns.sampler.max_len,
                    "max_paths": sns.sampler.max_paths, "seed": sns.sampler.seed},
        "num_aggregators": len(sns.aggregators),
    }
    arrays: dict[str, np.ndarray] = {
        "__header__": np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        "cf_scaler_mean": sns.circuitformer.scaler.mean,
        "cf_scaler_std": sns.circuitformer.scaler.std,
    }
    for name, value in sns.circuitformer.state_dict().items():
        arrays[f"cf::{name}"] = value
    for i, aggregator in enumerate(sns.aggregators):
        arrays[f"agg{i}_input_mean"] = aggregator.input_mean
        arrays[f"agg{i}_input_std"] = aggregator.input_std
        arrays[f"agg{i}_residual_mean"] = aggregator.residual_mean
        arrays[f"agg{i}_residual_std"] = aggregator.residual_std
        arrays[f"agg{i}_area_weights"] = aggregator.area_weights
        arrays[f"agg{i}_energy_weights"] = aggregator.energy_weights
        arrays[f"agg{i}_timing_scale"] = np.array([aggregator.timing_scale])
        for name, value in aggregator.state_dict().items():
            arrays[f"agg{i}::{name}"] = value
    np.savez(path, **arrays)


def load_sns(path: str | os.PathLike) -> SNS:
    """Load a predictor saved by :func:`save_sns`; ready to ``predict()``."""
    with np.load(path) as archive:
        header = json.loads(bytes(archive["__header__"]).decode())
        if header.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported SNS archive version: {header.get('format_version')}")
        config = CircuitformerConfig(**header["circuitformer_config"])
        sampler = PathSampler(**header["sampler"])
        count = header.get("num_aggregators", 1)
        sns = SNS(sampler=sampler, circuitformer_config=config,
                  num_aggregators=count)
        sns.circuitformer.load_state_dict(
            {k[len("cf::"):]: archive[k] for k in archive.files
             if k.startswith("cf::")})
        sns.circuitformer.scaler = TargetScaler(
            mean=archive["cf_scaler_mean"].copy(),
            std=archive["cf_scaler_std"].copy())
        for i, aggregator in enumerate(sns.aggregators):
            prefix = f"agg{i}::"
            aggregator.load_state_dict(
                {k[len(prefix):]: archive[k] for k in archive.files
                 if k.startswith(prefix)})
            aggregator.input_mean = archive[f"agg{i}_input_mean"].copy()
            aggregator.input_std = archive[f"agg{i}_input_std"].copy()
            aggregator.residual_mean = archive[f"agg{i}_residual_mean"].copy()
            aggregator.residual_std = archive[f"agg{i}_residual_std"].copy()
            aggregator.area_weights = archive[f"agg{i}_area_weights"].copy()
            aggregator.energy_weights = archive[f"agg{i}_energy_weights"].copy()
            aggregator.timing_scale = float(archive[f"agg{i}_timing_scale"][0])
            aggregator._physics_fitted = True
    sns._fitted = True
    return sns
