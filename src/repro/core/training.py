"""Model training (Section 4.3, Figure 4, Table 6).

Two models train here:

- the **Circuitformer**, with Adam on the Circuit Path Dataset
  (paper: batch 128, lr 0.001, 256 epochs);
- the **Aggregation MLP**, with SGD on the Hardware Design Dataset plus
  the Circuitformer's per-path predictions (paper: batch 64, lr 0.0001,
  10240 epochs).

The paper's epoch counts assume GPU training; defaults here are scaled to
CPU-tractable values and every count is configurable (the Table 6 bench
prints both).

The public :func:`train_circuitformer` / :func:`train_aggregator` route
through :class:`repro.runtime.trainer.TrainingEngine` (fused in-place
optimizer steps, graph-freeing backward, epoch-persistent encodings, and
— when ``TrainingConfig.bucketed`` is set — length-bucketed
minibatching).  The original allocate-per-step loops are kept verbatim
as :func:`train_circuitformer_reference` /
:func:`train_aggregator_reference`: they are the bit-parity oracle for
the engine's compatibility mode and the baseline for the training
throughput benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..datagen.dataset import DesignRecord, PathRecord
from .aggregator import AggregationMLP
from .circuitformer import Circuitformer, TargetScaler, encode_batch
from .sampler import PathSampler

__all__ = ["PAPER_HYPERPARAMS", "TrainingConfig", "EpochStats",
           "train_circuitformer", "train_aggregator",
           "train_circuitformer_reference", "train_aggregator_reference"]

# Table 6 of the paper, verbatim.
PAPER_HYPERPARAMS = {
    "circuitformer": {"optimizer": "Adam", "batch_size": 128, "lr": 0.001, "epochs": 256},
    "aggregation_mlp": {"optimizer": "SGD", "batch_size": 64, "lr": 0.0001, "epochs": 10240},
    "seqgan": {"optimizer": "Adam", "batch_size": 2048, "lr": 0.01, "epochs": 130},
}


@dataclass
class TrainingConfig:
    """CPU-scaled training schedule (paper values in PAPER_HYPERPARAMS).

    ``bucketed`` selects length-bucketed minibatching (throughput mode;
    statistically equivalent curves under different padded widths);
    ``False`` keeps the seed implementation's pad-to-longest batches and
    reproduces its loss curves bit-for-bit.  ``fused`` toggles the
    in-place fused optimizer kernels (bit-identical to the reference
    kernels either way).  ``executor`` compiles one training step per
    padded batch shape into a static kernel schedule
    (:func:`repro.nn.compile_train_step`) and replays it for every later
    batch of that shape; ``precision`` selects the executor arithmetic
    (``"fp64"`` is bit-identical to the dynamic fused path, ``"fp32"``
    trades a tolerance-gated rounding difference for speed).
    """

    circuitformer_epochs: int = 24
    circuitformer_batch: int = 128
    circuitformer_lr: float = 0.001
    aggregator_epochs: int = 400
    aggregator_batch: int = 16
    aggregator_lr: float = 0.01
    aggregator_weight_decay: float = 1e-3
    validation_fraction: float = 0.15
    seed: int = 0
    bucketed: bool = False
    fused: bool = True
    executor: bool = False
    precision: str = "fp64"


@dataclass
class EpochStats:
    """One row of the Figure 5 training/validation curve."""

    epoch: int
    train_loss: float
    val_loss: float


def train_circuitformer(model: Circuitformer, records: list[PathRecord],
                        config: TrainingConfig | None = None,
                        verbose: bool = False, engine=None) -> list[EpochStats]:
    """Fit the Circuitformer on the Circuit Path Dataset; returns curves.

    Delegates to a :class:`repro.runtime.trainer.TrainingEngine` built
    from ``config`` (pass ``engine`` to share one — and its encoding
    cache/profiles — across calls).
    """
    from ..runtime.trainer import TrainingEngine

    config = config or TrainingConfig()
    engine = engine or TrainingEngine.from_config(config)
    return engine.train_circuitformer(model, records, config, verbose=verbose)


def train_aggregator(mlp: AggregationMLP, designs: list[DesignRecord],
                     circuitformer: Circuitformer, sampler: PathSampler,
                     config: TrainingConfig | None = None,
                     verbose: bool = False, engine=None,
                     features: list | None = None) -> list[float]:
    """Fit the Aggregation MLP on design-level labels (Figure 4, step 2).

    For every training design: sample paths, predict them with the
    trained Circuitformer, reduce (max/sum/sum), featurize with graph
    statistics, and regress the design's log labels.  Returns the
    per-epoch loss curve (averaged over the three target heads).
    ``features`` optionally carries precomputed
    ``TrainingEngine.prepare_design_features`` output.
    """
    from ..runtime.trainer import TrainingEngine

    config = config or TrainingConfig()
    engine = engine or TrainingEngine.from_config(config)
    return engine.train_aggregator(mlp, designs, circuitformer, sampler,
                                   config, verbose=verbose, features=features)


def train_circuitformer_reference(model: Circuitformer, records: list[PathRecord],
                                  config: TrainingConfig | None = None,
                                  verbose: bool = False) -> list[EpochStats]:
    """The seed implementation's training loop, kept verbatim.

    Pads every batch to the longest record, allocates a fresh autograd
    graph per step without freeing it eagerly, and updates weights with
    the allocate-per-step :class:`~repro.nn.ReferenceAdam`.  The engine's
    compatibility mode must match this loop to the last bit (parity
    tested); the training throughput benchmark uses it as the baseline.
    """
    config = config or TrainingConfig()
    if len(records) < 4:
        raise ValueError(f"need at least 4 path records, got {len(records)}")
    rng = np.random.default_rng(config.seed)

    labels = np.stack([r.labels for r in records])
    model.scaler = TargetScaler.fit(labels)
    targets = model.scaler.transform(labels)

    max_len = min(model.config.max_input_size - 1,
                  max(len(r.tokens) for r in records))
    ids, mask = encode_batch([r.tokens for r in records], model.vocab, max_len)

    n = len(records)
    n_val = max(1, int(round(config.validation_fraction * n)))
    perm = rng.permutation(n)
    val_idx, train_idx = perm[:n_val], perm[n_val:]

    opt = nn.ReferenceAdam(model.parameters(), lr=config.circuitformer_lr)
    history: list[EpochStats] = []
    for epoch in range(config.circuitformer_epochs):
        model.train()
        order = rng.permutation(train_idx)
        train_losses = []
        for lo in range(0, len(order), config.circuitformer_batch):
            batch = order[lo:lo + config.circuitformer_batch]
            pred = model.forward(ids[batch], mask[batch])
            loss = nn.mse_loss(pred, targets[batch])
            opt.zero_grad()
            loss.backward(free_graph=False)
            nn.clip_grad_norm(model.parameters(), 5.0)
            opt.step()
            train_losses.append(loss.item())
        model.eval()
        with nn.no_grad():
            val_pred = model.forward(ids[val_idx], mask[val_idx])
            val_loss = nn.mse_loss(val_pred, targets[val_idx]).item()
        stats = EpochStats(epoch, float(np.mean(train_losses)), val_loss)
        history.append(stats)
        if verbose:
            print(f"[circuitformer] epoch {epoch:3d} "
                  f"train {stats.train_loss:.4f} val {stats.val_loss:.4f}")
    return history


def train_aggregator_reference(mlp: AggregationMLP, designs: list[DesignRecord],
                               circuitformer: Circuitformer, sampler: PathSampler,
                               config: TrainingConfig | None = None,
                               verbose: bool = False) -> list[float]:
    """The seed implementation's aggregator loop, kept verbatim
    (see :func:`train_circuitformer_reference`)."""
    from .aggregator import featurize_design

    config = config or TrainingConfig()
    if len(designs) < 2:
        raise ValueError(f"need at least 2 design records, got {len(designs)}")
    rng = np.random.default_rng(config.seed + 1)

    features = []
    for record in designs:
        paths = sampler.sample(record.graph)
        preds = circuitformer.predict_paths([p.tokens for p in paths])
        features.append(featurize_design(record.graph, preds, paths,
                                         circuitformer.vocab))
    labels = np.stack([d.labels for d in designs])

    # Stage 1: closed-form physics calibration (area, energy, timing scale).
    mlp.fit_physics(features, labels)
    physics = np.stack([mlp.physics_predict(f) for f in features])

    # Stage 2: the per-target residual MLPs.
    log_inputs = np.stack([f.log_vector(p) for f, p in zip(features, physics)])
    residuals = np.log1p(labels) - np.log1p(physics)
    mlp.fit_scalers(log_inputs, residuals)
    targets = (residuals - mlp.residual_mean) / mlp.residual_std

    params = [p for head in mlp.heads for p in head.parameters()]
    opt = nn.ReferenceAdam(params, lr=config.aggregator_lr,
                           weight_decay=config.aggregator_weight_decay)

    n = len(designs)
    curve: list[float] = []
    for epoch in range(config.aggregator_epochs):
        order = rng.permutation(n)
        losses = []
        for lo in range(0, n, config.aggregator_batch):
            batch = order[lo:lo + config.aggregator_batch]
            total = None
            for t in range(3):
                pred = mlp.forward(log_inputs[batch], t).reshape(len(batch))
                loss = nn.mse_loss(pred, targets[batch, t])
                total = loss if total is None else total + loss
            opt.zero_grad()
            total.backward(free_graph=False)
            nn.clip_grad_norm(params, 5.0)
            opt.step()
            losses.append(total.item() / 3.0)
        curve.append(float(np.mean(losses)))
        if verbose and epoch % max(1, config.aggregator_epochs // 10) == 0:
            print(f"[aggregator] epoch {epoch:4d} loss {curve[-1]:.4f}")
    return curve
