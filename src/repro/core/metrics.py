"""Evaluation metrics (Section 5.1): RRSE and MAEP.

RRSE (root relative square error) normalizes RMSE by the ground-truth
standard deviation, so it is invariant to the scale of the predicted
feature; a model that always predicts the mean scores exactly 1.0.
MAEP (mean absolute error percentage) is the intuitive companion metric.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rrse", "maep"]


def rrse(predicted, actual) -> float:
    """Root relative square error: sqrt(SSE / SST).  Lower is better."""
    predicted = np.asarray(predicted, dtype=np.float64)
    actual = np.asarray(actual, dtype=np.float64)
    if predicted.shape != actual.shape:
        raise ValueError(f"shape mismatch: {predicted.shape} vs {actual.shape}")
    if actual.size < 2:
        raise ValueError("RRSE needs at least two samples")
    sse = float(((predicted - actual) ** 2).sum())
    sst = float(((actual - actual.mean()) ** 2).sum())
    if sst == 0.0:
        return 0.0 if sse == 0.0 else float("inf")
    return float(np.sqrt(sse / sst))


def maep(predicted, actual) -> float:
    """Mean absolute error percentage: mean(|pred - act| / |act|) * 100."""
    predicted = np.asarray(predicted, dtype=np.float64)
    actual = np.asarray(actual, dtype=np.float64)
    if predicted.shape != actual.shape:
        raise ValueError(f"shape mismatch: {predicted.shape} vs {actual.shape}")
    if np.any(actual == 0):
        raise ValueError("MAEP undefined for zero ground-truth values")
    return float(np.mean(np.abs(predicted - actual) / np.abs(actual)) * 100.0)
