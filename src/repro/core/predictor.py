"""SNS — the end-to-end synthesis predictor (Figure 1).

``SNS.fit`` runs the Figure 4 training flow (path sampling, optional
Markov/SeqGAN augmentation, Circuitformer training, Aggregation-MLP
training); ``SNS.predict`` runs the Figure 1 prediction flow on any
GraphIR design: sample complete circuit paths, predict each with the
Circuitformer, aggregate with the MLP, and report design-level area,
power, and timing — plus the predicted critical path, which a
whole-graph GNN cannot localize.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from ..datagen.augment import AugmentationConfig, augment_path_dataset
from ..datagen.dataset import DesignRecord, sample_path_dataset
from ..graphir import CircuitGraph, Vocabulary, as_compiled
from ..hdl import Module
from ..synth import Synthesizer
from .aggregator import AggregationMLP, featurize_design, reduce_paths
from .circuitformer import Circuitformer, CircuitformerConfig
from .sampler import PathSampler, SampledPath
from .training import TrainingConfig, train_aggregator, train_circuitformer

__all__ = ["SNSPrediction", "SNS"]


@dataclass(frozen=True)
class SNSPrediction:
    """Design-level prediction plus the path-level evidence behind it.

    ``spread`` holds the ensemble disagreement per target as a
    multiplicative factor (geometric std across members): 1.0 means the
    members agree exactly; 1.5 means they span roughly +/-50%.  Large
    spread flags out-of-distribution designs whose predictions deserve a
    confirming synthesis run.
    """

    design: str
    timing_ps: float
    area_um2: float
    power_mw: float
    runtime_s: float
    num_paths: int
    critical_path: SampledPath | None
    spread: dict[str, float] | None = None

    @property
    def area_mm2(self) -> float:
        return self.area_um2 * 1e-6

    @property
    def frequency_ghz(self) -> float:
        return 1000.0 / self.timing_ps if self.timing_ps > 0 else float("inf")

    def confidence_interval(self, target: str, sigmas: float = 2.0) -> tuple[float, float]:
        """A (low, high) multiplicative band around the prediction."""
        value = {"timing": self.timing_ps, "area": self.area_um2,
                 "power": self.power_mw}[target]
        factor = (self.spread or {}).get(target, 1.0) ** sigmas
        return value / factor, value * factor


class SNS:
    """The SNS predictor: Preprocessor -> Path Sampler -> Circuitformer ->
    Aggregation MLP (Figure 1).

    Parameters
    ----------
    sampler:
        Path sampling configuration (defaults to the paper's k=5).
    circuitformer_config:
        Model hyperparameters (defaults to Table 2).
    training_config:
        Optimization schedule (defaults scaled for CPU).
    seed:
        Controls weight init and sampling reproducibility.
    """

    def __init__(self, sampler: PathSampler | None = None,
                 circuitformer_config: CircuitformerConfig | None = None,
                 training_config: TrainingConfig | None = None,
                 seed: int = 0, num_aggregators: int = 3):
        if num_aggregators < 1:
            raise ValueError(f"num_aggregators must be >= 1: {num_aggregators}")
        self.vocab = Vocabulary.standard()
        self.sampler = sampler or PathSampler(seed=seed)
        self.circuitformer = Circuitformer(circuitformer_config, self.vocab, seed=seed)
        # A small seed-ensemble of aggregation MLPs: with only ~20 training
        # designs, averaging independently-initialized heads in log space
        # cuts prediction variance materially.
        self.aggregators = [AggregationMLP(seed=seed + i)
                            for i in range(num_aggregators)]
        self.training_config = training_config or TrainingConfig(seed=seed)
        self.circuitformer_history = []
        self.aggregator_curve = []
        self.training_profiles: dict[str, object] = {}
        self._fitted = False

    @property
    def aggregator(self) -> AggregationMLP:
        """The first ensemble member (kept for single-model workflows)."""
        return self.aggregators[0]

    @aggregator.setter
    def aggregator(self, value: AggregationMLP) -> None:
        self.aggregators = [value]

    # ------------------------------------------------------------------ #
    # Training (Figure 4)
    # ------------------------------------------------------------------ #
    def fit(self, train_designs: list[DesignRecord],
            synthesizer: Synthesizer | None = None,
            augmentation: AugmentationConfig | None = None,
            path_records=None, verbose: bool = False) -> "SNS":
        """Train on a Hardware Design Dataset training split.

        ``augmentation=None`` disables synthetic path generation;
        ``path_records`` lets callers supply a pre-built Circuit Path
        Dataset (skipping sampling + labeling).

        Both models train through one shared
        :class:`repro.runtime.trainer.TrainingEngine` built from
        ``training_config``: bucket encodings persist across epochs, the
        design features feeding the aggregator ensemble are computed
        once (``PathSampler.sample`` reseeds per call, so sharing is
        bit-identical to recomputing them per member), and the per-phase
        profiles land in :attr:`training_profiles` under
        ``"circuitformer"`` and ``"aggregator"``.
        """
        from ..runtime.trainer import EncodingCache, TrainingEngine

        synthesizer = synthesizer or Synthesizer(effort="medium")
        if path_records is None:
            path_records = sample_path_dataset(
                train_designs, sampler=self.sampler, synthesizer=synthesizer)
            if augmentation is not None:
                path_records = augment_path_dataset(
                    path_records, config=augmentation,
                    synthesizer=synthesizer, vocab=self.vocab)
        if verbose:
            print(f"[sns] circuit path dataset: {len(path_records)} paths")
        engine = TrainingEngine.from_config(self.training_config,
                                            encoding_cache=EncodingCache())
        self.circuitformer_history = train_circuitformer(
            self.circuitformer, path_records, self.training_config,
            verbose=verbose, engine=engine)
        features = engine.prepare_design_features(
            train_designs, self.circuitformer, self.sampler)
        for i, aggregator in enumerate(self.aggregators):
            member_config = replace(self.training_config,
                                    seed=self.training_config.seed + i)
            curve = train_aggregator(
                aggregator, train_designs, self.circuitformer, self.sampler,
                member_config, verbose=verbose and i == 0, engine=engine,
                features=features)
            if i == 0:
                self.aggregator_curve = curve
        self.training_profiles = dict(engine.profiles)
        self._fitted = True
        return self

    # ------------------------------------------------------------------ #
    # Prediction (Figure 1)
    # ------------------------------------------------------------------ #
    def _aggregate(self, graph: CircuitGraph, paths, preds,
                   activity: dict[int, float] | None = None):
        """Reduce per-path predictions to design-level values.

        Shared verbatim by :meth:`predict` and the batched
        :class:`repro.runtime.BatchPredictor`, so the two paths cannot
        numerically drift apart.  Returns
        ``(timing, area, power, spread, critical_path)``.
        """
        reduction = reduce_paths(preds, paths)
        features = featurize_design(graph, preds, paths, self.vocab)
        # Ensemble in log space (the heads regress log residuals).  Median
        # rather than mean: a single member extrapolating badly on an
        # out-of-distribution design would otherwise dominate the linear-
        # space error.
        member_logs = np.stack([
            np.log1p(member.predict(features)) for member in self.aggregators])
        timing, area, power = np.expm1(np.median(member_logs, axis=0))
        spread_values = np.exp(member_logs.std(axis=0))
        spread = dict(zip(("timing", "area", "power"),
                          (float(s) for s in spread_values)))

        if activity:
            # Power gating (Section 3.4.4): each path's power scales by its
            # registers' activity coefficients.  Applied as a ratio against
            # the ungated sum so it composes with the MLP calibration.
            gated = reduce_paths(preds, paths, activity=activity)
            if reduction[2] > 0:
                power *= gated[2] / reduction[2]

        critical = None
        if len(paths) > 0:
            critical = paths[int(np.argmax(preds[:, 0]))]
        return float(timing), float(area), float(power), spread, critical

    def predict(self, design: CircuitGraph | Module,
                activity: dict[int, float] | None = None,
                bucketed: bool = True) -> SNSPrediction:
        """Predict area, power, and timing of a design.

        ``activity`` optionally maps register node ids to activity
        coefficients (power gating, Section 3.4.4).  ``bucketed=False``
        uses the pre-runtime pad-to-longest inference path (kept for
        throughput baselining).
        """
        if not self._fitted:
            raise RuntimeError("SNS.fit() must run before predict()")
        start = time.perf_counter()
        # The whole prediction front end runs on the compiled form: flat
        # builder elaboration for Modules, CSR array sampling, and
        # vectorized statistics — node-for-node identical to the
        # dict-graph pipeline (see the compiled-graph parity suite).
        graph = as_compiled(design)

        paths = self.sampler.sample(graph)
        preds = self.circuitformer.predict_paths(
            [p.tokens for p in paths], bucketed=bucketed)
        timing, area, power, spread, critical = self._aggregate(
            graph, paths, preds, activity)

        return SNSPrediction(
            design=graph.name,
            timing_ps=timing,
            area_um2=area,
            power_mw=power,
            runtime_s=time.perf_counter() - start,
            num_paths=len(paths),
            critical_path=critical,
            spread=spread,
        )

    def predict_many(self, designs, activity_maps=None, cache=None,
                     batch_size: int = 32,
                     frontend_cache=None) -> list[SNSPrediction]:
        """Batch prediction over an iterable of designs.

        Routes through :class:`repro.runtime.BatchPredictor`: sampled
        paths are deduplicated across the whole batch and predicted in
        length-bucketed pooled forward passes, with results bit-identical
        to calling :meth:`predict` per design.  ``activity_maps`` may be
        a dict keyed by elaborated design name (``graph.name`` — resolved
        consistently for both :class:`CircuitGraph` and :class:`Module`
        inputs, warning on unmatched keys) or a sequence aligned with
        ``designs``.  Pass a :class:`repro.runtime.PredictionCache` as
        ``cache`` to reuse results across calls, and a
        :class:`repro.runtime.FrontendCache` as ``frontend_cache`` to
        also reuse elaborated graphs and sampled paths.
        """
        from ..runtime import BatchPredictor

        engine = BatchPredictor(self, cache=cache, batch_size=batch_size,
                                caching=cache is not None,
                                frontend_cache=frontend_cache)
        return engine.predict_batch(designs, activity_maps=activity_maps)
