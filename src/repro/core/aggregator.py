"""The aggregation stage (Section 3.4).

Path-level predictions are reduced per target — **max** for timing (the
critical path), **sum** for area and power (paths tile the design) — and
the reduction, together with the design's graph statistics, feeds the
design-level regressor.

The regressor is a calibrated two-stage model:

1. **Physics layer** (closed form, deterministic).  Area and
   energy-per-cycle are *additive* over functional units, so both are
   fitted as weighted-least-squares linear models over the raw token
   counts and width-weighted aggregates; timing is the Circuitformer's
   max-path reduction times a single calibration factor; power is
   energy / timing.  With only ~20 training designs this anchors the
   predictions with the right inductive bias.
2. **MLP residual** — the paper's three-fully-connected-layers-of-32
   per-target MLP, regressing the standardized log residual between the
   physics prediction and the synthesized label.

Power gating (Section 3.4.4): when per-register activity coefficients
are supplied, each path's power is scaled by the activity of its
endpoint registers before the sum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..graphir import (
    NUM_STRUCTURAL_FEATURES,
    NUM_WEIGHTED_FEATURES,
    CircuitGraph,
    Vocabulary,
    stats_vector,
    structural_features,
    weighted_features,
)
from .sampler import SampledPath

__all__ = ["reduce_paths", "path_statistics", "DesignFeatures", "featurize_design",
           "AggregationMLP", "design_features", "FEATURE_DIM", "LOG_FEATURE_DIM"]

TARGETS = ("timing", "area", "power")


def reduce_paths(path_preds: np.ndarray,
                 paths: list[SampledPath] | None = None,
                 activity: dict[int, float] | None = None) -> np.ndarray:
    """Reduce per-path [timing, area, power] rows to design-level values.

    timing -> max, area -> sum, power -> (activity-scaled) sum.
    """
    path_preds = np.asarray(path_preds, dtype=np.float64)
    if path_preds.size == 0:
        return np.zeros(3)
    power = path_preds[:, 2]
    if activity and paths is not None:
        scale = np.array([_path_activity(path, activity) for path in paths])
        power = power * scale
    return np.array([
        path_preds[:, 0].max(),
        path_preds[:, 1].sum(),
        power.sum(),
    ])


def _path_activity(path: SampledPath, activity: dict[int, float]) -> float:
    """Effective power scale of a path under the given register activity.

    The coefficient ratio (vs the default register activity) applies to
    the path's *sequential* energy share; the combinational share only
    scales down (a gated register stops its downstream cone toggling,
    but a hot register cannot push combinational activity above its
    data-rate default).  The sequential share is estimated from token
    widths.
    """
    from ..graphir import parse_token
    from ..synth.power import DEFAULT_SEQ_ACTIVITY

    coeffs = [activity[n] for n in (path.node_ids[0], path.node_ids[-1]) if n in activity]
    if not coeffs:
        return 1.0
    ratio = float(np.mean(coeffs)) / DEFAULT_SEQ_ACTIVITY

    seq_width = total_width = 0
    for token in path.tokens:
        node_type, width = parse_token(token)
        total_width += width
        if node_type == "dff":
            seq_width += width
    seq_fraction = seq_width / total_width if total_width else 0.5
    return seq_fraction * ratio + (1.0 - seq_fraction) * min(ratio, 1.0)


def path_statistics(path_preds: np.ndarray,
                    paths: list[SampledPath] | None = None) -> np.ndarray:
    """Distributional statistics of the per-path predictions.

    [mean timing, p90 timing, mean area, mean power, num paths,
     max path length, mean path length]
    """
    if path_preds is None or len(path_preds) == 0:
        return np.zeros(7)
    path_preds = np.asarray(path_preds, dtype=np.float64)
    lengths = [len(p) for p in paths] if paths else [0]
    return np.array([
        path_preds[:, 0].mean(),
        np.percentile(path_preds[:, 0], 90),
        path_preds[:, 1].mean(),
        path_preds[:, 2].mean(),
        len(path_preds),
        max(lengths),
        float(np.mean(lengths)),
    ])


# ---------------------------------------------------------------------- #
# Featurization
# ---------------------------------------------------------------------- #
NUM_PATH_STATS = 7
LINEAR_FEATURE_DIM = 79 + NUM_STRUCTURAL_FEATURES + NUM_WEIGHTED_FEATURES
LOG_FEATURE_DIM = 3 + NUM_PATH_STATS + LINEAR_FEATURE_DIM + 3  # + physics preds
FEATURE_DIM = LOG_FEATURE_DIM  # public alias


@dataclass(frozen=True)
class DesignFeatures:
    """Everything the aggregation stage knows about one design."""

    reduction: np.ndarray       # (3,) max/sum/sum of path predictions
    path_stats: np.ndarray      # (7,)
    counts: np.ndarray          # (79,) raw token histogram
    structural: np.ndarray      # (6,) raw
    weighted: np.ndarray        # (7,) raw width-weighted aggregates

    @property
    def linear_vector(self) -> np.ndarray:
        """Raw additive features for the physics layer."""
        return np.concatenate([self.counts, self.structural, self.weighted])

    def log_vector(self, physics: np.ndarray) -> np.ndarray:
        """Compressed features for the residual MLP."""
        return np.concatenate([
            np.log1p(np.maximum(self.reduction, 0.0)),
            np.log1p(np.maximum(self.path_stats, 0.0)),
            np.log1p(self.counts),
            np.log1p(self.structural),
            np.log1p(self.weighted),
            np.log1p(np.maximum(physics, 0.0)),
        ])


def featurize_design(graph: CircuitGraph, path_preds: np.ndarray,
                     paths: list[SampledPath],
                     vocab: Vocabulary | None = None) -> DesignFeatures:
    """Build the aggregation features for one design."""
    vocab = vocab or Vocabulary.standard()
    return DesignFeatures(
        reduction=reduce_paths(path_preds, paths),
        path_stats=path_statistics(path_preds, paths),
        counts=stats_vector(graph, vocab),
        structural=structural_features(graph),
        weighted=weighted_features(graph),
    )


def design_features(graph: CircuitGraph, reduction: np.ndarray,
                    vocab: Vocabulary | None = None,
                    path_stats: np.ndarray | None = None) -> np.ndarray:
    """Legacy flat featurization (kept for baselines and diagnostics)."""
    vocab = vocab or Vocabulary.standard()
    if path_stats is None:
        path_stats = np.zeros(NUM_PATH_STATS)
    return np.concatenate([
        np.log1p(np.maximum(reduction, 0.0)),
        np.log1p(np.maximum(path_stats, 0.0)),
        np.log1p(stats_vector(graph, vocab)),
        np.log1p(structural_features(graph)),
        np.log1p(weighted_features(graph)),
    ])


# ---------------------------------------------------------------------- #
# The aggregation model
# ---------------------------------------------------------------------- #
def _wls_solve(X: np.ndarray, y: np.ndarray, alpha: float = 1e-3) -> np.ndarray:
    """Non-negative weighted least squares with 1/y weights.

    Per-unit physical costs are non-negative, and NNLS guarantees the
    fitted model never predicts negative area/energy on unseen designs
    (plain ridge does, for small designs outside the training hull).
    The 1/y weighting makes the objective relative rather than absolute,
    so small designs are not drowned out by big ones.
    """
    from scipy.optimize import nnls

    w = 1.0 / np.maximum(y, 1e-9)
    Xw = X * w[:, None]
    yw = y * w
    # Tikhonov rows keep the problem well-posed under NNLS.
    Xa = np.vstack([Xw, np.sqrt(alpha) * np.eye(X.shape[1])])
    ya = np.concatenate([yw, np.zeros(X.shape[1])])
    solution, _ = nnls(Xa, ya)
    return solution


class AggregationMLP(nn.Module):
    """Physics-anchored aggregation regressor (see module docstring)."""

    def __init__(self, hidden: int = 32, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.heads = [
            nn.Sequential(
                nn.Linear(LOG_FEATURE_DIM, hidden, rng=rng), nn.ReLU(),
                nn.Linear(hidden, hidden, rng=rng), nn.ReLU(),
                nn.Linear(hidden, hidden, rng=rng), nn.ReLU(),
                nn.Linear(hidden, 1, rng=rng),
            )
            for _ in TARGETS
        ]
        # Physics layer parameters (closed-form fitted).
        self.area_weights = np.zeros(LINEAR_FEATURE_DIM + 1)
        self.energy_weights = np.zeros(LINEAR_FEATURE_DIM + 1)
        self.timing_scale = 1.0
        # Standardization of the residual-MLP inputs/targets.
        self.input_mean = np.zeros(LOG_FEATURE_DIM)
        self.input_std = np.ones(LOG_FEATURE_DIM)
        self.residual_mean = np.zeros(len(TARGETS))
        self.residual_std = np.ones(len(TARGETS))
        self._physics_fitted = False

    # ------------------------------------------------------------------ #
    # Physics layer
    # ------------------------------------------------------------------ #
    def fit_physics(self, features: list[DesignFeatures], labels: np.ndarray,
                    alpha: float = 1e-3) -> None:
        """Fit the closed-form area/energy/timing calibration."""
        labels = np.asarray(labels, dtype=np.float64)
        X = np.stack([np.concatenate([f.linear_vector, [1.0]]) for f in features])
        self.area_weights = _wls_solve(X, labels[:, 1], alpha)
        energy = labels[:, 2] * labels[:, 0]  # power x period: per-cycle energy
        self.energy_weights = _wls_solve(X, energy, alpha)
        max_path = np.array([max(f.reduction[0], 1e-9) for f in features])
        self.timing_scale = float(np.exp(
            np.mean(np.log(np.maximum(labels[:, 0], 1e-9)) - np.log(max_path))))
        self._physics_fitted = True

    def physics_predict(self, features: DesignFeatures) -> np.ndarray:
        """Closed-form [timing, area, power] estimate."""
        if not self._physics_fitted:
            raise RuntimeError("fit_physics() must run before prediction")
        x = np.concatenate([features.linear_vector, [1.0]])
        timing = max(features.reduction[0], 1e-9) * self.timing_scale
        area = max(float(x @ self.area_weights), 1.0)
        energy = max(float(x @ self.energy_weights), 1e-9)
        power = energy / max(timing, 1e-9)
        return np.array([timing, area, power])

    # ------------------------------------------------------------------ #
    # Residual MLP
    # ------------------------------------------------------------------ #
    def fit_scalers(self, log_inputs: np.ndarray, residuals: np.ndarray) -> None:
        self.input_mean = log_inputs.mean(axis=0)
        std = log_inputs.std(axis=0)
        std[std == 0] = 1.0
        self.input_std = std
        self.residual_mean = residuals.mean(axis=0)
        rstd = residuals.std(axis=0)
        rstd[rstd == 0] = 1.0
        self.residual_std = rstd

    def _standardize(self, log_inputs: np.ndarray) -> np.ndarray:
        z = (log_inputs - self.input_mean) / self.input_std
        # Bound extrapolation on designs far outside the ~20-design
        # training distribution.
        return np.clip(z, -4.0, 4.0)

    def forward(self, log_inputs: np.ndarray, target_index: int) -> nn.Tensor:
        """Standardized log-residual prediction for one target head."""
        x = nn.Tensor(self._standardize(np.atleast_2d(log_inputs)))
        return self.heads[target_index](x)

    # ------------------------------------------------------------------ #
    def predict(self, features: DesignFeatures) -> np.ndarray:
        """Physical [timing, area, power] for one design."""
        physics = self.physics_predict(features)
        log_input = features.log_vector(physics)
        with nn.no_grad():
            self.eval()
            resid = np.array([
                self.forward(log_input, i).numpy().ravel()[0] for i in range(3)])
        resid = resid * self.residual_std + self.residual_mean
        return np.expm1(np.log1p(physics) + resid).clip(min=0.0)
