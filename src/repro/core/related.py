"""The qualitative related-work comparison (Table 8 of the paper)."""

from __future__ import annotations

__all__ = ["TABLE8_ROWS", "TABLE8_SYSTEMS", "qualitative_comparison", "format_table8"]

TABLE8_SYSTEMS = ("D-SAGE", "Aladdin", "MAESTRO", "ParaGraph", "APOLLO", "SNS")

# capability -> per-system yes/no, transcribed from Table 8.
TABLE8_ROWS: dict[str, tuple[bool, ...]] = {
    "Timing Prediction":              (True, True, False, True, False, True),
    "Area Prediction":                (False, True, True, True, False, True),
    "Power Prediction":               (False, True, True, True, True, True),
    "ASIC Design Prediction":         (False, True, True, True, True, True),
    "FPGA Design Prediction":         (True, False, False, False, False, False),
    "Support General Purpose Designs": (True, False, False, False, False, True),
    "Support Large Designs (>1M gates)": (False, True, True, False, True, True),
    "No Human Intervention":          (True, False, False, False, True, True),
}


def qualitative_comparison(system: str) -> dict[str, bool]:
    """Capability vector for one system."""
    if system not in TABLE8_SYSTEMS:
        raise KeyError(f"unknown system {system!r}; known: {TABLE8_SYSTEMS}")
    idx = TABLE8_SYSTEMS.index(system)
    return {cap: flags[idx] for cap, flags in TABLE8_ROWS.items()}


def format_table8() -> str:
    """Render Table 8 as aligned text."""
    width = max(len(cap) for cap in TABLE8_ROWS) + 2
    header = " " * width + "  ".join(f"{s:>9s}" for s in TABLE8_SYSTEMS)
    lines = [header]
    for cap, flags in TABLE8_ROWS.items():
        cells = "  ".join(f"{'Yes' if f else 'No':>9s}" for f in flags)
        lines.append(f"{cap:<{width}}{cells}")
    return "\n".join(lines)
