"""The Circuitformer — a lightweight Transformer for circuit paths.

Table 2 hyperparameters: vocabulary 79 (+2 special tokens), 2 hidden
layers, 2 attention heads, embedding size 128, maximum input 512.  A
``<cls>`` token is prepended and its final embedding feeds a regression
head predicting per-path [timing, area, power] in normalized log space.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..graphir import Vocabulary

__all__ = ["CircuitformerConfig", "Circuitformer", "CircuitformerExecutor",
           "TargetScaler", "encode_batch",
           "bucket_for_length", "BUCKET_BOUNDARIES"]

TARGETS = ("timing", "area", "power")

# Padded-length buckets for batched inference.  Sequences are padded to the
# smallest boundary that fits instead of the global maximum, so a 4-token
# path costs a 9-wide forward pass (cls + 8) rather than a 65-wide one.
# Boundaries start at 8: together with the >=2-row batch floor this keeps
# every flattened matmul past the small-matrix BLAS kernels whose summation
# order differs from the large-matrix ones (see ``predict_unique``).
BUCKET_BOUNDARIES = (8, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 511)


def bucket_for_length(length: int, max_len: int) -> int:
    """Smallest bucket boundary that holds ``length`` (clamped to ``max_len``)."""
    length = min(length, max_len)
    for b in BUCKET_BOUNDARIES:
        if b >= length:
            return min(b, max_len)
    return max_len


@dataclass(frozen=True)
class CircuitformerConfig:
    """Model hyperparameters (defaults are the paper's Table 2 column)."""

    vocab_size: int = 79
    hidden_layers: int = 2
    attention_heads: int = 2
    embedding_size: int = 128
    max_input_size: int = 512
    dim_feedforward: int = 512
    dropout: float = 0.1


@dataclass
class TargetScaler:
    """Standardizes log1p-transformed regression targets.

    Physical labels span orders of magnitude (a path's area may be 1 um^2
    or 10^4 um^2), so the model regresses standardized log values.
    """

    mean: np.ndarray = field(default_factory=lambda: np.zeros(3))
    std: np.ndarray = field(default_factory=lambda: np.ones(3))

    @classmethod
    def fit(cls, labels: np.ndarray) -> "TargetScaler":
        logs = np.log1p(np.asarray(labels, dtype=np.float64))
        std = logs.std(axis=0)
        std[std == 0] = 1.0
        return cls(mean=logs.mean(axis=0), std=std)

    def transform(self, labels: np.ndarray) -> np.ndarray:
        return (np.log1p(labels) - self.mean) / self.std

    def inverse(self, scaled: np.ndarray) -> np.ndarray:
        return np.expm1(scaled * self.std + self.mean)


def encode_batch(token_seqs: list[tuple[str, ...]], vocab: Vocabulary,
                 max_len: int) -> tuple[np.ndarray, np.ndarray]:
    """Encode token sequences into padded id arrays plus a padding mask.

    Returns ``(ids, pad_mask)`` of shape (batch, max_len+1); position 0 is
    the ``<cls>`` token.  Sequences beyond ``max_len`` are truncated.
    """
    batch = len(token_seqs)
    ids = np.full((batch, max_len + 1), vocab.PAD, dtype=np.int64)
    ids[:, 0] = vocab.CLS
    lengths = np.fromiter((min(len(s), max_len) for s in token_seqs),
                          dtype=np.int64, count=batch)
    total = int(lengths.sum())
    if total:
        flat = [t for seq in token_seqs for t in seq[:max_len]]
        rows = np.repeat(np.arange(batch), lengths)
        offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
        cols = np.arange(total) - offsets[rows] + 1
        ids[rows, cols] = vocab.encode_array(flat)
    pad_mask = ids == vocab.PAD
    return ids, pad_mask


class Circuitformer(nn.Module):
    """Transformer encoder + CLS regression head over circuit paths."""

    def __init__(self, config: CircuitformerConfig | None = None,
                 vocab: Vocabulary | None = None, seed: int = 0):
        super().__init__()
        self.config = config or CircuitformerConfig()
        self.vocab = vocab or Vocabulary.standard()
        if self.vocab.circuit_size != self.config.vocab_size:
            raise ValueError(
                f"vocabulary size {self.vocab.circuit_size} does not match "
                f"config vocab_size {self.config.vocab_size}")
        rng = np.random.default_rng(seed)
        d = self.config.embedding_size
        self.token_embedding = nn.Embedding(len(self.vocab), d, rng=rng)
        self.position_embedding = nn.Embedding(self.config.max_input_size, d, rng=rng)
        self.encoder = nn.TransformerEncoder(
            num_layers=self.config.hidden_layers,
            d_model=d,
            num_heads=self.config.attention_heads,
            dim_feedforward=self.config.dim_feedforward,
            dropout=self.config.dropout,
            rng=rng,
        )
        self.head = nn.Sequential(
            nn.Linear(d, d // 2, rng=rng), nn.GELU(), nn.Linear(d // 2, 3, rng=rng))
        self.scaler = TargetScaler()

    # ------------------------------------------------------------------ #
    def forward(self, ids: np.ndarray, pad_mask: np.ndarray) -> nn.Tensor:
        """Predict normalized [timing, area, power] per sequence.

        ``ids``/``pad_mask``: (batch, seq) from :func:`encode_batch`.
        """
        if ids.shape[1] > self.config.max_input_size:
            raise ValueError(
                f"sequence length {ids.shape[1]} exceeds max input "
                f"{self.config.max_input_size}")
        positions = np.broadcast_to(np.arange(ids.shape[1]), ids.shape)
        x = self.token_embedding(ids) + self.position_embedding(positions)
        encoded = self.encoder(x, key_padding_mask=pad_mask)
        return self.head(encoded[:, 0, :])  # CLS position

    def _encode_cls(self, ids: np.ndarray, pad_mask: np.ndarray) -> np.ndarray:
        """Encoder pass returning the CLS embedding per sequence."""
        positions = np.broadcast_to(np.arange(ids.shape[1]), ids.shape)
        x = self.token_embedding(ids) + self.position_embedding(positions)
        return self.encoder(x, key_padding_mask=pad_mask).numpy()[:, 0, :]

    _HEAD_ROWS = 128

    def _head_rows_fixed(self, cls_emb: np.ndarray) -> np.ndarray:
        """Run the regression head in fixed-size row groups.

        The head's matmuls are small enough that BLAS picks a different
        (differently-rounded) kernel depending on the row count; padding
        every group to exactly ``_HEAD_ROWS`` rows makes each row's output
        a function of that row alone, independent of batch composition.
        """
        out = np.empty((len(cls_emb), 3))
        for lo in range(0, len(cls_emb), self._HEAD_ROWS):
            chunk = cls_emb[lo:lo + self._HEAD_ROWS]
            n = len(chunk)
            if n < self._HEAD_ROWS:
                chunk = np.concatenate(
                    [chunk, np.broadcast_to(chunk[-1], (self._HEAD_ROWS - n,
                                                        chunk.shape[1]))])
            out[lo:lo + n] = self.head(nn.Tensor(chunk)).numpy()[:n]
        return out

    def compile_executor(self, precision: str = "fp64", threads: int = 1,
                         tolerance: float | None = None) -> "CircuitformerExecutor":
        """Build a plan-once/run-many inference executor over this model.

        The executor traces one forward per padded bucket shape into a
        static kernel schedule (:func:`repro.nn.compile_forward`) and
        replays it on later batches with zero graph construction.  See
        :class:`CircuitformerExecutor` for the precision and threading
        semantics.
        """
        return CircuitformerExecutor(self, precision=precision,
                                     threads=threads, tolerance=tolerance)

    def predict_unique(self, unique_seqs: list[tuple[str, ...]],
                       batch_size: int = 128, encoding_cache=None,
                       executor: "CircuitformerExecutor | None" = None) -> np.ndarray:
        """Physical [timing_ps, area_um2, power_mw] per *unique* sequence.

        This is the canonical inference kernel shared by
        :meth:`predict_paths` and the batched :mod:`repro.runtime` engine.
        Sequences are grouped into padded-length buckets
        (:data:`BUCKET_BOUNDARIES`) and each bucket runs one padded
        forward pass per ``batch_size`` chunk.  Each sequence's output
        depends only on its own tokens and its bucket — not on which other
        sequences share the batch — so serial and cross-design batched
        prediction are bit-identical.  Two ingredients guarantee that:
        single-row batches are duplicated to two rows (numpy dispatches
        one-row matmuls to a differently-rounded GEMV kernel), and the
        regression head always runs on a fixed row count
        (:meth:`_head_rows_fixed`).

        ``encoding_cache`` optionally supplies a
        :class:`repro.runtime.trainer.EncodingCache` so repeated bucket
        chunks (across calls, or shared with the training engine) skip
        re-encoding; the encoded arrays are identical either way.

        ``executor`` optionally routes the whole call through a compiled
        :class:`CircuitformerExecutor` (from :meth:`compile_executor`);
        at fp64 the compiled path is bit-identical to the dynamic one.
        """
        if executor is not None:
            if executor.model is not self:
                raise ValueError("executor was compiled for a different model")
            return executor.predict_unique(unique_seqs, batch_size=batch_size,
                                           encoding_cache=encoding_cache)
        if not unique_seqs:
            return np.zeros((0, 3))
        max_len = self.config.max_input_size - 1
        buckets: dict[int, list[int]] = {}
        for i, seq in enumerate(unique_seqs):
            buckets.setdefault(bucket_for_length(len(seq), max_len), []).append(i)

        self.eval()
        scaled = np.empty((len(unique_seqs), 3))
        with nn.no_grad():
            for bucket in sorted(buckets):
                idxs = buckets[bucket]
                for lo in range(0, len(idxs), batch_size):
                    chunk_idx = idxs[lo:lo + batch_size]
                    chunk = [unique_seqs[i] for i in chunk_idx]
                    single = len(chunk) == 1
                    if single:
                        chunk = chunk * 2
                    if encoding_cache is not None:
                        ids, mask = encoding_cache.encode(chunk, self.vocab, bucket)
                    else:
                        ids, mask = encode_batch(chunk, self.vocab, bucket)
                    cls_emb = self._encode_cls(ids, mask)
                    if single:
                        cls_emb = cls_emb[:1]
                    scaled[chunk_idx] = self._head_rows_fixed(cls_emb)
        return np.maximum(self.scaler.inverse(scaled), 0.0)

    # ------------------------------------------------------------------ #
    def predict_paths(self, token_seqs: list[tuple[str, ...]],
                      batch_size: int = 128, bucketed: bool = True,
                      encoding_cache=None,
                      executor: "CircuitformerExecutor | None" = None) -> np.ndarray:
        """Inference: physical [timing_ps, area_um2, power_mw] per path.

        Sampled designs repeat token sequences heavily (a systolic array
        yields hundreds of identical paths), so inference runs on the
        unique sequences only and results are broadcast back — often an
        order-of-magnitude speedup with bit-identical output.

        ``bucketed=True`` (default) routes through the length-bucketed
        :meth:`predict_unique` kernel; ``bucketed=False`` keeps the
        original pad-everything-to-the-longest behavior (the pre-runtime
        baseline, retained for the throughput benchmark).
        """
        if not token_seqs:
            return np.zeros((0, 3))
        unique: dict[tuple[str, ...], int] = {}
        index = np.empty(len(token_seqs), dtype=np.int64)
        for i, seq in enumerate(token_seqs):
            index[i] = unique.setdefault(tuple(seq), len(unique))
        unique_seqs = list(unique)

        if bucketed or executor is not None:
            return self.predict_unique(unique_seqs, batch_size=batch_size,
                                       encoding_cache=encoding_cache,
                                       executor=executor)[index]

        self.eval()
        outs = []
        max_len = min(self.config.max_input_size - 1,
                      max(len(s) for s in unique_seqs))
        with nn.no_grad():
            for lo in range(0, len(unique_seqs), batch_size):
                chunk = unique_seqs[lo:lo + batch_size]
                ids, mask = encode_batch(chunk, self.vocab, max_len)
                outs.append(self.forward(ids, mask).numpy())
        scaled = np.concatenate(outs, axis=0)
        physical = np.maximum(self.scaler.inverse(scaled), 0.0)
        return physical[index]


class CircuitformerExecutor:
    """Plan-once/run-many compiled inference front end for a Circuitformer.

    Wraps :func:`repro.nn.compile_forward`: the first batch of each padded
    bucket shape ``(rows, width)`` traces one dynamic encoder forward and
    compiles it into a static schedule of preallocated numpy kernels;
    every later batch of that shape replays the schedule with zero
    Tensor-graph construction.  The regression head compiles once at its
    fixed ``(_HEAD_ROWS, d)`` shape and is shared by all buckets.

    ``precision`` selects the replay arithmetic:

    - ``"fp64"`` — kernels alias the parameter storage directly; replays
      are bit-identical to the dynamic path (gated at compile time).
    - ``"fp32"`` — activations and a version-tracked weight cast run in
      float32; compile gates the relative error against the float64
      dynamic reference.
    - ``"int8"`` — embedding tables are quantized per row to int8
      (weight-only); all other arithmetic runs fp32.

    ``threads > 1`` runs independent bucket plans on a thread pool.
    Every sequence's output depends only on its own tokens and its
    bucket, and each worker writes a disjoint row range of the output
    array, so the parallel merge is deterministic — bitwise equal to the
    serial bucket order.

    Plans survive in-place parameter updates (fp32/int8 weight casts
    refresh by ``Parameter.version``); fp64 plans transparently recompile
    if a parameter's storage is *rebound* (e.g. ``load_state_dict``).
    """

    def __init__(self, model: Circuitformer, precision: str = "fp64",
                 threads: int = 1, tolerance: float | None = None):
        if precision not in nn.PRECISIONS:
            raise ValueError(f"precision must be one of {nn.PRECISIONS}: "
                             f"got {precision!r}")
        if threads < 1:
            raise ValueError(f"threads must be >= 1: got {threads}")
        self.model = model
        self.precision = precision
        self.threads = int(threads)
        self.tolerance = tolerance
        self._plans: dict[tuple[int, int], nn.ForwardPlan] = {}
        self._head_plan: nn.ForwardPlan | None = None
        self._head_buf: np.ndarray | None = None
        self._cast_cache: dict = {}
        self._lock = threading.Lock()        # encoder plan table
        self._head_lock = threading.Lock()   # head plan + shared row buffer
        self._enc_lock = threading.Lock()    # EncodingCache is not thread-safe

    # -- plan construction --------------------------------------------- #
    def _encoder_fn(self, ids: np.ndarray, pad_mask: np.ndarray) -> nn.Tensor:
        """The traced per-bucket forward: encoder pass up to the CLS row."""
        model = self.model
        positions = np.broadcast_to(np.arange(ids.shape[1]), ids.shape)
        x = model.token_embedding(ids) + model.position_embedding(positions)
        return model.encoder(x, key_padding_mask=pad_mask)[:, 0, :]

    def _encoder_plan(self, shape: tuple[int, int]) -> nn.ForwardPlan:
        with self._lock:
            plan = self._plans.get(shape)
            if plan is not None and not plan.is_stale():
                return plan
            vocab = self.model.vocab
            ids = np.full(shape, vocab.PAD, dtype=np.int64)
            ids[:, 0] = vocab.CLS
            plan = nn.compile_forward(
                self._encoder_fn, {"ids": ids, "pad_mask": ids == vocab.PAD},
                precision=self.precision, tolerance=self.tolerance,
                cast_cache=self._cast_cache)
            self._plans[shape] = plan
            return plan

    def _head_fixed(self, cls_emb: np.ndarray) -> np.ndarray:
        """Compiled analogue of :meth:`Circuitformer._head_rows_fixed`."""
        rows = Circuitformer._HEAD_ROWS
        out = np.empty((len(cls_emb), 3))
        with self._head_lock:
            if self._head_plan is None or self._head_plan.is_stale():
                buf = np.zeros((rows, self.model.config.embedding_size))
                self._head_plan = nn.compile_forward(
                    lambda cls: self.model.head(nn.Tensor(cls)), {"cls": buf},
                    precision=self.precision, tolerance=self.tolerance,
                    cast_cache=self._cast_cache)
                self._head_buf = buf
            plan, buf = self._head_plan, self._head_buf
            for lo in range(0, len(cls_emb), rows):
                chunk = cls_emb[lo:lo + rows]
                n = len(chunk)
                np.copyto(buf[:n], chunk)
                if n < rows:
                    buf[n:] = chunk[-1]  # same padding as _head_rows_fixed
                out[lo:lo + n] = plan.replay(cls=buf)[:n]
        return out

    # -- inference ----------------------------------------------------- #
    @nn.no_grad
    def _run_bucket(self, bucket: int, idxs: list[int],
                    unique_seqs: list[tuple[str, ...]], batch_size: int,
                    encoding_cache, scaled: np.ndarray) -> None:
        # no_grad here, not just in predict_unique: grad mode is
        # thread-local, so pool workers don't inherit the caller's.
        model = self.model
        for lo in range(0, len(idxs), batch_size):
            chunk_idx = idxs[lo:lo + batch_size]
            chunk = [unique_seqs[i] for i in chunk_idx]
            single = len(chunk) == 1
            if single:
                chunk = chunk * 2
            if encoding_cache is not None:
                with self._enc_lock:
                    ids, mask = encoding_cache.encode(chunk, model.vocab, bucket)
            else:
                ids, mask = encode_batch(chunk, model.vocab, bucket)
            plan = self._encoder_plan(ids.shape)
            cls_emb = plan.replay(ids=ids, pad_mask=mask)
            if single:
                cls_emb = cls_emb[:1]
            # _head_fixed copies cls_emb out of the plan-owned buffer
            # before this worker's next replay of the same plan.
            scaled[chunk_idx] = self._head_fixed(cls_emb)

    def predict_unique(self, unique_seqs: list[tuple[str, ...]],
                       batch_size: int = 128, encoding_cache=None) -> np.ndarray:
        """Compiled drop-in for :meth:`Circuitformer.predict_unique`."""
        if not unique_seqs:
            return np.zeros((0, 3))
        model = self.model
        max_len = model.config.max_input_size - 1
        buckets: dict[int, list[int]] = {}
        for i, seq in enumerate(unique_seqs):
            buckets.setdefault(bucket_for_length(len(seq), max_len), []).append(i)

        model.eval()
        scaled = np.empty((len(unique_seqs), 3))
        work = [(b, buckets[b]) for b in sorted(buckets)]
        with nn.no_grad():
            if self.threads > 1 and len(work) > 1:
                with ThreadPoolExecutor(
                        max_workers=min(self.threads, len(work))) as pool:
                    futures = [pool.submit(self._run_bucket, bucket, idxs,
                                           unique_seqs, batch_size,
                                           encoding_cache, scaled)
                               for bucket, idxs in work]
                    for future in futures:
                        future.result()
            else:
                for bucket, idxs in work:
                    self._run_bucket(bucket, idxs, unique_seqs, batch_size,
                                     encoding_cache, scaled)
        return np.maximum(model.scaler.inverse(scaled), 0.0)

    def stats(self) -> dict[str, int]:
        with self._lock, self._head_lock:
            plans = list(self._plans.values())
            if self._head_plan is not None:
                plans.append(self._head_plan)
        return {"plans": len(plans),
                "replays": int(sum(p.replays for p in plans)),
                "kernel_steps": int(sum(p.num_steps for p in plans))}
