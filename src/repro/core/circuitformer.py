"""The Circuitformer — a lightweight Transformer for circuit paths.

Table 2 hyperparameters: vocabulary 79 (+2 special tokens), 2 hidden
layers, 2 attention heads, embedding size 128, maximum input 512.  A
``<cls>`` token is prepended and its final embedding feeds a regression
head predicting per-path [timing, area, power] in normalized log space.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..graphir import Vocabulary

__all__ = ["CircuitformerConfig", "Circuitformer", "TargetScaler", "encode_batch"]

TARGETS = ("timing", "area", "power")


@dataclass(frozen=True)
class CircuitformerConfig:
    """Model hyperparameters (defaults are the paper's Table 2 column)."""

    vocab_size: int = 79
    hidden_layers: int = 2
    attention_heads: int = 2
    embedding_size: int = 128
    max_input_size: int = 512
    dim_feedforward: int = 512
    dropout: float = 0.1


@dataclass
class TargetScaler:
    """Standardizes log1p-transformed regression targets.

    Physical labels span orders of magnitude (a path's area may be 1 um^2
    or 10^4 um^2), so the model regresses standardized log values.
    """

    mean: np.ndarray = field(default_factory=lambda: np.zeros(3))
    std: np.ndarray = field(default_factory=lambda: np.ones(3))

    @classmethod
    def fit(cls, labels: np.ndarray) -> "TargetScaler":
        logs = np.log1p(np.asarray(labels, dtype=np.float64))
        std = logs.std(axis=0)
        std[std == 0] = 1.0
        return cls(mean=logs.mean(axis=0), std=std)

    def transform(self, labels: np.ndarray) -> np.ndarray:
        return (np.log1p(labels) - self.mean) / self.std

    def inverse(self, scaled: np.ndarray) -> np.ndarray:
        return np.expm1(scaled * self.std + self.mean)


def encode_batch(token_seqs: list[tuple[str, ...]], vocab: Vocabulary,
                 max_len: int) -> tuple[np.ndarray, np.ndarray]:
    """Encode token sequences into padded id arrays plus a padding mask.

    Returns ``(ids, pad_mask)`` of shape (batch, max_len+1); position 0 is
    the ``<cls>`` token.  Sequences beyond ``max_len`` are truncated.
    """
    batch = len(token_seqs)
    ids = np.full((batch, max_len + 1), vocab.PAD, dtype=np.int64)
    ids[:, 0] = vocab.CLS
    for i, seq in enumerate(token_seqs):
        clipped = list(seq)[:max_len]
        ids[i, 1:1 + len(clipped)] = vocab.encode(clipped)
    pad_mask = ids == vocab.PAD
    return ids, pad_mask


class Circuitformer(nn.Module):
    """Transformer encoder + CLS regression head over circuit paths."""

    def __init__(self, config: CircuitformerConfig | None = None,
                 vocab: Vocabulary | None = None, seed: int = 0):
        super().__init__()
        self.config = config or CircuitformerConfig()
        self.vocab = vocab or Vocabulary.standard()
        if self.vocab.circuit_size != self.config.vocab_size:
            raise ValueError(
                f"vocabulary size {self.vocab.circuit_size} does not match "
                f"config vocab_size {self.config.vocab_size}")
        rng = np.random.default_rng(seed)
        d = self.config.embedding_size
        self.token_embedding = nn.Embedding(len(self.vocab), d, rng=rng)
        self.position_embedding = nn.Embedding(self.config.max_input_size, d, rng=rng)
        self.encoder = nn.TransformerEncoder(
            num_layers=self.config.hidden_layers,
            d_model=d,
            num_heads=self.config.attention_heads,
            dim_feedforward=self.config.dim_feedforward,
            dropout=self.config.dropout,
            rng=rng,
        )
        self.head = nn.Sequential(
            nn.Linear(d, d // 2, rng=rng), nn.GELU(), nn.Linear(d // 2, 3, rng=rng))
        self.scaler = TargetScaler()

    # ------------------------------------------------------------------ #
    def forward(self, ids: np.ndarray, pad_mask: np.ndarray) -> nn.Tensor:
        """Predict normalized [timing, area, power] per sequence.

        ``ids``/``pad_mask``: (batch, seq) from :func:`encode_batch`.
        """
        if ids.shape[1] > self.config.max_input_size:
            raise ValueError(
                f"sequence length {ids.shape[1]} exceeds max input "
                f"{self.config.max_input_size}")
        positions = np.broadcast_to(np.arange(ids.shape[1]), ids.shape)
        x = self.token_embedding(ids) + self.position_embedding(positions)
        encoded = self.encoder(x, key_padding_mask=pad_mask)
        return self.head(encoded[:, 0, :])  # CLS position

    # ------------------------------------------------------------------ #
    def predict_paths(self, token_seqs: list[tuple[str, ...]],
                      batch_size: int = 128) -> np.ndarray:
        """Inference: physical [timing_ps, area_um2, power_mw] per path.

        Sampled designs repeat token sequences heavily (a systolic array
        yields hundreds of identical paths), so inference runs on the
        unique sequences only and results are broadcast back — often an
        order-of-magnitude speedup with bit-identical output.
        """
        if not token_seqs:
            return np.zeros((0, 3))
        unique: dict[tuple[str, ...], int] = {}
        index = np.empty(len(token_seqs), dtype=np.int64)
        for i, seq in enumerate(token_seqs):
            index[i] = unique.setdefault(tuple(seq), len(unique))
        unique_seqs = list(unique)

        self.eval()
        outs = []
        max_len = min(self.config.max_input_size - 1,
                      max(len(s) for s in unique_seqs))
        with nn.no_grad():
            for lo in range(0, len(unique_seqs), batch_size):
                chunk = unique_seqs[lo:lo + batch_size]
                ids, mask = encode_batch(chunk, self.vocab, max_len)
                outs.append(self.forward(ids, mask).numpy())
        scaled = np.concatenate(outs, axis=0)
        physical = np.maximum(self.scaler.inverse(scaled), 0.0)
        return physical[index]
