"""Complete-circuit-path sampling (Section 3.2, Algorithm 1).

A *complete circuit path* begins and ends at vertices that contain
flip-flops (``dff``) or are design ports (``io``) — it captures one-cycle
behaviour.  The sampler runs a randomized DFS: at every combinational
vertex it explores ``ceil(|successors| / k)`` randomly-chosen successors
(at least one), so ``k = 1`` is exhaustive and larger ``k`` thins the
sample.  The paper uses ``k = 5`` for training.

Two engines produce bit-identical output (same paths, same order, same
RNG consumption — asserted by the parity suite and the throughput
bench):

- ``engine="array"`` (default) walks the CSR adjacency of a
  :class:`repro.graphir.CompiledGraph` — precompiled successor lists,
  token strings, and sequential flags instead of per-visit ``Node``
  property evaluation.  A :class:`CircuitGraph` input is compiled once
  and memoized on the instance.
- ``engine="reference"`` is the original dict-graph walk, kept as the
  parity oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphir import CircuitGraph, CompiledGraph, compile_graph

__all__ = ["SampledPath", "PathSampler"]

DEFAULT_K = 5
DEFAULT_MAX_LEN = 64
DEFAULT_MAX_PATHS = 512

ENGINES = ("array", "reference")


@dataclass(frozen=True)
class SampledPath:
    """One complete circuit path: node ids and their vocabulary tokens.

    Because each path is explicitly sampled, SNS keeps a record of where
    it lives in the design (``node_ids``) — this is what lets SNS point
    at the critical path (Section 2.2).
    """

    node_ids: tuple[int, ...]
    tokens: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.tokens)


@dataclass
class PathSampler:
    """Randomized DFS path sampler (Algorithm 1).

    Parameters
    ----------
    k:
        Sampling divisor — ``ceil(succ/k)`` successors explored per
        vertex.  ``k=1`` samples exhaustively.
    max_len:
        Paths longer than this are truncated at the next sequential
        vertex or dropped; protects the Circuitformer's input bound.
    max_paths:
        Global per-design budget; sampling stops once reached.
    seed:
        RNG seed for reproducible sampling.
    engine:
        ``"array"`` (compiled CSR walk, default) or ``"reference"`` (the
        original dict-graph walk).  Both are bit-identical, so the
        engine choice is excluded from the sampler fingerprint.
    """

    k: int = DEFAULT_K
    max_len: int = DEFAULT_MAX_LEN
    max_paths: int = DEFAULT_MAX_PATHS
    seed: int = 0
    engine: str = "array"

    # Work-stack bound for one DFS: the iterative walk cannot hit
    # Python's recursion limit on deep combinational chains, but a
    # pathological fanout graph could still grow the explicit stack
    # without bound — fail loudly instead of exhausting memory.
    _MAX_STACK = 1_000_000

    def __post_init__(self):
        if self.k < 1:
            raise ValueError(f"k must be >= 1: {self.k}")
        if self.max_len < 2:
            raise ValueError(f"max_len must allow at least two endpoints: {self.max_len}")
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}: {self.engine!r}")

    # ------------------------------------------------------------------ #
    def sample(self, graph: CircuitGraph | CompiledGraph) -> list[SampledPath]:
        """Sample complete circuit paths from every sequential source.

        Sampling is coverage-guided (successors not yet on any sampled
        path are preferred — the paper's "evenly distributed across the
        entire design") and runs multiple rounds over the sources until
        the path budget is met or a round yields nothing new.
        """
        if self.engine == "array":
            compiled = (graph if isinstance(graph, CompiledGraph)
                        else compile_graph(graph))
            return self._sample_array(compiled)
        if isinstance(graph, CompiledGraph):
            graph = graph.to_circuit_graph()
        return self._sample_reference(graph)

    # ------------------------------------------------------------------ #
    # Array engine: iterative DFS over precompiled CSR successor lists.
    # ------------------------------------------------------------------ #
    def _sample_array(self, cg: CompiledGraph) -> list[SampledPath]:
        rng = np.random.default_rng(self.seed)
        shuffle = rng.shuffle
        succ = cg.succ_lists
        is_seq = cg.is_seq_list
        tokens = cg.token_list
        k = self.k
        max_len = self.max_len
        max_paths = self.max_paths
        max_stack = self._MAX_STACK

        paths: list[SampledPath] = []
        append = paths.append
        seen: set[tuple[int, ...]] = set()
        visited: set[int] = set()
        visited_update = visited.update

        def pick(successors: list[int]) -> list[int]:
            # ceil(len/k) picks, fresh (never-visited) successors first.
            # RNG-stream parity with the reference: Generator.shuffle on
            # a 0/1-element Python sequence draws nothing, so skipping
            # those calls changes no stream position.
            length = len(successors)
            count = -(-length // k)
            if count >= length:
                visited_update(successors)
                return successors
            fresh = [s for s in successors if s not in visited]
            stale = [s for s in successors if s in visited]
            if len(fresh) > 1:
                shuffle(fresh)
            if len(stale) > 1:
                shuffle(stale)
            if count == 1:
                picked = [fresh[0]] if fresh else [stale[0]]
            else:
                picked = (fresh + stale)[:count]
            visited_update(picked)
            return picked

        sources = list(cg.source_ids())
        max_rounds = 1 if k == 1 else 8
        for _ in range(max_rounds):
            if len(paths) >= max_paths:
                break
            before = len(paths)
            shuffle(sources)
            for src in sources:
                if len(paths) >= max_paths:
                    break
                stack: list[tuple[int, tuple[int, ...]]] = [
                    (s, (src, s)) for s in pick(succ[src])]
                while stack and len(paths) < max_paths:
                    node_id, path = stack.pop()
                    if is_seq[node_id]:
                        if path not in seen:
                            seen.add(path)
                            append(SampledPath(
                                node_ids=path,
                                tokens=tuple(tokens[n] for n in path)))
                        continue
                    if len(path) >= max_len:
                        continue  # drop over-long exploration
                    successors = succ[node_id]
                    if not successors:
                        continue  # dangling combinational sink
                    for s in pick(successors):
                        if s in path and not is_seq[s]:
                            continue  # avoid combinational revisits
                        stack.append((s, path + (s,)))
                    if len(stack) > max_stack:
                        raise RuntimeError(
                            f"path-sampler work stack exceeded {max_stack} "
                            f"entries on design {cg.name!r}; raise k or lower "
                            "max_len/max_paths to bound the exploration")
            if len(paths) == before:
                break
        return paths

    # ------------------------------------------------------------------ #
    # Reference engine (parity oracle)
    # ------------------------------------------------------------------ #
    def _sample_reference(self, graph: CircuitGraph) -> list[SampledPath]:
        rng = np.random.default_rng(self.seed)
        paths: list[SampledPath] = []
        seen: set[tuple[int, ...]] = set()
        self._visited: set[int] = set()

        sources = graph.source_ids()
        max_rounds = 1 if self.k == 1 else 8
        for _ in range(max_rounds):
            if len(paths) >= self.max_paths:
                break
            before = len(paths)
            rng.shuffle(sources)
            for src in sources:
                if len(paths) >= self.max_paths:
                    break
                self._dfs_from(graph, src, rng, paths, seen)
            if len(paths) == before:
                break
        return paths

    # ------------------------------------------------------------------ #
    def _dfs_from(self, graph: CircuitGraph, src: int, rng: np.random.Generator,
                  paths: list[SampledPath], seen: set[tuple[int, ...]]) -> None:
        """Iterative DFS growing one path at a time from ``src``.

        The explicit work stack (rather than Python recursion) is what
        makes combinational chains deeper than ``sys.getrecursionlimit()``
        safe to sample; the ``_MAX_STACK`` guard turns a pathological
        exploration into a clear error instead of memory exhaustion (or,
        for a recursive formulation, a ``RecursionError``).
        """
        # Stack holds (node, path_so_far); path includes node.
        stack: list[tuple[int, tuple[int, ...]]] = []
        for succ in self._pick(graph.successors(src), rng):
            stack.append((succ, (src, succ)))

        while stack and len(paths) < self.max_paths:
            node_id, path = stack.pop()
            node = graph.node(node_id)
            if node.is_sequential:
                if len(path) >= 2 and path not in seen:
                    seen.add(path)
                    paths.append(SampledPath(
                        node_ids=path,
                        tokens=tuple(graph.node(n).token for n in path),
                    ))
                continue
            if len(path) >= self.max_len:
                continue  # drop over-long exploration
            successors = graph.successors(node_id)
            if not successors:
                continue  # dangling combinational sink; not a complete path
            for succ in self._pick(successors, rng):
                if succ in path and not graph.node(succ).is_sequential:
                    continue  # avoid combinational revisits
                stack.append((succ, path + (succ,)))
            if len(stack) > self._MAX_STACK:
                raise RuntimeError(
                    f"path-sampler work stack exceeded {self._MAX_STACK} "
                    f"entries on design {graph.name!r}; raise k or lower "
                    "max_len/max_paths to bound the exploration")

    def _pick(self, successors: list[int], rng: np.random.Generator) -> list[int]:
        """Choose ceil(len/k) successors, preferring ones never visited.

        The coverage preference keeps rare branches (a lone divider behind
        a wide mux tree — often the critical path) from being thinned
        away, while staying random within the visited/unvisited groups.
        """
        if not successors:
            return []
        count = -(-len(successors) // self.k)  # ceil division
        if count >= len(successors):
            picked = list(successors)
        else:
            fresh = [s for s in successors if s not in self._visited]
            stale = [s for s in successors if s in self._visited]
            rng.shuffle(fresh)
            rng.shuffle(stale)
            picked = (fresh + stale)[:count]
        self._visited.update(picked)
        return picked
