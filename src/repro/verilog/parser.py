"""Recursive-descent parser for the supported Verilog subset.

Supported constructs: module definitions with ANSI or non-ANSI ports,
``parameter``/``localparam``, ``wire``/``reg`` declarations with ranges,
continuous ``assign``, ``always @(posedge clk)`` blocks of non-blocking
assignments, module instantiation with parameter overrides, and the
usual expression operators (including ``?:``, bit/part selects, concat,
and unary reductions).
"""

from __future__ import annotations

from . import ast
from .lexer import Token, VerilogSyntaxError, parse_number, tokenize

__all__ = ["Parser", "parse_source"]

# Binary operator precedence (higher binds tighter).
_BINARY_PRECEDENCE = {
    "||": 1, "&&": 2,
    "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------ #
    # Token plumbing
    # ------------------------------------------------------------------ #
    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _expect(self, text: str | None = None, kind: str | None = None) -> Token:
        token = self._peek()
        if text is not None and token.text != text:
            raise VerilogSyntaxError(
                f"expected {text!r} but found {token.text!r} at line {token.line}")
        if kind is not None and token.kind != kind:
            raise VerilogSyntaxError(
                f"expected {kind} but found {token.kind} ({token.text!r}) "
                f"at line {token.line}")
        return self._advance()

    def _accept(self, text: str) -> bool:
        if self._peek().text == text:
            self._advance()
            return True
        return False

    # ------------------------------------------------------------------ #
    # Top level
    # ------------------------------------------------------------------ #
    def parse(self) -> ast.SourceFile:
        source = ast.SourceFile()
        while self._peek().kind != "EOF":
            module = self._parse_module()
            source.modules[module.name] = module
        return source

    def _parse_module(self) -> ast.ModuleDef:
        self._expect("module")
        name = self._expect(kind="IDENT").text
        module = ast.ModuleDef(name)
        if self._accept("#"):
            self._parse_param_list(module)
        if self._accept("("):
            self._parse_port_list(module)
        self._expect(";")
        while not self._accept("endmodule"):
            self._parse_module_item(module)
        return module

    def _parse_param_list(self, module: ast.ModuleDef) -> None:
        self._expect("(")
        while True:
            self._expect("parameter")
            name = self._expect(kind="IDENT").text
            self._expect("=")
            module.params.append(ast.ParamDecl(name, self._parse_expr()))
            if not self._accept(","):
                break
        self._expect(")")

    def _parse_port_list(self, module: ast.ModuleDef) -> None:
        if self._accept(")"):
            return
        while True:
            token = self._peek()
            if token.text in ("input", "output", "inout"):
                module.ports.append(self._parse_ansi_port())
            else:
                # Non-ANSI style: bare names; directions come later.
                name = self._expect(kind="IDENT").text
                module.ports.append(ast.PortDecl("inout", name, None, None))
            if not self._accept(","):
                break
        self._expect(")")

    def _parse_ansi_port(self) -> ast.PortDecl:
        direction = self._advance().text
        is_reg = self._accept("reg")
        self._accept("wire")
        msb = lsb = None
        if self._accept("["):
            msb = self._parse_expr()
            self._expect(":")
            lsb = self._parse_expr()
            self._expect("]")
        name = self._expect(kind="IDENT").text
        return ast.PortDecl(direction, name, msb, lsb, is_reg)

    # ------------------------------------------------------------------ #
    # Module items
    # ------------------------------------------------------------------ #
    def _parse_module_item(self, module: ast.ModuleDef) -> None:
        token = self._peek()
        if token.text in ("input", "output", "inout"):
            self._parse_nonansi_port_decl(module)
        elif token.text == "genvar":
            self._advance()
            self._expect(kind="IDENT")
            while self._accept(","):
                self._expect(kind="IDENT")
            self._expect(";")
        elif token.text == "generate":
            self._parse_generate(module)
        elif token.text in ("wire", "reg", "integer"):
            self._parse_net_decl(module)
        elif token.text in ("parameter", "localparam"):
            self._advance()
            name = self._expect(kind="IDENT").text
            self._expect("=")
            module.params.append(ast.ParamDecl(name, self._parse_expr()))
            self._expect(";")
        elif token.text == "assign":
            self._parse_assign(module)
        elif token.text == "always":
            self._parse_always(module)
        elif token.kind == "IDENT":
            self._parse_instance(module)
        else:
            raise VerilogSyntaxError(
                f"unsupported module item {token.text!r} at line {token.line}")

    def _parse_range(self):
        msb = lsb = None
        if self._accept("["):
            msb = self._parse_expr()
            self._expect(":")
            lsb = self._parse_expr()
            self._expect("]")
        return msb, lsb

    def _parse_nonansi_port_decl(self, module: ast.ModuleDef) -> None:
        direction = self._advance().text
        is_reg = self._accept("reg")
        self._accept("wire")
        msb, lsb = self._parse_range()
        while True:
            name = self._expect(kind="IDENT").text
            replaced = False
            for i, port in enumerate(module.ports):
                if port.name == name:
                    module.ports[i] = ast.PortDecl(direction, name, msb, lsb, is_reg)
                    replaced = True
            if not replaced:
                module.ports.append(ast.PortDecl(direction, name, msb, lsb, is_reg))
            if not self._accept(","):
                break
        self._expect(";")

    def _parse_net_decl(self, module: ast.ModuleDef) -> None:
        kind = self._advance().text
        if kind == "integer":
            kind = "reg"
        msb, lsb = self._parse_range()
        while True:
            name = self._expect(kind="IDENT").text
            module.nets.append(ast.NetDecl(kind, name, msb, lsb))
            if self._accept("="):  # wire w = expr;
                module.assigns.append(
                    ast.ContinuousAssign(name, None, self._parse_expr()))
            if not self._accept(","):
                break
        self._expect(";")

    def _parse_assign(self, module: ast.ModuleDef) -> None:
        self._expect("assign")
        target = self._expect(kind="IDENT").text
        select = None
        if self._accept("["):
            msb = self._parse_expr()
            lsb = msb
            if self._accept(":"):
                lsb = self._parse_expr()
            self._expect("]")
            select = (msb, lsb)
        self._expect("=")
        value = self._parse_expr()
        self._expect(";")
        module.assigns.append(ast.ContinuousAssign(target, select, value))

    def _parse_always(self, module: ast.ModuleDef) -> None:
        self._expect("always")
        self._expect("@")
        self._expect("(")
        if self._peek().text in ("posedge", "negedge"):
            self._advance()
        clock = self._expect(kind="IDENT").text
        self._expect(")")
        statements = self._parse_statement_block()
        module.always_blocks.append(ast.AlwaysBlock(clock, statements))

    def _parse_statement_block(self) -> tuple:
        """One statement, or a begin..end group of statements."""
        if self._accept("begin"):
            stmts = []
            while not self._accept("end"):
                stmts.extend(self._parse_statement_block())
            return tuple(stmts)
        return (self._parse_statement(),)

    def _parse_statement(self):
        token = self._peek()
        if token.text == "if":
            return self._parse_if()
        if token.text == "case":
            return self._parse_case()
        return self._parse_nonblocking()

    def _parse_if(self) -> ast.IfStatement:
        self._expect("if")
        self._expect("(")
        condition = self._parse_expr()
        self._expect(")")
        then_stmts = self._parse_statement_block()
        else_stmts: tuple = ()
        if self._accept("else"):
            else_stmts = self._parse_statement_block()
        return ast.IfStatement(condition, then_stmts, else_stmts)

    def _parse_case(self) -> ast.CaseStatement:
        self._expect("case")
        self._expect("(")
        subject = self._parse_expr()
        self._expect(")")
        items: list[tuple] = []
        while not self._accept("endcase"):
            if self._peek().text == "default":
                self._advance()
                self._expect(":")
                items.append((None, self._parse_statement_block()))
            else:
                match = self._parse_expr()
                self._expect(":")
                items.append((match, self._parse_statement_block()))
        return ast.CaseStatement(subject, tuple(items))

    def _parse_nonblocking(self) -> ast.NonBlockingAssign:
        target = self._expect(kind="IDENT").text
        self._expect("<=")
        value = self._parse_expr()
        self._expect(";")
        return ast.NonBlockingAssign(target, value)

    def _parse_generate(self, module: ast.ModuleDef) -> None:
        self._expect("generate")
        while not self._accept("endgenerate"):
            module.generates.append(self._parse_generate_for())

    def _parse_generate_for(self) -> ast.GenerateFor:
        self._expect("for")
        self._expect("(")
        genvar = self._expect(kind="IDENT").text
        self._expect("=")
        start = self._parse_expr()
        self._expect(";")
        # condition: genvar < limit (the common canonical form)
        cond_var = self._expect(kind="IDENT").text
        if cond_var != genvar:
            raise VerilogSyntaxError(
                f"generate condition must test the genvar {genvar!r}")
        self._expect("<")
        limit = self._parse_expr()
        self._expect(";")
        step_var = self._expect(kind="IDENT").text
        self._expect("=")
        step_expr = self._parse_expr()
        if step_var != genvar:
            raise VerilogSyntaxError(
                f"generate step must update the genvar {genvar!r}")
        step = (step_expr.right
                if isinstance(step_expr, ast.BinaryOp) and step_expr.op == "+"
                else ast.Number(1))
        self._expect(")")
        self._expect("begin")
        label = ""
        if self._accept(":"):
            label = self._expect(kind="IDENT").text
        # Parse body items into a scratch module container.
        scratch = ast.ModuleDef("__generate__")
        while not self._accept("end"):
            self._parse_module_item(scratch)
        if scratch.ports or scratch.params or scratch.generates:
            raise VerilogSyntaxError(
                "unsupported item inside generate block")
        return ast.GenerateFor(
            genvar=genvar, start=start, limit=limit, step=step, label=label,
            nets=tuple(scratch.nets), assigns=tuple(scratch.assigns),
            instances=tuple(scratch.instances),
            always_blocks=tuple(scratch.always_blocks))

    def _parse_instance(self, module: ast.ModuleDef) -> None:
        module_name = self._expect(kind="IDENT").text
        params: list[tuple[str, ast.Expr]] = []
        if self._accept("#"):
            self._expect("(")
            params = self._parse_named_connections()
            self._expect(")")
        instance_name = self._expect(kind="IDENT").text
        self._expect("(")
        connections: list[tuple[str, ast.Expr]]
        if self._peek().text == ".":
            connections = self._parse_named_connections()
        else:
            connections = []
            if self._peek().text != ")":
                while True:
                    connections.append(("", self._parse_expr()))
                    if not self._accept(","):
                        break
        self._expect(")")
        self._expect(";")
        module.instances.append(ast.Instance(
            module_name, instance_name, tuple(params), tuple(connections)))

    def _parse_named_connections(self) -> list[tuple[str, ast.Expr]]:
        out: list[tuple[str, ast.Expr]] = []
        while True:
            self._expect(".")
            port = self._expect(kind="IDENT").text
            self._expect("(")
            out.append((port, self._parse_expr()))
            self._expect(")")
            if not self._accept(","):
                break
        return out

    # ------------------------------------------------------------------ #
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------ #
    def _parse_expr(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        condition = self._parse_binary(1)
        if self._accept("?"):
            if_true = self._parse_ternary()
            self._expect(":")
            if_false = self._parse_ternary()
            return ast.Ternary(condition, if_true, if_false)
        return condition

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            op = self._peek().text
            # '<=' inside an expression context is less-or-equal.
            prec = _BINARY_PRECEDENCE.get(op)
            if prec is None or prec < min_prec:
                return left
            self._advance()
            right = self._parse_binary(prec + 1)
            left = ast.BinaryOp(op, left, right)

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.text in ("~", "!", "-", "&", "|", "^"):
            self._advance()
            return ast.UnaryOp(token.text, self._parse_unary())
        if token.text == "+":
            self._advance()
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == "NUMBER":
            self._advance()
            value, width = parse_number(token.text)
            return self._parse_selects(ast.Number(value, width))
        if token.kind == "IDENT":
            self._advance()
            return self._parse_selects(ast.Identifier(token.text))
        if self._accept("("):
            inner = self._parse_expr()
            self._expect(")")
            return self._parse_selects(inner)
        if self._accept("{"):
            parts = [self._parse_expr()]
            while self._accept(","):
                parts.append(self._parse_expr())
            self._expect("}")
            return ast.Concat(tuple(parts))
        raise VerilogSyntaxError(
            f"unexpected token {token.text!r} at line {token.line}")

    def _parse_selects(self, base: ast.Expr) -> ast.Expr:
        while self._peek().text == "[":
            self._advance()
            first = self._parse_expr()
            if self._accept(":"):
                second = self._parse_expr()
                self._expect("]")
                base = ast.PartSelect(base, first, second)
            else:
                self._expect("]")
                base = ast.BitSelect(base, first)
        return base


def parse_source(source: str) -> ast.SourceFile:
    """Parse Verilog text into a :class:`~repro.verilog.ast.SourceFile`."""
    return Parser(tokenize(source)).parse()
