"""``repro.verilog`` — a Verilog-subset front-end (the Yosys substitute).

SNS accepts HDL source; the paper compiles it with Yosys into its circuit
representation.  This package parses a practical Verilog-2001 subset
(modules, parameters, wires/regs, continuous assigns, clocked always
blocks, instantiation, the standard expression operators) and elaborates
it to the same GraphIR the Python DSL produces.

>>> from repro.verilog import elaborate_source
>>> graph = elaborate_source('''
... module mac(input [7:0] a, input [7:0] b, input clk, output [15:0] y);
...   reg [15:0] acc;
...   always @(posedge clk) acc <= acc + a * b;
...   assign y = acc;
... endmodule
... ''')
>>> sorted(n.token for n in graph.nodes())[:2]
['add16', 'dff16']
"""

from .lexer import Token, VerilogSyntaxError, tokenize
from .parser import Parser, parse_source
from .elaborator import ElaborationError, elaborate, elaborate_source
from .emitter import emit_verilog
from .preprocessor import preprocess, PreprocessorError
from . import ast

__all__ = [
    "Token", "VerilogSyntaxError", "tokenize",
    "Parser", "parse_source",
    "ElaborationError", "elaborate", "elaborate_source",
    "emit_verilog",
    "preprocess", "PreprocessorError",
    "ast",
]
