"""Elaboration: Verilog AST -> GraphIR circuit graph.

Reuses the :class:`repro.hdl.Circuit` builder, so Verilog input and the
Python DSL produce identical GraphIR vocabularies (exactly the role Yosys
plays for SNS: parse + compile into the circuit representation).

Semantic notes (cost-model oriented, like the paper's GraphIR):

- Constant part/bit selects are free re-wirings (no vertex), matching the
  width-rounding philosophy of Section 3.1.
- Dynamic bit selects map to a shifter vertex.
- Concatenation joins its operand cones through an ``or`` vertex (pure
  wiring in real hardware; modeled as the cheapest multi-input vertex
  that preserves path connectivity).
- Every non-blocking assignment target becomes a ``dff`` vertex.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast
from ..graphir import CircuitGraph, CompiledGraph, GraphBuilder
from ..hdl import Circuit, Signal
from .parser import parse_source

__all__ = ["ElaborationError", "ElaborationMemo", "elaborate",
           "elaborate_source"]

_MAX_DEPTH = 32


class ElaborationError(ValueError):
    """Raised for semantic errors (undefined names, cycles, bad widths)."""


def elaborate_source(source: str, top: str | None = None,
                     include_paths: list[str] | None = None,
                     defines: dict[str, str] | None = None, *,
                     memo: "bool | ElaborationMemo" = True,
                     compiled: bool = False) -> CircuitGraph | CompiledGraph:
    """Parse and elaborate Verilog text; returns the top module's GraphIR.

    Sources containing preprocessor directives (backticks) run through
    the preprocessor first; ``include_paths`` and ``defines`` configure
    it.  ``memo``/``compiled`` are forwarded to :func:`elaborate`.
    """
    if "`" in source or defines:
        from .preprocessor import preprocess

        source = preprocess(source, include_paths=include_paths, defines=defines)
    return elaborate(parse_source(source), top, memo=memo, compiled=compiled)


# ---------------------------------------------------------------------- #
# Instance memoization: repeated (module, parameter binding, port shape)
# instantiations stamp a recorded template instead of re-walking the AST.
# ---------------------------------------------------------------------- #
_UNCACHEABLE = object()


@dataclass
class _InstanceTemplate:
    """Everything one elaborated instance added to the circuit, with node
    ids rebased so it can be replayed at any id offset.

    Edge/output endpoints are encoded as ``offset >= 0`` (instance-local
    node, relative to the instance's first id) or ``-1 - i`` (the node
    bound to external input port ``ext_ports[i]``).  Replaying nodes
    first and then the journal-ordered edges reproduces the fresh
    elaboration node-for-node: ids are assigned in the same order and
    every adjacency list receives its entries in the same order.
    """

    module: object                      # pins the ModuleDef so id() stays unique
    nodes: list[tuple[str, int, str]]   # (type, width, label) in creation order
    edges: list[tuple[int, int]]        # encoded, in journal order
    ext_ports: list[str]                # external index -> input port name
    outputs: dict[str, tuple[int, int]]  # port -> (encoded node, width)
    pending: list[int]                  # reg_declare offsets never driven
    rel_depth: int                      # extra hierarchy depth below the instance


class ElaborationMemo:
    """Shared template store for memoized elaboration.

    One is created per :func:`elaborate` call by default; pass your own
    via ``elaborate(..., memo=memo)`` to reuse templates across calls
    (e.g. a DSE sweep re-elaborating sibling parameterizations).
    """

    def __init__(self):
        self.templates: dict = {}
        self.hits = 0
        self.misses = 0
        self.peak = 0          # deepest scope seen inside the current capture
        self._pins: list = []  # keep keyed ModuleDefs alive (keys use id())


def _instance_key(child_def: ast.ModuleDef, child_params: dict[str, int],
                  inputs: dict[str, Signal]):
    """Template key: module identity x parameter binding x input shape.

    The input shape covers each input port's bound width and its alias
    group (which ports share one driving node) — the only properties of
    the parent context that can influence the child's structure.
    """
    alias: dict[int, int] = {}
    shape = []
    for port in child_def.ports:
        if port.direction != "input":
            continue
        sig = inputs.get(port.name)
        if sig is None:
            shape.append((port.name, None, None))
        else:
            group = alias.setdefault(sig.node_id, len(alias))
            shape.append((port.name, sig.width, group))
    return (id(child_def), tuple(sorted(child_params.items())), tuple(shape))


def _capture_instance(graph, start: int, mark: int,
                      inputs: dict[str, Signal], child: "_ModuleScope",
                      child_def: ast.ModuleDef, pending_before: set[int],
                      pending_after: set[int], rel_depth: int):
    """Record what one fresh instance elaboration added to the circuit."""
    ext_map: dict[int, int] = {}
    ext_ports: list[str] = []
    for port, sig in inputs.items():
        if sig.node_id not in ext_map:
            ext_map[sig.node_id] = len(ext_ports)
            ext_ports.append(port)

    def encode(nid: int):
        if nid >= start:
            return nid - start
        idx = ext_map.get(nid)
        return None if idx is None else -1 - idx

    edges = []
    for s, d in graph.edges_since(mark):
        es, ed = encode(s), encode(d)
        if es is None or ed is None:
            return _UNCACHEABLE
        edges.append((es, ed))
    outputs = {}
    for port in child_def.ports:
        if port.direction != "output":
            continue
        sig = child._signals.get(port.name)
        if not isinstance(sig, Signal):
            return _UNCACHEABLE
        enc = encode(sig.node_id)
        if enc is None:
            return _UNCACHEABLE
        outputs[port.name] = (enc, sig.width)
    if pending_before - pending_after:
        return _UNCACHEABLE  # the child touched pre-existing pending regs
    pending = sorted(nid - start for nid in pending_after - pending_before)
    if pending and pending[0] < 0:
        return _UNCACHEABLE
    return _InstanceTemplate(module=child_def, nodes=graph.nodes_since(start),
                             edges=edges, ext_ports=ext_ports,
                             outputs=outputs, pending=pending,
                             rel_depth=rel_depth)


def _stamp_instance(circuit: Circuit, tmpl: _InstanceTemplate,
                    inputs: dict[str, Signal]) -> dict[str, Signal]:
    """Replay a template at the circuit's current node offset."""
    graph = circuit.graph
    base = graph.next_node_id
    add_node = graph.add_node
    for node_type, width, label in tmpl.nodes:
        add_node(node_type, width, label)
    if tmpl.pending:
        circuit._pending_regs.update(base + off for off in tmpl.pending)
    ext = [inputs[p].node_id for p in tmpl.ext_ports]
    add_edge = graph.add_edge
    for s, d in tmpl.edges:
        add_edge(base + s if s >= 0 else ext[-1 - s],
                 base + d if d >= 0 else ext[-1 - d])
    return {port: Signal(circuit,
                         base + enc if enc >= 0 else ext[-1 - enc], width)
            for port, (enc, width) in tmpl.outputs.items()}


class _Substituter:
    """Rewrites expressions for one generate iteration: the genvar becomes
    a constant, block-local names get their per-iteration suffix."""

    def __init__(self, genvar: str, value: int, rename: dict[str, str]):
        self.genvar = genvar
        self.value = value
        self.rename = rename

    def expr(self, node):
        if node is None or not isinstance(node, ast.Expr):
            return node
        if isinstance(node, ast.Number):
            return node
        if isinstance(node, ast.Identifier):
            if node.name == self.genvar:
                return ast.Number(self.value)
            if node.name in self.rename:
                return ast.Identifier(self.rename[node.name])
            return node
        if isinstance(node, ast.UnaryOp):
            return ast.UnaryOp(node.op, self.expr(node.operand))
        if isinstance(node, ast.BinaryOp):
            return ast.BinaryOp(node.op, self.expr(node.left), self.expr(node.right))
        if isinstance(node, ast.Ternary):
            return ast.Ternary(self.expr(node.condition),
                               self.expr(node.if_true), self.expr(node.if_false))
        if isinstance(node, ast.BitSelect):
            return ast.BitSelect(self.expr(node.base), self.expr(node.index))
        if isinstance(node, ast.PartSelect):
            return ast.PartSelect(self.expr(node.base),
                                  self.expr(node.msb), self.expr(node.lsb))
        if isinstance(node, ast.Concat):
            return ast.Concat(tuple(self.expr(p) for p in node.parts))
        raise ElaborationError(
            f"cannot substitute into {type(node).__name__}")


def elaborate(file: ast.SourceFile, top: str | None = None, *,
              memo: bool | ElaborationMemo = True,
              compiled: bool = False) -> CircuitGraph | CompiledGraph:
    """Elaborate a parsed source file.

    ``top`` defaults to the unique module that is never instantiated.

    ``memo`` enables instance memoization: each (module, parameter
    binding, input shape) is elaborated once and subsequent occurrences
    stamp the recorded template — node-for-node identical output,
    asserted by the memoization test suite.  Pass an
    :class:`ElaborationMemo` to share templates across calls, or
    ``False`` to force the unmemoized walk.

    ``compiled=True`` elaborates straight into a flat
    :class:`repro.graphir.GraphBuilder` and returns a
    :class:`CompiledGraph` (skipping the dict-graph construction
    entirely); otherwise a :class:`CircuitGraph` is returned.
    """
    if not file.modules:
        raise ElaborationError("no modules in source")
    if top is None:
        instantiated = {inst.module_name
                        for m in file.modules.values() for inst in m.instances}
        instantiated |= {inst.module_name
                         for m in file.modules.values()
                         for gen in m.generates for inst in gen.instances}
        candidates = [name for name in file.modules if name not in instantiated]
        if len(candidates) != 1:
            raise ElaborationError(
                f"cannot infer top module (candidates: {sorted(candidates)}); "
                "pass top= explicitly")
        top = candidates[0]
    module = file.module(top)
    circuit = Circuit(top, graph=GraphBuilder(top)) if compiled else Circuit(top)
    if isinstance(memo, ElaborationMemo):
        memo_obj: ElaborationMemo | None = memo
    else:
        memo_obj = ElaborationMemo() if memo else None
    scope = _ModuleScope(file, module, circuit, params={}, depth=0,
                         memo=memo_obj)
    scope.elaborate_top()
    if compiled:
        circuit.finalize()
        return circuit.graph.compile()
    return circuit.finalize()


# ---------------------------------------------------------------------- #
class _ModuleScope:
    """Per-instance elaboration state."""

    def __init__(self, file: ast.SourceFile, module: ast.ModuleDef,
                 circuit: Circuit, params: dict[str, int], depth: int,
                 bound_inputs: dict[str, Signal] | None = None,
                 memo: ElaborationMemo | None = None):
        if depth > _MAX_DEPTH:
            raise ElaborationError(f"instance hierarchy deeper than {_MAX_DEPTH}")
        self.memo = memo
        if memo is not None and depth > memo.peak:
            memo.peak = depth
        self.file = file
        self.module = module
        self.circuit = circuit
        self.depth = depth
        self.params = dict(params)
        for p in module.params:
            if p.name not in self.params:
                self.params[p.name] = self._const(p.value)
        self.bound_inputs = bound_inputs  # None = top level (create io ports)

        self._signals: dict[str, Signal] = {}
        self._resolving: set[str] = set()

        # Unroll generate blocks into concrete items.
        nets = list(module.nets)
        assigns = list(module.assigns)
        self._instances = list(module.instances)
        always_blocks = list(module.always_blocks)
        for gen in module.generates:
            g_nets, g_assigns, g_insts, g_always = self._unroll(gen)
            nets += g_nets
            assigns += g_assigns
            self._instances += g_insts
            always_blocks += g_always
        self._always_blocks = always_blocks

        # Wires may have several per-bit drivers (generate loops assign
        # slices); drivers of one net are joined like a concatenation.
        self._wire_defs: dict[str, list[ast.ContinuousAssign]] = {}
        for assign in assigns:
            self._wire_defs.setdefault(assign.target, []).append(assign)
        self._reg_targets = {a.target
                             for blk in always_blocks for a in blk.assigns}
        self._widths: dict[str, int] = {}
        for port in module.ports:
            self._widths[port.name] = self._range_width(port.msb, port.lsb)
        for net in nets:
            self._widths[net.name] = self._range_width(net.msb, net.lsb)

    # ------------------------------------------------------------------ #
    # Generate unrolling
    # ------------------------------------------------------------------ #
    _MAX_UNROLL = 4096

    def _unroll(self, gen: ast.GenerateFor):
        """Expand one generate-for into concrete per-iteration items."""
        start = self._const(gen.start)
        limit = self._const(gen.limit)
        step = self._const(gen.step)
        if step <= 0:
            raise ElaborationError(
                f"generate step must be positive in block {gen.label!r}")
        if (limit - start) / step > self._MAX_UNROLL:
            raise ElaborationError(
                f"generate block {gen.label!r} unrolls past {self._MAX_UNROLL}")
        local_names = ({n.name for n in gen.nets}
                       | {i.instance_name for i in gen.instances}
                       | {a.target for blk in gen.always_blocks
                          for a in blk.assigns})
        nets, assigns, instances, always_blocks = [], [], [], []
        value = start
        while value < limit:
            tag = f"{gen.label or 'gen'}_{value}"
            rename = {name: f"{name}__{tag}" for name in local_names}
            sub = _Substituter(gen.genvar, value, rename)
            for net in gen.nets:
                nets.append(ast.NetDecl(net.kind, rename.get(net.name, net.name),
                                        sub.expr(net.msb), sub.expr(net.lsb)))
            for a in gen.assigns:
                assigns.append(ast.ContinuousAssign(
                    rename.get(a.target, a.target),
                    None if a.target_select is None
                    else (sub.expr(a.target_select[0]), sub.expr(a.target_select[1])),
                    sub.expr(a.value)))
            for inst in gen.instances:
                instances.append(ast.Instance(
                    inst.module_name, f"{inst.instance_name}__{tag}",
                    tuple((n, sub.expr(e)) for n, e in inst.param_overrides),
                    tuple((n, sub.expr(e)) for n, e in inst.connections)))
            for blk in gen.always_blocks:
                always_blocks.append(ast.AlwaysBlock(blk.clock, tuple(
                    ast.NonBlockingAssign(rename.get(a.target, a.target),
                                          sub.expr(a.value))
                    for a in blk.assigns)))
            value += step
        return nets, assigns, instances, always_blocks

    # ------------------------------------------------------------------ #
    def elaborate_top(self) -> None:
        # Registers first (they may appear in their own feedback).
        regs = self._declare_registers()
        # Inputs.
        for port in self.module.ports:
            if port.direction == "input":
                if self.bound_inputs is not None:
                    if port.name in self.bound_inputs:
                        self._signals[port.name] = self.bound_inputs[port.name]
                    # unconnected inputs are allowed; they become dead cones
                else:
                    self._signals[port.name] = self.circuit.input(
                        port.name, self._widths[port.name])
        # Instances (may define wires used by assigns).
        for inst in self._instances:
            self._elaborate_instance(inst)
        # Register next-state logic.
        for block in self._always_blocks:
            for assign in block.assigns:
                value = self._expr(assign.value)
                self.circuit.connect_next(regs[assign.target],
                                          self._as_signal(value, regs[assign.target].width))
        # Outputs.
        for port in self.module.ports:
            if port.direction != "output":
                continue
            driver = self._resolve(port.name)
            if self.bound_inputs is None:
                self.circuit.output(port.name, self._as_signal(driver, self._widths[port.name]),
                                    width=self._widths[port.name])
            else:
                self._signals[port.name] = self._as_signal(driver, self._widths[port.name])
        # Dead logic: wires never referenced downstream still elaborate
        # (Yosys builds the full netlist before any optimization).
        for name in list(self._wire_defs):
            self._resolve(name)

    def output_signal(self, name: str) -> Signal:
        return self._signals[name]

    # ------------------------------------------------------------------ #
    def _declare_registers(self) -> dict[str, "Signal"]:
        regs = {}
        for name in sorted(self._reg_targets):
            if name not in self._widths:
                raise ElaborationError(
                    f"register {name!r} assigned in always block but never declared")
            reg = self.circuit.reg_declare(self._widths[name], label=name)
            regs[name] = reg
            self._signals[name] = reg
        return regs

    def _elaborate_instance(self, inst: ast.Instance) -> None:
        child_def = self.file.module(inst.module_name)
        child_params = {name: self._const(expr) for name, expr in inst.param_overrides}

        connections = list(inst.connections)
        if connections and connections[0][0] == "":
            port_names = [p.name for p in child_def.ports]
            if len(connections) > len(port_names):
                raise ElaborationError(
                    f"instance {inst.instance_name}: too many positional connections")
            connections = [(port_names[i], expr)
                           for i, (_, expr) in enumerate(connections)]

        inputs: dict[str, Signal] = {}
        output_bindings: list[tuple[str, str]] = []
        directions = {p.name: p.direction for p in child_def.ports}
        for port, expr in connections:
            if port not in directions:
                raise ElaborationError(
                    f"instance {inst.instance_name}: no port {port!r} on "
                    f"{inst.module_name}")
            if directions[port] == "input":
                value = self._expr(expr)
                inputs[port] = self._as_signal(value, None)
            else:
                if not isinstance(expr, ast.Identifier):
                    raise ElaborationError(
                        f"instance {inst.instance_name}: output port {port!r} must "
                        "connect to a plain identifier")
                output_bindings.append((port, expr.name))

        outputs = self._instantiate(child_def, child_params, inputs)
        for port, net in output_bindings:
            self._signals[net] = outputs[port]

    def _instantiate(self, child_def: ast.ModuleDef,
                     child_params: dict[str, int],
                     inputs: dict[str, Signal]) -> dict[str, Signal]:
        """Elaborate one child instance, stamping a memoized template when
        an identical (module, params, input shape) was elaborated before."""
        memo = self.memo
        if memo is None:
            child = _ModuleScope(self.file, child_def, self.circuit,
                                 params=child_params, depth=self.depth + 1,
                                 bound_inputs=inputs)
            child.elaborate_top()
            return {p.name: child.output_signal(p.name)
                    for p in child_def.ports if p.direction == "output"}

        key = _instance_key(child_def, child_params, inputs)
        tmpl = memo.templates.get(key)
        if isinstance(tmpl, _InstanceTemplate):
            if self.depth + 1 + tmpl.rel_depth <= _MAX_DEPTH:
                memo.hits += 1
                # A stamped subtree still counts toward the enclosing
                # capture's depth.
                if self.depth + 1 + tmpl.rel_depth > memo.peak:
                    memo.peak = self.depth + 1 + tmpl.rel_depth
                return _stamp_instance(self.circuit, tmpl, inputs)
            tmpl = _UNCACHEABLE  # too deep to stamp here; elaborate fresh

        memo.misses += 1
        graph = self.circuit.graph
        start = graph.next_node_id
        mark = graph.edge_mark()
        pending_before = set(self.circuit._pending_regs)
        outer_peak = memo.peak
        memo.peak = self.depth + 1
        child = _ModuleScope(self.file, child_def, self.circuit,
                             params=child_params, depth=self.depth + 1,
                             bound_inputs=inputs, memo=memo)
        child.elaborate_top()
        rel_depth = memo.peak - (self.depth + 1)
        if outer_peak > memo.peak:
            memo.peak = outer_peak
        if tmpl is None:  # first sighting (never overwrite an _UNCACHEABLE mark)
            captured = _capture_instance(
                graph, start, mark, inputs, child, child_def,
                pending_before, self.circuit._pending_regs, rel_depth)
            memo.templates[key] = captured
            memo._pins.append(child_def)
        return {p.name: child.output_signal(p.name)
                for p in child_def.ports if p.direction == "output"}

    # ------------------------------------------------------------------ #
    # Name resolution
    # ------------------------------------------------------------------ #
    def _resolve(self, name: str):
        if name in self._signals:
            return self._signals[name]
        if name in self.params:
            return self.params[name]
        if name in self._wire_defs:
            if name in self._resolving:
                raise ElaborationError(
                    f"combinational loop through {name!r} in {self.module.name}")
            self._resolving.add(name)
            try:
                values = [self._expr(a.value) for a in self._wire_defs[name]]
            finally:
                self._resolving.discard(name)
            signals = [v for v in values if isinstance(v, Signal)]
            if not signals:
                value = values[0]
            else:
                # Multiple per-slice drivers join like a concatenation.
                value = signals[0]
                for sig in signals[1:]:
                    value = value | sig
            if isinstance(value, Signal) and name in self._widths:
                value = value.resized(self._widths[name])
            self._signals[name] = value
            return value
        raise ElaborationError(
            f"undefined name {name!r} in module {self.module.name}")

    # ------------------------------------------------------------------ #
    # Expression elaboration (returns Signal or int constant)
    # ------------------------------------------------------------------ #
    def _expr(self, expr: ast.Expr):
        if isinstance(expr, ast.Number):
            return expr.value
        if isinstance(expr, ast.Identifier):
            return self._resolve(expr.name)
        if isinstance(expr, ast.UnaryOp):
            return self._unary(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._binary(expr)
        if isinstance(expr, ast.Ternary):
            return self._ternary(expr)
        if isinstance(expr, ast.BitSelect):
            return self._bit_select(expr)
        if isinstance(expr, ast.PartSelect):
            return self._part_select(expr)
        if isinstance(expr, ast.Concat):
            return self._concat(expr)
        raise ElaborationError(f"unsupported expression node: {type(expr).__name__}")

    def _unary(self, expr: ast.UnaryOp):
        value = self._expr(expr.operand)
        if isinstance(value, int):
            return {"~": lambda v: ~v, "!": lambda v: int(v == 0),
                    "-": lambda v: -v, "&": lambda v: int(v != 0),
                    "|": lambda v: int(v != 0), "^": lambda v: bin(v).count("1") % 2,
                    }[expr.op](value)
        if expr.op == "~":
            return ~value
        if expr.op == "!":
            return value.eq(0)
        if expr.op == "-":
            return 0 - value
        if expr.op == "&":
            return value.reduce_and()
        if expr.op == "|":
            return value.reduce_or()
        if expr.op == "^":
            return value.reduce_xor()
        raise ElaborationError(f"unsupported unary operator {expr.op!r}")

    _CONST_BINOPS = {
        "+": lambda a, b: a + b, "-": lambda a, b: a - b,
        "*": lambda a, b: a * b, "/": lambda a, b: a // max(b, 1),
        "%": lambda a, b: a % max(b, 1),
        "&": lambda a, b: a & b, "|": lambda a, b: a | b, "^": lambda a, b: a ^ b,
        "<<": lambda a, b: a << b, ">>": lambda a, b: a >> b,
        "==": lambda a, b: int(a == b), "!=": lambda a, b: int(a != b),
        "<": lambda a, b: int(a < b), ">": lambda a, b: int(a > b),
        "<=": lambda a, b: int(a <= b), ">=": lambda a, b: int(a >= b),
        "&&": lambda a, b: int(bool(a) and bool(b)),
        "||": lambda a, b: int(bool(a) or bool(b)),
    }

    def _binary(self, expr: ast.BinaryOp):
        left = self._expr(expr.left)
        right = self._expr(expr.right)
        if isinstance(left, int) and isinstance(right, int):
            return self._CONST_BINOPS[expr.op](left, right)
        # Normalize so the signal leads (constants fold into the vertex).
        op = expr.op
        if isinstance(left, int):
            left, right = right, left
            op = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}.get(op, op)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left // right
        if op == "%":
            return left % right
        if op in ("&", "&&"):
            return left & right
        if op in ("|", "||"):
            return left | right
        if op == "^":
            return left ^ right
        if op == "<<":
            return left << right
        if op == ">>":
            return left >> right
        if op == "==":
            return left.eq(right)
        if op == "!=":
            return ~left.eq(right)
        if op in ("<", "<="):
            return left.lt(right)
        if op in (">", ">="):
            return left.gt(right)
        raise ElaborationError(f"unsupported binary operator {op!r}")

    def _ternary(self, expr: ast.Ternary):
        cond = self._expr(expr.condition)
        if_true = self._expr(expr.if_true)
        if_false = self._expr(expr.if_false)
        if isinstance(cond, int):
            return if_true if cond else if_false
        if isinstance(if_true, Signal):
            return self.circuit.mux(self._as_signal(cond, 1), if_true, if_false)
        if isinstance(if_false, Signal):
            return self.circuit.mux(self._as_signal(cond, 1), if_false, if_true)
        width = max(max(int(if_true), 1).bit_length(), max(int(if_false), 1).bit_length())
        return self.circuit.unop("mux", self._as_signal(cond, 1), max(width, 1))

    def _bit_select(self, expr: ast.BitSelect):
        base = self._expr(expr.base)
        index = self._expr(expr.index)
        if isinstance(base, int):
            if not isinstance(index, int):
                raise ElaborationError("bit select of a constant needs a constant index")
            return (base >> index) & 1
        if isinstance(index, int):
            return base.resized(1)       # static select: pure wiring
        return (base >> index).resized(1)  # dynamic select: shifter vertex

    def _part_select(self, expr: ast.PartSelect):
        base = self._expr(expr.base)
        msb = self._const(expr.msb)
        lsb = self._const(expr.lsb)
        width = abs(msb - lsb) + 1
        if isinstance(base, int):
            return (base >> min(msb, lsb)) & ((1 << width) - 1)
        return base.resized(width)

    def _concat(self, expr: ast.Concat):
        parts = [self._expr(p) for p in expr.parts]
        signals = [p for p in parts if isinstance(p, Signal)]
        total_width = sum(
            p.width if isinstance(p, Signal) else max(int(p).bit_length(), 1)
            for p in parts)
        total_width = max(min(total_width, 64), 1)
        if not signals:
            # all-constant concat folds to a constant
            value = 0
            for p in parts:
                value = (value << max(int(p).bit_length(), 1)) | int(p)
            return value
        joined = signals[0]
        for sig in signals[1:]:
            joined = joined | sig
        return joined.resized(total_width)

    # ------------------------------------------------------------------ #
    def _as_signal(self, value, width: int | None) -> Signal:
        if isinstance(value, Signal):
            return value if width is None else value.resized(width)
        raise ElaborationError(
            f"expected a signal but got constant {value!r} "
            f"(constant-driven ports/registers are not supported)")

    def _const(self, expr: ast.Expr) -> int:
        value = self._expr_const(expr)
        return value

    def _expr_const(self, expr: ast.Expr) -> int:
        if isinstance(expr, ast.Number):
            return expr.value
        if isinstance(expr, ast.Identifier):
            if expr.name in self.params:
                return self.params[expr.name]
            raise ElaborationError(
                f"{expr.name!r} is not a parameter; constant expression required")
        if isinstance(expr, ast.BinaryOp):
            return self._CONST_BINOPS[expr.op](
                self._expr_const(expr.left), self._expr_const(expr.right))
        if isinstance(expr, ast.UnaryOp) and expr.op == "-":
            return -self._expr_const(expr.operand)
        raise ElaborationError(
            f"cannot evaluate {type(expr).__name__} as a constant")

    def _range_width(self, msb: ast.Expr | None, lsb: ast.Expr | None) -> int:
        if msb is None:
            return 1
        width = abs(self._const(msb) - self._const(lsb)) + 1
        if width < 1:
            raise ElaborationError("declared range has non-positive width")
        return width
