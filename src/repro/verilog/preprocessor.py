"""The Verilog preprocessor: ```define``, ```ifdef``, ```include``.

Runs before the lexer, the way real tools stage compilation.  Supported
directives:

- ```define NAME value`` / ```undef NAME`` — object-like macros
  (function-like macros are rejected with a clear error);
- ```ifdef NAME`` / ```ifndef NAME`` / ```else`` / ```endif`` — may nest;
- ```include "file.v"`` — resolved against the including file's
  directory then the supplied search paths, with cycle detection;
- ```NAME`` — macro expansion (recursively, with self-reference guard).
"""

from __future__ import annotations

import re
from pathlib import Path

from .lexer import VerilogSyntaxError

__all__ = ["preprocess", "PreprocessorError"]

_DIRECTIVE = re.compile(r"`(\w+)")
_MAX_EXPANSION_DEPTH = 32


class PreprocessorError(VerilogSyntaxError):
    """Raised for malformed directives, missing includes, or macro cycles."""


def preprocess(source: str, include_paths: list[str] | None = None,
               defines: dict[str, str] | None = None,
               _origin: Path | None = None,
               _stack: tuple[Path, ...] = ()) -> str:
    """Expand directives and macros; returns plain Verilog text."""
    state = _State(
        macros=dict(defines or {}),
        include_paths=[Path(p) for p in (include_paths or [])],
    )
    return _process(source, state, _origin, _stack)


class _State:
    def __init__(self, macros: dict[str, str], include_paths: list[Path]):
        self.macros = macros
        self.include_paths = include_paths


def _process(source: str, state: _State, origin: Path | None,
             stack: tuple[Path, ...]) -> str:
    out_lines: list[str] = []
    # Condition stack entries: (taking, seen_else).
    conditions: list[list[bool]] = []

    def active() -> bool:
        return all(taking for taking, _ in conditions)

    for lineno, line in enumerate(source.splitlines(), start=1):
        stripped = line.strip()
        if stripped.startswith("`"):
            match = _DIRECTIVE.match(stripped)
            name = match.group(1) if match else ""
            rest = stripped[len(f"`{name}"):].strip()
            if name == "define":
                if active():
                    _handle_define(rest, state, lineno)
                continue
            if name == "undef":
                if active():
                    state.macros.pop(rest.split()[0], None)
                continue
            if name in ("ifdef", "ifndef"):
                if not rest:
                    raise PreprocessorError(f"`{name} without a macro name "
                                            f"(line {lineno})")
                defined = rest.split()[0] in state.macros
                taking = defined if name == "ifdef" else not defined
                conditions.append([taking, False])
                continue
            if name == "else":
                if not conditions or conditions[-1][1]:
                    raise PreprocessorError(f"unmatched `else (line {lineno})")
                conditions[-1][0] = not conditions[-1][0]
                conditions[-1][1] = True
                continue
            if name == "endif":
                if not conditions:
                    raise PreprocessorError(f"unmatched `endif (line {lineno})")
                conditions.pop()
                continue
            if name == "include":
                if active():
                    out_lines.append(_handle_include(rest, state, origin,
                                                     stack, lineno))
                continue
            # Unknown directive at line start: treat as macro use, fall
            # through to expansion.
        if active():
            out_lines.append(_expand_macros(line, state, lineno))
    if conditions:
        raise PreprocessorError("unterminated `ifdef block at end of file")
    return "\n".join(out_lines)


def _handle_define(rest: str, state: _State, lineno: int) -> None:
    if not rest:
        raise PreprocessorError(f"`define without a macro name (line {lineno})")
    parts = rest.split(None, 1)
    name = parts[0]
    if "(" in name:
        raise PreprocessorError(
            f"function-like macros are not supported: `{name} (line {lineno})")
    state.macros[name] = parts[1].strip() if len(parts) > 1 else "1"


def _handle_include(rest: str, state: _State, origin: Path | None,
                    stack: tuple[Path, ...], lineno: int) -> str:
    match = re.match(r'"([^"]+)"', rest)
    if not match:
        raise PreprocessorError(f'`include expects a quoted path (line {lineno})')
    target = match.group(1)
    candidates = []
    if origin is not None:
        candidates.append(origin.parent / target)
    candidates.extend(base / target for base in state.include_paths)
    candidates.append(Path(target))
    for candidate in candidates:
        if candidate.is_file():
            resolved = candidate.resolve()
            if resolved in stack:
                chain = " -> ".join(str(p) for p in stack + (resolved,))
                raise PreprocessorError(f"circular `include: {chain}")
            text = resolved.read_text()
            return _process(text, state, resolved, stack + (resolved,))
    raise PreprocessorError(
        f"cannot find include file {target!r} (line {lineno}); "
        f"searched {[str(c) for c in candidates]}")


def _expand_macros(line: str, state: _State, lineno: int) -> str:
    depth = 0
    while "`" in line:
        depth += 1
        if depth > _MAX_EXPANSION_DEPTH:
            raise PreprocessorError(
                f"macro expansion too deep (line {lineno}); recursive `define?")
        replaced = False

        def substitute(match: re.Match) -> str:
            nonlocal replaced
            name = match.group(1)
            if name in state.macros:
                replaced = True
                return state.macros[name]
            raise PreprocessorError(
                f"undefined macro `{name} (line {lineno})")

        line = _DIRECTIVE.sub(substitute, line)
        if not replaced:
            break
    return line
