"""Verilog emission: GraphIR -> synthesizable Verilog text.

The inverse of the front-end: any circuit graph (hand-built, DSL-built,
or parsed) can be exported as a Verilog module.  Round-tripping through
``elaborate_source(emit_verilog(graph))`` preserves the vocabulary-token
histogram, which the test suite checks property-style.

Conventions:

- every vertex drives one net, named ``n<id>``;
- ``io`` vertices without predecessors become input ports, with
  predecessors output ports;
- ``dff`` vertices become clocked always blocks (a ``clk`` input is added);
- vertices with fewer inputs than their natural arity are padded with
  constants (the front-end folds constants the same way).
"""

from __future__ import annotations

from ..graphir import CircuitGraph

__all__ = ["emit_verilog"]

_BINARY_OPS = {"add": "+", "mul": "*", "div": "/", "mod": "%",
               "and": "&", "or": "|", "xor": "^", "sh": "<<",
               "eq": "==", "lgt": "<"}
_REDUCE_OPS = {"reduce_and": "&", "reduce_or": "|", "reduce_xor": "^"}


def emit_verilog(graph: CircuitGraph, module_name: str | None = None) -> str:
    """Render ``graph`` as a single flat Verilog module."""
    name = module_name or _sanitize(graph.name) or "top"
    inputs, outputs, regs, combs = [], [], [], []
    for node in graph.nodes():
        if node.node_type == "io":
            (inputs if not graph.predecessors(node.node_id) else outputs).append(node)
        elif node.node_type == "dff":
            regs.append(node)
        else:
            combs.append(node)

    ports = ["input clk"]
    ports += [f"input [{n.width - 1}:0] n{n.node_id}" for n in inputs]
    ports += [f"output [{n.width - 1}:0] n{n.node_id}" for n in outputs]

    lines = [f"module {name}(", "  " + ",\n  ".join(ports), ");"]
    for node in regs:
        lines.append(f"  reg [{node.width - 1}:0] n{node.node_id};")
    for node in combs:
        lines.append(f"  wire [{node.width - 1}:0] n{node.node_id};")

    for node in combs:
        lines.append(f"  assign n{node.node_id} = {_expr(graph, node)};")
    for node in outputs:
        preds = graph.predecessors(node.node_id)
        lines.append(f"  assign n{node.node_id} = n{preds[0]};")
    for node in regs:
        preds = graph.predecessors(node.node_id)
        source = f"n{preds[0]}" if preds else f"n{node.node_id}"
        lines.append(f"  always @(posedge clk) n{node.node_id} <= {source};")
    lines.append("endmodule")
    return "\n".join(lines)


def _slice(name: str, width: int) -> str:
    """Select ``width`` bits of a net, pinning the operand width the
    re-elaborated functional unit will see."""
    return f"{name}[{width - 1}:0]"


def _expr(graph: CircuitGraph, node) -> str:
    preds = [f"n{p}" for p in graph.predecessors(node.node_id)]
    t = node.node_type
    w = node.width
    if t == "not":
        return f"~{_slice(preds[0], w)}" if preds else "0"
    if t in _REDUCE_OPS:
        return f"{_REDUCE_OPS[t]}{_slice(preds[0], w)}" if preds else "0"
    if t == "mux":
        # First predecessor is the select by GraphIR convention.
        if len(preds) >= 3:
            return (f"{_slice(preds[0], 1)} ? {_slice(preds[1], w)} "
                    f": {_slice(preds[2], w)}")
        if len(preds) == 2:
            return f"{_slice(preds[0], 1)} ? {_slice(preds[1], w)} : {w}'d0"
        # Degenerate select-only mux: constants carry the vertex width.
        ones = (1 << w) - 1
        return f"{_slice(preds[0], 1)} ? {w}'d{ones} : {w}'d0" if preds else "0"
    if t in _BINARY_OPS:
        op = _BINARY_OPS[t]
        if t == "mul":
            # A W-bit multiplier vertex corresponds to ceil(W/2) x floor(W/2)
            # operands (the front-end sums operand widths).
            w_hi = (w + 1) // 2
            w_lo = w - w_hi
            a = _slice(preds[0], w_hi) if preds else "1'd1"
            b = (_slice(preds[1] if len(preds) > 1 else preds[0], max(w_lo, 1))
                 if preds else "1'd1")
            return f"{a} {op} {b}"
        if len(preds) >= 2:
            return f"{_slice(preds[0], w)} {op} {_slice(preds[1], w)}"
        if len(preds) == 1:
            return f"{_slice(preds[0], w)} {op} 1'd1"
        return "0"
    raise ValueError(f"cannot emit vertex type {t!r}")


def _sanitize(name: str) -> str:
    out = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if out and out[0].isdigit():
        out = "m_" + out
    return out
