"""Tokenizer for the supported Verilog-2001 subset."""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["Token", "VerilogSyntaxError", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset({
    "module", "endmodule", "input", "output", "inout", "wire", "reg",
    "assign", "always", "posedge", "negedge", "begin", "end", "if",
    "else", "parameter", "localparam", "integer",
    "generate", "endgenerate", "genvar", "for",
    "case", "endcase", "default",
})

_TOKEN_SPEC = [
    ("COMMENT", r"//[^\n]*|/\*.*?\*/"),
    ("NUMBER", r"\d+'[bodhBODH][0-9a-fA-F_xXzZ?]+|\d+"),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_$]*"),
    ("OP", r"<=|>=|==|!=|<<|>>|&&|\|\||[-+*/%&|^~!<>=?:#.@(){}\[\],;]"),
    ("WS", r"\s+"),
    ("BAD", r"."),
]
_MASTER = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC),
                     re.DOTALL)


class VerilogSyntaxError(SyntaxError):
    """Raised on malformed input anywhere in the front-end."""


@dataclass(frozen=True)
class Token:
    kind: str           # 'KEYWORD' | 'IDENT' | 'NUMBER' | 'OP' | 'EOF'
    text: str
    line: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


def tokenize(source: str) -> list[Token]:
    """Tokenize Verilog source; comments and whitespace are dropped."""
    tokens: list[Token] = []
    line = 1
    for match in _MASTER.finditer(source):
        kind = match.lastgroup
        text = match.group()
        if kind in ("WS", "COMMENT"):
            line += text.count("\n")
            continue
        if kind == "BAD":
            raise VerilogSyntaxError(f"unexpected character {text!r} at line {line}")
        if kind == "IDENT" and text in KEYWORDS:
            kind = "KEYWORD"
        tokens.append(Token(kind, text, line))
        line += text.count("\n")
    tokens.append(Token("EOF", "", line))
    return tokens


def parse_number(text: str) -> tuple[int, int | None]:
    """Parse a Verilog literal; returns (value, width or None)."""
    if "'" not in text:
        return int(text), None
    width_str, rest = text.split("'", 1)
    base_char = rest[0].lower()
    digits = rest[1:].replace("_", "").replace("?", "0")
    digits = digits.replace("x", "0").replace("X", "0").replace("z", "0").replace("Z", "0")
    base = {"b": 2, "o": 8, "d": 10, "h": 16}[base_char]
    return int(digits, base), int(width_str)
