"""Abstract syntax tree for the supported Verilog subset."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Expr", "Number", "Identifier", "UnaryOp", "BinaryOp", "Ternary",
    "BitSelect", "PartSelect", "Concat",
    "PortDecl", "NetDecl", "ParamDecl", "ContinuousAssign",
    "NonBlockingAssign", "IfStatement", "CaseStatement", "AlwaysBlock",
    "Instance", "GenerateFor", "ModuleDef", "SourceFile",
]


# ---------------------------------------------------------------------- #
# Expressions
# ---------------------------------------------------------------------- #
class Expr:
    """Base class for expressions."""


@dataclass(frozen=True)
class Number(Expr):
    value: int
    width: int | None = None


@dataclass(frozen=True)
class Identifier(Expr):
    name: str


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str          # '~' '!' '-' '&' '|' '^'
    operand: Expr


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str          # '+' '-' '*' '/' '%' '&' '|' '^' '<<' '>>' '==' '!=' '<' '>' '<=' '>='
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Ternary(Expr):
    condition: Expr
    if_true: Expr
    if_false: Expr


@dataclass(frozen=True)
class BitSelect(Expr):
    base: Expr
    index: Expr


@dataclass(frozen=True)
class PartSelect(Expr):
    base: Expr
    msb: Expr
    lsb: Expr


@dataclass(frozen=True)
class Concat(Expr):
    parts: tuple[Expr, ...]


# ---------------------------------------------------------------------- #
# Declarations and statements
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class PortDecl:
    direction: str   # 'input' | 'output' | 'inout'
    name: str
    msb: Expr | None
    lsb: Expr | None
    is_reg: bool = False


@dataclass(frozen=True)
class NetDecl:
    kind: str        # 'wire' | 'reg'
    name: str
    msb: Expr | None
    lsb: Expr | None


@dataclass(frozen=True)
class ParamDecl:
    name: str
    value: Expr


@dataclass(frozen=True)
class ContinuousAssign:
    target: str
    target_select: tuple[Expr, Expr] | None
    value: Expr


@dataclass(frozen=True)
class NonBlockingAssign:
    target: str
    value: Expr


@dataclass(frozen=True)
class IfStatement:
    """Procedural if/else inside an always block."""

    condition: Expr
    then_stmts: tuple   # of statements
    else_stmts: tuple


@dataclass(frozen=True)
class CaseStatement:
    """Procedural case; ``items`` pairs a match expression (None for
    ``default``) with its statements."""

    subject: Expr
    items: tuple[tuple[Expr | None, tuple], ...]


@dataclass(frozen=True)
class AlwaysBlock:
    """A clocked process.  ``statements`` is the procedural tree
    (non-blocking assigns, ifs, cases); ``assigns`` flattens it into one
    mux-resolved next-state expression per register target."""

    clock: str
    statements: tuple = ()

    @property
    def assigns(self) -> tuple[NonBlockingAssign, ...]:
        merged = _merge_statements(self.statements)
        return tuple(NonBlockingAssign(t, e) for t, e in merged.items())

    def targets(self) -> set[str]:
        return set(_merge_statements(self.statements))


def _merge_statements(stmts) -> dict[str, Expr]:
    """Resolve a procedural statement tree into per-target expressions.

    Verilog semantics: within one process the last assignment wins; a
    register not assigned on some branch keeps its value (modeled by
    falling back to the register's own identifier).
    """
    out: dict[str, Expr] = {}
    for stmt in stmts:
        if isinstance(stmt, NonBlockingAssign):
            out[stmt.target] = stmt.value
        elif isinstance(stmt, IfStatement):
            then_map = _merge_statements(stmt.then_stmts)
            else_map = _merge_statements(stmt.else_stmts)
            for target in set(then_map) | set(else_map):
                hold = out.get(target, Identifier(target))
                out[target] = Ternary(stmt.condition,
                                      then_map.get(target, hold),
                                      else_map.get(target, hold))
        elif isinstance(stmt, CaseStatement):
            # Desugar to a chain of equality-guarded ternaries, evaluated
            # from the last item backward so earlier items take priority.
            maps = [(match, _merge_statements(body))
                    for match, body in stmt.items]
            targets = {t for _, m in maps for t in m}
            for target in targets:
                hold = out.get(target, Identifier(target))
                result = hold
                for match, branch in reversed(maps):
                    if match is None:       # default arm
                        result = branch.get(target, result)
                    else:
                        result = Ternary(BinaryOp("==", stmt.subject, match),
                                         branch.get(target, hold), result)
                out[target] = result
        else:
            raise TypeError(f"unsupported procedural statement: {type(stmt).__name__}")
    return out


@dataclass(frozen=True)
class GenerateFor:
    """An unrollable ``generate`` for-loop.

    ``genvar`` iterates from ``start`` while ``condition`` holds,
    stepping by ``step`` (all constant expressions); ``label`` names the
    block; the body holds nets/assigns/instances/always blocks.
    """

    genvar: str
    start: Expr
    limit: Expr          # loop continues while genvar < limit
    step: Expr
    label: str
    nets: tuple = ()
    assigns: tuple = ()
    instances: tuple = ()
    always_blocks: tuple = ()


@dataclass(frozen=True)
class Instance:
    module_name: str
    instance_name: str
    param_overrides: tuple[tuple[str, Expr], ...]
    connections: tuple[tuple[str, Expr], ...]   # (port, expr); port '' = positional


@dataclass
class ModuleDef:
    name: str
    ports: list[PortDecl] = field(default_factory=list)
    params: list[ParamDecl] = field(default_factory=list)
    nets: list[NetDecl] = field(default_factory=list)
    assigns: list[ContinuousAssign] = field(default_factory=list)
    always_blocks: list[AlwaysBlock] = field(default_factory=list)
    instances: list[Instance] = field(default_factory=list)
    generates: list["GenerateFor"] = field(default_factory=list)


@dataclass
class SourceFile:
    modules: dict[str, ModuleDef] = field(default_factory=dict)

    def module(self, name: str) -> ModuleDef:
        if name not in self.modules:
            raise KeyError(f"module {name!r} not defined; have {sorted(self.modules)}")
        return self.modules[name]
