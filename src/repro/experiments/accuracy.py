"""Accuracy experiments: Figure 6, Table 7, and the D-SAGE comparison.

Implements the paper's protocol (Section 5.2): 2-fold cross-validation
at a 50% training fraction — part A evaluated by the model trained on
part B and vice versa — plus the scarce-data variant (30% training /
70% testing), always splitting by design family.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines import DSAGEConfig, DSAGETimingModel
from ..core import SNS, maep, rrse
from ..datagen import (
    DesignRecord,
    build_design_dataset,
    sample_path_dataset,
    augment_path_dataset,
    train_test_split_by_family,
)
from ..designs import standard_designs
from ..synth import Synthesizer
from .settings import FAST, ExperimentSettings

__all__ = ["PredictionRow", "AccuracyReport", "build_dataset", "fit_sns",
           "evaluate_split", "two_fold_cross_validation", "scarce_data_run",
           "dsage_timing_comparison"]

TARGETS = ("timing", "area", "power")


@dataclass(frozen=True)
class PredictionRow:
    """One Figure 6 scatter point: a design's predicted vs actual values."""

    design: str
    predicted: tuple[float, float, float]   # timing_ps, area_um2, power_mw
    actual: tuple[float, float, float]


@dataclass(frozen=True)
class AccuracyReport:
    """RRSE/MAEP per target plus the underlying scatter rows."""

    rows: tuple[PredictionRow, ...]
    rrse: dict[str, float]
    maep: dict[str, float]

    @classmethod
    def from_rows(cls, rows: list[PredictionRow]) -> "AccuracyReport":
        pred = np.array([r.predicted for r in rows])
        act = np.array([r.actual for r in rows])
        return cls(
            rows=tuple(rows),
            rrse={t: rrse(pred[:, i], act[:, i]) for i, t in enumerate(TARGETS)},
            maep={t: maep(pred[:, i], act[:, i]) for i, t in enumerate(TARGETS)},
        )


def build_dataset(settings: ExperimentSettings = FAST,
                  num_workers: int | None = 1,
                  cache_dir=None) -> list[DesignRecord]:
    """Synthesize the 41-design Hardware Design Dataset (Table 4).

    ``num_workers``/``cache_dir`` pass through to
    :func:`repro.datagen.build_design_dataset` (process-pool fan-out and
    the disk-tier synthesis cache); the records are bit-identical either
    way.
    """
    synth = Synthesizer(effort=settings.synth_effort)
    return build_design_dataset(standard_designs(), synth,
                                max_nodes=settings.max_design_nodes,
                                num_workers=num_workers, cache_dir=cache_dir)


def fit_sns(train: list[DesignRecord], settings: ExperimentSettings = FAST) -> SNS:
    """Run the Figure 4 training flow on one training split."""
    synth = Synthesizer(effort=settings.synth_effort)
    sampler = settings.make_sampler()
    paths = sample_path_dataset(train, sampler, synth)
    if settings.augmentation is not None:
        paths = augment_path_dataset(paths, settings.augmentation, synth)
    sns = SNS(sampler=sampler, circuitformer_config=settings.circuitformer,
              training_config=settings.training, seed=settings.seed)
    sns.fit(train, synthesizer=synth, path_records=paths)
    return sns


def evaluate_split(sns: SNS, test: list[DesignRecord]) -> list[PredictionRow]:
    """Predict every test design; returns Figure 6 scatter rows."""
    rows = []
    for record in test:
        pred = sns.predict(record.graph)
        rows.append(PredictionRow(
            design=record.name,
            predicted=(pred.timing_ps, pred.area_um2, pred.power_mw),
            actual=(record.timing_ps, record.area_um2, record.power_mw),
        ))
    return rows


def two_fold_cross_validation(records: list[DesignRecord],
                              settings: ExperimentSettings = FAST) -> AccuracyReport:
    """The paper's 2-fold CV: A trained-on-B, B trained-on-A (Figure 6)."""
    part_a, part_b = train_test_split_by_family(records, 0.5, seed=settings.seed)
    rows = []
    rows += evaluate_split(fit_sns(part_b, settings), part_a)
    rows += evaluate_split(fit_sns(part_a, settings), part_b)
    return AccuracyReport.from_rows(rows)


def scarce_data_run(records: list[DesignRecord],
                    settings: ExperimentSettings = FAST) -> AccuracyReport:
    """The 30% training / 70% testing robustness run (Table 7 column 2)."""
    train, test = train_test_split_by_family(records, 0.3, seed=settings.seed)
    return AccuracyReport.from_rows(evaluate_split(fit_sns(train, settings), test))


def dsage_timing_comparison(records: list[DesignRecord],
                            settings: ExperimentSettings = FAST,
                            epochs: int = 60) -> float:
    """Timing RRSE of the D-SAGE baseline under the same 2-fold protocol."""
    part_a, part_b = train_test_split_by_family(records, 0.5, seed=settings.seed)
    preds, actuals = [], []
    for train, test in ((part_b, part_a), (part_a, part_b)):
        model = DSAGETimingModel(DSAGEConfig(epochs=epochs, seed=settings.seed))
        model.fit([r.graph for r in train], np.array([r.timing_ps for r in train]))
        preds.extend(model.predict([r.graph for r in test]))
        actuals.extend(r.timing_ps for r in test)
    return rrse(np.array(preds), np.array(actuals))
