"""The runtime experiment: Figure 7 and Table 9 (Section 5.4).

Measures wall-clock SNS prediction time against the reference
synthesizer on every dataset design, reporting per-design speedups and
the average.  ``desktop_factor`` models the paper's second experiment —
running SNS on a weaker desktop while the synthesizer keeps the server —
by scaling SNS runtimes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core import SNS
from ..datagen import DesignRecord
from ..synth import Synthesizer

__all__ = ["RuntimeRow", "RuntimeReport", "runtime_comparison", "PLATFORMS"]

# Table 9 of the paper, for reporting.
PLATFORMS = {
    "server": {"processor": "2x Intel Xeon Gold 6252 48C/96T @ 2.10GHz",
               "memory": "8x 64GB 2933MHz", "os": "Ubuntu 18.04LTS"},
    "desktop": {"processor": "Intel Core i9 11900 8C/16T @ 2.5GHz",
                "memory": "2x 16GB 2667MHz", "os": "Ubuntu 18.04LTS"},
}


@dataclass(frozen=True)
class RuntimeRow:
    """One Figure 7 point."""

    design: str
    gate_count: float
    sns_seconds: float
    synth_seconds: float

    @property
    def speedup(self) -> float:
        return self.synth_seconds / self.sns_seconds if self.sns_seconds > 0 else 0.0


@dataclass(frozen=True)
class RuntimeReport:
    rows: tuple[RuntimeRow, ...]

    @property
    def average_speedup(self) -> float:
        return float(np.mean([r.speedup for r in self.rows]))

    @property
    def max_speedup(self) -> float:
        return float(max(r.speedup for r in self.rows))

    def speedup_grows_with_size(self) -> bool:
        """Figure 7 shape: larger designs enjoy larger speedups."""
        ordered = sorted(self.rows, key=lambda r: r.gate_count)
        half = len(ordered) // 2
        small = np.mean([r.speedup for r in ordered[:half]])
        large = np.mean([r.speedup for r in ordered[half:]])
        return large > small


def runtime_comparison(sns: SNS, records: list[DesignRecord],
                       synth_effort: str = "high",
                       desktop_factor: float = 1.0) -> RuntimeReport:
    """Wall-clock SNS vs synthesizer on each design.

    ``desktop_factor > 1`` slows the SNS side to model the desktop
    platform of Table 9 (the synthesizer stays on the 'server').
    """
    synthesizer = Synthesizer(effort=synth_effort)
    rows = []
    for record in records:
        start = time.perf_counter()
        result = synthesizer.synthesize(record.graph)
        synth_seconds = time.perf_counter() - start
        pred = sns.predict(record.graph)
        rows.append(RuntimeRow(
            design=record.name,
            gate_count=result.gate_count,
            sns_seconds=pred.runtime_s * desktop_factor,
            synth_seconds=synth_seconds,
        ))
    return RuntimeReport(rows=tuple(rows))
