"""The runtime experiment: Figure 7 and Table 9 (Section 5.4).

Measures wall-clock SNS prediction time against the reference
synthesizer on every dataset design, reporting per-design speedups and
the average.  ``desktop_factor`` models the paper's second experiment —
running SNS on a weaker desktop while the synthesizer keeps the server —
by scaling SNS runtimes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core import SNS
from ..datagen import DesignRecord
from ..synth import Synthesizer

__all__ = ["RuntimeRow", "RuntimeReport", "runtime_comparison", "PLATFORMS",
           "ThroughputReport", "throughput_comparison"]

# Table 9 of the paper, for reporting.
PLATFORMS = {
    "server": {"processor": "2x Intel Xeon Gold 6252 48C/96T @ 2.10GHz",
               "memory": "8x 64GB 2933MHz", "os": "Ubuntu 18.04LTS"},
    "desktop": {"processor": "Intel Core i9 11900 8C/16T @ 2.5GHz",
                "memory": "2x 16GB 2667MHz", "os": "Ubuntu 18.04LTS"},
}


@dataclass(frozen=True)
class RuntimeRow:
    """One Figure 7 point."""

    design: str
    gate_count: float
    sns_seconds: float
    synth_seconds: float

    @property
    def speedup(self) -> float:
        return self.synth_seconds / self.sns_seconds if self.sns_seconds > 0 else 0.0


@dataclass(frozen=True)
class RuntimeReport:
    rows: tuple[RuntimeRow, ...]

    @property
    def average_speedup(self) -> float:
        return float(np.mean([r.speedup for r in self.rows]))

    @property
    def max_speedup(self) -> float:
        return float(max(r.speedup for r in self.rows))

    def speedup_grows_with_size(self) -> bool:
        """Figure 7 shape: larger designs enjoy larger speedups."""
        ordered = sorted(self.rows, key=lambda r: r.gate_count)
        half = len(ordered) // 2
        small = np.mean([r.speedup for r in ordered[:half]])
        large = np.mean([r.speedup for r in ordered[half:]])
        return large > small


def runtime_comparison(sns: SNS, records: list[DesignRecord],
                       synth_effort: str = "high",
                       desktop_factor: float = 1.0,
                       synth_engine: str = "reference") -> RuntimeReport:
    """Wall-clock SNS vs synthesizer on each design.

    ``desktop_factor > 1`` slows the SNS side to model the desktop
    platform of Table 9 (the synthesizer stays on the 'server').

    ``synth_engine`` defaults to ``"reference"``: this experiment *is*
    the Figure 7 measurement of how slow conventional synthesis is, so
    the timed oracle stays the original per-cell implementation.  Pass
    ``"array"`` to instead time the vectorized engine (bit-identical
    labels, smaller speedups).
    """
    synthesizer = Synthesizer(effort=synth_effort, engine=synth_engine)
    rows = []
    for record in records:
        start = time.perf_counter()
        result = synthesizer.synthesize(record.graph)
        synth_seconds = time.perf_counter() - start
        pred = sns.predict(record.graph)
        rows.append(RuntimeRow(
            design=record.name,
            gate_count=result.gate_count,
            sns_seconds=pred.runtime_s * desktop_factor,
            synth_seconds=synth_seconds,
        ))
    return RuntimeReport(rows=tuple(rows))


# ---------------------------------------------------------------------- #
# Batched-runtime throughput (the repro.runtime engine vs the serial path)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ThroughputReport:
    """Designs/sec of the batched runtime against the serial baselines.

    ``serial_unbucketed_seconds`` is the pre-runtime seed path (one
    design at a time, every sequence padded to the design's longest);
    ``serial_bucketed_seconds`` is the same loop on the length-bucketed
    kernel; ``batched_cold_seconds``/``batched_warm_seconds`` are the
    :class:`repro.runtime.BatchPredictor` with a cold and a warm
    prediction cache.  ``bit_identical`` records whether the engine's
    predictions matched the serial bucketed path exactly.
    """

    num_designs: int
    serial_unbucketed_seconds: float
    serial_bucketed_seconds: float
    batched_cold_seconds: float
    batched_warm_seconds: float
    cache_stats: dict
    bit_identical: bool

    def designs_per_second(self, seconds: float) -> float:
        return self.num_designs / seconds if seconds > 0 else float("inf")

    @property
    def serial_dps(self) -> float:
        return self.designs_per_second(self.serial_unbucketed_seconds)

    @property
    def batched_speedup(self) -> float:
        """Cold-cache engine vs the serial seed path."""
        return self.serial_unbucketed_seconds / self.batched_cold_seconds \
            if self.batched_cold_seconds > 0 else float("inf")

    @property
    def bucketing_speedup(self) -> float:
        """Serial bucketed kernel vs serial unbucketed (padding waste)."""
        return self.serial_unbucketed_seconds / self.serial_bucketed_seconds \
            if self.serial_bucketed_seconds > 0 else float("inf")

    @property
    def warm_speedup(self) -> float:
        """Warm-cache engine vs the serial seed path."""
        return self.serial_unbucketed_seconds / self.batched_warm_seconds \
            if self.batched_warm_seconds > 0 else float("inf")

    def as_dict(self) -> dict:
        return {
            "num_designs": self.num_designs,
            "serial_unbucketed_seconds": self.serial_unbucketed_seconds,
            "serial_bucketed_seconds": self.serial_bucketed_seconds,
            "batched_cold_seconds": self.batched_cold_seconds,
            "batched_warm_seconds": self.batched_warm_seconds,
            "designs_per_second": {
                "serial_unbucketed": self.designs_per_second(
                    self.serial_unbucketed_seconds),
                "serial_bucketed": self.designs_per_second(
                    self.serial_bucketed_seconds),
                "batched_cold": self.designs_per_second(self.batched_cold_seconds),
                "batched_warm": self.designs_per_second(self.batched_warm_seconds),
            },
            "batched_speedup": self.batched_speedup,
            "bucketing_speedup": self.bucketing_speedup,
            "warm_speedup": self.warm_speedup,
            "cache_stats": self.cache_stats,
            "bit_identical": self.bit_identical,
        }


def throughput_comparison(sns: SNS, graphs, batch_size: int = 32,
                          cache=None) -> ThroughputReport:
    """Measure the batched runtime against the serial prediction paths.

    ``graphs`` is a list of :class:`CircuitGraph` (or
    :class:`DesignRecord`, whose graphs are extracted).  Four
    measurements run over the same designs: the serial seed path
    (pad-to-longest, one design per forward pool), the serial bucketed
    kernel, the batched engine with a cold cache, and the batched engine
    again with the cache warm.
    """
    from ..runtime import BatchPredictor, PredictionCache

    graphs = [g.graph if isinstance(g, DesignRecord) else g for g in graphs]
    if not graphs:
        raise ValueError("no designs to measure")

    start = time.perf_counter()
    serial_unbucketed = [sns.predict(g, bucketed=False) for g in graphs]
    serial_unbucketed_s = time.perf_counter() - start

    start = time.perf_counter()
    serial_bucketed = [sns.predict(g) for g in graphs]
    serial_bucketed_s = time.perf_counter() - start
    del serial_unbucketed

    engine = BatchPredictor(sns, cache=cache or PredictionCache(),
                            batch_size=batch_size)
    start = time.perf_counter()
    batched = engine.predict_batch(graphs)
    batched_cold_s = time.perf_counter() - start

    # Warm pass is pure fingerprint+lookup and takes tens of ms, so a
    # single OS scheduling hiccup can dominate it — report the best of 2.
    batched_warm_s = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        engine.predict_batch(graphs)
        batched_warm_s = min(batched_warm_s, time.perf_counter() - start)

    bit_identical = all(
        s.timing_ps == b.timing_ps and s.area_um2 == b.area_um2
        and s.power_mw == b.power_mw and s.num_paths == b.num_paths
        for s, b in zip(serial_bucketed, batched))

    return ThroughputReport(
        num_designs=len(graphs),
        serial_unbucketed_seconds=serial_unbucketed_s,
        serial_bucketed_seconds=serial_bucketed_s,
        batched_cold_seconds=batched_cold_s,
        batched_warm_seconds=batched_warm_s,
        cache_stats=engine.cache.stats.as_dict(),
        bit_identical=bit_identical,
    )
