"""``repro.experiments`` — the evaluation harnesses behind every table
and figure in the paper.

Each harness is importable and parameterized by an
:class:`~repro.experiments.settings.ExperimentSettings` preset (``FAST``
for CI, ``FULL`` for the committed EXPERIMENTS.md numbers); the
``benchmarks/`` directory wraps them one-per-table/figure.
"""

from .settings import ExperimentSettings, FAST, FULL
from .accuracy import (
    PredictionRow,
    AccuracyReport,
    build_dataset,
    fit_sns,
    evaluate_split,
    two_fold_cross_validation,
    scarce_data_run,
    dsage_timing_comparison,
)
from .runtime import (
    RuntimeRow,
    RuntimeReport,
    runtime_comparison,
    PLATFORMS,
    ThroughputReport,
    throughput_comparison,
)
from .boom_study import BoomStudyReport, run_boom_study, strided_subspace
from .diannao_study import (
    Table12Report,
    table12_prediction,
    run_tn_sweep,
    run_datatype_sweep,
    DIANNAO_65NM,
)
from .reporting import format_table, format_series, ascii_scatter

__all__ = [
    "ExperimentSettings", "FAST", "FULL",
    "PredictionRow", "AccuracyReport", "build_dataset", "fit_sns",
    "evaluate_split", "two_fold_cross_validation", "scarce_data_run",
    "dsage_timing_comparison",
    "RuntimeRow", "RuntimeReport", "runtime_comparison", "PLATFORMS",
    "ThroughputReport", "throughput_comparison",
    "BoomStudyReport", "run_boom_study", "strided_subspace",
    "Table12Report", "table12_prediction", "run_tn_sweep", "run_datatype_sweep",
    "DIANNAO_65NM",
    "format_table", "format_series", "ascii_scatter",
]
