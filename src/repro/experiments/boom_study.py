"""The BOOM case-study harness (Section 5.6: Figure 8, Tables 10/11).

Trains SNS on the hardware design dataset, sweeps BOOM configurations,
verifies a random sample against the reference synthesizer (the paper's
20-design spot check), and reports the Pareto picks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..boom import BoomConfig, BoomCore, BoomDSE, DSEResult, full_design_space
from ..core import SNS, maep
from ..synth import Synthesizer

__all__ = ["BoomStudyReport", "run_boom_study", "strided_subspace"]


@dataclass(frozen=True)
class BoomStudyReport:
    result: DSEResult
    verify_maep: dict[str, float]       # spot-check vs synthesizer
    configs_evaluated: int

    @property
    def pareto_single_memory_port(self) -> bool:
        """Paper observation: Pareto designs use one memory port.

        Asserted as a strong majority rather than unanimity: prediction
        noise of a few percent can push an occasional dual-port point
        onto the strict frontier even though its single-port sibling
        dominates it in ground truth.
        """
        front = set(self.result.pareto_power) | set(self.result.pareto_area)
        ports = [p.config.memory_ports for p in front]
        return np.mean([p == 1 for p in ports]) >= 0.6


def strided_subspace(stride: int) -> list[BoomConfig]:
    """Every ``stride``-th configuration of the full 2592-point space."""
    space = full_design_space()
    return space[::stride]


def run_boom_study(sns: SNS, configs: list[BoomConfig] | None = None,
                   verify_samples: int = 8, synth_effort: str = "medium",
                   seed: int = 0, verbose: bool = False,
                   synth_engine: str = "array") -> BoomStudyReport:
    """Run the DSE plus the synthesized spot check.

    The spot check defaults to the array synthesis engine — its labels
    are bit-identical to the reference, and nothing here times the
    synthesizer, so the faster kernel is free accuracy-wise.
    """
    configs = configs if configs is not None else full_design_space()
    dse = BoomDSE(predictor=sns)
    result = dse.run(configs, verbose=verbose)

    # Spot check: synthesize a random sample and compare (paper: 20 of 2592).
    rng = np.random.default_rng(seed)
    sample_idx = rng.choice(len(result.points),
                            size=min(verify_samples, len(result.points)),
                            replace=False)
    synthesizer = Synthesizer(effort=synth_effort, engine=synth_engine)
    pred_rows, actual_rows = [], []
    for i in sample_idx:
        point = result.points[i]
        truth = synthesizer.synthesize(BoomCore(point.config).elaborate())
        pred_rows.append([point.timing_ps, point.area_um2, point.power_mw])
        actual_rows.append([truth.timing_ps, truth.area_um2, truth.power_mw])
    pred = np.array(pred_rows)
    actual = np.array(actual_rows)
    verify = {t: maep(pred[:, i], actual[:, i])
              for i, t in enumerate(("timing", "area", "power"))}
    return BoomStudyReport(result=result, verify_maep=verify,
                           configs_evaluated=len(configs))
