"""Experiment quality presets.

Every evaluation harness accepts an :class:`ExperimentSettings`; the
``fast`` preset keeps CI runs in seconds, ``full`` reproduces the paper's
experiments at CPU-tractable training budgets (the preset the committed
EXPERIMENTS.md numbers come from).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import CircuitformerConfig, PathSampler, TrainingConfig
from ..datagen import AugmentationConfig, SeqGANConfig

__all__ = ["ExperimentSettings", "FAST", "FULL"]


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by the evaluation harnesses."""

    name: str
    synth_effort: str
    sampler_max_paths: int
    sampler_k: int
    circuitformer: CircuitformerConfig
    training: TrainingConfig
    augmentation: AugmentationConfig | None
    max_design_nodes: int | None = None
    seed: int = 0

    def make_sampler(self) -> PathSampler:
        return PathSampler(k=self.sampler_k, max_paths=self.sampler_max_paths,
                           seed=self.seed)


FAST = ExperimentSettings(
    name="fast",
    synth_effort="low",
    sampler_max_paths=60,
    sampler_k=5,
    circuitformer=CircuitformerConfig(embedding_size=32, dim_feedforward=64,
                                      max_input_size=128),
    training=TrainingConfig(circuitformer_epochs=8, aggregator_epochs=200),
    augmentation=None,
    max_design_nodes=2500,
)

FULL = ExperimentSettings(
    name="full",
    synth_effort="medium",
    sampler_max_paths=300,
    sampler_k=5,
    circuitformer=CircuitformerConfig(),  # Table 2 defaults
    training=TrainingConfig(circuitformer_epochs=30, aggregator_epochs=400),
    augmentation=AugmentationConfig(
        markov_paths=300, seqgan_paths=400, max_len=48,
        seqgan=SeqGANConfig(max_len=48, pretrain_epochs=30, adversarial_rounds=8),
    ),
    max_design_nodes=None,
)
