"""The DianNao case-study harness (Section 5.7: Tables 12/13, Figs 10/11)."""

from __future__ import annotations

from dataclasses import dataclass

from ..core import SNS
from ..diannao import (
    DianNao,
    DianNaoConfig,
    DianNaoDSE,
    DianNaoDSEResult,
    DianNaoPerfModel,
)
from ..synth import Synthesizer, scale_result

__all__ = ["Table12Report", "table12_prediction", "run_tn_sweep",
           "run_datatype_sweep", "DIANNAO_65NM"]

# The original DianNao paper's 65nm synthesis results (Table 12, row 1).
DIANNAO_65NM = {"power_mw": 132.0, "area_um2": 846563.0, "timing_ps": 1020.0}


@dataclass(frozen=True)
class Table12Report:
    """Table 12: original 65nm result, 15nm-scaled result, SNS prediction.

    ``reference_15nm`` is our reference synthesizer's result for the same
    configuration — the ground truth SNS was actually trained against.
    """

    original_65nm: dict[str, float]
    scaled_15nm: dict[str, float]
    prediction_15nm: dict[str, float]
    reference_15nm: dict[str, float]

    def error_pct(self, metric: str) -> float:
        """Prediction error vs the paper's scaled row."""
        scaled = self.scaled_15nm[metric]
        return abs(self.prediction_15nm[metric] - scaled) / scaled * 100.0

    def error_vs_reference_pct(self, metric: str) -> float:
        """Prediction error vs our own synthesizer's ground truth."""
        ref = self.reference_15nm[metric]
        return abs(self.prediction_15nm[metric] - ref) / ref * 100.0


def table12_prediction(sns: SNS, synth_engine: str = "array") -> Table12Report:
    """Predict the published DianNao configuration and compare to the
    technology-scaled original (Table 12).

    The reference row is synthesized on the (bit-identical) array engine
    by default; pass ``synth_engine="reference"`` for the original loop.
    """
    scaled = scale_result(DIANNAO_65NM["timing_ps"], DIANNAO_65NM["area_um2"],
                          DIANNAO_65NM["power_mw"], from_nm=65, to_nm=15)
    config = DianNaoConfig(tn=16, datatype="int16", pipeline_stages=3)
    graph = DianNao(config).elaborate()
    model = DianNaoPerfModel()
    activity = model.activity_coefficients(graph, model.simulate(config))
    pred = sns.predict(graph, activity=activity)
    reference = Synthesizer(effort="medium", engine=synth_engine).synthesize(
        graph, activity=activity)
    return Table12Report(
        original_65nm=dict(DIANNAO_65NM),
        scaled_15nm={"timing_ps": scaled.timing_ps, "area_um2": scaled.area_um2,
                     "power_mw": scaled.power_mw},
        prediction_15nm={"timing_ps": pred.timing_ps, "area_um2": pred.area_um2,
                         "power_mw": pred.power_mw},
        reference_15nm={"timing_ps": reference.timing_ps,
                        "area_um2": reference.area_um2,
                        "power_mw": reference.power_mw},
    )


def run_tn_sweep(engine, datatype: str = "int16",
                 verbose: bool = False) -> DianNaoDSEResult:
    """Figure 10: sweep Tn with the other parameters at the published point.

    ``engine`` is either a trained SNS or a Synthesizer.
    """
    dse = _make_dse(engine)
    configs = [DianNaoConfig(tn=tn, datatype=datatype) for tn in (4, 8, 16, 32)]
    return dse.run(configs, verbose=verbose)


def run_datatype_sweep(engine, tn: int = 16,
                       verbose: bool = False) -> DianNaoDSEResult:
    """Figure 11: sweep the datapath datatype at fixed Tn."""
    dse = _make_dse(engine)
    configs = [DianNaoConfig(tn=tn, datatype=dt)
               for dt in ("int8", "int16", "fp16", "bf16", "tf32", "fp32")]
    return dse.run(configs, verbose=verbose)


def _make_dse(engine) -> DianNaoDSE:
    if isinstance(engine, SNS):
        return DianNaoDSE(predictor=engine)
    if isinstance(engine, Synthesizer):
        return DianNaoDSE(synthesizer=engine)
    raise TypeError(f"engine must be SNS or Synthesizer, got {type(engine).__name__}")
