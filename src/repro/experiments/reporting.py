"""Plain-text rendering of the paper's tables and figure series.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep the formatting consistent across benches and
examples.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["format_table", "format_series", "ascii_scatter"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render rows as an aligned text table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence,
                  xlabel: str = "x", ylabel: str = "y") -> str:
    """Render an (x, y) figure series as labeled text rows."""
    lines = [f"{name}  [{xlabel} -> {ylabel}]"]
    for x, y in zip(xs, ys):
        lines.append(f"  {_fmt(x):>12s} -> {_fmt(y)}")
    return "\n".join(lines)


def ascii_scatter(xs: Sequence[float], ys: Sequence[float],
                  width: int = 60, height: int = 18, logscale: bool = True,
                  title: str = "") -> str:
    """A terminal scatter plot (used for the Figure 6/7 point clouds)."""
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if logscale:
        xs = np.log10(np.maximum(xs, 1e-12))
        ys = np.log10(np.maximum(ys, 1e-12))
    x_lo, x_hi = xs.min(), xs.max()
    y_lo, y_hi = ys.min(), ys.max()
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        grid[row][col] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append("+" + "-" * width + "+")
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
