"""Area and power extraction for a mapped netlist.

Dynamic power follows the classic alpha*C*V^2*f model: each cell has a
per-toggle switching energy and an activity factor; registers may carry
user-supplied activity coefficients (the paper's power-gating input,
Section 3.4.4).  Leakage is summed per cell.
"""

from __future__ import annotations

from .library import TechLibrary
from .netlist import MappedNetlist

__all__ = ["total_area", "total_power", "DEFAULT_COMB_ACTIVITY", "DEFAULT_SEQ_ACTIVITY"]

DEFAULT_COMB_ACTIVITY = 0.15
DEFAULT_SEQ_ACTIVITY = 0.10


def total_area(net: MappedNetlist, library: TechLibrary) -> float:
    """Sum of mapped cell areas in um^2 (gate-sizing scales included)."""
    return sum(
        library.cost(cell.cell_type, cell.width).area * cell.area_scale
        for cell in net.cells.values()
    )


def total_power(net: MappedNetlist, library: TechLibrary, frequency_ghz: float,
                activity: dict[int, float] | None = None) -> float:
    """Total power in mW at the given clock frequency.

    ``activity`` optionally maps sequential cell ids to activity
    coefficients; a register's coefficient also scales the combinational
    cone it drives (a gated register stops its downstream logic from
    toggling).
    """
    activity = activity or {}

    # Propagate register gating one level into driven combinational cells.
    comb_scale: dict[int, float] = {}
    for cid, coeff in activity.items():
        if cid not in net.cells:
            continue
        for succ in net.succ[cid]:
            cell = net.cells[succ]
            if not cell.is_sequential:
                comb_scale[succ] = min(comb_scale.get(succ, 1.0), coeff / DEFAULT_SEQ_ACTIVITY)

    dynamic_fj_per_cycle = 0.0
    leakage_nw = 0.0
    for cid, cell in net.cells.items():
        cost = library.cost(cell.cell_type, cell.width)
        if cell.is_sequential:
            alpha = activity.get(cid, DEFAULT_SEQ_ACTIVITY)
        else:
            alpha = DEFAULT_COMB_ACTIVITY * comb_scale.get(cid, 1.0)
        dynamic_fj_per_cycle += cost.energy * alpha
        leakage_nw += cost.leakage

    dynamic_mw = dynamic_fj_per_cycle * frequency_ghz * 1e-3
    leakage_mw = leakage_nw * 1e-6
    return dynamic_mw + leakage_mw
