"""``repro.synth`` — the reference synthesizer (Synopsys DC substitute).

Provides the ground-truth labels SNS trains against: technology mapping
onto a FreePDK15-style cell library, netlist optimization (CSE, MAC
fusion, buffering), timing-driven gate sizing, static timing analysis,
area/power extraction, and Stillmaker-Baas technology-node scaling.
"""

from .library import CellCost, TechLibrary, FREEPDK15
from .netlist import MappedCell, MappedNetlist
from .passes import common_subexpression_elimination, mac_fusion, buffer_insertion
from .timing import TimingReport, static_timing_analysis
from .power import total_area, total_power, DEFAULT_COMB_ACTIVITY, DEFAULT_SEQ_ACTIVITY
from .synthesizer import (SynthesisResult, PathResult, Synthesizer,
                          path_to_graph, EFFORT_PASSES, SYNTH_ENGINES)
from .engine import (CompiledNetlist, compile_netlist, array_sta,
                     size_gates_array, synthesize_path_batch)
from .cache import SynthesisCache, synthesis_cache_key
from .scaling import NODE_FACTORS, scale_value, scale_result, ScaledResult
from .report import TimingPath, AreaLine, PowerLine, SynthesisReport, analyze
from .retiming import retime_backward

__all__ = [
    "CellCost", "TechLibrary", "FREEPDK15",
    "MappedCell", "MappedNetlist",
    "common_subexpression_elimination", "mac_fusion", "buffer_insertion",
    "TimingReport", "static_timing_analysis",
    "total_area", "total_power", "DEFAULT_COMB_ACTIVITY", "DEFAULT_SEQ_ACTIVITY",
    "SynthesisResult", "PathResult", "Synthesizer", "path_to_graph",
    "EFFORT_PASSES", "SYNTH_ENGINES",
    "CompiledNetlist", "compile_netlist", "array_sta", "size_gates_array",
    "synthesize_path_batch",
    "SynthesisCache", "synthesis_cache_key",
    "NODE_FACTORS", "scale_value", "scale_result", "ScaledResult",
    "TimingPath", "AreaLine", "PowerLine", "SynthesisReport", "analyze",
    "retime_backward",
]
