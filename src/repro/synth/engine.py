"""The array-compiled synthesis engine.

The reference synthesizer walks dict-of-sets netlists cell by cell: one
:func:`~repro.synth.timing.static_timing_analysis` pass is ~10 Python
bytecode operations and two library calls per cell, and the gate-sizing
loop repeats it up to 30 times per design.  This module compiles a
:class:`~repro.synth.netlist.MappedNetlist` **once** into flat numpy
form and replays the same computation as vectorized sweeps:

- :class:`CompiledNetlist` — int-coded cell table (base delay vector
  gathered from the :class:`~repro.synth.library.TechLibrary`,
  sequential mask, setup constants), CSR predecessor arrays, the
  combinational topo order partitioned into levels, and a flattened
  capture-candidate list in the reference's exact evaluation order.
- :meth:`CompiledNetlist.sweep` — one STA as a level-by-level
  ``gather / segmented-max / add`` sweep.  Between gate-sizing
  iterations only the ``delay_scale`` vector changes, so re-running STA
  is *incremental*: no topo sort, no library calls, no dict traffic.
- :func:`array_sta` / :func:`size_gates_array` — drop-in replacements
  for the reference STA and sizing loop.
- :func:`synthesize_path_batch` — labels many token chains in one shot:
  per-token cost tables are gathered once per library, MAC fusion is a
  vectorized adjacent-pair rewrite, and arrival/area/power reduce to
  cumulative sweeps across the batch (position-by-position, so each
  path's float operation sequence is exactly the serial one).

Every output is **bit-identical** to the reference implementations —
same IEEE-754 operations in the same order, same tie-breaking (first
maximum wins), same combinational-loop errors.  The reference paths are
kept as parity oracles, mirroring the ``train_*_reference`` pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphir import SEQUENTIAL_TYPES, Vocabulary, parse_token
from .library import TechLibrary
from .netlist import MappedNetlist
from .power import DEFAULT_COMB_ACTIVITY, DEFAULT_SEQ_ACTIVITY
from .timing import TimingReport

__all__ = ["CompiledNetlist", "compile_netlist", "array_sta",
           "size_gates_array", "synthesize_path_batch"]


# ---------------------------------------------------------------------- #
# Design-level STA: compile once, sweep per sizing iteration
# ---------------------------------------------------------------------- #
@dataclass
class _Level:
    """One topo level: cells plus their predecessor CSR slice."""

    cells: np.ndarray        # cell indices at this level
    flat_preds: np.ndarray   # concatenated predecessor indices
    starts: np.ndarray       # reduceat segment starts into flat_preds


class CompiledNetlist:
    """A :class:`MappedNetlist` flattened into arrays for repeated STA.

    The compile captures everything that is invariant across gate-sizing
    iterations; :meth:`sweep` takes only the per-cell ``delay_scale``
    vector.  Cell order is the netlist dict order, predecessor order is
    each ``pred`` set's iteration order — both frozen at compile time so
    tie-breaks replay the reference exactly.
    """

    def __init__(self, net: MappedNetlist, library: TechLibrary):
        self.net = net
        self.library = library
        self.ids: list[int] = list(net.cells)
        index = {cid: i for i, cid in enumerate(self.ids)}
        cells = [net.cells[cid] for cid in self.ids]
        self.cells = cells
        n = len(cells)
        self.num_cells = n

        self.base_delay = np.array(
            [library.cost(c.cell_type, c.width).delay for c in cells], np.float64)
        self.is_seq = np.array([c.is_sequential for c in cells], bool)
        self.pred_lists: list[list[int]] = [
            [index[p] for p in net.pred[cid]] for cid in self.ids]

        # Longest-path level assignment over the register-cut DAG; raises
        # the reference's combinational-loop error verbatim.
        indeg = [0 if c.is_sequential else len(pl)
                 for c, pl in zip(cells, self.pred_lists)]
        succ_comb: list[list[int]] = [
            [index[s] for s in net.succ[cid] if not net.cells[s].is_sequential]
            for cid in self.ids]
        level = [0] * n
        frontier = [i for i in range(n) if indeg[i] == 0]
        seen = 0
        while frontier:
            i = frontier.pop()
            seen += 1
            li = level[i] + 1
            for j in succ_comb[i]:
                if li > level[j]:
                    level[j] = li
                indeg[j] -= 1
                if indeg[j] == 0:
                    frontier.append(j)
        if seen != n:
            raise ValueError(
                f"combinational loop detected in {net.name!r}: "
                f"{n - seen} cells unreachable in topo order")

        self.levels: list[_Level] = []
        if n:
            by_level: dict[int, list[int]] = {}
            for i, lv in enumerate(level):
                if lv > 0:
                    by_level.setdefault(lv, []).append(i)
            for lv in sorted(by_level):
                members = by_level[lv]
                starts, flat, off = [], [], 0
                for i in members:
                    starts.append(off)
                    flat.extend(self.pred_lists[i])
                    off += len(self.pred_lists[i])
                self.levels.append(_Level(
                    cells=np.asarray(members, np.int64),
                    flat_preds=np.asarray(flat, np.int64),
                    starts=np.asarray(starts, np.int64)))

        # Capture candidates, flattened in the reference's evaluation
        # order: cells in dict order; a sequential cell contributes one
        # candidate per predecessor (arrival[p] + setup), a sink
        # combinational cell contributes its own arrival.
        cap_src, cap_add, cap_endpoint, cap_via = [], [], [], []
        for i, (cid, c) in enumerate(zip(self.ids, cells)):
            if c.is_sequential:
                setup = library.dff_setup if c.cell_type == "dff" else 0.0
                for p in self.pred_lists[i]:
                    cap_src.append(p)
                    cap_add.append(setup)
                    cap_endpoint.append(i)
                    cap_via.append(True)
            elif not net.succ[cid]:
                cap_src.append(i)
                cap_add.append(0.0)
                cap_endpoint.append(i)
                cap_via.append(False)
        self.cap_src = np.asarray(cap_src, np.int64)
        self.cap_add = np.asarray(cap_add, np.float64)
        self.cap_endpoint = cap_endpoint
        self.cap_via = cap_via

    # ------------------------------------------------------------------ #
    def delay_scales(self) -> np.ndarray:
        """The current per-cell ``delay_scale`` vector (compile order)."""
        return np.array([c.delay_scale for c in self.cells], np.float64)

    def area_scales(self) -> np.ndarray:
        return np.array([c.area_scale for c in self.cells], np.float64)

    def writeback_scales(self, delay_scale: np.ndarray,
                         area_scale: np.ndarray) -> None:
        """Push sized scale vectors back onto the mutable netlist cells."""
        for i, c in enumerate(self.cells):
            c.delay_scale = float(delay_scale[i])
            c.area_scale = float(area_scale[i])

    # ------------------------------------------------------------------ #
    def _best_pred(self, i: int, arr: np.ndarray) -> int | None:
        """First predecessor realizing the worst arrival (reference tie-break)."""
        if self.is_seq[i] or not self.pred_lists[i]:
            return None
        preds = self.pred_lists[i]
        best = preds[0]
        worst = arr[best]
        for p in preds[1:]:
            if arr[p] > worst:
                worst = arr[p]
                best = p
        return best

    def sweep(self, delay_scale: np.ndarray
              ) -> tuple[float, list[int], np.ndarray]:
        """One STA pass: ``(critical period, critical index chain, arrival)``.

        Arrival is computed level by level: gather predecessor arrivals,
        segmented max, add each cell's own scaled delay — the identical
        float operations the reference performs per cell.
        """
        own = self.base_delay * delay_scale
        arr = own.copy()  # level-0 cells: launch points and sources
        for lv in self.levels:
            worst = np.maximum.reduceat(arr[lv.flat_preds], lv.starts)
            arr[lv.cells] = worst + own[lv.cells]

        chain: list[int] = []
        if self.cap_src.size:
            cand = arr[self.cap_src] + self.cap_add
            k = int(np.argmax(cand))  # first max wins, like the strict-> loop
            critical = float(cand[k])
            if critical > 0.0:
                endpoint = self.cap_endpoint[k]
                cursor = (int(self.cap_src[k]) if self.cap_via[k]
                          else self._best_pred(endpoint, arr))
                chain.append(endpoint)
                while cursor is not None:
                    chain.append(cursor)
                    cursor = self._best_pred(cursor, arr)
                chain.reverse()
            else:  # degenerate: no positive candidate, like the reference
                critical = float(arr.max()) if arr.size else 0.0
        else:
            critical = float(arr.max()) if arr.size else 0.0
        return critical, chain, arr

    def report(self, delay_scale: np.ndarray | None = None) -> TimingReport:
        """A reference-shaped :class:`TimingReport` for the current scales."""
        if not self.num_cells:
            return TimingReport(0.0, (), {})
        scales = self.delay_scales() if delay_scale is None else delay_scale
        critical, chain, arr = self.sweep(scales)
        return TimingReport(
            critical_path_ps=critical,
            critical_cells=tuple(self.ids[i] for i in chain),
            arrival=dict(zip(self.ids, arr.tolist())),
        )


def compile_netlist(net: MappedNetlist, library: TechLibrary) -> CompiledNetlist:
    """Compile ``net`` for repeated vectorized STA against ``library``."""
    return CompiledNetlist(net, library)


def array_sta(net: MappedNetlist, library: TechLibrary) -> TimingReport:
    """Vectorized drop-in for :func:`~repro.synth.timing.static_timing_analysis`."""
    if not net.cells:
        return TimingReport(0.0, (), {})
    return compile_netlist(net, library).report()


def size_gates_array(net: MappedNetlist, library: TechLibrary,
                     passes: int) -> TimingReport:
    """Incremental replay of ``Synthesizer._size_gates``.

    The netlist is compiled once; each sizing iteration updates only the
    ``delay_scale`` / ``area_scale`` vectors (the same per-cell float
    multiplies the reference applies) and re-runs the arrival sweep.
    Final scales are written back onto the netlist cells so downstream
    area/power extraction sees the sized design.
    """
    if not net.cells:
        return TimingReport(0.0, (), {})
    comp = compile_netlist(net, library)
    delay_scale = comp.delay_scales()
    area_scale = comp.area_scales()
    n = comp.num_cells
    critical, chain, arr = comp.sweep(delay_scale)
    for _ in range(passes):
        if not chain:
            break
        crit_mask = np.zeros(n, bool)
        crit_mask[chain] = True
        up = crit_mask & (delay_scale > 0.72)
        improved = bool(up.any())
        relax = (~crit_mask) & (delay_scale < 1.15) & (arr < 0.5 * critical)
        delay_scale[up] *= 0.94
        area_scale[up] *= 1.06
        delay_scale[relax] *= 1.02
        area_scale[relax] *= 0.99
        critical, chain, arr = comp.sweep(delay_scale)
        if not improved:
            break
    comp.writeback_scales(delay_scale, area_scale)
    return TimingReport(
        critical_path_ps=critical,
        critical_cells=tuple(comp.ids[i] for i in chain),
        arrival=dict(zip(comp.ids, arr.tolist())),
    )


# ---------------------------------------------------------------------- #
# Batched path labeling
# ---------------------------------------------------------------------- #
class _PathTables:
    """Per-library cost tables over the standard 79-token vocabulary.

    Row ``i`` describes vocabulary token ``i`` (``Vocabulary.standard()``
    order); the MAC rows are indexed by log2(width).  ``dyn`` folds the
    default activity factor into the switching energy exactly as
    :func:`~repro.synth.power.total_power` does per cell.
    """

    def __init__(self, library: TechLibrary):
        from .library import FREEPDK15

        vocab = Vocabulary.standard()
        self.vocab = vocab
        parsed = [parse_token(t) for t in vocab.tokens]
        ntok = len(parsed)

        def col(fn):
            return np.array([fn(nt, w) for nt, w in parsed], np.float64)

        cost = library.cost
        self.delay = col(lambda nt, w: cost(nt, w).delay)
        self.area = col(lambda nt, w: cost(nt, w).area)
        self.leak = col(lambda nt, w: cost(nt, w).leakage)
        self.is_seq = np.array([nt in SEQUENTIAL_TYPES for nt, _ in parsed], bool)
        self.setup = np.array(
            [library.dff_setup if nt == "dff" else 0.0 for nt, _ in parsed],
            np.float64)
        self.dyn = np.array(
            [cost(nt, w).energy
             * (DEFAULT_SEQ_ACTIVITY if nt in SEQUENTIAL_TYPES
                else DEFAULT_COMB_ACTIVITY * 1.0)
             for nt, w in parsed], np.float64)
        self.is_mul = np.array([nt == "mul" for nt, _ in parsed], bool)
        self.is_add = np.array([nt == "add" for nt, _ in parsed], bool)
        self.wlog = np.array([int(w).bit_length() - 1 for _, w in parsed],
                             np.int64)

        # MAC rows by log2(width); fused widths are max(w_mul, w_add),
        # always one of the arithmetic widths 8..64.
        max_log = int(self.wlog.max()) + 1
        self.mac_delay = np.zeros(max_log, np.float64)
        self.mac_area = np.zeros(max_log, np.float64)
        self.mac_leak = np.zeros(max_log, np.float64)
        self.mac_dyn = np.zeros(max_log, np.float64)
        for lg in range(3, max_log):  # widths 8..64
            c = cost("mac", 1 << lg)
            self.mac_delay[lg] = c.delay
            self.mac_area[lg] = c.area
            self.mac_leak[lg] = c.leakage
            self.mac_dyn[lg] = c.energy * (DEFAULT_COMB_ACTIVITY * 1.0)

        # Fusion area guard — always evaluated against FREEPDK15, exactly
        # like ``mac_fusion(net)`` with no library argument.
        self.guard_ok = np.zeros((max_log, max_log), bool)
        for lm in range(3, max_log):
            for la in range(3, max_log):
                wm, wa = 1 << lm, 1 << la
                mac_area = FREEPDK15.cost("mac", max(wm, wa)).area
                self.guard_ok[lm, la] = not (
                    mac_area > FREEPDK15.cost("mul", wm).area
                    + FREEPDK15.cost("add", wa).area + 1e-12)


_PATH_TABLES: dict[int, tuple[TechLibrary, _PathTables]] = {}


def _tables_for(library: TechLibrary) -> _PathTables:
    entry = _PATH_TABLES.get(id(library))
    if entry is None or entry[0] is not library:
        entry = (library, _PathTables(library))
        _PATH_TABLES[id(library)] = entry
    return entry[1]


def synthesize_path_batch(paths, library: TechLibrary) -> list:
    """Label many token chains in one vectorized shot.

    Returns one :class:`~repro.synth.synthesizer.PathResult` per input
    chain, bit-identical to per-path
    :meth:`~repro.synth.synthesizer.Synthesizer.synthesize_path`: MAC
    fusion becomes a vectorized adjacent-pair rewrite (candidate pairs
    in a chain can never overlap), and arrival/critical/area/power are
    cumulative sweeps run position-by-position across the whole batch —
    each path sees the exact float operation sequence of the serial
    fold, just B lanes at a time.

    Raises the reference's errors: ``ValueError`` for an empty chain,
    ``KeyError`` for a token outside the standard vocabulary.
    """
    from .synthesizer import PathResult

    paths = [list(p) for p in paths]
    if not paths:
        return []
    tables = _tables_for(library)
    lookup = tables.vocab._lookup
    nspecial = Vocabulary.NUM_SPECIAL

    B = len(paths)
    L = max(len(p) for p in paths)
    if min(len(p) for p in paths) == 0:
        raise ValueError("a circuit path needs at least one token")
    tok = np.zeros((B, L), np.int64)
    valid = np.zeros((B, L), bool)
    for b, p in enumerate(paths):
        try:
            tok[b, :len(p)] = [lookup[t] for t in p]
        except KeyError as exc:
            raise KeyError(f"token not in vocabulary: {exc.args[0]!r}") from None
        valid[b, :len(p)] = True
    tok -= nspecial  # vocabulary ids -> table rows

    # Per-cell cost columns straight from the tables.
    delay = tables.delay[tok]
    area = tables.area[tok]
    dyn = tables.dyn[tok]
    leak = tables.leak[tok]
    is_seq = tables.is_seq[tok] & valid
    setup = tables.setup[tok]

    # MAC fusion as an adjacent-pair rewrite: a chain candidate is
    # (mul at p, add at p+1); candidates cannot overlap (the middle cell
    # would have to be both), so all guarded pairs fuse independently.
    dropped = np.zeros((B, L), bool)
    if L >= 2:
        wlog = tables.wlog[tok]
        pair = (tables.is_mul[tok[:, :-1]] & valid[:, :-1]
                & tables.is_add[tok[:, 1:]] & valid[:, 1:]
                & tables.guard_ok[wlog[:, :-1], wlog[:, 1:]])
        if pair.any():
            dropped[:, :-1] = pair
            mac_rows, mac_cols = np.nonzero(pair)
            mac_cols = mac_cols + 1  # the add position becomes the mac
            mac_wlog = np.maximum(wlog[mac_rows, mac_cols - 1],
                                  wlog[mac_rows, mac_cols])
            delay[mac_rows, mac_cols] = tables.mac_delay[mac_wlog]
            area[mac_rows, mac_cols] = tables.mac_area[mac_wlog]
            dyn[mac_rows, mac_cols] = tables.mac_dyn[mac_wlog]
            leak[mac_rows, mac_cols] = tables.mac_leak[mac_wlog]

    # Position-by-position sweep over the batch.  State per lane: the
    # previous remaining cell's arrival, a running strict-> critical
    # (first max wins), the arrival max (degenerate all-register paths),
    # and the left-fold area/power accumulators.
    zeros = np.zeros(B, np.float64)
    last_arr = zeros.copy()
    has_prev = np.zeros(B, bool)
    crit = zeros.copy()
    any_cand = np.zeros(B, bool)
    run_max = zeros.copy()
    area_sum = zeros.copy()
    dyn_sum = zeros.copy()
    leak_sum = zeros.copy()
    for p in range(L):
        live = valid[:, p] & ~dropped[:, p]
        own = delay[:, p]
        seq_here = is_seq[:, p]
        arrive = np.where(seq_here | ~has_prev, own, last_arr + own)
        # Capture at sequential cells that have a predecessor.
        cand = last_arr + setup[:, p]
        cand_mask = live & seq_here & has_prev
        take = cand_mask & (cand > crit)
        crit = np.where(take, cand, crit)
        any_cand |= cand_mask
        # Advance lane state.
        last_arr = np.where(live, arrive, last_arr)
        run_max = np.where(live & (arrive > run_max), arrive, run_max)
        has_prev |= live
        area_sum = area_sum + np.where(live, area[:, p], 0.0)
        dyn_sum = dyn_sum + np.where(live, dyn[:, p], 0.0)
        leak_sum = leak_sum + np.where(live, leak[:, p], 0.0)

    # The final remaining cell, if combinational, is a sink endpoint —
    # its candidate is evaluated last, matching the reference cell order.
    live_all = valid & ~dropped
    last_pos = (L - 1) - np.argmax(live_all[:, ::-1], axis=1)
    rows = np.arange(B)
    end_comb = ~is_seq[rows, last_pos]
    take = end_comb & (last_arr > crit)
    crit = np.where(take, last_arr, crit)
    any_cand |= end_comb

    critical = np.where(any_cand, crit, run_max)
    freq = np.where(critical > 0,
                    1000.0 / np.where(critical > 0, critical, 1.0), 0.0)
    power = dyn_sum * freq * 1e-3 + leak_sum * 1e-6

    return [PathResult(tokens=tuple(p),
                       timing_ps=float(critical[b]),
                       area_um2=float(area_sum[b]),
                       power_mw=float(power[b]))
            for b, p in enumerate(paths)]
