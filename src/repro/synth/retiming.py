"""Backward retiming: move registers across logic to balance stage delays.

A simplified Leiserson–Saxe style pass.  A register whose arrival sets
the critical period, and whose single driver is a combinational cell
that feeds only that register, can be moved backward across the driver
— one register per driver input — shortening the launch-to-capture path
by the driver's delay at the cost of (possibly) more register bits:

    X ---> C ---> R ---> ...      becomes      X ---> R' ---> C ---> ...

The pass is cost-guarded: a move is kept only if it reduces the overall
critical period (recomputed with full STA), otherwise it is rolled back.
Opt-in (not part of the default `Synthesizer` flow) so baseline results
stay comparable; pipeline-heavy designs gain the most.
"""

from __future__ import annotations

from .library import TechLibrary
from .netlist import MappedNetlist
from .timing import static_timing_analysis

__all__ = ["retime_backward"]


def retime_backward(net: MappedNetlist, library: TechLibrary,
                    max_moves: int = 16) -> int:
    """Apply up to ``max_moves`` beneficial backward register moves.

    Returns the number of moves kept.
    """
    moves = 0
    for _ in range(max_moves):
        report = static_timing_analysis(net, library)
        if len(report.critical_cells) < 2:
            break
        candidate = _find_candidate(net, report)
        if candidate is None:
            break
        reg_id, driver_id = candidate
        undo = _move_register_backward(net, reg_id, driver_id)
        after = static_timing_analysis(net, library)
        if after.critical_path_ps < report.critical_path_ps - 1e-9:
            moves += 1
        else:
            undo()
            break
    return moves


def _find_candidate(net: MappedNetlist, report) -> tuple[int, int] | None:
    """The critical endpoint register + its movable single driver."""
    chain = report.critical_cells
    endpoint = chain[-1]
    cell = net.cells.get(endpoint)
    if cell is None or cell.cell_type != "dff":
        return None
    preds = list(net.pred[endpoint])
    if len(preds) != 1:
        return None
    driver = net.cells.get(preds[0])
    if driver is None or driver.is_sequential or driver.cell_type == "io":
        return None
    # The driver must feed only this register, or duplicating logic
    # would be required (out of scope for the simplified pass).
    if net.succ[preds[0]] != {endpoint}:
        return None
    if not net.pred[preds[0]]:
        return None  # constant-driven cell; nothing to retime across
    return endpoint, preds[0]


def _move_register_backward(net: MappedNetlist, reg_id: int, driver_id: int):
    """Rewire X -> C -> R  into  X -> R' -> C -> (R's fanout); returns undo."""
    reg = net.cells[reg_id]
    driver_preds = list(net.pred[driver_id])
    reg_succs = list(net.succ[reg_id])

    new_regs: list[int] = []
    for src in driver_preds:
        new_reg = net.add_cell("dff", net.cells[src].width, is_sequential=True)
        net.remove_edge(src, driver_id)
        net.add_edge(src, new_reg)
        net.add_edge(new_reg, driver_id)
        new_regs.append(new_reg)
    # The driver now feeds the register's old fanout directly.
    net.remove_edge(driver_id, reg_id)
    for dst in reg_succs:
        net.remove_edge(reg_id, dst)
        net.add_edge(driver_id, dst)
    net.remove_cell(reg_id)

    def undo():
        # Recreate the original register and restore the wiring.
        restored = net.add_cell("dff", reg.width, is_sequential=True)
        for dst in reg_succs:
            net.remove_edge(driver_id, dst)
            net.add_edge(restored, dst)
        net.add_edge(driver_id, restored)
        for src, new_reg in zip(driver_preds, new_regs):
            net.remove_edge(src, new_reg)
            net.remove_edge(new_reg, driver_id)
            net.remove_cell(new_reg)
            net.add_edge(src, driver_id)

    return undo
