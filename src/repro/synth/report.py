"""EDA-style synthesis reports: timing, area, and power breakdowns.

Mirrors the reports a commercial tool prints after compile
(``report_timing``, ``report_area``, ``report_power``): the top-N timing
paths with per-cell delay breakdowns, area by cell category, and power
split into dynamic/leakage per category.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphir import CircuitGraph
from .library import FREEPDK15, TechLibrary
from .netlist import MappedNetlist
from .passes import buffer_insertion, common_subexpression_elimination, mac_fusion
from .power import DEFAULT_COMB_ACTIVITY, DEFAULT_SEQ_ACTIVITY
from .timing import static_timing_analysis

__all__ = ["TimingPath", "AreaLine", "PowerLine", "SynthesisReport", "analyze"]

# Categories used by the area/power breakdowns.
_CATEGORIES = {
    "sequential": ("dff",),
    "arithmetic": ("add", "mul", "div", "mod", "mac"),
    "steering": ("mux", "buf", "sh"),
    "logic": ("and", "or", "xor", "not",
              "reduce_and", "reduce_or", "reduce_xor"),
    "compare": ("eq", "lgt"),
    "io": ("io",),
}
_TYPE_TO_CATEGORY = {t: cat for cat, types in _CATEGORIES.items() for t in types}


@dataclass(frozen=True)
class TimingPath:
    """One report_timing row: a register-to-register path with breakdown."""

    arrival_ps: float
    cells: tuple[tuple[str, int, float], ...]   # (cell_type, width, delay)

    @property
    def depth(self) -> int:
        return len(self.cells)

    def format(self) -> str:
        lines = [f"  path arrival {self.arrival_ps:8.1f} ps "
                 f"({self.depth} cells)"]
        for cell_type, width, delay in self.cells:
            lines.append(f"    {cell_type}{width:<4d} +{delay:7.1f} ps")
        return "\n".join(lines)


@dataclass(frozen=True)
class AreaLine:
    category: str
    cells: int
    area_um2: float
    fraction: float


@dataclass(frozen=True)
class PowerLine:
    category: str
    dynamic_mw: float
    leakage_mw: float

    @property
    def total_mw(self) -> float:
        return self.dynamic_mw + self.leakage_mw


@dataclass(frozen=True)
class SynthesisReport:
    """Full report bundle for one design."""

    design: str
    critical_paths: tuple[TimingPath, ...]
    area_lines: tuple[AreaLine, ...]
    power_lines: tuple[PowerLine, ...]
    total_area_um2: float
    total_power_mw: float
    clock_period_ps: float

    def format(self) -> str:
        out = [f"==== synthesis report: {self.design} ====",
               f"clock period: {self.clock_period_ps:.1f} ps "
               f"({1000.0 / self.clock_period_ps:.3f} GHz)" if self.clock_period_ps
               else "clock period: unconstrained",
               "", f"-- timing ({len(self.critical_paths)} worst paths) --"]
        for path in self.critical_paths:
            out.append(path.format())
        out += ["", "-- area --"]
        for line in self.area_lines:
            out.append(f"  {line.category:<12s} {line.cells:6d} cells "
                       f"{line.area_um2:12.1f} um2  ({line.fraction * 100:5.1f}%)")
        out.append(f"  {'total':<12s} {'':>12s} {self.total_area_um2:12.1f} um2")
        out += ["", "-- power --"]
        for line in self.power_lines:
            out.append(f"  {line.category:<12s} dynamic {line.dynamic_mw:9.4f} mW"
                       f"  leakage {line.leakage_mw:9.4f} mW")
        out.append(f"  {'total':<12s} {self.total_power_mw:9.4f} mW")
        return "\n".join(out)


def analyze(graph: CircuitGraph, library: TechLibrary | None = None,
            num_paths: int = 3,
            activity: dict[int, float] | None = None) -> SynthesisReport:
    """Map + optimize a design and produce the full report bundle."""
    library = library or FREEPDK15
    net = MappedNetlist.from_graphir(graph)
    common_subexpression_elimination(net)
    mac_fusion(net, library=library)
    buffer_insertion(net)

    timing = static_timing_analysis(net, library)
    paths = _worst_paths(net, library, timing, num_paths)
    area_lines, total_area = _area_breakdown(net, library)
    power_lines, total_power = _power_breakdown(
        net, library, timing.max_frequency_ghz if timing.critical_path_ps else 0.0,
        activity or {})
    return SynthesisReport(
        design=graph.name,
        critical_paths=tuple(paths),
        area_lines=tuple(area_lines),
        power_lines=tuple(power_lines),
        total_area_um2=total_area,
        total_power_mw=total_power,
        clock_period_ps=timing.critical_path_ps,
    )


# ---------------------------------------------------------------------- #
def _worst_paths(net: MappedNetlist, library: TechLibrary, timing,
                 num_paths: int) -> list[TimingPath]:
    """Trace back the worst ``num_paths`` endpoint arrivals."""
    # Rank endpoints (sequential inputs / sinks) by arrival.
    endpoint_arrivals: list[tuple[float, int]] = []
    for cid, cell in net.cells.items():
        if cell.is_sequential:
            for p in net.pred[cid]:
                arr = timing.arrival.get(p, 0.0)
                setup = library.dff_setup if cell.cell_type == "dff" else 0.0
                endpoint_arrivals.append((arr + setup, p))
        elif not net.succ[cid]:
            endpoint_arrivals.append((timing.arrival.get(cid, 0.0), cid))
    endpoint_arrivals.sort(reverse=True)

    paths = []
    seen_tails: set[int] = set()
    for arrival, tail in endpoint_arrivals:
        if tail in seen_tails:
            continue
        seen_tails.add(tail)
        chain = _trace_back(net, library, timing, tail)
        paths.append(TimingPath(arrival_ps=arrival, cells=tuple(chain)))
        if len(paths) >= num_paths:
            break
    return paths


def _trace_back(net: MappedNetlist, library: TechLibrary, timing, tail: int):
    """Walk the worst-arrival predecessor chain from ``tail`` to a launch."""
    chain = []
    cursor: int | None = tail
    while cursor is not None:
        cell = net.cells[cursor]
        delay = library.cost(cell.cell_type, cell.width).delay * cell.delay_scale
        chain.append((cell.cell_type, cell.width, delay))
        if cell.is_sequential:
            break
        preds = net.pred[cursor]
        cursor = max(preds, key=lambda p: timing.arrival.get(p, 0.0)) if preds else None
    chain.reverse()
    return chain


def _area_breakdown(net: MappedNetlist, library: TechLibrary):
    sums: dict[str, list] = {cat: [0, 0.0] for cat in _CATEGORIES}
    total = 0.0
    for cell in net.cells.values():
        cat = _TYPE_TO_CATEGORY.get(cell.cell_type, "logic")
        area = library.cost(cell.cell_type, cell.width).area * cell.area_scale
        sums[cat][0] += 1
        sums[cat][1] += area
        total += area
    lines = [AreaLine(cat, count, area, area / total if total else 0.0)
             for cat, (count, area) in sums.items() if count]
    lines.sort(key=lambda l: -l.area_um2)
    return lines, total


def _power_breakdown(net: MappedNetlist, library: TechLibrary,
                     frequency_ghz: float, activity: dict[int, float]):
    sums: dict[str, list] = {cat: [0.0, 0.0] for cat in _CATEGORIES}
    total = 0.0
    for cid, cell in net.cells.items():
        cat = _TYPE_TO_CATEGORY.get(cell.cell_type, "logic")
        cost = library.cost(cell.cell_type, cell.width)
        alpha = (activity.get(cid, DEFAULT_SEQ_ACTIVITY) if cell.is_sequential
                 else DEFAULT_COMB_ACTIVITY)
        dynamic = cost.energy * alpha * frequency_ghz * 1e-3
        leakage = cost.leakage * 1e-6
        sums[cat][0] += dynamic
        sums[cat][1] += leakage
        total += dynamic + leakage
    lines = [PowerLine(cat, dyn, leak)
             for cat, (dyn, leak) in sums.items() if dyn or leak]
    lines.sort(key=lambda l: -l.total_mw)
    return lines, total
