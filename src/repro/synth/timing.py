"""Static timing analysis over a mapped netlist.

Paths launch at sequential cells (register clock-to-q) or input ports and
capture at sequential cell inputs (plus setup) or output ports.  The
design's achievable clock period is the worst register-to-register (or
port-to-port) arrival time.
"""

from __future__ import annotations

from dataclasses import dataclass

from .library import TechLibrary
from .netlist import MappedNetlist

__all__ = ["TimingReport", "static_timing_analysis"]


@dataclass(frozen=True)
class TimingReport:
    """Result of one STA run.

    critical_path_ps is the minimum clock period; critical_cells is the
    launch-to-capture cell chain realizing it.
    """

    critical_path_ps: float
    critical_cells: tuple[int, ...]
    arrival: dict[int, float]

    @property
    def max_frequency_ghz(self) -> float:
        return 1000.0 / self.critical_path_ps if self.critical_path_ps > 0 else float("inf")


def _cell_delay(net: MappedNetlist, library: TechLibrary, cid: int) -> float:
    cell = net.cells[cid]
    return library.cost(cell.cell_type, cell.width).delay * cell.delay_scale


def static_timing_analysis(net: MappedNetlist, library: TechLibrary) -> TimingReport:
    """Longest-path analysis; returns the critical period and path."""
    if not net.cells:
        return TimingReport(0.0, (), {})

    order = net.combinational_topo_order()
    arrival: dict[int, float] = {}
    best_pred: dict[int, int | None] = {}

    for cid in order:
        cell = net.cells[cid]
        own = _cell_delay(net, library, cid)
        if cell.is_sequential:
            # Launch point: register clock-to-q, or port insertion delay.
            arrival[cid] = own
            best_pred[cid] = None
            continue
        preds = net.pred[cid]
        if not preds:
            arrival[cid] = own
            best_pred[cid] = None
            continue
        worst, worst_pred = max(((arrival[p], p) for p in preds), key=lambda t: t[0])
        arrival[cid] = worst + own
        best_pred[cid] = worst_pred

    # Capture: worst arrival into any sequential cell (+ setup) or at any
    # pure-combinational endpoint (output ports are sequential 'io').
    critical = 0.0
    endpoint: int | None = None
    capture_pred: int | None = None
    for cid, cell in net.cells.items():
        if cell.is_sequential:
            for p in net.pred[cid]:
                candidate = arrival[p] + (library.dff_setup if cell.cell_type == "dff" else 0.0)
                if candidate > critical:
                    critical, endpoint, capture_pred = candidate, cid, p
        elif not net.succ[cid]:
            if arrival[cid] > critical:
                critical, endpoint, capture_pred = arrival[cid], cid, best_pred[cid]

    # Degenerate all-register design: period bounded by clk-to-q + setup.
    if endpoint is None:
        critical = max(arrival.values(), default=0.0)

    chain: list[int] = []
    if endpoint is not None:
        chain.append(endpoint)
        cursor = capture_pred
        while cursor is not None:
            chain.append(cursor)
            cursor = best_pred.get(cursor)
        chain.reverse()

    return TimingReport(critical_path_ps=critical, critical_cells=tuple(chain), arrival=arrival)
