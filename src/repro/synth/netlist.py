"""Mapped netlists — the synthesizer's mutable working representation.

A :class:`MappedNetlist` starts as a copy of a GraphIR circuit graph and
is transformed in place by optimization passes (CSE, MAC fusion, buffer
insertion, gate sizing).  Unlike the GraphIR seen by SNS, the mapped
netlist keeps *unrounded* widths and may contain cell types (``mac``,
``buf``) that have no GraphIR vocabulary entry — this information
asymmetry is what makes SNS's prediction task non-trivial.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graphir import CircuitGraph

__all__ = ["MappedCell", "MappedNetlist"]


@dataclass
class MappedCell:
    """One mapped functional unit."""

    cell_id: int
    cell_type: str
    width: int
    # Gate-sizing multipliers (pass-mutable): upsizing trades area for delay.
    delay_scale: float = 1.0
    area_scale: float = 1.0
    is_sequential: bool = False


@dataclass
class MappedNetlist:
    """Cells plus directed connectivity, mutable under optimization passes."""

    name: str = "design"
    cells: dict[int, MappedCell] = field(default_factory=dict)
    succ: dict[int, set[int]] = field(default_factory=dict)
    pred: dict[int, set[int]] = field(default_factory=dict)
    _next_id: int = 0

    # ------------------------------------------------------------------ #
    @classmethod
    def from_graphir(cls, graph: CircuitGraph) -> "MappedNetlist":
        net = cls(name=graph.name)
        for node in graph.nodes():
            net.cells[node.node_id] = MappedCell(
                cell_id=node.node_id,
                cell_type=node.node_type,
                width=node.width,
                is_sequential=node.is_sequential,
            )
            net.succ[node.node_id] = set()
            net.pred[node.node_id] = set()
        for src, dst in graph.edges():
            net.succ[src].add(dst)
            net.pred[dst].add(src)
        net._next_id = max(net.cells, default=-1) + 1
        return net

    # ------------------------------------------------------------------ #
    def add_cell(self, cell_type: str, width: int, is_sequential: bool = False) -> int:
        cid = self._next_id
        self._next_id += 1
        self.cells[cid] = MappedCell(cid, cell_type, width, is_sequential=is_sequential)
        self.succ[cid] = set()
        self.pred[cid] = set()
        return cid

    def add_edge(self, src: int, dst: int) -> None:
        self.succ[src].add(dst)
        self.pred[dst].add(src)

    def remove_edge(self, src: int, dst: int) -> None:
        self.succ[src].discard(dst)
        self.pred[dst].discard(src)

    def remove_cell(self, cid: int) -> None:
        for s in list(self.succ[cid]):
            self.remove_edge(cid, s)
        for p in list(self.pred[cid]):
            self.remove_edge(p, cid)
        del self.cells[cid], self.succ[cid], self.pred[cid]

    def redirect(self, old: int, new: int) -> None:
        """Move all of ``old``'s fanout onto ``new`` and delete ``old``."""
        for s in list(self.succ[old]):
            self.remove_edge(old, s)
            if s != new:
                self.add_edge(new, s)
        self.remove_cell(old)

    # ------------------------------------------------------------------ #
    @property
    def num_cells(self) -> int:
        return len(self.cells)

    @property
    def num_edges(self) -> int:
        return sum(len(v) for v in self.succ.values())

    def combinational_topo_order(self) -> list[int]:
        """Topological order treating sequential cells as path boundaries.

        Edges *into* sequential cells are cut (a register launches a new
        timing path), so any legal netlist — where every cycle passes
        through a register — becomes a DAG.  Raises on combinational
        loops.
        """
        indegree = {}
        for cid, cell in self.cells.items():
            if cell.is_sequential:
                indegree[cid] = 0  # launch point
            else:
                indegree[cid] = len(self.pred[cid])
        order: list[int] = []
        frontier = [cid for cid, deg in indegree.items() if deg == 0]
        while frontier:
            cid = frontier.pop()
            order.append(cid)
            for nxt in self.succ[cid]:
                if self.cells[nxt].is_sequential:
                    continue  # cut edge
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    frontier.append(nxt)
        if len(order) != len(self.cells):
            raise ValueError(
                f"combinational loop detected in {self.name!r}: "
                f"{len(self.cells) - len(order)} cells unreachable in topo order"
            )
        return order
