"""A standard-cell technology library in the style of FreePDK 15nm.

The SNS paper synthesizes with Synopsys DC + the FreePDK15 open cell
library.  This module provides the offline substitute: per-functional-unit
cost models (area, delay, switching energy, leakage) derived from classic
gate-level decompositions:

- ripple/lookahead adders: area linear in width, delay logarithmic
- array multipliers: area quadratic in width, delay ~linear
- iterative dividers: area quadratic, delay much larger than multiply
- barrel shifters: area N·log N, delay logarithmic
- muxes/bitwise: area linear, constant delay
- flip-flops: clock-to-q + setup, per-bit area/leakage

Absolute numbers are calibrated to the 15nm regime (gate delays of a few
ps, NAND2-equivalent area ~0.2 um^2) so that design-level results land in
the same ranges the paper reports (e.g. DianNao Tn=16 ~0.1 mm^2 / ~0.33ns
/ tens of mW at 15nm, Table 12).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["CellCost", "TechLibrary", "FREEPDK15"]


@dataclass(frozen=True)
class CellCost:
    """Mapped cost of one GraphIR vertex at a given width.

    area is um^2, delay is ps, energy is fJ per output toggle, leakage
    is nW.
    """

    area: float
    delay: float
    energy: float
    leakage: float


# NAND2-equivalent unit costs for the 15nm node.
_GATE_AREA = 0.20       # um^2 per NAND2-equivalent gate
_GATE_DELAY = 4.0       # ps per gate stage (loaded)
_GATE_ENERGY = 0.08     # fJ per gate toggle
_GATE_LEAKAGE = 1.2     # nW per gate

_DFF_AREA = 0.95        # um^2 per bit
_DFF_CLK_Q = 18.0       # ps clock-to-q
_DFF_SETUP = 12.0       # ps setup
_DFF_ENERGY = 0.45      # fJ per bit toggle
_DFF_LEAKAGE = 3.5      # nW per bit

_IO_DELAY = 6.0         # ps port insertion delay


def _log2(width: int) -> float:
    return math.log2(max(width, 2))


class TechLibrary:
    """Technology cost functions keyed by GraphIR node type.

    ``cost(node_type, width)`` returns a :class:`CellCost` for the whole
    functional unit (all bits).  ``gate_count`` exposes the
    NAND2-equivalent count used for Figure-7-style gate statistics.
    """

    def __init__(self, name: str = "freepdk15",
                 gate_area: float = _GATE_AREA,
                 gate_delay: float = _GATE_DELAY,
                 gate_energy: float = _GATE_ENERGY,
                 gate_leakage: float = _GATE_LEAKAGE):
        self.name = name
        self.gate_area = gate_area
        self.gate_delay = gate_delay
        self.gate_energy = gate_energy
        self.gate_leakage = gate_leakage
        self.dff_setup = _DFF_SETUP
        self.dff_clk_q = _DFF_CLK_Q
        # Memo tables: cost()/gate_count() are pure in (type, width) for a
        # given library, yet STA calls them once per cell per pass.  The
        # library's unit costs are fixed at construction, so the memo
        # never goes stale.  CellCost is frozen; callers share instances.
        self._cost_memo: dict[tuple[str, int], CellCost] = {}
        self._gates_memo: dict[tuple[str, int], float] = {}

    # ------------------------------------------------------------------ #
    # Gate-level decomposition: NAND2-equivalents and stage depth
    # ------------------------------------------------------------------ #
    def gate_count(self, node_type: str, width: int) -> float:
        """NAND2-equivalent gates for one functional unit (memoized)."""
        key = (node_type, width)
        cached = self._gates_memo.get(key)
        if cached is None:
            cached = self._gates_memo[key] = self._gate_count(node_type, width)
        return cached

    def _gate_count(self, node_type: str, width: int) -> float:
        w = max(width, 1)
        if node_type == "io":
            return 0.0
        if node_type == "dff":
            return 4.5 * w  # a DFF is ~4.5 NAND2-equivalents
        if node_type == "mux":
            return 1.5 * w
        if node_type == "buf":
            return 0.7 * w
        if node_type == "not":
            return 0.5 * w
        if node_type in ("and", "or", "xor"):
            return (1.0 if node_type != "xor" else 2.5) * w
        if node_type == "sh":
            return 1.5 * w * _log2(w)          # barrel shifter mux layers
        if node_type.startswith("reduce_"):
            return max(w - 1, 1) * (2.5 if node_type.endswith("xor") else 1.0)
        if node_type == "add":
            return 5.0 * w + 1.5 * w           # full adders + lookahead
        if node_type == "eq":
            return 2.5 * w + (w - 1)
        if node_type == "lgt":
            return 3.5 * w + (w - 1)
        if node_type == "mul":
            return 5.0 * w * w / 2 + 5.0 * w   # partial products + reduction
        if node_type in ("div", "mod"):
            return 7.0 * w * w                 # restoring array divider
        if node_type == "mac":
            # fused multiply-accumulate: the accumulator folds into the
            # multiplier's reduction tree, cheaper than mul + add
            return 5.0 * w * w / 2 + 7.0 * w
        raise ValueError(f"no library mapping for node type {node_type!r}")

    def stage_depth(self, node_type: str, width: int) -> float:
        """Logic depth (in gate stages) through one functional unit."""
        w = max(width, 1)
        if node_type == "io":
            return _IO_DELAY / self.gate_delay
        if node_type == "dff":
            return _DFF_CLK_Q / self.gate_delay
        if node_type == "mux":
            return 1.5
        if node_type == "buf":
            return 0.8
        if node_type == "not":
            return 0.5
        if node_type in ("and", "or"):
            return 1.0
        if node_type == "xor":
            return 1.5
        if node_type == "sh":
            return 1.2 * _log2(w)
        if node_type.startswith("reduce_"):
            return (1.5 if node_type.endswith("xor") else 1.0) * _log2(w)
        if node_type == "add":
            return 2.0 + 1.8 * _log2(w)        # carry lookahead
        if node_type in ("eq", "lgt"):
            return 1.5 + 1.0 * _log2(w)
        if node_type == "mul":
            return 4.0 + 3.2 * _log2(w) + 0.15 * w   # Wallace + final CPA
        if node_type in ("div", "mod"):
            return 2.0 * w                      # iterative ripple through rows
        if node_type == "mac":
            # accumulate rides the multiplier's reduction tree: barely
            # deeper than the multiplier alone
            return 4.5 + 3.2 * _log2(w) + 0.15 * w
        raise ValueError(f"no library mapping for node type {node_type!r}")

    # ------------------------------------------------------------------ #
    def cost(self, node_type: str, width: int) -> CellCost:
        """Full :class:`CellCost` of a functional unit (memoized)."""
        key = (node_type, width)
        cached = self._cost_memo.get(key)
        if cached is None:
            cached = self._cost_memo[key] = self._cost(node_type, width)
        return cached

    def _cost(self, node_type: str, width: int) -> CellCost:
        w = max(width, 1)
        if node_type == "dff":
            return CellCost(
                area=_DFF_AREA * w * (self.gate_area / _GATE_AREA),
                delay=self.dff_clk_q,
                energy=_DFF_ENERGY * w,
                leakage=_DFF_LEAKAGE * w,
            )
        gates = self.gate_count(node_type, w)
        return CellCost(
            area=gates * self.gate_area,
            delay=self.stage_depth(node_type, w) * self.gate_delay,
            energy=gates * self.gate_energy,
            leakage=gates * self.gate_leakage,
        )


FREEPDK15 = TechLibrary("freepdk15")
