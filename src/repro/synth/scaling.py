"""Technology-node scaling per Stillmaker & Baas (Integration, 2017).

The DianNao case study (Table 12) scales the original 65nm synthesis
results to the 15nm node SNS targets.  Stillmaker & Baas fit scaling
equations for delay, power, and area across 180nm-7nm; this module
encodes per-node relative factors consistent with their tables (and with
the paper's own Table 12 conversion: 65nm -> 15nm multiplies power by
~0.50, area by ~0.115, and delay by ~0.32).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NODE_FACTORS", "scale_value", "scale_result", "ScaledResult"]

# Relative factors vs the 90nm reference node: (delay, power, area).
# Derived from the Stillmaker-Baas scaling tables for "optimal" operating
# points; ratios between any two nodes reproduce their published trends.
NODE_FACTORS: dict[int, tuple[float, float, float]] = {
    180: (2.10, 3.60, 4.00),
    130: (1.50, 2.00, 2.08),
    90:  (1.00, 1.00, 1.00),
    65:  (0.755, 0.600, 0.521),
    45:  (0.506, 0.369, 0.250),
    32:  (0.357, 0.240, 0.126),
    22:  (0.309, 0.171, 0.0600),
    16:  (0.265, 0.129, 0.0316),
    14:  (0.240, 0.117, 0.0275),
    10:  (0.211, 0.093, 0.0141),
    7:   (0.181, 0.071, 0.0073),
}
# The 15nm entry is interpolated so that the 65nm -> 15nm conversion
# matches Table 12 of the SNS paper: power x0.499, area x0.1149, delay
# x0.324.
NODE_FACTORS[15] = (
    NODE_FACTORS[65][0] * (0.33 / 1.02),
    NODE_FACTORS[65][1] * (65.90 / 132.0),
    NODE_FACTORS[65][2] * (0.097302 / 0.846563),
)


@dataclass(frozen=True)
class ScaledResult:
    timing_ps: float
    area_um2: float
    power_mw: float
    from_node_nm: int
    to_node_nm: int


def _factors(node_nm: int) -> tuple[float, float, float]:
    if node_nm not in NODE_FACTORS:
        raise KeyError(
            f"no scaling factors for {node_nm}nm; known nodes: {sorted(NODE_FACTORS)}")
    return NODE_FACTORS[node_nm]


def scale_value(value: float, metric: str, from_nm: int, to_nm: int) -> float:
    """Scale one metric ('delay' | 'power' | 'area') between nodes."""
    index = {"delay": 0, "timing": 0, "power": 1, "area": 2}
    if metric not in index:
        raise ValueError(f"metric must be delay/timing/power/area: {metric!r}")
    i = index[metric]
    return value * _factors(to_nm)[i] / _factors(from_nm)[i]


def scale_result(timing_ps: float, area_um2: float, power_mw: float,
                 from_nm: int, to_nm: int) -> ScaledResult:
    """Scale a full synthesis result between technology nodes."""
    return ScaledResult(
        timing_ps=scale_value(timing_ps, "delay", from_nm, to_nm),
        area_um2=scale_value(area_um2, "area", from_nm, to_nm),
        power_mw=scale_value(power_mw, "power", from_nm, to_nm),
        from_node_nm=from_nm,
        to_node_nm=to_nm,
    )
