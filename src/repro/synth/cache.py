"""Disk-tier memoization of design-level synthesis results.

A synthesized label is a pure function of four inputs: the elaborated
graph structure, the technology library's cost basis, the effort level,
and the optional register-activity map.  :func:`synthesis_cache_key`
hashes exactly those four (reusing the PR-1 fingerprint infrastructure),
so a dataset rebuild after an unrelated code change — or from a sibling
process in the ``build_design_dataset`` worker pool — replays labels
from disk instead of re-synthesizing.

The store itself is :class:`repro.runtime.cache.PredictionCache` (memory
LRU + atomic-write JSON disk tier); this module only adds the synthesis
key schema and SynthesisResult (de)hydration.  ``repro.runtime`` is
imported lazily inside functions: the import chain runtime -> core ->
synth would otherwise turn a module-level import into a cycle.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

from .synthesizer import SynthesisResult

__all__ = ["SynthesisCache", "synthesis_cache_key"]


def synthesis_cache_key(graph, library, effort: str,
                        activity: dict[int, float] | None = None) -> str:
    """Content-addressed key for one design-level synthesis run."""
    from ..runtime.fingerprint import (fingerprint_activity, fingerprint_graph,
                                       fingerprint_library)

    h = hashlib.sha256(b"synth:v1")
    for part in (fingerprint_graph(graph), fingerprint_library(library),
                 effort, fingerprint_activity(activity)):
        h.update(part.encode())
        h.update(b"|")
    return h.hexdigest()


class SynthesisCache:
    """Two-tier store mapping (graph, library, effort, activity) to labels.

    Parameters
    ----------
    max_entries:
        In-memory LRU capacity.
    disk_dir:
        Optional persistent tier shared across processes — this is what
        lets ``build_design_dataset`` workers and later rebuilds reuse
        each other's synthesis runs.
    """

    def __init__(self, max_entries: int = 4096,
                 disk_dir: str | Path | None = None):
        from ..runtime.cache import PredictionCache

        self._store = PredictionCache(max_entries=max_entries, disk_dir=disk_dir)

    @property
    def stats(self):
        """Hit/miss counters (``repro.runtime.cache.CacheStats``)."""
        return self._store.stats

    def __len__(self) -> int:
        return len(self._store)

    # ------------------------------------------------------------------ #
    def get(self, graph, library, effort: str,
            activity: dict[int, float] | None = None) -> SynthesisResult | None:
        """Return the cached result for this configuration, or ``None``.

        The graph fingerprint excludes the design *name*, so structurally
        identical designs share one entry; the returned result is
        re-stamped with the querying graph's name.
        """
        value = self._store.get(synthesis_cache_key(graph, library, effort,
                                                    activity))
        if value is None:
            return None
        return SynthesisResult(
            design=graph.name,
            timing_ps=value["timing_ps"],
            area_um2=value["area_um2"],
            power_mw=value["power_mw"],
            num_cells=value["num_cells"],
            gate_count=value["gate_count"],
            runtime_s=value["runtime_s"],
        )

    def put(self, graph, library, effort: str, result: SynthesisResult,
            activity: dict[int, float] | None = None) -> None:
        """Store one synthesis outcome (``runtime_s`` keeps the original
        synthesis cost, so cached replays still report what a fresh run
        would have paid)."""
        self._store.put(
            synthesis_cache_key(graph, library, effort, activity),
            {
                "design": result.design,
                "timing_ps": result.timing_ps,
                "area_um2": result.area_um2,
                "power_mw": result.power_mw,
                "num_cells": result.num_cells,
                "gate_count": result.gate_count,
                "runtime_s": result.runtime_s,
            },
        )
