"""Memoization of design-level synthesis results over the artifact store.

A synthesized label is a pure function of four inputs: the elaborated
graph structure, the technology library's cost basis, the effort level,
and the optional register-activity map.  :func:`synthesis_cache_key`
hashes exactly those four (via the unified :mod:`repro.store.keys`
schema, byte-compatible with entries written by earlier revisions), so
a dataset rebuild after an unrelated code change — or from a sibling
process in the ``build_design_dataset`` worker pool — replays labels
from the shared tier instead of re-synthesizing.

The store itself is :class:`repro.store.ArtifactStore` (memory LRU +
optional persistent backend); this module only adds the synthesis key
schema and SynthesisResult (de)hydration.  ``repro.runtime`` is
imported lazily inside functions: the import chain runtime -> core ->
synth would otherwise turn a module-level import into a cycle.
"""

from __future__ import annotations

from pathlib import Path

from ..store import ArtifactStore, DirectoryBackend
from ..store.keys import synth_key
from .synthesizer import SynthesisResult

__all__ = ["SynthesisCache", "synthesis_cache_key"]


def synthesis_cache_key(graph, library, effort: str,
                        activity: dict[int, float] | None = None) -> str:
    """Content-addressed key for one design-level synthesis run."""
    from ..runtime.fingerprint import (fingerprint_activity, fingerprint_graph,
                                       fingerprint_library)

    return synth_key(fingerprint_graph(graph), fingerprint_library(library),
                     effort, fingerprint_activity(activity))


class SynthesisCache:
    """Store mapping (graph, library, effort, activity) to labels.

    Parameters
    ----------
    max_entries:
        In-memory LRU capacity (ignored when ``store`` is shared).
    disk_dir:
        Optional persistent tier in the legacy flat layout — this is
        what lets ``build_design_dataset`` workers and later rebuilds
        reuse each other's synthesis runs.
    store:
        Optional shared :class:`ArtifactStore` to adapt instead of
        owning a private one.
    """

    KIND = "synth"

    def __init__(self, max_entries: int = 4096,
                 disk_dir: str | Path | None = None,
                 store: ArtifactStore | None = None):
        if store is None:
            backend = (DirectoryBackend(disk_dir, flat=True)
                       if disk_dir is not None else None)
            store = ArtifactStore(max_entries=max_entries, backend=backend)
        self.store = store

    @property
    def stats(self):
        """Hit/miss counters (``repro.runtime.cache.CacheStats``)."""
        from ..runtime.cache import CacheStats

        c = self.store.counters((self.KIND,))
        return CacheStats(memory_hits=c["memory_hits"] + c["object_hits"],
                          disk_hits=c["persistent_hits"],
                          misses=c["misses"])

    def __len__(self) -> int:
        return self.store.memory_len(self.KIND)

    # ------------------------------------------------------------------ #
    def get(self, graph, library, effort: str,
            activity: dict[int, float] | None = None) -> SynthesisResult | None:
        """Return the cached result for this configuration, or ``None``.

        The graph fingerprint excludes the design *name*, so structurally
        identical designs share one entry; the returned result is
        re-stamped with the querying graph's name.
        """
        value = self.store.get(self.KIND,
                               synthesis_cache_key(graph, library, effort,
                                                   activity))
        if value is None:
            return None
        return SynthesisResult(
            design=graph.name,
            timing_ps=value["timing_ps"],
            area_um2=value["area_um2"],
            power_mw=value["power_mw"],
            num_cells=value["num_cells"],
            gate_count=value["gate_count"],
            runtime_s=value["runtime_s"],
        )

    def put(self, graph, library, effort: str, result: SynthesisResult,
            activity: dict[int, float] | None = None) -> None:
        """Store one synthesis outcome (``runtime_s`` keeps the original
        synthesis cost, so cached replays still report what a fresh run
        would have paid)."""
        self.store.put(
            self.KIND,
            synthesis_cache_key(graph, library, effort, activity),
            {
                "design": result.design,
                "timing_ps": result.timing_ps,
                "area_um2": result.area_um2,
                "power_mw": result.power_mw,
                "num_cells": result.num_cells,
                "gate_count": result.gate_count,
                "runtime_s": result.runtime_s,
            },
        )
