"""The reference synthesizer — this repo's Synopsys Design Compiler stand-in.

``Synthesizer.synthesize`` maps a GraphIR circuit graph to a cell-level
netlist, runs optimization passes (CSE, MAC fusion, buffer insertion),
performs iterative timing-driven gate sizing, and reports area, power,
and timing.  Like the real tool, its runtime grows with design size and
optimization effort — this is what makes the Figure 7 speedup experiment
meaningful.

It also labels individual circuit paths (``synthesize_path``) for the
Circuit Path Dataset (Table 5), and batches of them in one shot
(``synthesize_path_batch``).

Two execution engines produce bit-identical results:

- ``engine="array"`` (default) — the :mod:`repro.synth.engine`
  array-compiled kernel: the netlist is flattened once, STA runs as
  vectorized level sweeps, and the gate-sizing loop is incremental
  (only the ``delay_scale`` vector changes between iterations).
- ``engine="reference"`` — the original per-cell dict walk, kept as the
  parity oracle (the ``train_*_reference`` pattern).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..graphir import CircuitGraph, Vocabulary, parse_token
from .library import FREEPDK15, TechLibrary
from .netlist import MappedNetlist
from .passes import buffer_insertion, common_subexpression_elimination, mac_fusion
from .power import total_area, total_power
from .timing import TimingReport, static_timing_analysis

__all__ = ["SynthesisResult", "PathResult", "Synthesizer", "EFFORT_PASSES",
           "SYNTH_ENGINES"]

EFFORT_PASSES = {"low": 4, "medium": 12, "high": 30}
SYNTH_ENGINES = ("array", "reference")


@dataclass(frozen=True)
class SynthesisResult:
    """Design-level synthesis outcome (Table 4 row format)."""

    design: str
    timing_ps: float
    area_um2: float
    power_mw: float
    num_cells: int
    gate_count: float
    runtime_s: float

    @property
    def area_mm2(self) -> float:
        return self.area_um2 * 1e-6

    @property
    def frequency_ghz(self) -> float:
        return 1000.0 / self.timing_ps if self.timing_ps > 0 else float("inf")


@dataclass(frozen=True)
class PathResult:
    """Path-level synthesis outcome (Table 5 row format)."""

    tokens: tuple[str, ...]
    timing_ps: float
    area_um2: float
    power_mw: float


class Synthesizer:
    """Technology-mapping synthesis estimator.

    Parameters
    ----------
    library:
        The target technology library (defaults to the FreePDK15-like
        library).
    effort:
        'low' | 'medium' | 'high' — number of timing-driven gate-sizing
        iterations, each a full-netlist pass (runtime/quality knob, like
        DC's compile effort).
    engine:
        'array' (default) runs STA and gate sizing on the vectorized
        :mod:`repro.synth.engine` kernel; 'reference' keeps the original
        per-cell implementation.  Results are bit-identical either way.
    """

    def __init__(self, library: TechLibrary | None = None, effort: str = "medium",
                 engine: str = "array"):
        if effort not in EFFORT_PASSES:
            raise ValueError(f"effort must be one of {sorted(EFFORT_PASSES)}: {effort!r}")
        if engine not in SYNTH_ENGINES:
            raise ValueError(f"engine must be one of {SYNTH_ENGINES}: {engine!r}")
        self.library = library or FREEPDK15
        self.effort = effort
        self.engine = engine

    # ------------------------------------------------------------------ #
    def synthesize(self, graph: CircuitGraph,
                   activity: dict[int, float] | None = None) -> SynthesisResult:
        """Synthesize a design and report area/power/timing.

        ``activity`` optionally maps GraphIR register node ids to activity
        coefficients for power gating (Section 3.4.4 of the paper).
        """
        start = time.perf_counter()
        net = MappedNetlist.from_graphir(graph)

        common_subexpression_elimination(net)
        if self.engine == "array":
            from .engine import array_sta

            # The fusion timing guard only reads arrival values, and only
            # for mul->add candidates.  Fusion never creates a candidate
            # that did not exist beforehand (a fused consumer becomes a
            # ``mac``, never an ``add``), so when the pre-scan finds none
            # the STA pass can be skipped outright; otherwise feed the
            # vectorized STA's (identical) arrivals.
            has_candidate = any(
                c.cell_type == "mul" and len(net.succ[cid]) == 1
                and net.cells[next(iter(net.succ[cid]))].cell_type == "add"
                for cid, c in net.cells.items())
            arrival = (array_sta(net, self.library).arrival
                       if has_candidate else {})
            mac_fusion(net, library=self.library, arrival=arrival)
        else:
            mac_fusion(net, library=self.library)
        buffer_insertion(net)

        report = self._size_gates(net)

        area = total_area(net, self.library)
        freq = report.max_frequency_ghz if report.critical_path_ps > 0 else 0.0
        power = total_power(net, self.library, freq, activity=activity)
        gates = sum(
            self.library.gate_count(c.cell_type, c.width) for c in net.cells.values()
        )
        runtime = time.perf_counter() - start
        return SynthesisResult(
            design=graph.name,
            timing_ps=report.critical_path_ps,
            area_um2=area,
            power_mw=power,
            num_cells=net.num_cells,
            gate_count=gates,
            runtime_s=runtime,
        )

    # ------------------------------------------------------------------ #
    def _size_gates(self, net: MappedNetlist) -> TimingReport:
        """Iterative timing-driven gate sizing.

        Each iteration runs a full STA, upsizes cells on the critical path
        (faster but larger), and downsizes cells with large slack (smaller
        but slower) — converging toward a balanced design, exactly the
        inner loop that dominates commercial synthesis runtime.

        On the array engine the netlist is compiled once and each
        iteration re-sweeps only the changed ``delay_scale`` vector.
        """
        passes = EFFORT_PASSES[self.effort]
        if self.engine == "array":
            from .engine import size_gates_array

            return size_gates_array(net, self.library, passes)
        report = static_timing_analysis(net, self.library)
        for _ in range(passes):
            if not report.critical_cells:
                break
            critical_set = set(report.critical_cells)
            worst = report.critical_path_ps
            improved = False
            for cid, cell in net.cells.items():
                if cid in critical_set and cell.delay_scale > 0.72:
                    cell.delay_scale *= 0.94
                    cell.area_scale *= 1.06
                    improved = True
                elif cid not in critical_set and cell.delay_scale < 1.15:
                    # Relax only cells with comfortable slack.
                    if report.arrival.get(cid, 0.0) < 0.5 * worst:
                        cell.delay_scale *= 1.02
                        cell.area_scale *= 0.99
            report = static_timing_analysis(net, self.library)
            if not improved:
                break
        return report

    # ------------------------------------------------------------------ #
    def synthesize_path(self, tokens: list[str]) -> PathResult:
        """Label one complete circuit path (a token chain) — Table 5 rows.

        The path is synthesized as a standalone chain of functional units,
        including MAC fusion, so the label depends on token *order*: the
        paper's [mul, add] vs [add, mul] example produces different
        timing/area here.
        """
        graph = path_to_graph(tokens)
        net = MappedNetlist.from_graphir(graph)
        mac_fusion(net)
        report = static_timing_analysis(net, self.library)
        area = total_area(net, self.library)
        freq = report.max_frequency_ghz if report.critical_path_ps > 0 else 0.0
        power = total_power(net, self.library, freq)
        return PathResult(
            tokens=tuple(tokens),
            timing_ps=report.critical_path_ps,
            area_um2=area,
            power_mw=power,
        )

    # ------------------------------------------------------------------ #
    def synthesize_path_batch(self, paths) -> list[PathResult]:
        """Label many token chains at once — bit-identical to calling
        :meth:`synthesize_path` per chain.

        On the array engine, linear chains reduce to closed-form
        cumulative sweeps over precomputed library cost tables with MAC
        fusion applied as a vectorized adjacent-pair rewrite; the
        reference engine loops :meth:`synthesize_path` (parity oracle).
        """
        if self.engine == "array":
            from .engine import synthesize_path_batch

            return synthesize_path_batch(paths, self.library)
        return [self.synthesize_path(list(p)) for p in paths]


def path_to_graph(tokens: list[str]) -> CircuitGraph:
    """Build a linear CircuitGraph from a token chain like ['io8','mul16',...]."""
    if not tokens:
        raise ValueError("a circuit path needs at least one token")
    vocab = _standard_vocab()
    graph = CircuitGraph("path")
    prev = None
    for token in tokens:
        if token not in vocab:
            raise KeyError(f"token not in vocabulary: {token!r}")
        node_type, width = parse_token(token)
        nid = graph.add_node(node_type, width)
        if prev is not None:
            graph.add_edge(prev, nid)
        prev = nid
    return graph


def _standard_vocab() -> Vocabulary:
    """Module-cached standard vocabulary — per-path labeling used to
    rebuild all 79 tokens on every call."""
    global _PATH_VOCAB
    if _PATH_VOCAB is None:
        _PATH_VOCAB = Vocabulary.standard()
    return _PATH_VOCAB


_PATH_VOCAB: Vocabulary | None = None
