"""Netlist optimization passes.

Three classical transforms the Synopsys-DC stand-in applies before cost
extraction:

- **Common subexpression elimination** — sibling cells with identical
  type, width, and fanin are merged (logic sharing).
- **MAC fusion** — a multiplier whose single consumer is an adder fuses
  into one multiply-accumulate cell.  This is the paper's own example of
  order sensitivity: ``[mul, add]`` synthesizes cheaper than ``[add,
  mul]``, which a bag-of-counts model cannot distinguish.
- **Buffer insertion** — cells with large fanout get buffer trees,
  costing area and delay.
"""

from __future__ import annotations

from .netlist import MappedNetlist

__all__ = ["common_subexpression_elimination", "mac_fusion", "buffer_insertion"]

MAX_FANOUT = 6


def common_subexpression_elimination(net: MappedNetlist) -> int:
    """Merge duplicate combinational cells; returns cells removed."""
    removed = 0
    changed = True
    while changed:
        changed = False
        seen: dict[tuple, int] = {}
        for cid in list(net.cells):
            cell = net.cells.get(cid)
            if cell is None or cell.is_sequential or cell.cell_type == "io":
                continue
            key = (cell.cell_type, cell.width, tuple(sorted(net.pred[cid])))
            if not key[2]:
                continue  # don't merge source cells
            if key in seen and seen[key] != cid:
                net.redirect(cid, seen[key])
                removed += 1
                changed = True
            else:
                seen[key] = cid
    return removed


def mac_fusion(net: MappedNetlist, library=None, arrival=None) -> int:
    """Fuse mul->add pairs into `mac` cells; returns fusions performed.

    Fusion is cost-guarded like a commercial tool's:

    - **area**: a fused MAC takes the max of the two widths, so fusing a
      narrow multiplier into a wide adder (or vice versa) can cost more
      than the separate cells — such candidates are skipped;
    - **timing** (when a ``library`` is given): the MAC is deeper than
      the adder alone, so a candidate fuses only if the local worst
      arrival does not increase.  Without a library only the area guard
      applies — adequate for linear path labeling, where every input
      enters through the multiplier.

    ``arrival`` optionally supplies a precomputed arrival map for the
    timing guard (e.g. from the array STA engine, whose arrivals are
    bit-identical to the reference); when omitted and a ``library`` is
    given, one reference STA pass computes it here.
    """
    from .library import FREEPDK15

    cost_lib = library or FREEPDK15
    if library is not None and arrival is None:
        from .timing import static_timing_analysis

        arrival = static_timing_analysis(net, library).arrival
    elif library is None:
        arrival = None

    fused = 0
    for cid in list(net.cells):
        cell = net.cells.get(cid)
        if cell is None or cell.cell_type != "mul":
            continue
        succs = net.succ[cid]
        if len(succs) != 1:
            continue
        add_id = next(iter(succs))
        consumer = net.cells.get(add_id)
        if consumer is None or consumer.cell_type != "add":
            continue
        mac_width = max(consumer.width, cell.width)

        # Area guard: skip width-mismatched candidates that would grow.
        if (cost_lib.cost("mac", mac_width).area >
                cost_lib.cost("mul", cell.width).area
                + cost_lib.cost("add", consumer.width).area + 1e-12):
            continue

        if arrival is not None:
            mul_cost = library.cost("mul", cell.width)
            add_cost = library.cost("add", consumer.width)
            mac_cost = library.cost("mac", mac_width)
            arr_mul_side = max((arrival.get(p, 0.0) for p in net.pred[cid]),
                               default=0.0)
            arr_other = max((arrival.get(p, 0.0) for p in net.pred[add_id]
                             if p != cid), default=0.0)
            before = max(arr_other + add_cost.delay,
                         arr_mul_side + mul_cost.delay + add_cost.delay)
            after = max(arr_other, arr_mul_side) + mac_cost.delay
            if after > before + 1e-9:
                continue

        # Fuse: the adder becomes a mac; the multiplier's fanin moves to it.
        consumer.cell_type = "mac"
        consumer.width = mac_width
        for p in list(net.pred[cid]):
            net.remove_edge(p, cid)
            net.add_edge(p, add_id)
        net.remove_cell(cid)
        fused += 1
    return fused


def buffer_insertion(net: MappedNetlist) -> int:
    """Split fanout above MAX_FANOUT with buffer cells; returns buffers added."""
    added = 0
    for cid in list(net.cells):
        if cid not in net.cells:
            continue
        fanout = list(net.succ[cid])
        while len(fanout) > MAX_FANOUT:
            # Move one buffer's worth of sinks behind a buffer cell.
            group, fanout = fanout[:MAX_FANOUT], fanout[MAX_FANOUT:]
            buf = net.add_cell("buf", net.cells[cid].width)
            for dst in group:
                net.remove_edge(cid, dst)
                net.add_edge(buf, dst)
            net.add_edge(cid, buf)
            fanout.append(buf)
            added += 1
    return added
