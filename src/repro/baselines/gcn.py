"""A GRANNITE-style GCN power baseline (Zhang et al., DAC 2020).

GRANNITE predicts circuit power with a graph convolutional network over
the netlist.  This baseline follows that recipe at our scale: GCN layers
``h' = ReLU(W_self h + W_neigh mean(h_in))`` over the GraphIR, a global
mean-pool readout (power is an aggregate, unlike timing's max), and a
linear head regressing log power.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..graphir import CircuitGraph, Vocabulary
from .gnn_ops import global_mean_pool, segment_mean_neighbors

__all__ = ["GCNConfig", "GCNPowerModel"]


@dataclass(frozen=True)
class GCNConfig:
    hidden_size: int = 32
    num_layers: int = 3
    epochs: int = 60
    lr: float = 0.005
    seed: int = 0
    max_nodes: int = 5000


class GCNPowerModel:
    """GCN regression of design-level power."""

    def __init__(self, config: GCNConfig | None = None, vocab: Vocabulary | None = None):
        self.config = config or GCNConfig()
        self.vocab = vocab or Vocabulary.standard()
        rng = np.random.default_rng(self.config.seed)
        h = self.config.hidden_size
        self.embed = nn.Embedding(len(self.vocab), h, rng=rng)
        self.self_layers = [nn.Linear(h, h, rng=rng)
                            for _ in range(self.config.num_layers)]
        self.neigh_layers = [nn.Linear(h, h, rng=rng)
                             for _ in range(self.config.num_layers)]
        self.head = nn.Linear(h, 1, rng=rng)
        self._mean = 0.0
        self._std = 1.0
        self._fitted = False

    # ------------------------------------------------------------------ #
    def _encode(self, graph: CircuitGraph):
        ids = graph.node_ids()
        index = {nid: i for i, nid in enumerate(ids)}
        tokens = np.array([self.vocab.id_of(graph.node(nid).token) for nid in ids])
        edges = graph.edges()
        if edges:
            src = np.array([index[s] for s, _ in edges])
            dst = np.array([index[d] for _, d in edges])
        else:
            src = dst = np.zeros(0, dtype=np.int64)
        return tokens, src, dst, len(ids)

    def _forward(self, tokens, src, dst, n) -> nn.Tensor:
        x = self.embed(tokens)
        for w_self, w_neigh in zip(self.self_layers, self.neigh_layers):
            neigh = segment_mean_neighbors(x, src, dst, n)
            x = (w_self(x) + w_neigh(neigh)).relu()
        pooled = global_mean_pool(x)
        return self.head(pooled.reshape(1, -1)).reshape(1)

    # ------------------------------------------------------------------ #
    def fit(self, graphs: list[CircuitGraph], powers_mw: np.ndarray,
            verbose: bool = False) -> "GCNPowerModel":
        cfg = self.config
        usable = [(g, p) for g, p in zip(graphs, powers_mw)
                  if g.num_nodes <= cfg.max_nodes]
        if len(usable) < 2:
            raise ValueError("need at least 2 training graphs under max_nodes")
        encoded = [self._encode(g) for g, _ in usable]
        targets = np.log1p(np.array([p for _, p in usable]))
        self._mean = float(targets.mean())
        self._std = float(targets.std()) or 1.0
        norm = (targets - self._mean) / self._std

        params = self.embed.parameters() + self.head.parameters()
        for layer in self.self_layers + self.neigh_layers:
            params.extend(layer.parameters())
        opt = nn.Adam(params, lr=cfg.lr)
        rng = np.random.default_rng(cfg.seed)
        for epoch in range(cfg.epochs):
            order = rng.permutation(len(encoded))
            losses = []
            for i in order:
                pred = self._forward(*encoded[i])
                loss = nn.mse_loss(pred, np.array([norm[i]]))
                opt.zero_grad()
                loss.backward()
                nn.clip_grad_norm(params, 5.0)
                opt.step()
                losses.append(loss.item())
            if verbose and epoch % 10 == 0:
                print(f"[gcn] epoch {epoch:3d} loss {np.mean(losses):.4f}")
        self._fitted = True
        return self

    def predict(self, graphs: list[CircuitGraph]) -> np.ndarray:
        """Predicted power (mW) per design."""
        if not self._fitted:
            raise RuntimeError("fit() must be called before predict()")
        out = []
        with nn.no_grad():
            for g in graphs:
                norm = self._forward(*self._encode(g)).numpy()[0]
                out.append(np.expm1(norm * self._std + self._mean))
        return np.array(out).clip(min=0.0)
