"""A from-scratch random-forest regressor (the Pyramid-style baseline).

Pyramid (Makrani et al., FPL 2019) estimates HLS resource usage with an
ensemble of traditional models — Random Forests chief among them.  This
module implements CART regression trees (variance-reduction splits) and
a bootstrap-aggregated forest with per-split feature subsampling, used
as a design-level baseline over graph-statistics features.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphir import CircuitGraph, Vocabulary, stats_vector, structural_features, weighted_features

__all__ = ["DecisionTreeRegressor", "RandomForestRegressor", "ForestDesignModel"]


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeRegressor:
    """CART regression tree minimizing within-node variance."""

    def __init__(self, max_depth: int = 8, min_samples_leaf: int = 2,
                 max_features: int | None = None,
                 rng: np.random.Generator | None = None):
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1: {max_depth}")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = rng or np.random.default_rng(0)
        self._root: _Node | None = None

    # ------------------------------------------------------------------ #
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or len(X) != len(y):
            raise ValueError(f"bad shapes: X {X.shape}, y {y.shape}")
        self._root = self._build(X, y, depth=0)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()))
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf \
                or np.allclose(y, y[0]):
            return node
        split = self._best_split(X, y)
        if split is None:
            return node
        feature, threshold = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, X: np.ndarray, y: np.ndarray):
        n_features = X.shape[1]
        k = self.max_features or n_features
        candidates = self._rng.choice(n_features, size=min(k, n_features),
                                      replace=False)
        best = None
        best_score = np.inf
        total = len(y)
        for feature in candidates:
            values = np.unique(X[:, feature])
            if len(values) < 2:
                continue
            thresholds = (values[:-1] + values[1:]) / 2.0
            for threshold in thresholds:
                mask = X[:, feature] <= threshold
                n_left = int(mask.sum())
                if n_left < self.min_samples_leaf or total - n_left < self.min_samples_leaf:
                    continue
                score = (y[mask].var() * n_left
                         + y[~mask].var() * (total - n_left))
                if score < best_score:
                    best_score = score
                    best = (int(feature), float(threshold))
        return best

    # ------------------------------------------------------------------ #
    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("fit() must be called before predict()")
        X = np.asarray(X, dtype=np.float64)
        return np.array([self._predict_one(row) for row in X])

    def _predict_one(self, row: np.ndarray) -> float:
        node = self._root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value

    def depth(self) -> int:
        def walk(node, d):
            if node is None or node.is_leaf:
                return d
            return max(walk(node.left, d + 1), walk(node.right, d + 1))
        return walk(self._root, 0)


class RandomForestRegressor:
    """Bootstrap-aggregated CART trees with sqrt-feature subsampling."""

    def __init__(self, n_trees: int = 30, max_depth: int = 8,
                 min_samples_leaf: int = 2, seed: int = 0):
        if n_trees < 1:
            raise ValueError(f"n_trees must be >= 1: {n_trees}")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed
        self._trees: list[DecisionTreeRegressor] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        n, d = X.shape
        max_features = max(1, int(np.sqrt(d)))
        self._trees = []
        for _ in range(self.n_trees):
            idx = rng.integers(0, n, size=n)  # bootstrap sample
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                rng=np.random.default_rng(rng.integers(2 ** 31)))
            tree.fit(X[idx], y[idx])
            self._trees.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("fit() must be called before predict()")
        return np.mean([tree.predict(X) for tree in self._trees], axis=0)


class ForestDesignModel:
    """Design-level [timing, area, power] via one forest per target."""

    def __init__(self, n_trees: int = 30, seed: int = 0,
                 vocab: Vocabulary | None = None):
        self.vocab = vocab or Vocabulary.standard()
        self._forests = [RandomForestRegressor(n_trees=n_trees, seed=seed + i)
                         for i in range(3)]

    def featurize(self, graph: CircuitGraph) -> np.ndarray:
        return np.log1p(np.concatenate([
            stats_vector(graph, self.vocab),
            structural_features(graph),
            weighted_features(graph),
        ]))

    def fit(self, graphs: list[CircuitGraph], labels: np.ndarray) -> "ForestDesignModel":
        X = np.stack([self.featurize(g) for g in graphs])
        logs = np.log1p(np.asarray(labels, dtype=np.float64))
        for i, forest in enumerate(self._forests):
            forest.fit(X, logs[:, i])
        return self

    def predict(self, graphs: list[CircuitGraph]) -> np.ndarray:
        X = np.stack([self.featurize(g) for g in graphs])
        out = np.stack([forest.predict(X) for forest in self._forests], axis=1)
        return np.expm1(out).clip(min=0.0)
