"""Linear-regression baselines.

Section 3.3 motivates the Circuitformer by noting that "the simplest and
most intuitive model ... is a linear regression model that takes counts
of each type of vertices on a circuit path as inputs" — and that such a
model cannot distinguish [mul, add] from [add, mul].  This module
implements that baseline at both path level and design level (ridge
regression in closed form, fitted on log targets).
"""

from __future__ import annotations

import numpy as np

from ..graphir import CircuitGraph, Vocabulary, stats_vector, structural_features

__all__ = ["RidgeRegression", "PathCountLinearModel", "DesignStatsLinearModel"]


class RidgeRegression:
    """Closed-form ridge regression: w = (X'X + aI)^-1 X'y (with bias)."""

    def __init__(self, alpha: float = 1.0):
        self.alpha = alpha
        self.weights: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgeRegression":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or len(X) != len(y):
            raise ValueError(f"bad shapes: X {X.shape}, y {y.shape}")
        Xb = np.hstack([X, np.ones((len(X), 1))])
        d = Xb.shape[1]
        reg = self.alpha * np.eye(d)
        reg[-1, -1] = 0.0  # don't penalize the bias
        self.weights = np.linalg.solve(Xb.T @ Xb + reg, Xb.T @ y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("fit() must be called before predict()")
        X = np.asarray(X, dtype=np.float64)
        Xb = np.hstack([X, np.ones((len(X), 1))])
        return Xb @ self.weights


class PathCountLinearModel:
    """Per-path [timing, area, power] from bag-of-token counts.

    By construction this model is order-blind: permuting a path's tokens
    cannot change its prediction (the property the Circuitformer fixes).
    """

    def __init__(self, alpha: float = 1.0, vocab: Vocabulary | None = None):
        self.vocab = vocab or Vocabulary.standard()
        self._model = RidgeRegression(alpha)

    def featurize(self, tokens: tuple[str, ...]) -> np.ndarray:
        counts = np.zeros(self.vocab.circuit_size + 1)
        for t in tokens:
            counts[self.vocab.id_of(t) - self.vocab.NUM_SPECIAL] += 1
        counts[-1] = len(tokens)
        return counts

    def fit(self, token_seqs: list[tuple[str, ...]], labels: np.ndarray) -> "PathCountLinearModel":
        X = np.stack([self.featurize(t) for t in token_seqs])
        self._model.fit(X, np.log1p(np.asarray(labels, dtype=np.float64)))
        return self

    def predict(self, token_seqs: list[tuple[str, ...]]) -> np.ndarray:
        X = np.stack([self.featurize(t) for t in token_seqs])
        return np.expm1(self._model.predict(X)).clip(min=0.0)


class DesignStatsLinearModel:
    """Design-level [timing, area, power] from graph statistics alone."""

    def __init__(self, alpha: float = 1.0, vocab: Vocabulary | None = None):
        self.vocab = vocab or Vocabulary.standard()
        self._model = RidgeRegression(alpha)

    def featurize(self, graph: CircuitGraph) -> np.ndarray:
        return np.log1p(np.concatenate([
            stats_vector(graph, self.vocab),
            structural_features(graph),
        ]))

    def fit(self, graphs: list[CircuitGraph], labels: np.ndarray) -> "DesignStatsLinearModel":
        X = np.stack([self.featurize(g) for g in graphs])
        self._model.fit(X, np.log1p(np.asarray(labels, dtype=np.float64)))
        return self

    def predict(self, graphs: list[CircuitGraph]) -> np.ndarray:
        X = np.stack([self.featurize(g) for g in graphs])
        return np.expm1(self._model.predict(X)).clip(min=0.0)
