"""``repro.baselines`` — comparison models from the paper and its
related work (Table 8).

- Linear regression over vertex counts (the order-blind strawman of
  Section 3.3), at path and design level.
- A D-SAGE-style GraphSAGE timing predictor (the paper's state-of-the-art
  comparison, Section 5.3).
- A GRANNITE-style GCN power predictor.
- A Pyramid-style random-forest design model (from-scratch CART trees).
"""

from .linear import RidgeRegression, PathCountLinearModel, DesignStatsLinearModel
from .gnn_ops import segment_mean_neighbors, global_mean_pool, global_max_pool
from .dsage import DSAGEConfig, DSAGETimingModel
from .gcn import GCNConfig, GCNPowerModel
from .forest import DecisionTreeRegressor, RandomForestRegressor, ForestDesignModel

__all__ = [
    "RidgeRegression", "PathCountLinearModel", "DesignStatsLinearModel",
    "segment_mean_neighbors", "global_mean_pool", "global_max_pool",
    "DSAGEConfig", "DSAGETimingModel",
    "GCNConfig", "GCNPowerModel",
    "DecisionTreeRegressor", "RandomForestRegressor", "ForestDesignModel",
]
