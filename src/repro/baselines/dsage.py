"""A D-SAGE-style GraphSAGE baseline (Ustun et al., ICCAD 2020).

D-SAGE is the paper's state-of-the-art comparison point: a customized
GraphSage model predicting timing.  This implementation follows the
GraphSAGE-mean recipe — each layer concatenates a node's state with the
mean of its neighbors' states and applies a linear+ReLU — stacked K deep,
with a global max-pool readout regressing the design's critical-path
timing (max-pool mirrors timing's max-reduction semantics).

Section 2 of the SNS paper explains why this architecture struggles on
deep circuit paths: a K-layer GNN only sees K hops, while circuit paths
run hundreds of nodes deep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..graphir import CircuitGraph, Vocabulary
from .gnn_ops import global_max_pool, segment_mean_neighbors

__all__ = ["DSAGEConfig", "DSAGETimingModel"]


@dataclass(frozen=True)
class DSAGEConfig:
    hidden_size: int = 32
    num_layers: int = 3
    epochs: int = 60
    lr: float = 0.005
    seed: int = 0
    max_nodes: int = 5000  # full-graph message passing budget per design


class DSAGETimingModel:
    """GraphSAGE regression of design-level timing."""

    def __init__(self, config: DSAGEConfig | None = None, vocab: Vocabulary | None = None):
        self.config = config or DSAGEConfig()
        self.vocab = vocab or Vocabulary.standard()
        rng = np.random.default_rng(self.config.seed)
        h = self.config.hidden_size
        self.embed = nn.Embedding(len(self.vocab), h, rng=rng)
        self.layers = [nn.Linear(2 * h, h, rng=rng) for _ in range(self.config.num_layers)]
        self.head = nn.Linear(h, 1, rng=rng)
        self._scale_mean = 0.0
        self._scale_std = 1.0
        self._fitted = False

    # ------------------------------------------------------------------ #
    def _encode_graph(self, graph: CircuitGraph):
        node_ids = graph.node_ids()
        index = {nid: i for i, nid in enumerate(node_ids)}
        tokens = np.array([self.vocab.id_of(graph.node(nid).token) for nid in node_ids])
        edges = graph.edges()
        if edges:
            src = np.array([index[s] for s, _ in edges])
            dst = np.array([index[d] for _, d in edges])
        else:
            src = dst = np.zeros(0, dtype=np.int64)
        return tokens, src, dst, len(node_ids)

    def _forward_graph(self, tokens, src, dst, n) -> nn.Tensor:
        x = self.embed(tokens)
        for layer in self.layers:
            neigh = segment_mean_neighbors(x, src, dst, n)
            combined = nn.concatenate([x, neigh], axis=1)
            x = layer(combined).relu()
        pooled = global_max_pool(x)
        return self.head(pooled.reshape(1, -1)).reshape(1)

    # ------------------------------------------------------------------ #
    def fit(self, graphs: list[CircuitGraph], timings_ps: np.ndarray,
            verbose: bool = False) -> "DSAGETimingModel":
        if len(graphs) < 2:
            raise ValueError("need at least 2 training graphs")
        cfg = self.config
        usable = [(g, t) for g, t in zip(graphs, timings_ps)
                  if g.num_nodes <= cfg.max_nodes]
        if len(usable) < 2:
            raise ValueError("too few graphs under the max_nodes budget")
        encoded = [self._encode_graph(g) for g, _ in usable]
        targets = np.log1p(np.array([t for _, t in usable]))
        self._scale_mean = float(targets.mean())
        self._scale_std = float(targets.std()) or 1.0
        norm_targets = (targets - self._scale_mean) / self._scale_std

        params = self.embed.parameters() + self.head.parameters()
        for layer in self.layers:
            params.extend(layer.parameters())
        opt = nn.Adam(params, lr=cfg.lr)
        rng = np.random.default_rng(cfg.seed)
        for epoch in range(cfg.epochs):
            order = rng.permutation(len(encoded))
            losses = []
            for i in order:
                tokens, src, dst, n = encoded[i]
                pred = self._forward_graph(tokens, src, dst, n)
                loss = nn.mse_loss(pred, np.array([norm_targets[i]]))
                opt.zero_grad()
                loss.backward()
                nn.clip_grad_norm(params, 5.0)
                opt.step()
                losses.append(loss.item())
            if verbose and epoch % 10 == 0:
                print(f"[d-sage] epoch {epoch:3d} loss {np.mean(losses):.4f}")
        self._fitted = True
        return self

    def predict(self, graphs: list[CircuitGraph]) -> np.ndarray:
        """Predicted timing (ps) per design."""
        if not self._fitted:
            raise RuntimeError("fit() must be called before predict()")
        out = []
        with nn.no_grad():
            for g in graphs:
                tokens, src, dst, n = self._encode_graph(g)
                norm = self._forward_graph(tokens, src, dst, n).numpy()[0]
                out.append(np.expm1(norm * self._scale_std + self._scale_mean))
        return np.array(out).clip(min=0.0)
