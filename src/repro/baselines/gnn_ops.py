"""Sparse graph operations for the GNN baseline, with autograd support."""

from __future__ import annotations

import numpy as np

from ..nn.tensor import Tensor

__all__ = ["segment_mean_neighbors", "global_mean_pool", "global_max_pool"]


def segment_mean_neighbors(x: Tensor, edge_src: np.ndarray, edge_dst: np.ndarray,
                           num_nodes: int) -> Tensor:
    """Mean of in-neighbor features per node.

    out[v] = mean over edges (u -> v) of x[u]; nodes with no in-edges get
    zeros.  Differentiable with respect to ``x``.
    """
    edge_src = np.asarray(edge_src, dtype=np.int64)
    edge_dst = np.asarray(edge_dst, dtype=np.int64)
    if edge_src.shape != edge_dst.shape:
        raise ValueError("edge_src and edge_dst must have the same shape")

    counts = np.bincount(edge_dst, minlength=num_nodes).astype(np.float64)
    denom = np.maximum(counts, 1.0)

    out_data = np.zeros((num_nodes, x.shape[1]))
    np.add.at(out_data, edge_dst, x.data[edge_src])
    out_data /= denom[:, None]

    out = x._make_child(out_data, (x,), "segment_mean")
    if out.requires_grad:
        def _backward(grad):
            scaled = grad / denom[:, None]
            gx = np.zeros_like(x.data)
            np.add.at(gx, edge_src, scaled[edge_dst])
            x._accumulate(gx)
        out._backward = _backward
    return out


def global_mean_pool(x: Tensor) -> Tensor:
    """Mean over all nodes: (N, D) -> (D,)."""
    return x.mean(axis=0)


def global_max_pool(x: Tensor) -> Tensor:
    """Max over all nodes: (N, D) -> (D,)."""
    return x.max(axis=0)
