"""The DianNao accelerator generator (Figure 9 of the paper).

Three pipeline stages (Chen et al., ASPLOS 2014):

- **NFU-1**: Tn x Tn multipliers (integer or floating-point per the
  configured datatype);
- **NFU-2**: Tn adder trees of Tn inputs each, built hierarchically in
  groups of ``reduction_width``;
- **NFU-3**: Tn activation units — piecewise-linear approximation with
  ``activation_entries`` breakpoint/slope/offset table entries.

Pipeline registers follow the configured stage split; register labels
carry an ``nfu<k>`` prefix so the performance model can attach activity
coefficients per stage.
"""

from __future__ import annotations

from ..hdl import Circuit, Module, Signal, adder_tree, mux_tree, pipeline
from .config import DianNaoConfig

__all__ = ["DianNao"]


def _multiply(c: Circuit, a: Signal, b: Signal, cfg: DianNaoConfig, tag: str) -> Signal:
    """One NFU-1 multiplier in the configured datatype.

    With a multi-cycle NFU-1 budget (pipeline_stages=8), integer
    multipliers are internally pipelined: half-width partial products in
    the first stage, a registered reduction in the second — shortening
    the per-stage critical path the way a real pipelined multiplier does.
    """
    dt = cfg.dtype
    staged = cfg.stage_split[0] >= 2
    if not dt.is_float:
        out_w = min(2 * dt.total_bits, 64)
        if not staged:
            return (a * b).resized(out_w)
        half = max(dt.total_bits // 2, 1)
        a_lo, a_hi = a.resized(half), (a >> half).resized(half)
        b_lo, b_hi = b.resized(half), (b >> half).resized(half)
        ll = c.reg(a_lo * b_lo, f"{tag}_pp0")
        lh = c.reg(a_lo * b_hi, f"{tag}_pp1")
        hl = c.reg(a_hi * b_lo, f"{tag}_pp2")
        hh = c.reg(a_hi * b_hi, f"{tag}_pp3")
        combined = (ll.resized(out_w) + ((lh + hl) << half).resized(out_w)
                    + (hh << (2 * half)).resized(out_w))
        return combined
    # Floating point: a full IEEE-style multiplier — exponent add, mantissa
    # multiply, leading-zero normalize (barrel shift), round-to-nearest
    # (carry adder), and inf/nan exception handling.  This overhead is why
    # synthesized FP units cost several times their raw mantissa multiplier
    # (and why DianNao's int16 beats bf16 in Figure 11's cost model).
    exp_a = (a >> dt.mantissa_bits).resized(dt.exponent_bits)
    exp_b = (b >> dt.mantissa_bits).resized(dt.exponent_bits)
    man_a = a.resized(dt.mantissa_bits)
    man_b = b.resized(dt.mantissa_bits)
    exp_sum = exp_a + exp_b
    man_prod = man_a * man_b
    if staged:
        man_prod = c.reg(man_prod, f"{tag}_manp")
        exp_sum = c.reg(exp_sum, f"{tag}_exps")
    prod_w = man_prod.width
    lead = man_prod.reduce_or()
    norm = (man_prod << lead.resized(1)).resized(prod_w)
    rounded = (norm + 1) >> 1                       # round to nearest
    exp_adj = exp_sum + rounded.resized(1)          # carry-out renormalize
    # Exceptions: exponent overflow/underflow and zero/nan propagation.
    overflow = exp_adj.reduce_and()
    underflow = exp_adj.reduce_or()
    special = overflow | ~underflow
    packed = (exp_adj.resized(dt.total_bits) << dt.mantissa_bits) | rounded.resized(dt.mantissa_bits)
    result = c.mux(special, packed ^ packed, packed)
    return result.resized(min(2 * dt.total_bits, 64))


def _accumulate(c: Circuit, terms: list[Signal], cfg: DianNaoConfig) -> Signal:
    """One NFU-2 reduction tree, hierarchical in reduction_width groups."""
    dt = cfg.dtype
    if dt.is_float:
        # Each FP add is a full IEEE adder: exponent compare, operand swap,
        # mantissa align shift, significand add, leading-zero normalize,
        # and rounding — several times the cost of an integer adder.
        def fp_add(x: Signal, y: Signal) -> Signal:
            bigger = x.gt(y)
            hi = c.mux(bigger, x, y)
            lo = c.mux(bigger, y, x)
            aligned = lo >> (hi ^ lo).resized(5)
            sig_sum = hi + aligned
            lead = sig_sum.reduce_or()
            normalized = (sig_sum << lead.resized(1)).resized(sig_sum.width)
            return (normalized + 1) >> 1

        level = list(terms)
        while len(level) > 1:
            nxt = [fp_add(level[i], level[i + 1])
                   for i in range(0, len(level) - 1, 2)]
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]
    groups = [terms[i:i + cfg.reduction_width]
              for i in range(0, len(terms), cfg.reduction_width)]
    partial = [adder_tree(c, g) for g in groups]
    return adder_tree(c, partial)


def _activation(c: Circuit, x: Signal, cfg: DianNaoConfig, tag: str) -> Signal:
    """One NFU-3 unit: piecewise-linear lookup (breakpoints/slopes/offsets).

    With a multi-cycle NFU-3 budget the segment-select (compare ladder +
    index tree) is registered before the table read and the multiply,
    splitting the unit into select | lookup+MAC stages.
    """
    entries = cfg.activation_entries
    staged = cfg.stage_split[2] >= 2
    width = min(x.width, 32)
    xin = x.resized(width)
    breakpoints = [c.reg(c.input(f"{tag}_bp{i}", width), f"nfu3_{tag}_bp{i}")
                   for i in range(entries)]
    above = [xin.gt(bp) for bp in breakpoints]
    index_w = max((entries - 1).bit_length(), 1)
    index = adder_tree(c, [a.resized(index_w) for a in above])
    if staged:
        index = c.reg(index, f"nfu3_{tag}_idx")
        xin = c.reg(xin, f"nfu3_{tag}_xin")
    slopes = [c.reg(c.input(f"{tag}_sl{i}", width), f"nfu3_{tag}_sl{i}")
              for i in range(entries)]
    offsets = [c.reg(c.input(f"{tag}_of{i}", width), f"nfu3_{tag}_of{i}")
               for i in range(entries)]
    slope = mux_tree(c, index, slopes)
    offset = mux_tree(c, index, offsets)
    # Piecewise slopes are stored at half precision (lookup-table entries
    # are narrow in DianNao); keeps the NFU-3 multiplier at datapath width.
    half = max(width // 2, 8)
    return (xin.resized(half) * slope.resized(half)).resized(width) + offset


class DianNao(Module):
    """The full NFU pipeline for one :class:`DianNaoConfig`."""

    def __init__(self, config: DianNaoConfig):
        super().__init__(tn=config.tn, datatype=config.datatype,
                         pipeline_stages=config.pipeline_stages,
                         reduction_width=config.reduction_width,
                         activation_entries=config.activation_entries)
        self.config = config

    @property
    def design_name(self) -> str:
        return self.config.name

    def build(self, c: Circuit) -> None:
        cfg = self.config
        dt = cfg.dtype
        s1, s2, s3 = cfg.stage_split
        # NBin (input neuron buffer): one bank per lane (modeled at reduced
        # depth; the real 64-entry SRAM scales the same way — linearly in Tn).
        addr = c.input("nbin_addr", 4)
        neurons = []
        for i in range(cfg.tn):
            data = c.input(f"nbin{i}", dt.total_bits)
            rows = [c.reg_declare(dt.total_bits, f"nbin_row{i}_{r}") for r in range(8)]
            for r, row in enumerate(rows):
                c.connect_next(row, c.mux(addr.eq(r), data, row))
            read = mux_tree(c, addr, rows)
            neurons.append(c.reg(read, f"nbin_reg{i}"))
        outputs = []
        for out in range(cfg.tn):
            weights = [c.reg(c.input(f"sb{out}_{i}", dt.total_bits), f"sb_reg{out}_{i}")
                       for i in range(cfg.tn)]
            # NFU-1: multiplies, pipelined s1 deep.
            products = [
                pipeline(c, _multiply(c, n, w, cfg, f"nfu1m{out}_{i}"), s1, f"nfu1_{out}_{i}")
                for i, (n, w) in enumerate(zip(neurons, weights))
            ]
            # NFU-2: the adder tree, pipelined s2 deep.
            total = pipeline(c, _accumulate(c, products, cfg), s2, f"nfu2_{out}")
            # NFU-3: activation, pipelined s3 deep.
            activated = pipeline(c, _activation(c, total, cfg, f"act{out}"),
                                 s3, f"nfu3_{out}")
            outputs.append(activated)
        # NBout write-back registers.
        for i, o in enumerate(outputs):
            c.output(f"nbout{i}", c.reg(o, f"nbout_reg{i}"))
