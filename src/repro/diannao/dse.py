"""The DianNao design-space exploration (Section 5.7, Tables 12/13,
Figures 10/11).

Evaluates Table 13 configurations with SNS (or the reference
synthesizer), combines the predictions with the cycle model to obtain
inference throughput, and reports the efficiency metrics the paper
plots: area efficiency (inferences/sec per mm^2) and energy per
inference (mJ), plus the quantized model accuracy per datatype.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core import SNS
from ..synth import Synthesizer
from .config import DianNaoConfig
from .generator import DianNao
from .perf_model import DianNaoPerfModel, PerfReport
from .quantization import datatype_accuracy

__all__ = ["DianNaoPoint", "DianNaoDSEResult", "DianNaoDSE"]


@dataclass(frozen=True)
class DianNaoPoint:
    """One evaluated DianNao configuration."""

    config: DianNaoConfig
    timing_ps: float
    area_um2: float
    power_mw: float
    perf: PerfReport
    accuracy: float

    @property
    def frequency_ghz(self) -> float:
        return 1000.0 / self.timing_ps if self.timing_ps > 0 else 0.0

    @property
    def inferences_per_second(self) -> float:
        return self.perf.inferences_per_second(self.frequency_ghz)

    @property
    def area_efficiency(self) -> float:
        """Inference throughput per unit area (inf/s per mm^2) — Fig 10(a)."""
        area_mm2 = self.area_um2 * 1e-6
        return self.inferences_per_second / area_mm2 if area_mm2 > 0 else 0.0

    @property
    def energy_per_inference_uj(self) -> float:
        """Energy per inference in microjoules — Fig 10(b) (lower better)."""
        ips = self.inferences_per_second
        return (self.power_mw * 1e-3) / ips * 1e6 if ips > 0 else float("inf")


@dataclass(frozen=True)
class DianNaoDSEResult:
    points: tuple[DianNaoPoint, ...]
    runtime_s: float

    def best_by_area_efficiency(self) -> DianNaoPoint:
        return max(self.points, key=lambda p: p.area_efficiency)

    def best_by_energy(self) -> DianNaoPoint:
        return min(self.points, key=lambda p: p.energy_per_inference_uj)

    def group_by(self, attr: str) -> dict:
        """Group points by a config attribute (e.g. 'tn', 'datatype')."""
        groups: dict = {}
        for p in self.points:
            groups.setdefault(getattr(p.config, attr), []).append(p)
        return groups


class DianNaoDSE:
    """Evaluate DianNao configurations with SNS or the synthesizer."""

    def __init__(self, predictor: SNS | None = None,
                 synthesizer: Synthesizer | None = None,
                 perf_model: DianNaoPerfModel | None = None,
                 use_power_gating: bool = True,
                 cache=None, batch_size: int = 32, frontend_cache=None):
        if (predictor is None) == (synthesizer is None):
            raise ValueError("provide exactly one of predictor / synthesizer")
        self.predictor = predictor
        self.synthesizer = synthesizer
        self.perf_model = perf_model or DianNaoPerfModel()
        self.use_power_gating = use_power_gating
        if predictor is not None:
            from ..runtime import (BatchPredictor, FrontendCache,
                                   PredictionCache)

            self.frontend_cache = frontend_cache or FrontendCache()
            self._batch_engine = BatchPredictor(
                predictor, cache=cache or PredictionCache(),
                batch_size=batch_size, frontend_cache=self.frontend_cache)
        else:
            self.frontend_cache = None
            self._batch_engine = None

    # ------------------------------------------------------------------ #
    def _prepare(self, config: DianNaoConfig):
        """Elaborate one configuration and derive its activity map.

        SNS-backed runs compile through the :class:`FrontendCache` (flat
        builder elaboration, cached per configuration; node ids — and so
        activity keys — identical to ``elaborate()``); synthesizer runs
        keep the dict :class:`CircuitGraph` the synthesizer operates on.
        """
        if self._batch_engine is not None:
            from ..runtime import compile_design

            graph = compile_design(DianNao(config), self.frontend_cache)
        else:
            graph = DianNao(config).elaborate()
        report = self.perf_model.simulate(config)
        activity = self.perf_model.activity_coefficients(
            graph, report, gated=self.use_power_gating)
        return graph, report, activity

    def _make_point(self, config: DianNaoConfig, report, timing: float,
                    area: float, power: float) -> DianNaoPoint:
        return DianNaoPoint(
            config=config,
            timing_ps=max(timing, 1.0),
            area_um2=area,
            power_mw=power,
            perf=report,
            accuracy=datatype_accuracy(config.datatype),
        )

    def evaluate(self, config: DianNaoConfig) -> DianNaoPoint:
        graph, report, activity = self._prepare(config)
        if self._batch_engine is not None:
            pred = self._batch_engine.predict_batch(
                [graph], activity_maps=[activity])[0]
            timing, area, power = pred.timing_ps, pred.area_um2, pred.power_mw
        else:
            result = self.synthesizer.synthesize(graph, activity=activity)
            timing, area, power = result.timing_ps, result.area_um2, result.power_mw
        return self._make_point(config, report, timing, area, power)

    def run(self, configs: list[DianNaoConfig], verbose: bool = False) -> DianNaoDSEResult:
        """SNS-backed runs go through the batched runtime: the Table 13
        space shares most of its multiplier/adder-tree paths across ``tn``
        values, so cross-config dedup plus the prediction cache does the
        heavy lifting."""
        if not configs:
            raise ValueError("no configurations to explore")
        start = time.perf_counter()
        if self._batch_engine is not None:
            prepared = [self._prepare(config) for config in configs]
            if verbose:
                print(f"[diannao-dse] batch-predicting {len(prepared)} configs")
            preds = self._batch_engine.predict_batch(
                [graph for graph, _, _ in prepared],
                activity_maps=[activity for _, _, activity in prepared])
            points = [
                self._make_point(config, report, p.timing_ps, p.area_um2, p.power_mw)
                for (config, (_, report, _)), p in zip(zip(configs, prepared), preds)]
        else:
            points = []
            for i, config in enumerate(configs):
                points.append(self.evaluate(config))
                if verbose and (i + 1) % 50 == 0:
                    print(f"[diannao-dse] {i + 1}/{len(configs)} evaluated")
        return DianNaoDSEResult(points=tuple(points),
                                runtime_s=time.perf_counter() - start)
