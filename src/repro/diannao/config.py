"""DianNao design-space parameters (Table 13 of the paper)."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields

__all__ = ["Datatype", "DATATYPES", "DianNaoConfig", "full_design_space", "TABLE13"]


@dataclass(frozen=True)
class Datatype:
    """A numeric format for the NFU datapath."""

    name: str
    total_bits: int
    exponent_bits: int   # 0 for integer formats
    mantissa_bits: int   # significand bits for floats; total for ints

    @property
    def is_float(self) -> bool:
        return self.exponent_bits > 0


DATATYPES: dict[str, Datatype] = {
    "int8": Datatype("int8", 8, 0, 8),
    "int16": Datatype("int16", 16, 0, 16),
    "fp16": Datatype("fp16", 16, 5, 11),
    "bf16": Datatype("bf16", 16, 8, 8),
    "tf32": Datatype("tf32", 19, 8, 11),
    "fp32": Datatype("fp32", 32, 8, 24),
}

# Table 13, verbatim.
TABLE13: dict[str, tuple] = {
    "tn": (4, 8, 16, 32),
    "datatype": ("int8", "int16", "fp16", "bf16", "tf32", "fp32"),
    "pipeline_stages": (3, 8),
    "reduction_width": (4, 8, 16),
    "activation_entries": (2, 4, 8, 16),
}

# Stage allocation per total pipeline depth (Table 13's two options):
# 3 -> NFU-1:1, NFU-2:1, NFU-3:1; 8 -> NFU-1:3, NFU-2:2, NFU-3:3.
STAGE_SPLIT = {3: (1, 1, 1), 8: (3, 2, 3)}


@dataclass(frozen=True)
class DianNaoConfig:
    """One point in the 576-design DianNao space.

    The paper's published design is tn=16, int16, 3 stages.
    """

    tn: int = 16
    datatype: str = "int16"
    pipeline_stages: int = 3
    reduction_width: int = 8
    activation_entries: int = 8

    def __post_init__(self):
        for f in fields(self):
            value = getattr(self, f.name)
            if value not in TABLE13[f.name]:
                raise ValueError(
                    f"{f.name}={value!r} not in Table 13 range {TABLE13[f.name]}")

    @property
    def dtype(self) -> Datatype:
        return DATATYPES[self.datatype]

    @property
    def stage_split(self) -> tuple[int, int, int]:
        return STAGE_SPLIT[self.pipeline_stages]

    @property
    def name(self) -> str:
        return (f"diannao_t{self.tn}_{self.datatype}_s{self.pipeline_stages}"
                f"_r{self.reduction_width}_a{self.activation_entries}")

    @property
    def macs_per_cycle(self) -> int:
        return self.tn * self.tn


def full_design_space() -> list[DianNaoConfig]:
    """All 576 Table 13 combinations."""
    keys = list(TABLE13)
    return [DianNaoConfig(**dict(zip(keys, combo)))
            for combo in itertools.product(*(TABLE13[k] for k in keys))]
