"""Datatype-vs-accuracy modeling (Figure 11 of the paper).

The paper trains AlexNet on CIFAR-10 and measures classification accuracy
when DianNao's datapath runs each candidate datatype.  Offline substitute:
a small MLP classifier is trained (with this repo's ``repro.nn``) on a
synthetic 10-class image-like dataset, then evaluated with its weights
and activations quantized to each datatype — integer formats use
symmetric per-tensor scaling, floating-point formats round the mantissa.

The qualitative shape this must reproduce: accuracy saturates at int16
(going beyond costs hardware without accuracy gain), while int8 loses
measurable accuracy — the paper's argument for DianNao's int16 choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .. import nn
from .config import DATATYPES, Datatype

__all__ = ["quantize_array", "QuantizedClassifier", "datatype_accuracy"]

_NUM_CLASSES = 10
_INPUT_DIM = 48
_HIDDEN = 48


def quantize_array(x: np.ndarray, dtype: Datatype) -> np.ndarray:
    """Quantize a float array to the given datatype's representable grid.

    Integer formats model DianNao's fixed-point datapath: the word is
    split evenly into integer and fractional bits (Qm.n), with rounding
    to the fractional step and symmetric saturation — so int8 suffers
    both coarse resolution and clipping, while int16 has headroom.
    """
    if not dtype.is_float:
        frac_bits = dtype.total_bits // 2 + 1
        int_bits = dtype.total_bits - frac_bits - 1  # one sign bit
        step = 2.0 ** -frac_bits
        limit = 2.0 ** int_bits - step
        return np.clip(np.round(x / step) * step, -limit, limit)
    # Floating point: keep `mantissa_bits` significand bits (incl. hidden
    # bit) and clamp the exponent range.
    mant = dtype.mantissa_bits - 1
    out = np.zeros_like(x)
    nonzero = x != 0
    mantissa, exponent = np.frexp(x[nonzero])
    mantissa = np.round(mantissa * (1 << mant)) / (1 << mant)
    max_exp = 2 ** (dtype.exponent_bits - 1)
    exponent = np.clip(exponent, -max_exp + 2, max_exp - 1)
    out[nonzero] = np.ldexp(mantissa, exponent)
    return out


def _synthetic_cifar_like(n: int, seed: int, noise: float = 2.4,
                          center_seed: int = 1234) -> tuple[np.ndarray, np.ndarray]:
    """A 10-class dataset with overlapping class manifolds.

    Classes are anisotropic Gaussian clusters (fixed centers shared by
    every split) at a separation tuned so a small MLP reaches high-70s%
    accuracy — CIFAR-10/AlexNet territory — and the decision boundary is
    sensitive to small weight perturbations, the property that makes
    low-precision arithmetic visibly lossy.
    """
    centers = np.random.default_rng(center_seed).normal(
        0.0, 1.0, size=(_NUM_CLASSES, _INPUT_DIM))
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, _NUM_CLASSES, size=n)
    spread = (0.9 + 0.4 * np.random.default_rng(center_seed + 1).random(_INPUT_DIM))
    X = centers[labels] + rng.normal(0.0, noise, size=(n, _INPUT_DIM)) * spread
    return X, labels


class QuantizedClassifier:
    """A trained MLP evaluated under datapath quantization."""

    def __init__(self, seed: int = 0, train_samples: int = 1024, epochs: int = 60):
        rng = np.random.default_rng(seed)
        self.model = nn.Sequential(
            nn.Linear(_INPUT_DIM, _HIDDEN, rng=rng), nn.Tanh(),
            nn.Linear(_HIDDEN, _HIDDEN, rng=rng), nn.Tanh(),
            nn.Linear(_HIDDEN, _NUM_CLASSES, rng=rng),
        )
        X, y = _synthetic_cifar_like(train_samples, seed)
        opt = nn.Adam(self.model.parameters(), lr=0.01)
        for _ in range(epochs):
            order = rng.permutation(len(X))
            for lo in range(0, len(X), 64):
                idx = order[lo:lo + 64]
                logits = self.model(nn.Tensor(X[idx]))
                loss = nn.cross_entropy(logits, y[idx])
                opt.zero_grad()
                loss.backward()
                opt.step()
        self._test = _synthetic_cifar_like(2048, seed + 1)

    # ------------------------------------------------------------------ #
    def _forward_quantized(self, X: np.ndarray, dtype: Datatype) -> np.ndarray:
        """Inference with weights AND activations quantized per layer."""
        act = quantize_array(X, dtype)
        layers = [s for s in self.model if isinstance(s, nn.Linear)]
        for i, layer in enumerate(layers):
            w = quantize_array(layer.weight.data, dtype)
            b = quantize_array(layer.bias.data, dtype)
            act = act @ w + b
            if i < len(layers) - 1:
                act = np.tanh(act)
            act = quantize_array(act, dtype)
        return act

    def accuracy(self, datatype: str) -> float:
        """Test accuracy with the datapath running ``datatype``."""
        if datatype not in DATATYPES:
            raise KeyError(f"unknown datatype {datatype!r}")
        X, y = self._test
        logits = self._forward_quantized(X, DATATYPES[datatype])
        return float((logits.argmax(axis=1) == y).mean())

    def float_accuracy(self) -> float:
        X, y = self._test
        with nn.no_grad():
            logits = self.model(nn.Tensor(X)).numpy()
        return float((logits.argmax(axis=1) == y).mean())


@lru_cache(maxsize=1)
def _shared_classifier() -> QuantizedClassifier:
    return QuantizedClassifier(seed=0)


def datatype_accuracy(datatype: str) -> float:
    """Accuracy of the shared reference classifier under ``datatype``."""
    return _shared_classifier().accuracy(datatype)
