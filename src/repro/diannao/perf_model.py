"""A cycle-accurate performance model for DianNao (Section 5.7).

Walks a convolutional network layer by layer, counting NFU cycles the
way the hardware schedules work: each cycle processes ``Tn`` input
neurons against ``Tn`` output neurons, so a layer with ``Nin`` inputs
and ``Nout`` outputs takes ``ceil(Nin/Tn) * ceil(Nout/Tn)`` cycles per
output pixel.  Padding waste when channel counts do not divide ``Tn``
shows up as utilization loss — the effect that makes very large ``Tn``
less area- and power-efficient (Figure 10).

The model also produces per-register **activity coefficients** for
power gating (Section 3.4.4): each NFU stage's registers toggle in
proportion to its utilization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..graphir import CircuitGraph
from .config import DianNaoConfig

__all__ = ["LayerSpec", "ALEXNET_CIFAR10", "PerfReport", "DianNaoPerfModel"]


@dataclass(frozen=True)
class LayerSpec:
    """One network layer: spatial output size x (input -> output channels)."""

    name: str
    kind: str          # 'conv' | 'fc'
    out_pixels: int    # H*W of the output feature map (1 for fc)
    in_channels: int   # Nin per output pixel (kernel taps x channels for conv)
    out_channels: int


# AlexNet scaled to CIFAR-10 (the case study's workload): conv kernels
# contribute k*k*Cin input neurons per output pixel.
ALEXNET_CIFAR10: tuple[LayerSpec, ...] = (
    LayerSpec("conv1", "conv", 32 * 32, 3 * 3 * 3, 96),
    LayerSpec("conv2", "conv", 16 * 16, 3 * 3 * 96, 256),
    LayerSpec("conv3", "conv", 8 * 8, 3 * 3 * 256, 384),
    LayerSpec("conv4", "conv", 8 * 8, 3 * 3 * 384, 384),
    LayerSpec("conv5", "conv", 8 * 8, 3 * 3 * 384, 256),
    LayerSpec("fc1", "fc", 1, 256 * 4 * 4, 1024),
    LayerSpec("fc2", "fc", 1, 1024, 512),
    LayerSpec("fc3", "fc", 1, 512, 10),
)


@dataclass(frozen=True)
class PerfReport:
    """Cycle counts and stage utilizations for one inference."""

    cycles: int
    useful_macs: int
    issued_macs: int
    nfu1_utilization: float
    nfu2_utilization: float
    nfu3_utilization: float

    @property
    def utilization(self) -> float:
        return self.useful_macs / self.issued_macs if self.issued_macs else 0.0

    def inferences_per_second(self, frequency_ghz: float) -> float:
        if self.cycles == 0:
            return 0.0
        return frequency_ghz * 1e9 / self.cycles


class DianNaoPerfModel:
    """Layer-walking cycle model + activity coefficient generation.

    ``mem_bytes_per_cycle`` models the off-chip weight-fetch interface.
    Convolution layers keep their kernels resident in the SB buffer and
    are compute-bound; fully-connected layers stream a fresh weight per
    MAC and become bandwidth-bound once ``Tn^2 x bytes`` per cycle
    exceeds the interface — the effect that caps very large ``Tn``
    (Figure 10: efficiency peaks at Tn=16).
    """

    def __init__(self, network: tuple[LayerSpec, ...] = ALEXNET_CIFAR10,
                 mem_bytes_per_cycle: float = 96.0):
        self.network = network
        self.mem_bytes_per_cycle = mem_bytes_per_cycle

    # ------------------------------------------------------------------ #
    def simulate(self, config: DianNaoConfig) -> PerfReport:
        """One inference of the configured network."""
        tn = config.tn
        bytes_per_word = max(config.dtype.total_bits / 8.0, 1.0)
        cycles = 0
        useful = 0
        busy_cycles = 0
        act_cycles = 0
        for layer in self.network:
            in_tiles = math.ceil(layer.in_channels / tn)
            out_tiles = math.ceil(layer.out_channels / tn)
            compute_cycles = layer.out_pixels * in_tiles * out_tiles
            if layer.kind == "fc":
                weight_bytes = layer.in_channels * layer.out_channels * bytes_per_word
                layer_cycles = max(compute_cycles,
                                   math.ceil(weight_bytes / self.mem_bytes_per_cycle))
            else:
                layer_cycles = compute_cycles
            cycles += layer_cycles
            useful += layer.out_pixels * layer.in_channels * layer.out_channels
            busy_cycles += compute_cycles
            # NFU-3 is busy only on the final reduction tile of each output.
            act_cycles += layer.out_pixels * out_tiles
        cycles += config.pipeline_stages * len(self.network)  # pipeline fills
        issued = cycles * tn * tn
        util = useful / issued if issued else 0.0
        return PerfReport(
            cycles=cycles,
            useful_macs=useful,
            issued_macs=issued,
            nfu1_utilization=util,
            nfu2_utilization=util,
            nfu3_utilization=min(act_cycles / cycles, 1.0) if cycles else 0.0,
        )

    # ------------------------------------------------------------------ #
    def activity_coefficients(self, graph: CircuitGraph, report: PerfReport,
                              gated: bool = True) -> dict[int, float]:
        """Per-register activity coefficients keyed by GraphIR node id.

        Registers are matched by the ``nfu<k>`` label prefixes the
        generator emits.  Without clock gating every datapath register
        toggles at the streaming data rate (~0.5); with gating each NFU
        stage's registers toggle only in proportion to its utilization —
        the comparison Section 3.4.4 enables.
        """
        u1 = report.nfu1_utilization if gated else 1.0
        u2 = report.nfu2_utilization if gated else 1.0
        u3 = report.nfu3_utilization if gated else 1.0
        stage_activity = {
            "nfu1": 0.5 * u1,
            "nfu2": 0.5 * u2,
            "nfu3": 0.5 * u3,
            "nbin": 0.25,
            "sb": 0.25,
            "nbout": 0.5 * u3,
        }
        out: dict[int, float] = {}
        if isinstance(graph, CircuitGraph):
            dffs = ((n.node_id, n.label) for n in graph.nodes()
                    if n.node_type == "dff")
        else:  # CompiledGraph: same ids/labels, straight off the arrays
            labels = graph.labels
            dffs = ((nid, labels[nid]) for nid in graph.ids_of_type("dff"))
        for node_id, label in dffs:
            for prefix, coeff in stage_activity.items():
                if label.startswith(prefix):
                    out[node_id] = coeff
                    break
        return out
