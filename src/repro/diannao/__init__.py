"""``repro.diannao`` — the DianNao case study (Section 5.7).

A parameterizable Chisel-style reimplementation of the DianNao NFU
pipeline (Figure 9) over the Table 13 design space, a cycle-accurate
performance model emitting power-gating activity coefficients, a
datatype quantization accuracy model (the AlexNet/CIFAR-10 substitute),
and the DSE that produces Tables 12/13 and Figures 10/11.
"""

from .config import (
    DATATYPES,
    TABLE13,
    Datatype,
    DianNaoConfig,
    full_design_space,
)
from .generator import DianNao
from .perf_model import ALEXNET_CIFAR10, DianNaoPerfModel, LayerSpec, PerfReport
from .quantization import QuantizedClassifier, datatype_accuracy, quantize_array
from .dse import DianNaoDSE, DianNaoDSEResult, DianNaoPoint

__all__ = [
    "DATATYPES", "TABLE13", "Datatype", "DianNaoConfig", "full_design_space",
    "DianNao",
    "ALEXNET_CIFAR10", "DianNaoPerfModel", "LayerSpec", "PerfReport",
    "QuantizedClassifier", "datatype_accuracy", "quantize_array",
    "DianNaoDSE", "DianNaoDSEResult", "DianNaoPoint",
]
