"""The circuit builder: turns Signal expressions into GraphIR vertices."""

from __future__ import annotations

from ..graphir import CircuitGraph
from .signal import Operand, Signal

__all__ = ["Circuit", "Reg"]


class Reg(Signal):
    """A declared register whose input is connected later (``connect_next``).

    Allows feedback loops: declare the register, use its output in
    expressions, then drive its input.
    """

    __hash__ = Signal.__hash__


class Circuit:
    """Accumulates GraphIR vertices/edges while a design is being built.

    Typical use (inside :meth:`repro.hdl.Module.build`)::

        a = c.input("a", 8)
        b = c.input("b", 8)
        acc = c.reg_declare(16, "acc")
        c.connect_next(acc, a * b + acc)
        c.output("out", acc)
    """

    def __init__(self, name: str = "design", graph=None):
        # ``graph`` may be any object with the CircuitGraph construction
        # API (add_node/add_edge/validate) — notably a
        # :class:`repro.graphir.GraphBuilder` for flat array-backed
        # elaboration straight into a CompiledGraph.
        self.graph = graph if graph is not None else CircuitGraph(name)
        self._pending_regs: set[int] = set()

    # ------------------------------------------------------------------ #
    # Ports
    # ------------------------------------------------------------------ #
    def input(self, name: str, width: int) -> Signal:
        """Declare an input port."""
        node_id = self.graph.add_node("io", width, label=name)
        return Signal(self, node_id, width)

    def output(self, name: str, sig: Signal, width: int | None = None) -> Signal:
        """Declare an output port driven by ``sig``."""
        width = width or sig.width
        node_id = self.graph.add_node("io", width, label=name)
        self.graph.add_edge(sig.node_id, node_id)
        return Signal(self, node_id, width)

    # ------------------------------------------------------------------ #
    # Registers
    # ------------------------------------------------------------------ #
    def reg(self, sig: Signal, label: str = "") -> Signal:
        """Register ``sig`` (a pipeline stage); returns the register output."""
        node_id = self.graph.add_node("dff", sig.width, label=label)
        self.graph.add_edge(sig.node_id, node_id)
        return Signal(self, node_id, sig.width)

    def reg_declare(self, width: int, label: str = "") -> Reg:
        """Declare a register with no driver yet (for feedback loops)."""
        node_id = self.graph.add_node("dff", width, label=label)
        self._pending_regs.add(node_id)
        return Reg(self, node_id, width)

    def connect_next(self, reg: Reg, sig: Signal) -> None:
        """Drive a declared register's next-state input."""
        if reg.node_id not in self._pending_regs:
            raise ValueError("connect_next() target was not created by reg_declare()")
        self.graph.add_edge(sig.node_id, reg.node_id)
        self._pending_regs.discard(reg.node_id)

    # ------------------------------------------------------------------ #
    # Operators (called by Signal dunders)
    # ------------------------------------------------------------------ #
    def binop(self, op: str, a: Signal, b: Operand, width: int,
              node_width: int | None = None) -> Signal:
        """Create a two-operand functional unit; ``b`` may be a constant."""
        self._check_same_circuit(a)
        node_id = self.graph.add_node(op, node_width or max(width, 1))
        self.graph.add_edge(a.node_id, node_id)
        if isinstance(b, Signal):
            self._check_same_circuit(b)
            self.graph.add_edge(b.node_id, node_id)
        return Signal(self, node_id, width)

    def unop(self, op: str, a: Signal, width: int, node_width: int | None = None) -> Signal:
        self._check_same_circuit(a)
        node_id = self.graph.add_node(op, node_width or max(width, 1))
        self.graph.add_edge(a.node_id, node_id)
        return Signal(self, node_id, width)

    def mux(self, sel: Signal, if_true: Signal, if_false: Operand) -> Signal:
        """2:1 multiplexer."""
        self._check_same_circuit(sel)
        self._check_same_circuit(if_true)
        width = if_true.width
        if isinstance(if_false, Signal):
            width = max(width, if_false.width)
        node_id = self.graph.add_node("mux", width)
        self.graph.add_edge(sel.node_id, node_id)
        self.graph.add_edge(if_true.node_id, node_id)
        if isinstance(if_false, Signal):
            self.graph.add_edge(if_false.node_id, node_id)
        return Signal(self, node_id, width)

    # ------------------------------------------------------------------ #
    def finalize(self) -> CircuitGraph:
        """Validate and return the built graph.

        Registers declared with :meth:`reg_declare` but never driven are
        allowed (they model constant/reset-held registers), but the graph
        must be internally consistent.
        """
        self.graph.validate()
        return self.graph

    def _check_same_circuit(self, sig: Signal) -> None:
        if sig.circuit is not self:
            raise ValueError("signal belongs to a different circuit")
