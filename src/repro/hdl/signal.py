"""Signals — typed wires inside a circuit under construction.

A :class:`Signal` is a handle to the node that produces a value, plus the
bit-width of that value.  Python operators on signals create the
corresponding GraphIR functional units, mirroring how Chisel builds
hardware from Scala expressions.

Width semantics follow common RTL conventions:

- bitwise ops / mux / add / sub: result width = max of operand widths
- multiply: result width = sum of operand widths (as in Figure 2 of the
  paper, where two ``io8`` inputs feed a ``mul16``)
- divide / modulus / shift: result width = dividend width
- comparisons and reductions: result width = 1

Integer constants may be used as operands; like a constant-folding
front-end (Yosys), they add no vertex of their own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:
    from .circuit import Circuit

__all__ = ["Signal", "Operand"]

MAX_WIDTH = 64

Operand = Union["Signal", int]


@dataclass(frozen=True)
class Signal:
    """A value produced by ``node_id`` inside ``circuit``, ``width`` bits wide."""

    circuit: "Circuit"
    node_id: int
    width: int

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: Operand) -> "Signal":
        return self.circuit.binop("add", self, other, _max_width(self, other))

    __radd__ = __add__

    def __sub__(self, other: Operand) -> "Signal":
        return self.circuit.binop("add", self, other, _max_width(self, other))

    def __rsub__(self, other: Operand) -> "Signal":
        return self.__sub__(other)

    def __mul__(self, other: Operand) -> "Signal":
        width = min(self.width + _width_of(other, self.width), MAX_WIDTH)
        return self.circuit.binop("mul", self, other, width)

    __rmul__ = __mul__

    def __floordiv__(self, other: Operand) -> "Signal":
        return self.circuit.binop("div", self, other, self.width)

    def __mod__(self, other: Operand) -> "Signal":
        return self.circuit.binop("mod", self, other, self.width)

    # ------------------------------------------------------------------ #
    # Bitwise
    # ------------------------------------------------------------------ #
    def __and__(self, other: Operand) -> "Signal":
        return self.circuit.binop("and", self, other, _max_width(self, other))

    __rand__ = __and__

    def __or__(self, other: Operand) -> "Signal":
        return self.circuit.binop("or", self, other, _max_width(self, other))

    __ror__ = __or__

    def __xor__(self, other: Operand) -> "Signal":
        return self.circuit.binop("xor", self, other, _max_width(self, other))

    __rxor__ = __xor__

    def __invert__(self) -> "Signal":
        return self.circuit.unop("not", self, self.width)

    def __lshift__(self, amount: Operand) -> "Signal":
        return self.circuit.binop("sh", self, amount, self.width)

    def __rshift__(self, amount: Operand) -> "Signal":
        return self.circuit.binop("sh", self, amount, self.width)

    # ------------------------------------------------------------------ #
    # Comparison (returns 1-bit signals; node width is the operand width)
    # ------------------------------------------------------------------ #
    def eq(self, other: Operand) -> "Signal":
        return self.circuit.binop("eq", self, other, 1, node_width=_max_width(self, other))

    def lt(self, other: Operand) -> "Signal":
        return self.circuit.binop("lgt", self, other, 1, node_width=_max_width(self, other))

    def gt(self, other: Operand) -> "Signal":
        return self.circuit.binop("lgt", self, other, 1, node_width=_max_width(self, other))

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def reduce_and(self) -> "Signal":
        return self.circuit.unop("reduce_and", self, 1, node_width=self.width)

    def reduce_or(self) -> "Signal":
        return self.circuit.unop("reduce_or", self, 1, node_width=self.width)

    def reduce_xor(self) -> "Signal":
        return self.circuit.unop("reduce_xor", self, 1, node_width=self.width)

    # ------------------------------------------------------------------ #
    # Width adjustment (pure renaming; adds no vertex, like Chisel's
    # zero-extension of a wire)
    # ------------------------------------------------------------------ #
    def resized(self, width: int) -> "Signal":
        if width < 1:
            raise ValueError(f"width must be positive: {width}")
        return Signal(self.circuit, self.node_id, width)

    def __hash__(self) -> int:
        return hash((id(self.circuit), self.node_id, self.width))


def _width_of(operand: Operand, default: int) -> int:
    if isinstance(operand, Signal):
        return operand.width
    return max(int(operand).bit_length(), 1) if isinstance(operand, int) else default


def _max_width(a: "Signal", b: Operand) -> int:
    if isinstance(b, Signal):
        return max(a.width, b.width)
    return a.width
