"""Module base class — the unit of design reuse in the HDL DSL."""

from __future__ import annotations

from ..graphir import CircuitGraph
from .circuit import Circuit

__all__ = ["Module"]


class Module:
    """A parameterizable hardware design.

    Subclasses implement :meth:`build`, constructing logic on the supplied
    :class:`Circuit`.  Constructor keyword arguments become design
    parameters and are reflected in the elaborated design name so that
    parameter sweeps yield distinguishable designs.

    Example::

        class Mac(Module):
            def __init__(self, width=8):
                super().__init__(width=width)

            def build(self, c):
                a, b = c.input("a", self.params["width"]), c.input("b", self.params["width"])
                acc = c.reg_declare(2 * self.params["width"], "acc")
                c.connect_next(acc, a * b + acc)
                c.output("out", acc)

        graph = Mac(width=16).elaborate()
    """

    def __init__(self, **params):
        self.params = dict(params)

    # ------------------------------------------------------------------ #
    @property
    def design_name(self) -> str:
        base = type(self).__name__.lower()
        if not self.params:
            return base
        args = "_".join(f"{k}{v}" for k, v in sorted(self.params.items()))
        return f"{base}_{args}"

    def build(self, c: Circuit) -> None:
        raise NotImplementedError(f"{type(self).__name__} must implement build()")

    def elaborate(self) -> CircuitGraph:
        """Build the design and return its validated GraphIR."""
        c = Circuit(self.design_name)
        self.build(c)
        return c.finalize()

    def elaborate_compiled(self):
        """Build the design straight into a :class:`CompiledGraph`.

        Construction targets a flat :class:`repro.graphir.GraphBuilder`
        (append-only arrays, no per-node dict adjacency), so this is the
        fast path for prediction: the result is node-for-node identical
        to ``compile_graph(self.elaborate())``.
        """
        from ..graphir import GraphBuilder

        builder = GraphBuilder(self.design_name)
        c = Circuit(self.design_name, graph=builder)
        self.build(c)
        c.finalize()
        return builder.compile()
