"""``repro.hdl`` — a Chisel-like hardware construction DSL.

The SNS paper uses Chisel to produce parameterizable Verilog designs; this
package is the in-repo substitute.  Designs subclass :class:`Module`,
build logic from :class:`Signal` expressions on a :class:`Circuit`, and
elaborate directly to :class:`repro.graphir.CircuitGraph`.
"""

from .signal import Signal
from .circuit import Circuit, Reg
from .module import Module
from .structures import (
    adder_tree,
    mux_tree,
    reduce_tree,
    max_tree,
    register_bank,
    register_file,
    memory_bank,
    fifo,
    counter,
    shift_register,
    lfsr,
    priority_arbiter,
    pipeline,
)

__all__ = [
    "Signal", "Circuit", "Reg", "Module",
    "adder_tree", "mux_tree", "reduce_tree", "max_tree",
    "register_bank", "register_file", "memory_bank", "fifo",
    "counter", "shift_register", "lfsr", "priority_arbiter", "pipeline",
]
