"""Reusable structural generators (the DSL's standard library).

These functions build common datapath structures — adder trees, mux
trees, register files, FIFOs — out of Signal primitives.  They are the
building blocks of the design dataset (`repro.designs`) and the case
studies (`repro.boom`, `repro.diannao`).
"""

from __future__ import annotations

from .circuit import Circuit
from .signal import Signal

__all__ = [
    "adder_tree",
    "mux_tree",
    "reduce_tree",
    "register_bank",
    "register_file",
    "memory_bank",
    "fifo",
    "counter",
    "shift_register",
    "lfsr",
    "priority_arbiter",
    "pipeline",
    "max_tree",
]


def adder_tree(c: Circuit, inputs: list[Signal]) -> Signal:
    """Balanced binary adder tree; the NFU-2 structure of DianNao."""
    if not inputs:
        raise ValueError("adder_tree needs at least one input")
    level = list(inputs)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(level[i] + level[i + 1])
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def mux_tree(c: Circuit, select: Signal, inputs: list[Signal]) -> Signal:
    """N:1 multiplexer as a balanced tree of 2:1 muxes."""
    if not inputs:
        raise ValueError("mux_tree needs at least one input")
    level = list(inputs)
    bit = 0
    while len(level) > 1:
        sel_bit = (select >> bit).resized(1)
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(c.mux(sel_bit, level[i + 1], level[i]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
        bit += 1
    return level[0]


def reduce_tree(c: Circuit, inputs: list[Signal], op: str) -> Signal:
    """Balanced reduction with a binary operator name: 'and' | 'or' | 'xor' | 'add'."""
    import operator as _op

    ops = {"and": _op.and_, "or": _op.or_, "xor": _op.xor, "add": _op.add}
    if op not in ops:
        raise ValueError(f"unsupported reduction op: {op}")
    fn = ops[op]
    level = list(inputs)
    if not level:
        raise ValueError("reduce_tree needs at least one input")
    while len(level) > 1:
        nxt = [fn(level[i], level[i + 1]) for i in range(0, len(level) - 1, 2)]
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def max_tree(c: Circuit, inputs: list[Signal]) -> Signal:
    """Maximum of N values via compare+mux tree (pooling units)."""
    level = list(inputs)
    if not level:
        raise ValueError("max_tree needs at least one input")
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            a, b = level[i], level[i + 1]
            nxt.append(c.mux(a.gt(b), a, b))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def register_bank(c: Circuit, data: Signal, depth: int, label: str = "bank") -> list[Signal]:
    """``depth`` registers all loading from ``data`` (e.g. a wide latch array)."""
    return [c.reg(data, label=f"{label}{i}") for i in range(depth)]


def register_file(c: Circuit, write_data: Signal, write_addr: Signal,
                  read_addr: Signal, depth: int, label: str = "rf") -> Signal:
    """A register file: write-decode into ``depth`` registers, mux-tree read."""
    rows = []
    for i in range(depth):
        sel = write_addr.eq(i)
        row = c.reg_declare(write_data.width, label=f"{label}{i}")
        c.connect_next(row, c.mux(sel, write_data, row))
        rows.append(row)
    return mux_tree(c, read_addr, rows)


def memory_bank(c: Circuit, data: Signal, addr: Signal, rows: int,
                label: str = "mem") -> Signal:
    """A small RAM modeled as a register file (SRAM macro stand-in).

    To keep elaborated sizes tractable, large memories should be
    instantiated with a reduced ``rows`` plus an explicit area model —
    the synthesizer scales register banks linearly.
    """
    return register_file(c, data, addr, addr, rows, label=label)


def fifo(c: Circuit, data: Signal, depth: int, label: str = "fifo") -> Signal:
    """A shift-register FIFO of ``depth`` stages."""
    sig = data
    for i in range(depth):
        sig = c.reg(sig, label=f"{label}{i}")
    return sig


def counter(c: Circuit, width: int, label: str = "ctr") -> Signal:
    """Free-running counter: ``q' = q + 1``."""
    q = c.reg_declare(width, label=label)
    c.connect_next(q, q + 1)
    return q


def shift_register(c: Circuit, data: Signal, stages: int, label: str = "sr") -> list[Signal]:
    """Tapped shift register; returns all ``stages`` taps."""
    taps = []
    sig = data
    for i in range(stages):
        sig = c.reg(sig, label=f"{label}{i}")
        taps.append(sig)
    return taps


def lfsr(c: Circuit, width: int, label: str = "lfsr") -> Signal:
    """Fibonacci LFSR: feedback = xor of taps, shifted in."""
    state = c.reg_declare(width, label=label)
    feedback = (state >> (width - 1)) ^ state
    c.connect_next(state, (state << 1) ^ feedback.resized(1))
    return state


def priority_arbiter(c: Circuit, requests: list[Signal]) -> list[Signal]:
    """Fixed-priority arbiter; grant[i] = req[i] & ~any(req[<i])."""
    grants = []
    blocked = None
    for req in requests:
        if blocked is None:
            grants.append(req)
            blocked = req
        else:
            grants.append(req & ~blocked)
            blocked = blocked | req
    return grants


def pipeline(c: Circuit, sig: Signal, stages: int, label: str = "pipe") -> Signal:
    """Insert ``stages`` pipeline registers (0 allowed → wire-through)."""
    for i in range(stages):
        sig = c.reg(sig, label=f"{label}{i}")
    return sig
