"""``repro.serve`` — prediction-as-a-service over the SNS runtime.

An asyncio HTTP tier (stdlib only) that converts the batched runtime's
throughput into user-facing latency under concurrency:

- :class:`PredictionServer` / :class:`ServeConfig` — the server:
  ``/predict``, ``/dse``, ``/train``, ``/healthz``, ``/metrics``.
- :class:`MicroBatchQueue` — cross-request micro-batching into
  ``BatchPredictor.predict_batch`` (size + deadline flush triggers,
  cancellation, per-request error isolation).
- :class:`ModelRegistry` / :class:`ServedModel` — the warm model
  registry: load-once, fingerprint-keyed, staleness-checked, with
  shared per-precision compiled executors and caches.
- :class:`RateLimiter` / :class:`TokenBucket` — per-client admission
  control; with the bounded queue, overload sheds as 429/503.
- :class:`ServerMetrics` — per-endpoint counters, in-flight gauges,
  latency percentiles, batch-size distribution, cache hit rates.
- :class:`ServeClient` / :func:`run_load` — the matching blocking
  client and the closed-loop load generator behind ``BENCH_serve.json``.
- :class:`ServerThread` — in-process server lifecycle for tests and
  benches.
"""

from .admission import RateLimiter, TokenBucket
from .batcher import MicroBatchQueue, QueueFullError
from .http import HttpError, Request, Response, ServeClient
from .loadgen import LoadResult, run_load
from .metrics import EndpointMetrics, LatencyHistogram, ServerMetrics
from .registry import ModelRegistry, ServedModel
from .server import PredictionServer, ServeConfig, ServerThread

__all__ = [
    "PredictionServer", "ServeConfig", "ServerThread",
    "MicroBatchQueue", "QueueFullError",
    "ModelRegistry", "ServedModel",
    "RateLimiter", "TokenBucket",
    "ServerMetrics", "EndpointMetrics", "LatencyHistogram",
    "ServeClient", "HttpError", "Request", "Response",
    "LoadResult", "run_load",
]
