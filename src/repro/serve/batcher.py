"""Cross-request micro-batching: the queue between HTTP and the predictor.

Concurrent ``/predict`` requests — from any number of clients — land in
one :class:`MicroBatchQueue`.  A single flusher task coalesces them into
batches and hands each batch to ``run_batch`` (the server wraps a
``BatchPredictor.predict_batch`` call on a worker thread), where the
PR-1 engine's cross-design path dedup and length-bucketed pooled
inference turn N single-design requests into one vectorized pass.

Flush policy is the classic two-trigger rule:

- **size**: the queue reached ``max_batch`` waiters — flush now;
- **deadline**: the *oldest* waiter has been queued ``max_wait_s`` —
  flush whatever has accumulated, so a lone request never waits longer
  than the batching window.

Correctness properties (each regression-tested in isolation):

- **deterministic routing** — result ``i`` of a batch resolves waiter
  ``i``'s future; payload identity never crosses requests.
- **cancellation** — a waiter whose future was cancelled (client
  timeout, dropped connection) is skipped at flush time and consumes no
  batch slot or compute.
- **error isolation** — ``run_batch`` may return an ``Exception``
  instance in any result slot to fail just that request; if the whole
  batch call raises, the batch is re-run one item at a time so a single
  poisoned payload cannot take its neighbors down.
"""

from __future__ import annotations

import asyncio
from collections import deque

__all__ = ["QueueFullError", "MicroBatchQueue"]


class QueueFullError(RuntimeError):
    """Raised by :meth:`MicroBatchQueue.submit` when the queue is at capacity."""


class _Waiter:
    __slots__ = ("payload", "future", "deadline")

    def __init__(self, payload, future, deadline):
        self.payload = payload
        self.future = future
        self.deadline = deadline


class MicroBatchQueue:
    """Coalesce concurrent submissions into batched ``run_batch`` calls.

    Parameters
    ----------
    run_batch:
        Async callable ``payloads -> results`` (same length, same
        order).  A result slot holding an ``Exception`` rejects that
        waiter only.  Typically a thin wrapper that trampolines onto a
        thread pool for CPU-bound work.
    max_batch:
        Flush as soon as this many waiters are queued.
    max_wait_s:
        Flush when the oldest waiter has been queued this long.
    max_queue:
        Admission bound: submissions beyond this many queued-but-
        unflushed waiters raise :class:`QueueFullError` (the server maps
        it to a 503).
    max_concurrent:
        Batches allowed in flight at once (worker-pool width).  The
        flusher keeps draining the queue while earlier batches compute,
        so a slow batch does not head-of-line-block the next one.
    on_flush:
        Optional callback ``(size, reason)`` with reason ``"size"`` or
        ``"deadline"`` — the metrics hook.
    """

    def __init__(self, run_batch, max_batch: int = 32,
                 max_wait_s: float = 0.002, max_queue: int = 1024,
                 max_concurrent: int = 4, on_flush=None):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1: {max_batch}")
        if max_queue < max_batch:
            raise ValueError(
                f"max_queue ({max_queue}) must be >= max_batch ({max_batch})")
        self.run_batch = run_batch
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.max_queue = max_queue
        self.on_flush = on_flush
        self._queue: deque[_Waiter] = deque()
        self._wake = asyncio.Event()
        self._slots = asyncio.Semaphore(max_concurrent)
        self._flusher: asyncio.Task | None = None
        self._inflight: set[asyncio.Task] = set()
        self._closed = False

    # ------------------------------------------------------------------ #
    @property
    def depth(self) -> int:
        """Queued-but-unflushed waiters (the admission-control gauge)."""
        return len(self._queue)

    def _ensure_flusher(self) -> None:
        if self._flusher is None or self._flusher.done():
            self._flusher = asyncio.get_running_loop().create_task(
                self._flush_loop())

    async def submit(self, payload):
        """Enqueue one payload and wait for its routed result.

        Raises :class:`QueueFullError` immediately when the queue is at
        capacity, and re-raises whatever per-item exception ``run_batch``
        assigned to this payload's slot.
        """
        if self._closed:
            raise RuntimeError("MicroBatchQueue is closed")
        if len(self._queue) >= self.max_queue:
            raise QueueFullError(
                f"micro-batch queue at capacity ({self.max_queue})")
        loop = asyncio.get_running_loop()
        waiter = _Waiter(payload, loop.create_future(),
                         loop.time() + self.max_wait_s)
        self._queue.append(waiter)
        self._ensure_flusher()
        # Always wake the flusher: an idle one must start the deadline
        # clock, and one mid-wait re-checks the size trigger.
        self._wake.set()
        return await waiter.future

    # ------------------------------------------------------------------ #
    async def _flush_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while not self._closed:
            while not self._queue:
                self._wake.clear()
                if self._closed:
                    return
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=0.1)
                except asyncio.TimeoutError:
                    if self._closed:
                        return
                    continue
            # Wait for either a full batch or the oldest waiter's deadline.
            while (len(self._queue) < self.max_batch
                   and self._queue and loop.time() < self._queue[0].deadline):
                self._wake.clear()
                timeout = max(0.0, self._queue[0].deadline - loop.time())
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=timeout)
                except asyncio.TimeoutError:
                    break
            # Take a worker slot BEFORE popping: while every slot is
            # busy, waiters stay in the queue where the admission bound
            # (``max_queue``) can see them — backpressure turns into
            # 503s instead of an invisible holding pen.
            await self._slots.acquire()
            batch: list[_Waiter] = []
            while self._queue and len(batch) < self.max_batch:
                waiter = self._queue.popleft()
                if waiter.future.cancelled():
                    continue  # timed-out/disconnected client: no slot, no compute
                batch.append(waiter)
            if not batch:
                self._slots.release()
                continue
            reason = "size" if len(batch) >= self.max_batch else "deadline"
            if self.on_flush is not None:
                self.on_flush(len(batch), reason)
            task = asyncio.get_running_loop().create_task(
                self._run_one_batch(batch))
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    async def _run_one_batch(self, batch: list[_Waiter]) -> None:
        try:
            payloads = [w.payload for w in batch]
            try:
                results = await self.run_batch(payloads)
                if len(results) != len(batch):
                    raise RuntimeError(
                        f"run_batch returned {len(results)} results for "
                        f"{len(batch)} payloads")
            except Exception:
                if len(batch) == 1:
                    raise
                # Whole-batch failure: isolate by re-running per item so
                # only the genuinely bad payloads reject.
                results = []
                for payload in payloads:
                    try:
                        out = await self.run_batch([payload])
                        if len(out) != 1:
                            raise RuntimeError(
                                f"run_batch returned {len(out)} results "
                                "for 1 payload")
                        results.append(out[0])
                    except Exception as exc:  # noqa: BLE001 — routed per item
                        results.append(exc)
            for waiter, result in zip(batch, results):
                if waiter.future.cancelled():
                    continue
                if isinstance(result, Exception):
                    waiter.future.set_exception(result)
                else:
                    waiter.future.set_result(result)
        except Exception as exc:  # noqa: BLE001 — single-item batch raise
            for waiter in batch:
                if not waiter.future.cancelled():
                    waiter.future.set_exception(exc)
        finally:
            self._slots.release()

    # ------------------------------------------------------------------ #
    async def drain(self, timeout: float | None = None) -> bool:
        """Wait until every queued and in-flight batch has completed.

        Returns True on a clean drain, False if ``timeout`` expired
        first.  New submissions during the drain are still accepted —
        call :meth:`close` afterwards to reject stragglers.
        """
        deadline = (asyncio.get_running_loop().time() + timeout
                    if timeout is not None else None)
        while self._queue or self._inflight:
            if deadline is not None and \
                    asyncio.get_running_loop().time() >= deadline:
                return False
            self._wake.set()
            await asyncio.sleep(0.005)
        return True

    async def close(self) -> None:
        """Stop the flusher and reject anything still queued."""
        self._closed = True
        self._wake.set()
        if self._flusher is not None:
            self._flusher.cancel()
            try:
                await self._flusher
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        while self._queue:
            waiter = self._queue.popleft()
            if not waiter.future.done():
                waiter.future.set_exception(
                    RuntimeError("server shutting down"))
        for task in list(self._inflight):
            task.cancel()
