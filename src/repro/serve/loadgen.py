"""The load generator behind ``repro bench-serve`` and ``BENCH_serve.json``.

Drives N concurrent closed-loop clients (one thread + one keep-alive
connection each) over a work list of ``/predict`` request bodies and
reports what a load balancer would see: requests/sec, latency
percentiles, and the per-status outcome counts.  Each worker owns a
disjoint slice of the work list, so a run touches every request exactly
once and the responses can be audited for bit-identity against direct
``SNS.predict``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from .http import ServeClient

__all__ = ["LoadResult", "run_load"]


@dataclass
class LoadResult:
    """Aggregate outcome of one load-generation run."""

    requests: int
    ok: int
    wall_s: float
    statuses: dict[int, int]
    latencies_s: list[float] = field(repr=False)
    responses: list[tuple[int, int, dict]] = field(repr=False)
    clients: int = 0

    @property
    def requests_per_second(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    def percentile(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        rank = max(0, min(len(ordered) - 1,
                          round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def as_dict(self) -> dict:
        return {
            "clients": self.clients,
            "requests": self.requests,
            "ok": self.ok,
            "wall_s": self.wall_s,
            "requests_per_second": self.requests_per_second,
            "latency_ms": {
                "p50": self.percentile(50) * 1e3,
                "p90": self.percentile(90) * 1e3,
                "p99": self.percentile(99) * 1e3,
                "mean": (sum(self.latencies_s) / len(self.latencies_s) * 1e3
                         if self.latencies_s else 0.0),
            },
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
        }


def run_load(host: str, port: int, bodies: list[dict], clients: int = 8,
             path: str = "/predict", timeout: float = 120.0,
             repeat: int = 1) -> LoadResult:
    """POST every body in ``bodies`` through ``clients`` concurrent workers.

    The work list is dealt round-robin into per-client slices; each
    worker replays its slice ``repeat`` times, serially, over one
    keep-alive connection (a closed-loop client).  Workers start on a
    shared barrier so the measured window covers true concurrency.
    ``responses`` records ``(work_index, status, payload)`` for every
    request, enabling exact-equality audits downstream.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1: {clients}")
    slices: list[list[tuple[int, dict]]] = [[] for _ in range(clients)]
    for i, body in enumerate(bodies):
        slices[i % clients].append((i, body))

    barrier = threading.Barrier(clients + 1)
    lock = threading.Lock()
    latencies: list[float] = []
    statuses: dict[int, int] = {}
    responses: list[tuple[int, int, dict]] = []

    def worker(worker_id: int, work: list[tuple[int, dict]]) -> None:
        client = ServeClient(host, port, timeout=timeout,
                             client_id=f"loadgen-{worker_id}")
        local: list[tuple[int, int, dict, float]] = []
        barrier.wait()
        for _ in range(repeat):
            for index, body in work:
                t0 = time.perf_counter()
                status, payload = client.post(path, body)
                dt = time.perf_counter() - t0
                local.append((index, status, payload, dt))
        client.close()
        with lock:
            for index, status, payload, dt in local:
                latencies.append(dt)
                statuses[status] = statuses.get(status, 0) + 1
                responses.append((index, status, payload))

    threads = [threading.Thread(target=worker, args=(i, slices[i]),
                                daemon=True)
               for i in range(clients)]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start

    return LoadResult(
        requests=len(responses),
        ok=statuses.get(200, 0),
        wall_s=wall,
        statuses=statuses,
        latencies_s=latencies,
        responses=sorted(responses, key=lambda r: r[0]),
        clients=clients,
    )
