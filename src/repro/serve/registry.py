"""The warm model registry: load-once, fingerprint-keyed, staleness-checked.

A serving process holds every model it has ever been asked for in
memory, fully warmed: the fitted :class:`~repro.core.predictor.SNS`, a
:class:`~repro.runtime.FrontendCache` and
:class:`~repro.runtime.PredictionCache` adapting one **shared**
:class:`~repro.store.ArtifactStore`, and one
:class:`~repro.runtime.BatchPredictor` per requested precision (the
fp64 predictor is bit-identical to ``SNS.predict``; reduced precisions
get their own cache rows via the PR-5 fingerprint suffix).  Loading is
single-flight per path — concurrent first requests for the same model
deserialize it exactly once.

The registry mounts one store for the whole process (directory or
SQLite backend via ``cache_dir``), and any number of sibling serve
workers may mount the same one: compiled graphs, sampled paths, and
predictions any worker computes are warm for all of them, and models
persisted by ``/train`` (see :class:`~repro.store.ModelStore`) are
resolvable by name, fingerprint, or fingerprint prefix after a restart.

Models are addressable three ways: by registry *name* (``"default"``,
a CLI-chosen alias, or a ``/train``-assigned id), by *model
fingerprint* (the PR-1 content hash over every weight and scaler), and
by any *prefix* of the fingerprint of length >= 8.  The fingerprint is
re-checked against the live weights on every :meth:`ServedModel.fresh`
call — the ``Parameter.version`` counters make that a memoized O(1)
comparison — so a model fine-tuned in place (e.g. by ``/train`` on an
aliased instance) is re-keyed instead of served stale.
"""

from __future__ import annotations

import threading
from pathlib import Path

from ..runtime import (BatchPredictor, FrontendCache, PredictionCache,
                       fingerprint_model)
from ..runtime.trainer import EncodingCache
from ..store import ArtifactStore, ModelStore, open_backend

__all__ = ["ServedModel", "ModelRegistry"]


class ServedModel:
    """One warm model: the SNS plus its serving-side cache adapters."""

    def __init__(self, sns, name: str, *, batch_size: int = 32,
                 store: ArtifactStore | None = None, executor: bool = False,
                 threads: int = 1):
        self.sns = sns
        self.name = name
        self.batch_size = batch_size
        self.executor = executor
        self.threads = threads
        self.fingerprint = fingerprint_model(sns)
        self.store = store if store is not None else ArtifactStore()
        self.frontend_cache = FrontendCache(store=self.store)
        self.prediction_cache = PredictionCache(store=self.store)
        self.encoding_cache = EncodingCache()
        self._predictors: dict[str, BatchPredictor] = {}
        self._lock = threading.Lock()

    def predictor(self, precision: str = "fp64") -> BatchPredictor:
        """The shared warm :class:`BatchPredictor` for ``precision``.

        All precisions share one prediction cache (reduced-precision
        keys carry a precision suffix) and one front-end cache; the
        compiled executor, when enabled, is built once per precision and
        kept warm across requests.
        """
        with self._lock:
            engine = self._predictors.get(precision)
            if engine is None:
                engine = BatchPredictor(
                    self.sns, cache=self.prediction_cache,
                    batch_size=self.batch_size,
                    encoding_cache=self.encoding_cache,
                    frontend_cache=self.frontend_cache,
                    executor=self.executor, precision=precision,
                    threads=self.threads)
                self._predictors[precision] = engine
            return engine

    def fresh(self) -> bool:
        """Re-fingerprint the live weights; True if nothing changed.

        On a version bump (in-place fine-tuning) the stored fingerprint
        is updated and the per-precision predictors are dropped so the
        next request rebuilds them — compiled executors would otherwise
        replay stale casts.  Cached predictions need no flushing: their
        keys embed the old fingerprint, so they simply stop matching.
        """
        current = fingerprint_model(self.sns)
        if current == self.fingerprint:
            return True
        with self._lock:
            self.fingerprint = current
            self._predictors.clear()
        return False

    def stats(self) -> dict:
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "precisions": sorted(self._predictors),
            "prediction_cache": self.prediction_cache.stats.as_dict(),
            "frontend_cache": self.frontend_cache.stats,
        }


class ModelRegistry:
    """Name/fingerprint-addressed table of warm :class:`ServedModel`\\ s
    over one shared :class:`~repro.store.ArtifactStore`."""

    def __init__(self, *, batch_size: int = 32,
                 cache_dir: str | Path | None = None, executor: bool = False,
                 threads: int = 1, store: ArtifactStore | None = None):
        self.batch_size = batch_size
        self.executor = executor
        self.threads = threads
        if store is None:
            backend = open_backend(cache_dir) if cache_dir else None
            store = ArtifactStore(backend=backend)
        self.store = store
        self.models = ModelStore(store)
        self._by_name: dict[str, ServedModel] = {}
        self._by_path: dict[str, ServedModel] = {}
        self._lock = threading.Lock()
        self.loads = 0

    # ------------------------------------------------------------------ #
    def _wrap(self, sns, name: str) -> ServedModel:
        return ServedModel(sns, name, batch_size=self.batch_size,
                           store=self.store, executor=self.executor,
                           threads=self.threads)

    def register(self, sns, name: str, persist: bool = False) -> ServedModel:
        """Adopt an already-fitted in-process model under ``name``.

        ``persist=True`` also writes the weights (and the ``name``
        alias) into the shared store so sibling workers and later
        restarts can resolve it.
        """
        served = self._wrap(sns, name)
        with self._lock:
            self._by_name[name] = served
        if persist and self.models.persistent:
            self.models.save(sns, name=name)
        return served

    def load(self, path: str | Path, name: str | None = None) -> ServedModel:
        """Load a saved ``.npz`` model, once per resolved path.

        Repeat loads of the same file return the warm instance; the
        single-flight lock means concurrent first loads deserialize it
        exactly once.
        """
        from ..core.persistence import load_sns

        resolved = str(Path(path).resolve())
        with self._lock:
            served = self._by_path.get(resolved)
            if served is None:
                sns = load_sns(resolved)
                self.loads += 1
                served = self._wrap(sns, name or Path(path).stem)
                self._by_path[resolved] = served
                self._by_name.setdefault(served.name, served)
        return served

    # ------------------------------------------------------------------ #
    def _get_warm(self, ref: str) -> ServedModel | None:
        with self._lock:
            served = self._by_name.get(ref)
            if served is not None:
                return served
            if len(ref) >= 8:
                matches = {s.fingerprint: s
                           for s in self._by_name.values()
                           if s.fingerprint.startswith(ref)}
                if len(matches) == 1:
                    return next(iter(matches.values()))
                if len(matches) > 1:
                    raise KeyError(f"model ref {ref!r} is ambiguous")
        return None

    def get(self, ref: str) -> ServedModel:
        """Resolve a model by name, fingerprint, or fingerprint prefix.

        Falls back to the shared store: a model persisted there by a
        sibling worker or a previous incarnation of this server is
        rehydrated and registered on first reference.
        """
        served = self._get_warm(ref)
        if served is not None:
            return served
        model_fp = self.models.find(ref)
        if model_fp is not None:
            sns = self.models.load(model_fp)
            if sns is not None:
                alias = ref if self.models.resolve_alias(ref) else model_fp[:12]
                with self._lock:
                    self.loads += 1
                return self.register(sns, alias)
        raise KeyError(f"no model registered under {ref!r}")

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._by_name)

    def stats(self) -> dict:
        with self._lock:
            models = list(self._by_name.values())
        return {"loads": self.loads,
                "models": {m.name: m.stats() for m in models}}
