"""``repro.serve`` — the asyncio prediction server.

One process, one event loop, a thread worker pool:

- the event loop owns all protocol work (HTTP parsing, admission
  control, micro-batch coalescing, single-flight bookkeeping) — cheap,
  allocation-light, never blocked by a prediction;
- CPU-bound work (front-end compiles, batched inference, synthesis,
  training) trampolines onto the pool via ``run_in_executor``, where
  the numpy kernels release the GIL for real parallelism;
- each (model, precision) pair gets its own
  :class:`~repro.serve.batcher.MicroBatchQueue` feeding one shared warm
  :class:`~repro.runtime.BatchPredictor`, so concurrent requests from
  unrelated clients coalesce into single pooled, deduplicated forward
  passes — responses stay bit-identical to direct ``SNS.predict``.

Overload policy: per-client token buckets answer 429 before work is
queued, a bounded queue answers 503, and per-request deadlines answer
504 with real cancellation (a timed-out request still queued is skipped
at flush time).  ``/metrics`` reports all of it.
"""

from __future__ import annotations

import asyncio
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from .admission import RateLimiter
from .batcher import MicroBatchQueue, QueueFullError
from .http import HttpError, Request, Response, read_request
from .metrics import ServerMetrics
from .registry import ModelRegistry, ServedModel

__all__ = ["ServeConfig", "PredictionServer", "ServerThread"]


@dataclass
class ServeConfig:
    """Tunables for one :class:`PredictionServer`."""

    host: str = "127.0.0.1"
    port: int = 0                      # 0 = ephemeral (tests / benches)
    max_batch: int = 32                # micro-batch size trigger
    max_wait_ms: float = 2.0           # micro-batch deadline trigger
    max_queue: int = 256               # queued requests before 503s
    workers: int = 4                   # thread pool width
    rate_limit: float | None = None    # per-client requests/sec (None = off)
    burst: float | None = None         # bucket capacity (default max(1, rate))
    request_timeout_s: float = 30.0    # per-request deadline -> 504
    precision: str = "fp64"            # default executor arithmetic
    executor: bool = False             # compiled per-bucket kernel plans
    threads: int = 1                   # executor bucket-parallelism
    batch_size: int = 32               # predict_unique forward chunk
    cache_dir: str | None = None       # persistent cache root
    serialized: bool = False           # one-request-at-a-time baseline mode
    allow_train: bool = True           # expose POST /train


class _InFlight:
    """Single-flight bookkeeping for one prediction key."""

    __slots__ = ("task", "waiters")

    def __init__(self, task: asyncio.Task):
        self.task = task
        self.waiters = 1


class PredictionServer:
    """The serving tier over a :class:`~repro.serve.registry.ModelRegistry`."""

    def __init__(self, config: ServeConfig | None = None,
                 registry: ModelRegistry | None = None):
        self.config = config or ServeConfig()
        cfg = self.config
        self.registry = registry or ModelRegistry(
            batch_size=cfg.batch_size, cache_dir=cfg.cache_dir,
            executor=cfg.executor, threads=cfg.threads)
        self.metrics = ServerMetrics()
        self.limiter = RateLimiter(cfg.rate_limit, cfg.burst)
        self._pool = ThreadPoolExecutor(
            max_workers=cfg.workers, thread_name_prefix="repro-serve")
        self._batchers: dict[tuple[str, str], MicroBatchQueue] = {}
        self._inflight: dict[str, _InFlight] = {}
        self._serial_lock = asyncio.Lock()
        self._train_lock = asyncio.Lock()
        self._dse_lock = asyncio.Lock()
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._default: str | None = None
        self._draining = False

    # -- model management ---------------------------------------------- #
    def add_model(self, sns, name: str = "default") -> ServedModel:
        served = self.registry.register(sns, name)
        if self._default is None:
            self._default = name
        return served

    def load_model(self, path, name: str | None = None) -> ServedModel:
        served = self.registry.load(path, name)
        if self._default is None:
            self._default = served.name
        return served

    def _resolve_model(self, body: dict) -> ServedModel:
        ref = body.get("model") or self._default
        if ref is None:
            raise HttpError(503, "no model is loaded")
        try:
            served = self.registry.get(str(ref))
        except KeyError as exc:
            raise HttpError(404, str(exc)) from exc
        served.fresh()  # re-key + rebuild executors if weights moved
        return served

    # -- lifecycle ------------------------------------------------------ #
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.port,
            limit=256 * 1024)

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def stop(self, drain_timeout: float = 10.0) -> None:
        """Stop accepting, drain in-flight work, then tear down.

        The drain order matters: close the listener first (no new
        connections), let queued predictions flush and in-flight
        handlers answer, then cancel stragglers and release the pool.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = asyncio.get_running_loop().time() + drain_timeout
        for batcher in self._batchers.values():
            remaining = max(0.0, deadline - asyncio.get_running_loop().time())
            await batcher.drain(timeout=remaining)
        while self._connections and \
                asyncio.get_running_loop().time() < deadline:
            await asyncio.sleep(0.01)
        for batcher in self._batchers.values():
            await batcher.close()
        for task in list(self._connections):
            task.cancel()
        self._pool.shutdown(wait=False)

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI wires SIGINT to a clean stop)."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # -- connection handling ------------------------------------------- #
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    writer.write(Response(exc.status, {"error": exc.message})
                                 .encode(keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                keep_alive = (request.headers.get("connection", "keep-alive")
                              .lower() != "close") and not self._draining
                response = await self._dispatch(request, writer)
                writer.write(response.encode(keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError,
                    BrokenPipeError, OSError):
                pass

    def _client_id(self, request: Request,
                   writer: asyncio.StreamWriter) -> str:
        explicit = request.headers.get("x-client-id")
        if explicit:
            return explicit
        peer = writer.get_extra_info("peername")
        return str(peer[0]) if peer else "unknown"

    async def _dispatch(self, request: Request,
                        writer: asyncio.StreamWriter) -> Response:
        route = (request.method, request.path)
        handlers = {
            ("GET", "/healthz"): self._handle_healthz,
            ("GET", "/metrics"): self._handle_metrics,
            ("POST", "/predict"): self._handle_predict,
            ("POST", "/dse"): self._handle_dse,
            ("POST", "/train"): self._handle_train,
        }
        handler = handlers.get(route)
        if handler is None:
            known = {path for _, path in handlers}
            status = 405 if request.path in known else 404
            return Response(status, {"error": f"no route {route[0]} {route[1]}"})

        name = request.path.lstrip("/")
        self.metrics.begin(name)
        start = time.perf_counter()
        try:
            response = await handler(request, writer)
        except HttpError as exc:
            response = Response(exc.status, {"error": exc.message})
            if exc.status == 429:
                response.headers["retry-after"] = \
                    exc.message.rsplit(" ", 1)[-1].rstrip("s")
        except asyncio.TimeoutError:
            response = Response(504, {"error": "request timed out"})
        except Exception as exc:  # noqa: BLE001 — answer 500, keep serving
            traceback.print_exc()
            response = Response(500, {"error": f"{type(exc).__name__}: {exc}"})
        self.metrics.end(name, response.status,
                         time.perf_counter() - start)
        return response

    def _admit(self, request: Request, writer: asyncio.StreamWriter) -> None:
        allowed, retry_after = self.limiter.check(
            self._client_id(request, writer))
        if not allowed:
            raise HttpError(
                429, f"rate limit exceeded; retry after {retry_after:.3f}s")

    # -- endpoints ------------------------------------------------------ #
    async def _handle_healthz(self, request: Request, writer) -> Response:
        return Response(200, {
            "status": "ok",
            "models": self.registry.names(),
            "default_model": self._default,
            "uptime_s": time.time() - self.metrics.started_at,
        })

    async def _handle_metrics(self, request: Request, writer) -> Response:
        depth = sum(b.depth for b in self._batchers.values())
        return Response(200, self.metrics.as_dict(extra={
            "queue_depth": depth,
            "store": self.registry.store.stats(),
            "registry": self.registry.stats(),
            "config": {
                "max_batch": self.config.max_batch,
                "max_wait_ms": self.config.max_wait_ms,
                "max_queue": self.config.max_queue,
                "workers": self.config.workers,
                "rate_limit": self.config.rate_limit,
                "serialized": self.config.serialized,
            },
        }))

    # .. predict ........................................................ #
    def _parse_activity(self, body: dict) -> dict[int, float] | None:
        raw = body.get("activity")
        if raw is None:
            return None
        if not isinstance(raw, dict):
            raise HttpError(400, "activity must map node ids to coefficients")
        try:
            return {int(k): float(v) for k, v in raw.items()}
        except (TypeError, ValueError) as exc:
            raise HttpError(400, f"bad activity map: {exc}") from exc

    def _compile_request(self, body: dict, served: ServedModel):
        """Front-end work for one request (runs on a worker thread)."""
        from ..runtime.frontend import compile_module, compile_source

        source = body.get("source")
        name = body.get("design")
        if (source is None) == (name is None):
            raise HttpError(
                400, "request must carry exactly one of 'source' "
                     "(Verilog text) or 'design' (bundled design name)")
        try:
            if source is not None:
                if not isinstance(source, str):
                    raise HttpError(400, "'source' must be a string")
                return compile_source(source, top=body.get("top"),
                                      cache=served.frontend_cache)
            from ..designs import get_design

            return compile_module(get_design(str(name)).module,
                                  cache=served.frontend_cache)
        except HttpError:
            raise
        except KeyError as exc:
            raise HttpError(400, f"unknown bundled design: {exc}") from exc
        except Exception as exc:  # noqa: BLE001 — front-end rejects are 400s
            raise HttpError(
                400, f"front end rejected design: "
                     f"{type(exc).__name__}: {exc}") from exc

    def _batcher_for(self, served: ServedModel,
                     precision: str) -> MicroBatchQueue:
        key = (served.name, precision)
        batcher = self._batchers.get(key)
        if batcher is None:
            engine = served.predictor(precision)
            loop = asyncio.get_running_loop()

            async def run_batch(payloads, _engine=engine, _loop=loop):
                graphs = [p[0] for p in payloads]
                activities = [p[1] for p in payloads]
                return await _loop.run_in_executor(
                    self._pool, lambda: _engine.predict_batch(
                        graphs, activity_maps=activities))

            batcher = MicroBatchQueue(
                run_batch, max_batch=self.config.max_batch,
                max_wait_s=self.config.max_wait_ms / 1e3,
                max_queue=self.config.max_queue,
                max_concurrent=self.config.workers,
                on_flush=self.metrics.observe_batch)
            self._batchers[key] = batcher
        return batcher

    @staticmethod
    def _prediction_payload(pred, served: ServedModel,
                            precision: str) -> dict:
        return {
            "design": pred.design,
            "timing_ps": pred.timing_ps,
            "area_um2": pred.area_um2,
            "power_mw": pred.power_mw,
            "num_paths": pred.num_paths,
            "spread": pred.spread,
            "critical_path": (None if pred.critical_path is None
                              else list(pred.critical_path.tokens)),
            "model": served.fingerprint,
            "precision": precision,
        }

    async def _handle_predict(self, request: Request, writer) -> Response:
        self._admit(request, writer)
        body = request.json()
        served = self._resolve_model(body)
        precision = str(body.get("precision", self.config.precision))
        activity = self._parse_activity(body)
        loop = asyncio.get_running_loop()

        if self.config.serialized:
            # The measured baseline: requests are processed strictly one
            # at a time — compile, sample, predict, answer, next.
            async with self._serial_lock:
                graph = await loop.run_in_executor(
                    self._pool, self._compile_request, body, served)
                engine = served.predictor(precision)
                preds = await loop.run_in_executor(
                    self._pool, lambda: engine.predict_batch(
                        [graph], activity_maps=[activity]))
            return Response(200, self._prediction_payload(
                preds[0], served, precision))

        graph = await loop.run_in_executor(
            self._pool, self._compile_request, body, served)

        # Single-flight: identical concurrent requests (same graph,
        # model, sampler, activity, precision) share one computation and
        # therefore exactly one PredictionCache round trip.
        from ..runtime.fingerprint import (cache_key, fingerprint_activity,
                                           fingerprint_graph,
                                           fingerprint_sampler)

        key = cache_key(fingerprint_graph(graph),
                        f"{served.fingerprint}:{precision}",
                        fingerprint_sampler(served.sns.sampler),
                        fingerprint_activity(activity))
        entry = self._inflight.get(key)
        if entry is not None and not entry.task.done():
            entry.waiters += 1
            self.metrics.observe_single_flight_hit()
            shared = entry
        else:
            batcher = self._batcher_for(served, precision)
            task = loop.create_task(batcher.submit((graph, activity)))
            shared = _InFlight(task)
            self._inflight[key] = shared
            task.add_done_callback(
                lambda _t, _k=key: self._inflight.pop(_k, None)
                if self._inflight.get(_k) is shared else None)

        try:
            pred = await asyncio.wait_for(
                asyncio.shield(shared.task), timeout=self.config.request_timeout_s)
        except asyncio.TimeoutError:
            shared.waiters -= 1
            if shared.waiters <= 0 and not shared.task.done():
                # Last interested client gave up: cancel the shared
                # computation; a still-queued waiter is skipped at flush.
                shared.task.cancel()
                self._inflight.pop(key, None)
            raise HttpError(504, "prediction timed out")
        except QueueFullError as exc:
            raise HttpError(503, str(exc)) from exc
        except asyncio.CancelledError:
            raise
        shared.waiters -= 1
        return Response(200, self._prediction_payload(
            pred, served, precision))

    # .. dse ............................................................ #
    async def _handle_dse(self, request: Request, writer) -> Response:
        self._admit(request, writer)
        body = request.json()
        served = self._resolve_model(body)
        budget = int(body.get("budget", 256))
        if budget < 1 or budget > 1_000_000:
            raise HttpError(400, f"budget out of range: {budget}")
        space = str(body.get("space", "boom"))
        if space not in ("boom", "extended"):
            raise HttpError(400, f"space must be 'boom' or 'extended': {space}")
        fidelity = float(body.get("fidelity", 0.25))
        predict_budget = max(1, int(round(budget * fidelity)))
        seed = int(body.get("seed", 0))
        chunk = int(body.get("chunk", 256))
        loop = asyncio.get_running_loop()

        def run():
            from ..boom import BoomDSE, boom_grid, extended_grid

            grid = extended_grid() if space == "extended" else boom_grid()
            dse = BoomDSE(predictor=served.sns)
            return grid, dse.explore(grid=grid, budget=budget,
                                     predict_budget=predict_budget,
                                     chunk=chunk, seed=seed)

        async with self._dse_lock:  # one exploration at a time per process
            grid, result = await asyncio.wait_for(
                loop.run_in_executor(self._pool, run),
                timeout=max(self.config.request_timeout_s, 300.0))
        eng = result.engine_result

        from dataclasses import asdict

        def point(p):
            return {"name": p.config.name, "params": asdict(p.config),
                    "score": p.score, "timing_ps": p.timing_ps,
                    "area_um2": p.area_um2, "power_mw": p.power_mw}

        return Response(200, {
            "space": space, "grid_size": len(grid), "budget": budget,
            "predict_budget": predict_budget, "seed": seed,
            "explored": len(result.points),
            "front_size": len(eng.front),
            "high_perf": point(result.high_perf),
            "power_eff": point(result.power_eff),
            "area_eff": point(result.area_eff),
            "profile": eng.profile.as_dict(),
            "model": served.fingerprint,
        })

    # .. train .......................................................... #
    async def _handle_train(self, request: Request, writer) -> Response:
        if not self.config.allow_train:
            raise HttpError(404, "training is disabled on this server")
        self._admit(request, writer)
        body = request.json()
        names = body.get("designs")
        if not isinstance(names, list) or not names:
            raise HttpError(400, "'designs' must be a non-empty list of "
                                 "bundled design names")
        effort = str(body.get("effort", "low"))
        if effort not in ("low", "medium", "high"):
            raise HttpError(400, f"bad effort: {effort}")
        cf_epochs = int(body.get("circuitformer_epochs", 2))
        agg_epochs = int(body.get("aggregator_epochs", 30))
        max_paths = int(body.get("max_paths", 60))
        seed = int(body.get("seed", 0))
        alias = body.get("name")
        loop = asyncio.get_running_loop()

        # The request is a pure function of these parameters; its content
        # address indexes the trained weights in the shared store, so an
        # identical request — from any worker, before or after a restart
        # — replays the stored model instead of retraining.
        from ..store.keys import training_request_key

        training_fp = training_request_key({
            "designs": list(names), "effort": effort,
            "circuitformer_epochs": cf_epochs,
            "aggregator_epochs": agg_epochs,
            "max_paths": max_paths, "seed": seed,
        })
        models = self.registry.models
        if models.persistent:
            stored_fp = models.resolve_training(training_fp)
            if stored_fp is not None:
                start = time.perf_counter()
                sns = await loop.run_in_executor(
                    self._pool, models.load, stored_fp)
                if sns is not None:
                    served = self.add_model(
                        sns, str(alias) if alias else f"train-{stored_fp[:8]}")
                    return Response(200, {
                        "model": served.fingerprint,
                        "name": served.name,
                        "designs": len(names),
                        "cached": True,
                        "train_s": time.perf_counter() - start,
                    })

        def run():
            from ..core import (SNS, CircuitformerConfig, PathSampler,
                                TrainingConfig)
            from ..datagen import build_design_dataset
            from ..designs import standard_designs
            from ..synth import Synthesizer

            by_name = {e.name: e for e in standard_designs()}
            unknown = [n for n in names if n not in by_name]
            if unknown:
                raise HttpError(400, f"unknown designs: {unknown}")
            synth = Synthesizer(effort=effort)
            records = build_design_dataset(
                [by_name[n] for n in names], synth)
            sns = SNS(sampler=PathSampler(k=5, max_paths=max_paths, seed=seed),
                      circuitformer_config=CircuitformerConfig(
                          embedding_size=32, dim_feedforward=64,
                          hidden_layers=1, max_input_size=64),
                      training_config=TrainingConfig(
                          circuitformer_epochs=cf_epochs,
                          aggregator_epochs=agg_epochs, seed=seed),
                      num_aggregators=1)
            sns.fit(records, synthesizer=synth)
            return sns, len(records)

        start = time.perf_counter()
        async with self._train_lock:  # one training job at a time
            sns, num_designs = await asyncio.wait_for(
                loop.run_in_executor(self._pool, run),
                timeout=max(self.config.request_timeout_s, 600.0))
        from ..runtime import fingerprint_model

        served = self.add_model(
            sns, str(alias) if alias else f"train-{fingerprint_model(sns)[:8]}")
        if models.persistent:
            await loop.run_in_executor(
                self._pool, lambda: models.save(
                    sns, name=served.name, training_fp=training_fp))
        return Response(200, {
            "model": served.fingerprint,
            "name": served.name,
            "designs": num_designs,
            "cached": False,
            "train_s": time.perf_counter() - start,
        })


class ServerThread:
    """Run a :class:`PredictionServer` on a background event loop.

    The bench harness and the tests need a live server inside one
    process; this wraps the whole lifecycle::

        with ServerThread(server) as handle:
            client = ServeClient("127.0.0.1", handle.port)
            ...

    Startup blocks until the socket is bound; exit requests a clean
    drain-and-stop and joins the loop thread.
    """

    def __init__(self, server: PredictionServer,
                 drain_timeout: float = 10.0):
        self.server = server
        self.drain_timeout = drain_timeout
        self.port: int | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._error: BaseException | None = None

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            await self.server.start()
            self.port = self.server.port
        except BaseException as exc:
            self._error = exc
            self._ready.set()
            raise
        self._ready.set()
        await self._stop.wait()
        await self.server.stop(drain_timeout=self.drain_timeout)

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-serve-loop", daemon=True)
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._error is not None:
            raise RuntimeError("server failed to start") from self._error
        if self.port is None:
            raise RuntimeError("server did not bind within 30s")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=self.drain_timeout + 10.0)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
