"""Request metrics for the serving layer (exported as JSON on ``/metrics``).

Everything here is deliberately simple and lock-guarded: counters,
gauges, and sample-backed histograms that a single ``/metrics`` GET can
snapshot without stopping the world.  Latency percentiles are computed
from a bounded reservoir of recent samples (the newest ``max_samples``
observations) rather than fixed buckets, so p50/p90/p99 are exact over
the retained window — the right trade for a benchmark-audited server
whose interesting runs are thousands, not billions, of requests.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque

__all__ = ["LatencyHistogram", "EndpointMetrics", "ServerMetrics"]


class LatencyHistogram:
    """Latency distribution over a bounded window of recent samples."""

    def __init__(self, max_samples: int = 8192):
        self._samples: deque[float] = deque(maxlen=max_samples)
        self.count = 0
        self.total_s = 0.0

    def observe(self, seconds: float) -> None:
        self._samples.append(seconds)
        self.count += 1
        self.total_s += seconds

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of the retained window."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1,
                          round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def as_dict(self) -> dict:
        ordered = sorted(self._samples)

        def pct(q: float) -> float:
            if not ordered:
                return 0.0
            rank = max(0, min(len(ordered) - 1,
                              round(q / 100.0 * (len(ordered) - 1))))
            return ordered[rank]

        return {
            "count": self.count,
            "mean_ms": (self.total_s / self.count * 1e3) if self.count else 0.0,
            "p50_ms": pct(50) * 1e3,
            "p90_ms": pct(90) * 1e3,
            "p99_ms": pct(99) * 1e3,
            "max_ms": (ordered[-1] * 1e3) if ordered else 0.0,
        }


class EndpointMetrics:
    """Per-endpoint counters, an in-flight gauge, and a latency histogram."""

    def __init__(self):
        self.requests = 0
        self.ok = 0
        self.errors = 0
        self.rejected_rate_limit = 0     # 429s
        self.rejected_queue_full = 0     # 503s
        self.timeouts = 0                # 504s
        self.in_flight = 0
        self.peak_in_flight = 0
        self.latency = LatencyHistogram()

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "rejected_rate_limit": self.rejected_rate_limit,
            "rejected_queue_full": self.rejected_queue_full,
            "timeouts": self.timeouts,
            "in_flight": self.in_flight,
            "peak_in_flight": self.peak_in_flight,
            "latency": self.latency.as_dict(),
        }


class ServerMetrics:
    """The server-wide metrics registry behind ``/metrics``.

    One :class:`EndpointMetrics` per route, plus cross-cutting serving
    telemetry: the micro-batch size distribution (with flush reasons),
    single-flight coalescing counters, and whatever cache statistics the
    server chooses to attach at snapshot time.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._endpoints: dict[str, EndpointMetrics] = {}
        self._batch_sizes: deque[int] = deque(maxlen=8192)
        self._flush_reasons: Counter = Counter()
        self.batches = 0
        self.batched_requests = 0
        self.single_flight_hits = 0
        self.started_at = time.time()

    # -- endpoint lifecycle -------------------------------------------- #
    def endpoint(self, name: str) -> EndpointMetrics:
        with self._lock:
            ep = self._endpoints.get(name)
            if ep is None:
                ep = self._endpoints[name] = EndpointMetrics()
            return ep

    def begin(self, name: str) -> EndpointMetrics:
        ep = self.endpoint(name)
        with self._lock:
            ep.requests += 1
            ep.in_flight += 1
            ep.peak_in_flight = max(ep.peak_in_flight, ep.in_flight)
        return ep

    def end(self, name: str, status: int, seconds: float) -> None:
        ep = self.endpoint(name)
        with self._lock:
            ep.in_flight -= 1
            ep.latency.observe(seconds)
            if status < 400:
                ep.ok += 1
            elif status == 429:
                ep.rejected_rate_limit += 1
            elif status == 503:
                ep.rejected_queue_full += 1
            elif status == 504:
                ep.timeouts += 1
            else:
                ep.errors += 1

    # -- serving telemetry --------------------------------------------- #
    def observe_batch(self, size: int, reason: str) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += size
            self._batch_sizes.append(size)
            self._flush_reasons[reason] += 1

    def observe_single_flight_hit(self, n: int = 1) -> None:
        with self._lock:
            self.single_flight_hits += n

    # ------------------------------------------------------------------ #
    def as_dict(self, extra: dict | None = None) -> dict:
        with self._lock:
            sizes = sorted(self._batch_sizes)

            def pct(q: float) -> float:
                if not sizes:
                    return 0.0
                rank = max(0, min(len(sizes) - 1,
                                  round(q / 100.0 * (len(sizes) - 1))))
                return float(sizes[rank])

            doc = {
                "uptime_s": time.time() - self.started_at,
                "endpoints": {name: ep.as_dict()
                              for name, ep in self._endpoints.items()},
                "batching": {
                    "batches": self.batches,
                    "batched_requests": self.batched_requests,
                    "mean_batch_size": (self.batched_requests / self.batches
                                        if self.batches else 0.0),
                    "p50_batch_size": pct(50),
                    "max_batch_size": float(sizes[-1]) if sizes else 0.0,
                    "flush_reasons": dict(self._flush_reasons),
                },
                "single_flight_hits": self.single_flight_hits,
            }
        if extra:
            doc.update(extra)
        return doc
