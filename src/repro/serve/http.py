"""Minimal HTTP/1.1 over asyncio streams — no dependencies, no framework.

The server speaks exactly the subset the serving API needs: request
line + headers + ``Content-Length`` bodies, JSON in and JSON out,
keep-alive by default.  :class:`ServeClient` is the matching blocking
client (``http.client`` under the hood) used by the load generator, the
CLI's ``bench-serve`` mode, and the tests — one wire format, both ends
in-tree.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

__all__ = ["HttpError", "Request", "Response", "read_request", "ServeClient"]

MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 16 * 1024 * 1024

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A protocol-level failure that maps directly to a status code."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes

    def json(self) -> dict:
        if not self.body:
            return {}
        try:
            doc = json.loads(self.body)
        except ValueError as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(doc, dict):
            raise HttpError(400, "JSON body must be an object")
        return doc


@dataclass
class Response:
    """One JSON response; :meth:`encode` renders the wire bytes."""

    status: int = 200
    payload: dict = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)

    def encode(self, keep_alive: bool = True) -> bytes:
        body = json.dumps(self.payload).encode()
        reason = _REASONS.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}",
                 "content-type: application/json",
                 f"content-length: {len(body)}",
                 f"connection: {'keep-alive' if keep_alive else 'close'}"]
        lines += [f"{k}: {v}" for k, v in self.headers.items()]
        return ("\r\n".join(lines) + "\r\n\r\n").encode() + body


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`HttpError` on malformed input (the caller answers
    with the error's status and closes the connection).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise HttpError(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(413, "request head too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "request head too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    split = urlsplit(target)
    query = dict(parse_qsl(split.query))

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise HttpError(400, "bad content-length") from exc
        if length < 0 or length > MAX_BODY_BYTES:
            raise HttpError(413, f"body of {length} bytes exceeds limit")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise HttpError(400, "truncated request body") from exc
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")

    return Request(method=method, path=split.path, query=query,
                   headers=headers, body=body)


class ServeClient:
    """Blocking JSON client for a serve endpoint (keep-alive connection).

    Thin wrapper over :class:`http.client.HTTPConnection`; one instance
    per thread.  ``request`` returns ``(status, payload)`` and
    transparently reconnects once if the server closed the idle
    connection.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 client_id: str | None = None):
        import http.client

        self._make = lambda: http.client.HTTPConnection(
            host, port, timeout=timeout)
        self._conn = self._make()
        self.client_id = client_id

    def request(self, method: str, path: str,
                payload: dict | None = None) -> tuple[int, dict]:
        body = None if payload is None else json.dumps(payload).encode()
        headers = {"content-type": "application/json"}
        if self.client_id is not None:
            headers["x-client-id"] = self.client_id
        for attempt in (0, 1):
            try:
                self._conn.request(method, path, body=body, headers=headers)
                response = self._conn.getresponse()
                data = response.read()
                break
            except (ConnectionError, OSError):
                self._conn.close()
                self._conn = self._make()
                if attempt:
                    raise
        try:
            doc = json.loads(data) if data else {}
        except ValueError:
            doc = {"raw": data.decode("latin-1")}
        return response.status, doc

    def get(self, path: str) -> tuple[int, dict]:
        return self.request("GET", path)

    def post(self, path: str, payload: dict) -> tuple[int, dict]:
        return self.request("POST", path, payload)

    def close(self) -> None:
        self._conn.close()
