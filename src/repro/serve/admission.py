"""Admission control: per-client token buckets and bounded-queue shedding.

The server's overload policy is *shed, don't collapse*: a client that
exceeds its request rate gets a 429 before its request touches the
queue, and a full prediction queue turns new work away with a 503
instead of growing latency without bound.  Both decisions are made at
admission time — O(1), no allocation beyond the first sight of a new
client — so the rejection path stays cheap precisely when the server is
busiest.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

__all__ = ["TokenBucket", "RateLimiter"]


class TokenBucket:
    """A standard token bucket: ``rate`` tokens/sec, capacity ``burst``."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float):
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = now

    def allow(self, now: float, cost: float = 1.0) -> bool:
        self.tokens = min(self.burst,
                          self.tokens + (now - self.updated) * self.rate)
        self.updated = now
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False

    def retry_after(self, cost: float = 1.0) -> float:
        """Seconds until ``cost`` tokens will have accumulated."""
        deficit = cost - self.tokens
        return max(0.0, deficit / self.rate) if self.rate > 0 else 60.0


class RateLimiter:
    """Per-client token buckets (client id -> bucket), LRU-bounded.

    ``rate=None`` disables limiting entirely.  The bucket table is
    capped at ``max_clients`` (least-recently-seen evicted first) so an
    adversarial stream of fresh client ids cannot grow memory without
    bound — an evicted client simply starts over with a full bucket.
    """

    def __init__(self, rate: float | None, burst: float | None = None,
                 max_clients: int = 4096, clock=time.monotonic):
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be positive or None: {rate}")
        self.rate = rate
        self.burst = burst if burst is not None else (
            max(1.0, rate) if rate is not None else 0.0)
        self.max_clients = max_clients
        self.clock = clock
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()
        self._lock = threading.Lock()

    def check(self, client: str) -> tuple[bool, float]:
        """Admit or reject one request from ``client``.

        Returns ``(allowed, retry_after_s)``; ``retry_after_s`` is 0
        when allowed.
        """
        if self.rate is None:
            return True, 0.0
        now = self.clock()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = self._buckets[client] = TokenBucket(
                    self.rate, self.burst, now)
            else:
                self._buckets.move_to_end(client)
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
            if bucket.allow(now):
                return True, 0.0
            return False, bucket.retry_after()
