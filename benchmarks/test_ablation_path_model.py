"""Ablation — Circuitformer vs the order-blind linear path model.

Section 3.3's motivating argument: a linear regression over vertex
counts cannot distinguish [mul, add] (MAC-fusable) from [add, mul].
This bench trains both models on the same path dataset — deliberately
including order-sensitive pairs — and compares held-out accuracy plus
the order-discrimination gap.
"""

import numpy as np
import pytest

from repro.baselines import PathCountLinearModel
from repro.core import Circuitformer, CircuitformerConfig, TrainingConfig, rrse
from repro.core.training import train_circuitformer
from repro.datagen import PathRecord
from repro.experiments import format_table
from repro.synth import Synthesizer

from conftest import run_once

SMALL_CF = CircuitformerConfig(embedding_size=32, dim_feedforward=64,
                               max_input_size=64)


def _order_pairs(rng, synth, count):
    """Label paths that differ only in mul/add order."""
    records = []
    for _ in range(count):
        width = int(rng.choice([8, 16, 32]))
        prefix = ["io" + str(width)]
        n_extra = int(rng.integers(0, 3))
        extras = [str(rng.choice(["xor", "mux", "and"])) + str(width)
                  for _ in range(n_extra)]
        w2 = str(min(2 * width, 64))
        for middle in (["mul" + w2, "add" + w2], ["add" + w2, "mul" + w2]):
            tokens = tuple(prefix + extras + middle + ["dff" + w2])
            label = synth.synthesize_path(list(tokens))
            records.append(PathRecord(tokens, label.timing_ps,
                                      label.area_um2, label.power_mw))
    return records


def test_ablation_circuitformer_vs_linear(benchmark):
    synth = Synthesizer(effort="medium")
    rng = np.random.default_rng(0)

    def run():
        records = _order_pairs(rng, synth, 60)
        seen = {r.tokens for r in records}
        records = [r for i, r in enumerate(records)
                   if r.tokens not in {x.tokens for x in records[:i]}]
        rng.shuffle(records)
        split = int(0.7 * len(records))
        train, test = records[:split], records[split:]

        cf = Circuitformer(SMALL_CF, seed=0)
        train_circuitformer(cf, train, TrainingConfig(circuitformer_epochs=40))
        cf_pred = cf.predict_paths([r.tokens for r in test])

        lin = PathCountLinearModel(alpha=1e-2)
        lin.fit([r.tokens for r in train],
                np.stack([r.labels for r in train]))
        lin_pred = lin.predict([r.tokens for r in test])

        actual = np.stack([r.labels for r in test])
        return cf_pred, lin_pred, actual, cf, lin

    cf_pred, lin_pred, actual, cf, lin = run_once(benchmark, run)

    rows = []
    scores = {}
    for i, target in enumerate(("timing", "area", "power")):
        cf_r = rrse(cf_pred[:, i], actual[:, i])
        lin_r = rrse(lin_pred[:, i], actual[:, i])
        scores[target] = (cf_r, lin_r)
        rows.append([target, f"{cf_r:.3f}", f"{lin_r:.3f}"])
    print("\n" + format_table(
        ["target", "Circuitformer RRSE", "linear RRSE"],
        rows, title="Ablation: path model on order-sensitive paths"))

    # 1. The Circuitformer beats the order-blind model on timing, where
    #    MAC fusion moves the label most (area shifts only a few percent,
    #    so a count model remains competitive there).
    assert scores["timing"][0] < scores["timing"][1]
    # 2. The structural claim of Section 3.3: the Circuitformer tells
    #    [mul, add] from [add, mul]; the linear model cannot.
    pair_a = [("io8", "mul16", "add16", "dff16")]
    pair_b = [("io8", "add16", "mul16", "dff16")]
    cf_gap = abs(float(cf.predict_paths(pair_a)[0, 0]
                       - cf.predict_paths(pair_b)[0, 0]))
    lin_gap = abs(float(lin.predict(pair_a)[0, 0] - lin.predict(pair_b)[0, 0]))
    print(f"order-pair timing gap: Circuitformer {cf_gap:.1f} ps, "
          f"linear {lin_gap:.1f} ps")
    assert lin_gap == pytest.approx(0.0, abs=1e-9)
    assert cf_gap > 0.0
