"""Shared fixtures for the per-table/per-figure benchmark harness.

Heavy artifacts (the synthesized design dataset, trained SNS models) are
built once per session and shared across benches.  The preset is chosen
with the ``SNS_BENCH_PRESET`` environment variable:

- ``paper`` (default): full-size Circuitformer, augmented path dataset —
  the configuration behind the committed EXPERIMENTS.md numbers.
- ``fast``: minutes-scale smoke configuration.
"""

from __future__ import annotations

import os

import pytest

from repro.core import CircuitformerConfig, TrainingConfig
from repro.datagen import AugmentationConfig, SeqGANConfig, train_test_split_by_family
from repro.experiments import FAST, ExperimentSettings, build_dataset, fit_sns

# The committed-numbers preset: Table 2 model, augmented paths, CPU-scaled
# epochs.  (The paper's GPU epoch counts are in PAPER_HYPERPARAMS.)
PAPER = ExperimentSettings(
    name="paper",
    synth_effort="medium",
    sampler_max_paths=300,
    sampler_k=5,
    circuitformer=CircuitformerConfig(),
    training=TrainingConfig(circuitformer_epochs=20, aggregator_epochs=400),
    augmentation=AugmentationConfig(
        markov_paths=300, seqgan_paths=400, max_len=48,
        seqgan=SeqGANConfig(max_len=48, pretrain_epochs=25, adversarial_rounds=6),
    ),
    max_design_nodes=None,
)

_PRESETS = {"paper": PAPER, "fast": FAST}


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    name = os.environ.get("SNS_BENCH_PRESET", "paper")
    if name not in _PRESETS:
        raise KeyError(f"SNS_BENCH_PRESET must be one of {sorted(_PRESETS)}")
    return _PRESETS[name]


@pytest.fixture(scope="session")
def design_records(settings):
    """The synthesized 41-design Hardware Design Dataset (Table 4)."""
    return build_dataset(settings)


@pytest.fixture(scope="session")
def cv_parts(design_records, settings):
    """The 2-fold split (part A, part B) used by Figure 6 / Table 7."""
    return train_test_split_by_family(design_records, 0.5, seed=settings.seed)


@pytest.fixture(scope="session")
def sns_on_a(cv_parts, settings):
    """SNS trained on part A (evaluates part B)."""
    return fit_sns(cv_parts[0], settings)


@pytest.fixture(scope="session")
def sns_on_b(cv_parts, settings):
    """SNS trained on part B (evaluates part A)."""
    return fit_sns(cv_parts[1], settings)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
