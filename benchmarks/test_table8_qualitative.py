"""Table 8 — qualitative comparison with related works."""

from repro.core import TABLE8_SYSTEMS, format_table8, qualitative_comparison

from conftest import run_once


def test_table8_qualitative_comparison(benchmark):
    text = run_once(benchmark, format_table8)
    print("\nTable 8: qualitative comparison with related works")
    print(text)

    sns = qualitative_comparison("SNS")
    # SNS's column: everything Yes except FPGA prediction.
    assert sum(sns.values()) == 7
    assert not sns["FPGA Design Prediction"]
    # Only SNS and D-SAGE support general-purpose designs...
    general = [s for s in TABLE8_SYSTEMS
               if qualitative_comparison(s)["Support General Purpose Designs"]]
    assert set(general) == {"D-SAGE", "SNS"}
    # ...and of those, only SNS also handles >1M-gate designs.
    big = [s for s in general
           if qualitative_comparison(s)["Support Large Designs (>1M gates)"]]
    assert big == ["SNS"]
