"""Ablation — width rounding (Section 3.1).

The paper: rounding widths to powers of two cuts the vocabulary "from
around 1000 to 79" and lets rare widths share training signal.  This
bench measures the actual vocabulary explosion on our design dataset.
"""

from collections import Counter

from repro.designs import standard_designs
from repro.experiments import format_table

from conftest import run_once


def test_ablation_width_rounding(benchmark):
    def measure():
        rounded = Counter()
        unrounded = Counter()
        for entry in standard_designs():
            graph = entry.module.elaborate()
            for node in graph.nodes():
                rounded[node.token] += 1
                unrounded[(node.node_type, node.width)] += 1
        return rounded, unrounded

    rounded, unrounded = run_once(benchmark, measure)

    singleton_unrounded = sum(1 for c in unrounded.values() if c == 1)
    singleton_rounded = sum(1 for c in rounded.values() if c == 1)
    print("\n" + format_table(
        ["metric", "rounded (SNS)", "unrounded"],
        [["distinct vocabulary entries", len(rounded), len(unrounded)],
         ["entries seen only once", singleton_rounded, singleton_unrounded]],
        title="Ablation: width rounding"))
    print("paper: rounding reduces ~1000 vocabularies to 79")

    # Rounding compresses the observed vocabulary substantially and
    # stays inside the fixed 79-token set.
    assert len(rounded) <= 79
    assert len(unrounded) > 1.5 * len(rounded)
    # Rare-width starvation: rounding removes singleton classes that
    # would otherwise never train ("a 17-bit divider seen once").
    assert singleton_rounded <= singleton_unrounded
