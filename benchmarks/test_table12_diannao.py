"""Table 12 — SNS's synthesis prediction for the published DianNao point."""

from repro.experiments import format_table, table12_prediction

from conftest import run_once

# Paper Table 12 errors: power 10.1%, area 27.8%, timing 9.1%.
PAPER_ERRORS = {"power_mw": 10.1, "area_um2": 27.8, "timing_ps": 9.1}


def test_table12_diannao_prediction(benchmark, sns_on_a):
    report = run_once(benchmark, lambda: table12_prediction(sns_on_a))

    rows = [
        ["Synthesis result (65nm)", report.original_65nm["power_mw"],
         report.original_65nm["area_um2"] * 1e-6,
         report.original_65nm["timing_ps"] * 1e-3],
        ["Scaled result (15nm)", report.scaled_15nm["power_mw"],
         report.scaled_15nm["area_um2"] * 1e-6,
         report.scaled_15nm["timing_ps"] * 1e-3],
        ["Reference synthesizer (15nm)", report.reference_15nm["power_mw"],
         report.reference_15nm["area_um2"] * 1e-6,
         report.reference_15nm["timing_ps"] * 1e-3],
        ["SNS prediction (15nm)", report.prediction_15nm["power_mw"],
         report.prediction_15nm["area_um2"] * 1e-6,
         report.prediction_15nm["timing_ps"] * 1e-3],
    ]
    print("\n" + format_table(
        ["row", "power (mW)", "area (mm2)", "timing (ns)"],
        rows, title="Table 12: SNS's synthesis prediction for DianNao"))
    for metric, paper_err in PAPER_ERRORS.items():
        print(f"  {metric}: error vs paper-scaled {report.error_pct(metric):.1f}% "
              f"(paper: {paper_err:.1f}%); "
              f"vs our synthesizer {report.error_vs_reference_pct(metric):.1f}%")

    # The Stillmaker-Baas scaling itself must match the paper's row 2.
    assert abs(report.scaled_15nm["power_mw"] - 65.90) / 65.90 < 0.02
    assert abs(report.scaled_15nm["area_um2"] - 97302.0) / 97302.0 < 0.02
    assert abs(report.scaled_15nm["timing_ps"] - 330.0) / 330.0 < 0.02
    # Our synthesizer's DianNao lands in the same regime as the paper's
    # scaled result (same order of magnitude on every metric).
    for metric in PAPER_ERRORS:
        ratio = report.reference_15nm[metric] / report.scaled_15nm[metric]
        assert 0.2 < ratio < 5.0, (metric, ratio)
    # SNS predicts the ground truth it was trained against within the
    # paper's error regime (tens of percent).
    for metric in PAPER_ERRORS:
        assert report.error_vs_reference_pct(metric) < 60.0, (
            metric, report.error_vs_reference_pct(metric))
