"""Figure 10 + Table 13 — the DianNao Tn design-space exploration."""

from repro.diannao import TABLE13, full_design_space
from repro.experiments import format_series, format_table, run_tn_sweep
from repro.synth import Synthesizer

from conftest import run_once


def test_table13_parameter_space(benchmark):
    space = run_once(benchmark, full_design_space)

    rows = [[name, ", ".join(map(str, values)), len(values)]
            for name, values in TABLE13.items()]
    rows.append(["# of combinations", "", len(space)])
    print("\n" + format_table(["parameter", "possible values", "count"], rows,
                              title="Table 13: DianNao DSE design parameters"))
    assert len(space) == 576


def test_fig10_tn_sweep(benchmark, sns_on_a):
    """Tn sweep with both engines; the synthesizer gives the reference shape."""

    def run():
        reference = run_tn_sweep(Synthesizer(effort="medium"))
        predicted = run_tn_sweep(sns_on_a)
        return reference, predicted

    reference, predicted = run_once(benchmark, run)

    for label, result in (("synthesizer", reference), ("SNS", predicted)):
        points = sorted(result.points, key=lambda p: p.config.tn)
        tns = [p.config.tn for p in points]
        print(f"\nFigure 10 ({label}):")
        print(format_series("  area efficiency (inf/s/mm2)", tns,
                            [p.area_efficiency for p in points], "Tn"))
        print(format_series("  energy per inference (uJ)", tns,
                            [p.energy_per_inference_uj for p in points], "Tn"))
        print(format_series("  area (mm2)", tns,
                            [p.area_um2 * 1e-6 for p in points], "Tn"))

    # The paper's Figure 10 conclusions, on the reference engine:
    ref = {p.config.tn: p for p in reference.points}
    # 1. Area and power grow monotonically with Tn.
    assert ref[4].area_um2 < ref[8].area_um2 < ref[16].area_um2 < ref[32].area_um2
    assert ref[4].power_mw < ref[32].power_mw
    # 2. Tn=16 maximizes area efficiency AND minimizes energy/inference —
    #    "which explains why the DianNao paper chooses Tn=16".
    assert reference.best_by_area_efficiency().config.tn == 16
    assert reference.best_by_energy().config.tn == 16
    # 3. SNS's predicted curve puts the optimum at 16 or its neighborhood.
    assert predicted.best_by_area_efficiency().config.tn in (8, 16)
