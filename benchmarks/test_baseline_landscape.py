"""Extended baseline comparison (the Table 8 landscape, quantified).

The paper compares quantitatively only against D-SAGE; this bench also
measures the related-work model families it cites qualitatively — a
Pyramid-style random forest and a GRANNITE-style GCN — on our design
dataset, under the same family split SNS uses.
"""

import numpy as np

from repro.baselines import (
    DesignStatsLinearModel,
    DSAGEConfig,
    DSAGETimingModel,
    ForestDesignModel,
    GCNConfig,
    GCNPowerModel,
)
from repro.core import rrse
from repro.experiments import evaluate_split, format_table

from conftest import run_once

TARGETS = ("timing", "area", "power")


def test_baseline_landscape(benchmark, cv_parts, sns_on_a, settings):
    train, test = cv_parts

    def run():
        train_graphs = [r.graph for r in train]
        train_labels = np.stack([r.labels for r in train])
        test_graphs = [r.graph for r in test]
        actual = np.stack([r.labels for r in test])

        results: dict[str, dict[str, float]] = {}

        rows = evaluate_split(sns_on_a, test)
        sns_pred = np.array([r.predicted for r in rows])
        results["SNS"] = {t: rrse(sns_pred[:, i], actual[:, i])
                          for i, t in enumerate(TARGETS)}

        linear = DesignStatsLinearModel(alpha=1.0).fit(train_graphs, train_labels)
        lin_pred = linear.predict(test_graphs)
        results["linear (stats)"] = {t: rrse(lin_pred[:, i], actual[:, i])
                                     for i, t in enumerate(TARGETS)}

        forest = ForestDesignModel(n_trees=30, seed=0).fit(train_graphs, train_labels)
        for_pred = forest.predict(test_graphs)
        results["random forest"] = {t: rrse(for_pred[:, i], actual[:, i])
                                    for i, t in enumerate(TARGETS)}

        dsage = DSAGETimingModel(DSAGEConfig(epochs=60, seed=0))
        dsage.fit(train_graphs, train_labels[:, 0])
        results["D-SAGE (GNN)"] = {
            "timing": rrse(dsage.predict(test_graphs), actual[:, 0])}

        gcn = GCNPowerModel(GCNConfig(epochs=60, seed=0))
        gcn.fit(train_graphs, train_labels[:, 2])
        results["GRANNITE-style GCN"] = {
            "power": rrse(gcn.predict(test_graphs), actual[:, 2])}
        return results

    results = run_once(benchmark, run)

    rows = []
    for name, scores in results.items():
        rows.append([name] + [f"{scores[t]:.3f}" if t in scores else "-"
                              for t in TARGETS])
    print("\n" + format_table(
        ["model", "timing RRSE", "area RRSE", "power RRSE"], rows,
        title="Baseline landscape (one family split; lower better)"))

    # SNS's path-based timing signal is its unique advantage: at the
    # paper preset no baseline should beat it on timing.  (The fast smoke
    # preset trains a deliberately under-sized Circuitformer, so there we
    # only require the harness to produce finite comparisons.)
    assert all(np.isfinite(v) for scores in results.values()
               for v in scores.values())
    if settings.name == "paper":
        sns_timing = results["SNS"]["timing"]
        for name, scores in results.items():
            if name != "SNS" and "timing" in scores:
                assert sns_timing <= scores["timing"] + 1e-9, (name, scores)
