"""Table 7 — evaluation accuracy: 50%/30% training splits + D-SAGE."""

from repro.experiments import (
    AccuracyReport,
    dsage_timing_comparison,
    evaluate_split,
    scarce_data_run,
    format_table,
)

from conftest import run_once

# Table 7 of the paper, for side-by-side reporting.
PAPER_TABLE7 = {
    ("timing", "rrse", 50): 0.67, ("timing", "rrse", 30): 0.82,
    ("power", "rrse", 50): 0.60, ("power", "rrse", 30): 1.02,
    ("area", "rrse", 50): 0.22, ("area", "rrse", 30): 0.26,
    ("timing", "maep", 50): 38.00, ("timing", "maep", 30): 61.46,
    ("power", "maep", 50): 48.72, ("power", "maep", 30): 71.35,
    ("area", "maep", 50): 54.57, ("area", "maep", 30): 52.02,
    "dsage_timing_rrse": 0.83,
}


def test_table7_accuracy(benchmark, design_records, cv_parts, sns_on_a, sns_on_b,
                         settings):
    part_a, part_b = cv_parts

    def evaluate():
        rows = evaluate_split(sns_on_b, part_a) + evaluate_split(sns_on_a, part_b)
        report50 = AccuracyReport.from_rows(rows)
        report30 = scarce_data_run(design_records, settings)
        dsage = dsage_timing_comparison(design_records, settings)
        return report50, report30, dsage

    report50, report30, dsage_rrse = run_once(benchmark, evaluate)

    rows = []
    for target in ("timing", "power", "area"):
        rows.append([f"{target} RRSE",
                     f"{report50.rrse[target]:.2f}", f"{report30.rrse[target]:.2f}",
                     f"{PAPER_TABLE7[(target, 'rrse', 50)]:.2f}",
                     f"{PAPER_TABLE7[(target, 'rrse', 30)]:.2f}"])
    for target in ("timing", "power", "area"):
        rows.append([f"{target} MAEP",
                     f"{report50.maep[target]:.1f}%", f"{report30.maep[target]:.1f}%",
                     f"{PAPER_TABLE7[(target, 'maep', 50)]:.1f}%",
                     f"{PAPER_TABLE7[(target, 'maep', 30)]:.1f}%"])
    rows.append(["D-SAGE timing RRSE", f"{dsage_rrse:.2f}", "-",
                 f"{PAPER_TABLE7['dsage_timing_rrse']:.2f}", "-"])
    print("\n" + format_table(
        ["metric", "ours 50%", "ours 30%", "paper 50%", "paper 30%"],
        rows, title="Table 7: evaluation accuracy (lower better)"))

    # Shape assertions (who wins, not absolute numbers).  Linear-space
    # RRSE over a dataset spanning four orders of magnitude is dominated
    # by the few largest designs, so single-fold metrics are noisy — the
    # paper's own Table 7 has power RRSE 1.02 at 30% and area MAEP
    # *improving* with less data.  We assert the robust shapes:
    # 1. SNS beats the trivial mean predictor overall: mean RRSE < 1 and
    #    at least two of the three targets < 1 individually.
    mean50 = sum(report50.rrse.values()) / 3
    assert mean50 < 1.0, report50.rrse
    assert sum(1 for v in report50.rrse.values() if v < 1.0) >= 2, report50.rrse
    # 2. Area is never the hardest target, as in the paper.
    assert report50.rrse["area"] <= max(report50.rrse["timing"],
                                        report50.rrse["power"]) + 1e-9
    # 3. Timing — the paper's headline metric — does not improve with
    #    less training data.
    assert report30.rrse["timing"] >= 0.9 * report50.rrse["timing"]
    # 4. SNS timing at 50% training beats the D-SAGE baseline.
    assert report50.rrse["timing"] < dsage_rrse
