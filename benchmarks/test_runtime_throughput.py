"""Throughput of the batched runtime (``repro.runtime.BatchPredictor``).

Measures designs/sec over a 20-design accelerator DSE sweep — the
workload the engine is built for: sibling configurations of the same
parameterizable designs, whose sampled path sets overlap heavily, so
global dedup collapses most of the inference work.  Four measurements:

- serial seed path: one ``sns.predict(g, bucketed=False)`` per design
  (each design's paths padded to its longest path);
- serial bucketed: the length-bucketed kernel, still one design at a time;
- batched cold: the engine with an empty prediction cache;
- batched warm: the same engine re-run with every entry cached.

The bench is self-contained (its own quickly-trained model rather than
the session fixtures) because the assertions target the
inference-dominated regime: a paper-scale Circuitformer, where forward
passes — not path sampling — are the cost that batching amortizes.

Results land in ``BENCH_runtime.json`` at the repo root so the perf
trajectory is tracked in-tree.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.core import SNS, CircuitformerConfig, PathSampler, TrainingConfig
from repro.datagen import build_design_dataset
from repro.designs import GEMMUnit, SIMDALU, standard_designs
from repro.experiments import throughput_comparison

from conftest import run_once

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"

# A paper-scale Circuitformer (Table 2 sizes, deepened to 4 blocks) —
# big enough that inference dominates sampling, the regime Figure 7 and
# every DSE sweep run in.  One training epoch: throughput does not care
# about model quality.
BENCH_CF = CircuitformerConfig(embedding_size=512, dim_feedforward=2048,
                               hidden_layers=4, max_input_size=64)


def make_sweep_batch():
    """A 20-point accelerator DSE sweep (GEMM tile shapes, SIMD lanes).

    Sweeping tile and lane counts leaves the datapath *structure* — and
    therefore the sampled path vocabulary — largely unchanged, so the
    batch shares ~90% of its unique paths across designs (sharing ratio
    ~10.6: 170 per-design unique paths collapse to 16 globally).
    """
    batch = []
    for rows, cols in ((2, 2), (2, 4), (4, 2), (4, 4), (4, 8),
                       (8, 4), (8, 8), (2, 8), (8, 2), (6, 4)):
        batch.append(GEMMUnit(rows=rows, cols=cols).elaborate())
    for lanes in (2, 3, 4, 5, 6, 8, 10, 12, 16, 24):
        batch.append(SIMDALU(lanes=lanes).elaborate())
    return batch


@pytest.fixture(scope="module")
def bench_sns():
    from repro.synth import Synthesizer

    synth = Synthesizer(effort="low")
    entries = [e for e in standard_designs() if e.name in ("gpio16", "conv3x3")]
    records = build_design_dataset(entries, synth)
    sns = SNS(sampler=PathSampler(k=5, max_paths=150, seed=0),
              circuitformer_config=BENCH_CF,
              training_config=TrainingConfig(circuitformer_epochs=1,
                                             aggregator_epochs=20),
              num_aggregators=1)
    sns.fit(records, synthesizer=synth)
    return sns


def test_runtime_throughput(benchmark, bench_sns):
    batch = make_sweep_batch()
    assert len(batch) == 20

    # Warm up both code paths before timing anything: the serial predict
    # (BLAS thread pools, page cache) and a throwaway engine pass (CRC
    # fingerprinting, pooled bucketed kernel, cache machinery).  The
    # first execution of either path pays one-off costs that would skew
    # whichever measurement happens to run first.
    from repro.runtime import BatchPredictor

    bench_sns.predict(batch[0])
    BatchPredictor(bench_sns).predict_batch(batch[:3])

    report = run_once(benchmark, lambda: throughput_comparison(bench_sns, batch))
    d = report.as_dict()

    print("\nBatched-runtime throughput (20-design accelerator sweep):")
    for key, dps in d["designs_per_second"].items():
        print(f"  {key:18s} {dps:8.1f} designs/sec")
    print(f"  cold-cache speedup vs serial seed path: "
          f"{report.batched_speedup:.2f}x")
    print(f"  warm-cache speedup vs serial seed path: "
          f"{report.warm_speedup:.2f}x")
    print(f"  cache: {d['cache_stats']}")
    print(f"  engine bit-identical to serial predict: {report.bit_identical}")

    BENCH_JSON.write_text(json.dumps(d, indent=2) + "\n")
    print(f"wrote {BENCH_JSON}")

    # The engine's predictions must match the serial path exactly —
    # throughput means nothing if the numbers drift.  (The comparator is
    # the canonical serial `sns.predict`; the unbucketed seed kernel
    # differs from any batched kernel at the BLAS-rounding level, which
    # is why `bucketed=False` is kept for baselining, not equivalence.)
    assert report.bit_identical

    # Cold cache: global dedup + bucketed pooled batching must deliver
    # >= 3x designs/sec over the one-design-at-a-time seed path.
    assert report.batched_speedup >= 3.0, d

    # Warm cache: fingerprint + lookup only, >= 20x.
    assert report.warm_speedup >= 20.0, d

    # Every design was a miss cold and a hit on each warm pass (the
    # warm measurement is best-of-2, so 40 hits total).
    assert d["cache_stats"]["misses"] == 20
    assert d["cache_stats"]["memory_hits"] == 40


def test_runtime_cache_cross_process_tier(bench_sns, tmp_path):
    """The disk tier makes a re-run of an overlapping sweep near-free."""
    from repro.runtime import BatchPredictor, PredictionCache

    batch = make_sweep_batch()[:6]
    disk = tmp_path / "predcache"
    first = BatchPredictor(bench_sns, cache=PredictionCache(disk_dir=disk))
    cold = first.predict_batch(batch)

    # Fresh process-level cache, same disk tier: all disk hits.
    second = BatchPredictor(bench_sns, cache=PredictionCache(disk_dir=disk))
    t0 = time.perf_counter()
    warm = second.predict_batch(batch)
    disk_seconds = time.perf_counter() - t0

    assert second.cache.stats.disk_hits == len(batch)
    assert all(a.timing_ps == b.timing_ps and a.area_um2 == b.area_um2
               for a, b in zip(cold, warm))
    print(f"\ndisk-tier re-run: {len(batch)} designs in {disk_seconds:.3f}s "
          f"({len(batch) / disk_seconds:.0f} designs/sec)")
