"""Table 6 — training hyperparameters for the three SNS models."""

from repro.core import PAPER_HYPERPARAMS, TrainingConfig
from repro.datagen import SeqGANConfig
from repro.experiments import format_table

from conftest import run_once


def test_table6_training_hyperparameters(benchmark):
    ours = run_once(benchmark, TrainingConfig)
    gan = SeqGANConfig()

    paper = PAPER_HYPERPARAMS
    rows = [
        ["Circuitformer", "Adam", ours.circuitformer_batch,
         ours.circuitformer_lr, ours.circuitformer_epochs,
         f"{paper['circuitformer']['batch_size']}/"
         f"{paper['circuitformer']['lr']}/{paper['circuitformer']['epochs']}"],
        ["Aggregation MLP", "Adam(+skip)", ours.aggregator_batch,
         ours.aggregator_lr, ours.aggregator_epochs,
         f"{paper['aggregation_mlp']['batch_size']}/"
         f"{paper['aggregation_mlp']['lr']}/{paper['aggregation_mlp']['epochs']}"],
        ["SeqGAN", "Adam", gan.batch_size, gan.gen_lr,
         gan.pretrain_epochs + gan.adversarial_rounds,
         f"{paper['seqgan']['batch_size']}/"
         f"{paper['seqgan']['lr']}/{paper['seqgan']['epochs']}"],
    ]
    print("\n" + format_table(
        ["model", "optimizer", "batch", "lr", "epochs (CPU-scaled)",
         "paper batch/lr/epochs"],
        rows, title="Table 6: training hyperparameters"))

    # The paper's hyperparameters are preserved verbatim for reference.
    assert paper["circuitformer"] == {"optimizer": "Adam", "batch_size": 128,
                                      "lr": 0.001, "epochs": 256}
    assert paper["aggregation_mlp"]["epochs"] == 10240
    assert paper["seqgan"]["batch_size"] == 2048
    # Our Circuitformer keeps the paper's optimizer family / batch / lr.
    assert ours.circuitformer_batch == 128
    assert ours.circuitformer_lr == 0.001
