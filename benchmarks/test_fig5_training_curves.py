"""Figure 5 — Circuitformer training loss vs validation loss."""

import numpy as np

from repro.experiments import format_series

from conftest import run_once


def test_fig5_circuitformer_curves(benchmark, sns_on_a):
    history = run_once(benchmark, lambda: sns_on_a.circuitformer_history)

    epochs = [h.epoch for h in history]
    print("\nFigure 5: Circuitformer training vs validation loss")
    print(format_series("train loss", epochs, [h.train_loss for h in history],
                        "epoch", "loss"))
    print(format_series("validation loss", epochs, [h.val_loss for h in history],
                        "epoch", "loss"))

    train = np.array([h.train_loss for h in history])
    val = np.array([h.val_loss for h in history])
    # The paper's Figure 5 shape: both curves descend and converge without
    # a divergence blow-up.
    assert train[-1] < train[0]
    assert val[-1] < val[0]
    assert val[-3:].mean() < 2.0 * max(train[-3:].mean(), 0.05)
