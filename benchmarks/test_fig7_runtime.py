"""Figure 7 + Table 9 — SNS runtime vs synthesizer runtime."""

from repro.experiments import PLATFORMS, format_table, runtime_comparison

from conftest import run_once


def test_fig7_runtime_comparison(benchmark, design_records, sns_on_a):
    report = run_once(benchmark, lambda: runtime_comparison(
        sns_on_a, design_records, synth_effort="high"))

    ordered = sorted(report.rows, key=lambda r: r.gate_count)
    picks = [ordered[0], ordered[len(ordered) // 2], ordered[-1]]
    rows = [[r.design, f"{r.gate_count:.0f}", f"{r.synth_seconds * 1e3:.1f}",
             f"{r.sns_seconds * 1e3:.1f}", f"{r.speedup:.0f}x"] for r in picks]
    print("\n" + format_table(
        ["design", "gates", "synth ms", "SNS ms", "speedup"],
        rows, title="Figure 7: SNS vs reference synthesizer (highlights)"))
    print(f"designs measured: {len(report.rows)}")
    print(f"average speedup: {report.average_speedup:.1f}x (paper: 760x)")
    print(f"max speedup: {report.max_speedup:.1f}x "
          "(paper: up to three orders of magnitude)")
    big_half = ordered[len(ordered) // 2:]
    big_avg = sum(r.speedup for r in big_half) / len(big_half)
    print(f"average speedup on the larger half: {big_avg:.1f}x")

    # Shape assertions.  Both sides of the ratio are Python estimators
    # here (the paper's DC runs take hours), so the magnitude compresses;
    # what must survive is the *shape*: the speedup grows with design
    # size, and large designs see a decisive win.
    assert report.speedup_grows_with_size()
    assert big_avg > 1.0
    assert ordered[-1].speedup > 3


def test_table9_desktop_platform(benchmark, design_records, sns_on_a):
    """The desktop-vs-server variant: SNS slowed by the platform gap."""
    # Table 9's platforms: the desktop has ~1/6 the cores of the server;
    # SNS inference is lightly threaded so the penalty is modest (~1.3x),
    # matching the paper's 760x -> 574x drop.
    factor = 760.0 / 574.0
    biggest = sorted(design_records, key=lambda r: r.graph.num_nodes)[-6:]
    server = run_once(benchmark, lambda: runtime_comparison(
        sns_on_a, biggest, synth_effort="high"))
    desktop = runtime_comparison(sns_on_a, biggest, synth_effort="high",
                                 desktop_factor=factor)

    print("\nTable 9 platforms:")
    for name, spec in PLATFORMS.items():
        print(f"  {name}: {spec['processor']}; {spec['memory']}; {spec['os']}")
    print(f"server-SNS average speedup: {server.average_speedup:.1f}x; "
          f"desktop-SNS: {desktop.average_speedup:.1f}x "
          "(paper: 760x -> 574x)")

    # The desktop penalty shrinks but does not erase the win (the paper's
    # observation), measured on the large designs where SNS wins.
    assert desktop.average_speedup < server.average_speedup
    assert desktop.average_speedup > 0.5 * server.average_speedup
