"""Table 1 — the GraphIR vertex vocabulary (79 embeddings)."""

from repro.experiments import format_table
from repro.graphir import ARITH_TYPES, LOGIC_TYPES, Vocabulary, parse_token

from conftest import run_once


def test_table1_vocabulary(benchmark):
    vocab = run_once(benchmark, Vocabulary.standard)

    rows = []
    for node_type in LOGIC_TYPES:
        rows.append([node_type, "4, 8, 16, 32, 64"])
    for node_type in ARITH_TYPES:
        rows.append([node_type, "8, 16, 32, 64"])
    print("\n" + format_table(["type", "widths"], rows,
                              title="Table 1: GraphIR vertex embeddings"))
    print(f"vocabulary size: {vocab.circuit_size} circuit tokens "
          f"(paper: 79), {len(vocab)} with specials")

    assert vocab.circuit_size == 79
    assert len({parse_token(t)[0] for t in vocab.tokens}) == 17
