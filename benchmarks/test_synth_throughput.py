"""Throughput of the array-compiled synthesis engine (``repro.synth.engine``).

Two measurements against the reference implementations, both asserted
bit-identical before any speed claim:

- **designs/sec** — synthesize the full 41-design standard registry at
  medium effort with ``Synthesizer(engine="reference")`` vs
  ``Synthesizer(engine="array")`` (compiled netlist, vectorized
  level-sweep STA, incremental gate sizing);
- **paths/sec** — label a deterministic pool of token chains (lengths
  1-12 over the full 79-token vocabulary) with per-path
  ``synthesize_path`` vs one ``synthesize_path_batch`` call.

Results land in ``BENCH_synth.json`` at the repo root so the perf
trajectory is tracked in-tree.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.designs import standard_designs
from repro.graphir import Vocabulary
from repro.synth import Synthesizer

from conftest import run_once

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_synth.json"

NUM_PATHS = 400
MAX_PATH_LEN = 12


def make_path_pool() -> list[list[str]]:
    """A deterministic pool of token chains covering the whole vocabulary."""
    vocab = Vocabulary.standard()
    tokens = list(vocab.tokens)
    rng = np.random.default_rng(0)
    pool = [[t] for t in tokens]  # every single-token chain
    while len(pool) < NUM_PATHS:
        length = int(rng.integers(1, MAX_PATH_LEN + 1))
        pool.append([tokens[i] for i in rng.integers(0, len(tokens), length)])
    return pool


def _results_equal(a, b) -> bool:
    return (a.design == b.design and a.timing_ps == b.timing_ps
            and a.area_um2 == b.area_um2 and a.power_mw == b.power_mw
            and a.num_cells == b.num_cells and a.gate_count == b.gate_count)


def measure() -> dict:
    entries = standard_designs()
    graphs = [(e.name, e.module.elaborate()) for e in entries]
    reference = Synthesizer(effort="medium", engine="reference")
    array = Synthesizer(effort="medium", engine="array")

    # Warm both paths on one design first (library memo tables, vocab
    # singleton, numpy init) so neither timed loop pays one-off costs.
    reference.synthesize(graphs[0][1])
    array.synthesize(graphs[0][1])

    start = time.perf_counter()
    ref_results = [reference.synthesize(g) for _, g in graphs]
    ref_design_s = time.perf_counter() - start

    start = time.perf_counter()
    arr_results = [array.synthesize(g) for _, g in graphs]
    arr_design_s = time.perf_counter() - start

    design_identical = all(_results_equal(r, a)
                           for r, a in zip(ref_results, arr_results))

    pool = make_path_pool()
    start = time.perf_counter()
    ref_paths = [reference.synthesize_path(list(p)) for p in pool]
    ref_path_s = time.perf_counter() - start

    start = time.perf_counter()
    arr_paths = array.synthesize_path_batch(pool)
    arr_path_s = time.perf_counter() - start

    path_identical = all(
        r.tokens == a.tokens and r.timing_ps == a.timing_ps
        and r.area_um2 == a.area_um2 and r.power_mw == a.power_mw
        for r, a in zip(ref_paths, arr_paths))

    return {
        "num_designs": len(graphs),
        "effort": "medium",
        "reference_design_seconds": ref_design_s,
        "array_design_seconds": arr_design_s,
        "designs_per_second": {
            "reference": len(graphs) / ref_design_s,
            "array": len(graphs) / arr_design_s,
        },
        "design_speedup": ref_design_s / arr_design_s,
        "design_bit_identical": design_identical,
        "num_paths": len(pool),
        "reference_path_seconds": ref_path_s,
        "batch_path_seconds": arr_path_s,
        "paths_per_second": {
            "per_path": len(pool) / ref_path_s,
            "batch": len(pool) / arr_path_s,
        },
        "path_speedup": ref_path_s / arr_path_s,
        "path_bit_identical": path_identical,
    }


def test_synth_throughput(benchmark):
    d = run_once(benchmark, measure)

    print("\nArray-compiled synthesis engine throughput:")
    print(f"  designs  reference {d['designs_per_second']['reference']:8.1f}/s  "
          f"array {d['designs_per_second']['array']:8.1f}/s  "
          f"({d['design_speedup']:.2f}x)")
    print(f"  paths    per-path  {d['paths_per_second']['per_path']:8.1f}/s  "
          f"batch {d['paths_per_second']['batch']:8.1f}/s  "
          f"({d['path_speedup']:.2f}x)")
    print(f"  bit-identical: designs={d['design_bit_identical']} "
          f"paths={d['path_bit_identical']}")

    BENCH_JSON.write_text(json.dumps(d, indent=2) + "\n")
    print(f"wrote {BENCH_JSON}")

    # Speed means nothing if the labels drift: both comparisons must be
    # exact before any floor applies.
    assert d["design_bit_identical"]
    assert d["path_bit_identical"]

    # Acceptance floors: >= 2x designs/sec on the standard registry at
    # medium effort, >= 2x paths/sec on the batched labeler.
    assert d["design_speedup"] >= 2.0, d
    assert d["path_speedup"] >= 2.0, d
