"""Table 5 — the circuit path dataset (sampled + Markov + SeqGAN)."""

from repro.datagen import augment_path_dataset, sample_path_dataset
from repro.experiments import format_table
from repro.synth import Synthesizer

from conftest import run_once


def test_table5_circuit_path_dataset(benchmark, design_records, settings):
    synth = Synthesizer(effort=settings.synth_effort)
    sampler = settings.make_sampler()
    train = design_records[: len(design_records) // 2]

    def build():
        sampled = sample_path_dataset(train, sampler, synth)
        if settings.augmentation is not None:
            return sampled, augment_path_dataset(sampled, settings.augmentation, synth)
        return sampled, sampled

    sampled, full = run_once(benchmark, build)

    rows = [[" -> ".join(r.tokens[:6]) + (" ..." if len(r.tokens) > 6 else ""),
             f"{r.timing_ps:.0f}ps", f"{r.area_um2:.1f}um2", f"{r.power_mw:.4f}mW"]
            for r in full[:5]]
    print("\n" + format_table(["path", "timing", "area", "power"], rows,
                              title="Table 5: circuit path dataset rows"))
    print(f"directly sampled: {len(sampled)} paths (paper: 684)")
    print(f"after Markov + SeqGAN augmentation: {len(full)} paths (paper: 4000+)")

    assert len(full) >= len(sampled)
    keys = [r.tokens for r in full]
    assert len(keys) == len(set(keys))         # all unique
    assert all(r.timing_ps > 0 for r in full)  # all labeled
