"""Throughput of the streaming budgeted DSE engine (``repro.dse.engine``).

Two measurements on the paper's Figure-8 BOOM space, plus a scale probe:

- exhaustive oracle: ``BoomDSE.run`` over all 2,592 Table-10 configs
  (the legacy enumerate-then-evaluate sweep, cold caches);
- budgeted engine: ``BoomDSE.explore`` over the same space with a
  rung-1 budget of 220 evaluations (<10% of the space) — warmup,
  surrogate-predicted extremes, per-objective hill climbs, gap filling;
- streaming scale probe: the ~1.12M-config ``extended_grid`` swept
  without materializing the product, peak live modules <= chunk.

Asserted floors: >= 10x wall-clock speedup over the exhaustive sweep
and >= 95% mean hypervolume recovery on the Figure-8 2-objective
frontiers (score-vs-area, score-vs-power), computed with raw CoreMark
scores and a shared reference point.

The bench is self-contained (its own quickly-trained model rather than
the session fixtures): the gates compare the engine against the
exhaustive sweep *on the same predictor*, so model quality cancels out.

Results land in ``BENCH_dse.json`` at the repo root so the perf
trajectory is tracked in-tree.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.boom import BoomConfig, BoomDSE, boom_grid, extended_grid
from repro.core import SNS, CircuitformerConfig, PathSampler, TrainingConfig
from repro.datagen import build_design_dataset
from repro.designs import standard_designs
from repro.dse.pareto import ParetoFront
from repro.synth import Synthesizer

from conftest import run_once

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_dse.json"

PREDICT_BUDGET = 220          # <10% of the 2,592-config Table-10 space
SPEEDUP_FLOOR = 10.0
HV_RECOVERY_FLOOR = 0.95


@pytest.fixture(scope="module")
def bench_sns():
    synth = Synthesizer(effort="low")
    entries = [e for e in standard_designs()
               if e.name in ("gpio16", "conv3x3")]
    records = build_design_dataset(entries, synth)
    sns = SNS(sampler=PathSampler(k=5, max_paths=60, seed=0),
              circuitformer_config=CircuitformerConfig(
                  embedding_size=64, dim_feedforward=128, hidden_layers=1,
                  max_input_size=64),
              training_config=TrainingConfig(circuitformer_epochs=1,
                                             aggregator_epochs=10),
              num_aggregators=1)
    sns.fit(records, synthesizer=synth)
    return sns


def _raw_scored(dse: BoomDSE, points):
    """(cost_area, cost_power, raw_score) rows, uniform on both sides.

    ``BoomDSE.run`` normalizes scores to its own best, the engine result
    to *its* best — so frontiers are compared on the raw CoreMark score
    recomputed from (config, timing) with the shared perf model.
    """
    return [(p.area_um2, p.power_mw,
             dse.perf_model.score(p.config, 1000.0 / max(p.timing_ps, 1.0)))
            for p in points]


def _hv2(rows, cost_col, ref):
    front = ParetoFront(2, maximize=(False, True))
    for row in rows:
        front.add((row[cost_col], row[2]), None)
    return front.hypervolume(ref)


def _recovery(ex_rows, en_rows, cost_col):
    """Engine / exhaustive hypervolume ratio with a shared reference."""
    costs = [r[cost_col] for r in ex_rows] + [r[cost_col] for r in en_rows]
    scores = [r[2] for r in ex_rows] + [r[2] for r in en_rows]
    ref = (max(costs) * 1.01, min(scores) * 0.99)
    return _hv2(en_rows, cost_col, ref) / _hv2(ex_rows, cost_col, ref)


def test_dse_throughput(benchmark, bench_sns):
    grid = boom_grid()
    assert len(grid) == 2592

    # Budgeted engine, cold caches of its own.
    engine_dse = BoomDSE(predictor=bench_sns)
    t0 = time.perf_counter()
    res = run_once(benchmark, lambda: engine_dse.explore(
        grid=grid, budget=len(grid), predict_budget=PREDICT_BUDGET,
        chunk=256, block=1024, seed=0))
    engine_wall = time.perf_counter() - t0
    prof = res.engine_result.profile

    # Exhaustive oracle on a separate BoomDSE so neither run can hit the
    # other's prediction cache.
    exhaustive_dse = BoomDSE(predictor=bench_sns)
    t0 = time.perf_counter()
    ex = exhaustive_dse.run([BoomConfig(**p) for p in grid])
    exhaustive_wall = time.perf_counter() - t0

    # Explored-configs/sec: both runs cover the same 2,592-config space;
    # the engine scans all of it and spends real evaluations on 220.
    exhaustive_cps = len(grid) / exhaustive_wall
    speedup = prof.configs_per_second / exhaustive_cps
    ex_rows = _raw_scored(exhaustive_dse, ex.points)
    en_rows = _raw_scored(engine_dse, res.points)
    rec_area = _recovery(ex_rows, en_rows, 0)
    rec_power = _recovery(ex_rows, en_rows, 1)
    mean_rec = (rec_area + rec_power) / 2

    d = {
        "space": len(grid),
        "predict_budget": PREDICT_BUDGET,
        "exhaustive_wall_s": exhaustive_wall,
        "exhaustive_configs_per_second": exhaustive_cps,
        "engine_wall_s": engine_wall,
        "engine_profile": prof.as_dict(),
        "configs_per_second": {
            "rung0_screen": (prof.candidates / prof.screen_s
                             if prof.screen_s > 0 else None),
            "rung1_evaluate": prof.evals_per_second,
            "overall": prof.configs_per_second,
        },
        "speedup_vs_exhaustive": speedup,
        "hv_recovery": {"score_vs_area": rec_area,
                        "score_vs_power": rec_power,
                        "mean": mean_rec},
        "front_size": len(res.engine_result.front),
    }

    print(f"\nBudgeted DSE on the {len(grid)}-config BOOM space:")
    print(f"  exhaustive  {exhaustive_wall:6.1f} s "
          f"({d['exhaustive_configs_per_second']:7.1f} configs/s)")
    print(f"  engine      {engine_wall:6.1f} s "
          f"({prof.configs_per_second:7.1f} configs/s, "
          f"{prof.evaluated} evaluated)  ->  {speedup:.1f}x")
    print(f"  HV recovery: score-area {100 * rec_area:.1f}%, "
          f"score-power {100 * rec_power:.1f}%, mean {100 * mean_rec:.1f}%")

    BENCH_JSON.write_text(json.dumps(d, indent=2) + "\n")
    print(f"wrote {BENCH_JSON}")

    assert speedup >= SPEEDUP_FLOOR
    assert mean_rec >= HV_RECOVERY_FLOOR


def test_million_config_stream(bench_sns):
    """The ~1.12M-config extended space sweeps without materialization."""
    grid = extended_grid()
    assert len(grid) > 1_000_000

    dse = BoomDSE(predictor=bench_sns)
    chunk = 32
    res = dse.explore(grid=grid, budget=4096, predict_budget=64,
                      chunk=chunk, block=4096, seed=0)
    prof = res.engine_result.profile

    print(f"\nStreaming sweep of {len(grid)} configs: "
          f"{prof.evaluated} evaluated, {prof.candidates} candidates, "
          f"peak live modules {prof.peak_live_modules}, "
          f"{prof.wall_s:.1f} s")

    assert prof.evaluated == 64
    assert prof.peak_live_modules <= chunk
    assert len(res.engine_result.front) >= 1

    d = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}
    d["extended_space"] = {
        "space": len(grid), "evaluated": prof.evaluated,
        "candidates": prof.candidates,
        "peak_live_modules": prof.peak_live_modules,
        "wall_s": prof.wall_s,
    }
    BENCH_JSON.write_text(json.dumps(d, indent=2) + "\n")
