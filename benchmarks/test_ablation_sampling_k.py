"""Ablation — the sampling parameter k (Section 3.2, Algorithm 1).

The paper chooses k=5 "empirically as sampling more paths does not
improve SNS model accuracy."  This bench sweeps k on a mid-size design
and reports path counts, node coverage, and whether the max-timing
reduction (the critical-path signal) survives thinning.
"""

import numpy as np

from repro.core import PathSampler
from repro.designs import get_design
from repro.experiments import format_table
from repro.synth import Synthesizer

from conftest import run_once


def test_ablation_sampling_k(benchmark):
    graph = get_design("rocket64").module.elaborate()
    synth = Synthesizer(effort="low")

    def sweep():
        rows = []
        for k in (1, 2, 5, 10, 100):
            sampler = PathSampler(k=k, max_paths=4000, seed=0)
            paths = sampler.sample(graph)
            covered = {n for p in paths for n in p.node_ids}
            max_timing = max(
                (synth.synthesize_path(list(p.tokens)).timing_ps for p in paths),
                default=0.0)
            rows.append((k, len(paths), len(covered) / graph.num_nodes, max_timing))
        return rows

    rows = run_once(benchmark, sweep)

    print("\n" + format_table(
        ["k", "paths sampled", "node coverage", "max path timing (ps)"],
        [[k, n, f"{cov:.2f}", f"{t:.0f}"] for k, n, cov, t in rows],
        title="Ablation: sampling parameter k (paper trains with k=5)"))

    counts = {k: n for k, n, _, _ in rows}
    timings = {k: t for k, _, _, t in rows}
    # Larger k samples no more paths.
    ks = sorted(counts)
    assert all(counts[a] >= counts[b] for a, b in zip(ks, ks[1:]))
    # k=5 keeps the critical-path signal close to exhaustive sampling
    # (the paper's justification for not sampling more).
    assert timings[5] >= 0.8 * timings[1]
    # ...while extreme thinning can lose it or at best matches.
    assert timings[100] <= timings[1] + 1e-9
