"""Tables 3 and 4 — the hardware design dataset and its synthesized labels."""

import numpy as np

from repro.designs import design_families, standard_designs
from repro.experiments import format_table

from conftest import run_once


def test_table3_design_selection(benchmark):
    entries = run_once(benchmark, standard_designs)

    by_category = {}
    for e in entries:
        by_category.setdefault(e.category, []).append(e.name)
    rows = [[cat, ", ".join(sorted(names))] for cat, names in sorted(by_category.items())]
    print("\n" + format_table(["category", "designs"], rows,
                              title="Table 3: example hardware designs selected"))
    print(f"total: {len(entries)} designs in {len(design_families())} families")

    assert len(entries) == 41
    assert len(by_category) == 10  # every Table 3 category populated


def test_table4_dataset_format(benchmark, design_records):
    records = run_once(benchmark, lambda: design_records)

    sample = sorted(records, key=lambda r: r.area_um2)
    picks = [sample[0], sample[len(sample) // 2], sample[-1]]
    rows = [[r.name, f"{r.timing_ps:.0f}ps", f"{r.area_um2:.0f}um2",
             f"{r.power_mw:.2f}mW"] for r in picks]
    print("\n" + format_table(["design (GraphIR)", "timing", "area", "power"],
                              rows, title="Table 4: hardware design dataset rows"))

    areas = np.array([r.area_um2 for r in records])
    print(f"area spread: {areas.min():.0f} .. {areas.max():.0f} um2 "
          f"({areas.max() / areas.min():.0f}x)")
    assert areas.max() / areas.min() > 100  # orders-of-magnitude spread
    assert all(r.timing_ps > 0 and r.power_mw > 0 for r in records)
