"""Training throughput: the bucketed engine vs the reference loop.

Trains a Table 2-scale Circuitformer on a synthetic mixed-length
Circuit Path Dataset (the length profile real designs produce: ~70%
short combinational hops, a 10% long tail) two ways:

- **baseline**: :func:`repro.core.training.train_circuitformer_reference`
  — every batch padded to the longest record, allocate-per-step
  ``ReferenceAdam``, autograd graph kept until garbage collection;
- **engine**: :class:`repro.runtime.TrainingEngine` with length-bucketed
  minibatching, fused in-place optimizer steps (clipping folded in),
  graph-freeing backward, and epoch-persistent bucket encodings.

A second, smaller pass runs each loop under ``tracemalloc`` to compare
peak allocation.  Results land in ``BENCH_training.json`` at the repo
root so the perf trajectory is tracked in-tree; the test asserts the
engine's >=2x steps/sec floor.
"""

from __future__ import annotations

import json
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.core import Circuitformer, CircuitformerConfig, TrainingConfig
from repro.core.training import train_circuitformer_reference
from repro.datagen.dataset import PathRecord
from repro.graphir import Vocabulary
from repro.runtime import EncodingCache, TrainingEngine

from conftest import run_once

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_training.json"

# Table 2 widths; max input bounded to the synthetic dataset's long tail.
BENCH_CF = CircuitformerConfig(max_input_size=192)
NUM_RECORDS = 256
CONFIG = TrainingConfig(circuitformer_epochs=1, circuitformer_batch=32, seed=0)
MEM_RECORDS = 96  # smaller pass: tracemalloc multiplies runtime


def make_records(n: int, seed: int = 42) -> list[PathRecord]:
    """Mixed-length records: 70% 3-12 tokens, 20% medium, 10% up to ~160."""
    rng = np.random.default_rng(seed)
    tokens = list(Vocabulary.standard().tokens)[:16]
    records = []
    for _ in range(n):
        r = rng.random()
        if r < 0.7:
            length = int(rng.integers(3, 12))
        elif r < 0.9:
            length = int(rng.integers(12, 48))
        else:
            length = int(rng.integers(48, 160))
        seq = tuple(tokens[int(j)] for j in rng.integers(0, len(tokens), length))
        records.append(PathRecord(
            tokens=seq,
            timing_ps=float(rng.random() * 100 + 10),
            area_um2=float(rng.random() * 50 + 1),
            power_mw=float(rng.random() * 5 + 0.1)))
    return records


def _time_baseline(records):
    model = Circuitformer(BENCH_CF, seed=0)
    start = time.perf_counter()
    history = train_circuitformer_reference(model, records, CONFIG)
    elapsed = time.perf_counter() - start
    n_train = len(records) - max(1, int(round(CONFIG.validation_fraction
                                              * len(records))))
    steps = CONFIG.circuitformer_epochs * \
        -(-n_train // CONFIG.circuitformer_batch)
    return {"seconds": elapsed, "steps": steps,
            "steps_per_sec": steps / elapsed,
            "final_train_loss": history[-1].train_loss}


def _time_engine(records):
    engine = TrainingEngine(bucketed=True, fused=True,
                            encoding_cache=EncodingCache())
    model = Circuitformer(BENCH_CF, seed=0)
    start = time.perf_counter()
    history = engine.train_circuitformer(model, records, CONFIG)
    elapsed = time.perf_counter() - start
    profile = engine.last_profile
    return {"seconds": elapsed, "steps": profile.steps,
            "steps_per_sec": profile.steps / elapsed,
            "final_train_loss": history[-1].train_loss,
            "phase_seconds": profile.phase_seconds,
            "bucket_rows": {str(k): v for k, v in profile.bucket_rows.items()}}


def _peak_alloc_mb(fn) -> float:
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 1e6


def test_training_throughput(benchmark):
    records = make_records(NUM_RECORDS)

    baseline = _time_baseline(records)
    engine = run_once(benchmark, lambda: _time_engine(records))
    speedup = engine["steps_per_sec"] / baseline["steps_per_sec"]

    mem_records = make_records(MEM_RECORDS, seed=7)
    baseline_peak = _peak_alloc_mb(
        lambda: train_circuitformer_reference(
            Circuitformer(BENCH_CF, seed=0), mem_records, CONFIG))
    engine_peak = _peak_alloc_mb(
        lambda: TrainingEngine(bucketed=True).train_circuitformer(
            Circuitformer(BENCH_CF, seed=0), mem_records, CONFIG))

    result = {
        "num_records": NUM_RECORDS,
        "epochs": CONFIG.circuitformer_epochs,
        "batch_size": CONFIG.circuitformer_batch,
        "baseline": baseline,
        "engine": engine,
        "steps_per_sec_speedup": speedup,
        "peak_alloc_mb": {
            "num_records": MEM_RECORDS,
            "baseline": baseline_peak,
            "engine": engine_peak,
            "ratio": baseline_peak / engine_peak if engine_peak else None,
        },
    }
    BENCH_JSON.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))

    assert np.isfinite(engine["final_train_loss"])
    # The tentpole's acceptance floor: bucketing + fused optimizer steps
    # must at least double training steps/sec on mixed-length data.
    assert speedup >= 2.0, f"engine speedup {speedup:.2f}x below the 2x floor"
    assert engine_peak < baseline_peak
