"""Ablation — critical-path localization (Section 2.2).

A headline advantage of the path-based approach: "working on individual
paths enables SNS to trivially locate the critical path in the design",
which whole-graph GNNs cannot.  This bench checks the located path
against the reference synthesizer's STA: the predicted critical path
should overlap the true critical cells far better than a random sampled
path does.
"""

import numpy as np

from repro.experiments import format_table
from repro.synth import FREEPDK15, MappedNetlist, static_timing_analysis

from conftest import run_once


def _true_critical_cells(graph) -> set[int]:
    net = MappedNetlist.from_graphir(graph)
    report = static_timing_analysis(net, FREEPDK15)
    return set(report.critical_cells)


def _overlap(path_nodes, truth: set[int]) -> float:
    if not truth:
        return 0.0
    return len(set(path_nodes) & truth) / len(truth)


def test_critical_path_localization(benchmark, design_records, sns_on_a,
                                    cv_parts, settings):
    _, part_b = cv_parts  # designs sns_on_a never trained on
    rng = np.random.default_rng(0)

    def run():
        rows = []
        for record in part_b:
            truth = _true_critical_cells(record.graph)
            pred = sns_on_a.predict(record.graph)
            if pred.critical_path is None:
                continue
            located = _overlap(pred.critical_path.node_ids, truth)
            # Baseline: a uniformly random sampled path from the design.
            paths = sns_on_a.sampler.sample(record.graph)
            random_overlaps = [
                _overlap(paths[rng.integers(len(paths))].node_ids, truth)
                for _ in range(10)]
            rows.append((record.name, located, float(np.mean(random_overlaps))))
        return rows

    rows = run_once(benchmark, run)

    print("\n" + format_table(
        ["design", "SNS-located overlap", "random-path overlap"],
        [[name, f"{loc:.2f}", f"{rand:.2f}"] for name, loc, rand in rows],
        title="Critical-path localization vs reference STA"))
    located = np.mean([loc for _, loc, _ in rows])
    random_mean = np.mean([rand for _, _, rand in rows])
    print(f"mean overlap: located {located:.2f} vs random {random_mean:.2f}")

    # The located path must beat a random sampled path decisively and
    # share cells with the true critical path on a solid fraction of
    # designs (designs with many near-equal paths, e.g. wide xor
    # networks, legitimately have interchangeable critical paths).
    assert located > random_mean + 0.08
    hits = sum(1 for _, loc, _ in rows if loc > 0.3)
    assert hits >= 0.35 * len(rows)
