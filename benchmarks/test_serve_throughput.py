"""Load benchmark for the async serving layer (``repro.serve``).

One server, two serving disciplines, same trained model and the same
activity-sweep workload (each bundled design requested under many
activity coefficients — the traffic shape of a power-gating sweep,
where concurrent clients probe the same designs):

- **serialized baseline** (``ServeConfig(serialized=True)``): a global
  lock admits one request at a time through the full stack — what a
  naive synchronous wrapper around ``SNS.predict`` serves;
- **micro-batched**: concurrent requests coalesce in the
  :class:`MicroBatchQueue` into single ``BatchPredictor.predict_batch``
  calls, where cross-request path dedup collapses duplicate designs in
  a flush onto one pooled forward pass.

Both run the same compiled fp64 executor, caches, and worker pool, so
the measured gap is the serving discipline itself, not a weaker
baseline.

Asserted: >= 2x requests/sec for micro-batched over serialized under
16 concurrent closed-loop clients, every response a 200, and every
response **bit-identical** to a direct ``SNS.predict`` call with the
same activity map.  Results (req/s, latency percentiles, batch-size
distribution) land in ``BENCH_serve.json`` at the repo root.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import SNS, CircuitformerConfig, PathSampler, TrainingConfig
from repro.datagen import build_design_dataset
from repro.designs import standard_designs
from repro.serve import (PredictionServer, ServeClient, ServeConfig,
                         ServerThread, run_load)
from repro.synth import Synthesizer

from conftest import run_once

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

NUM_DESIGNS = 20          # bundled designs in the workload
VARIANTS = 16             # activity coefficients swept per design
CLIENTS = 16              # concurrent closed-loop clients
PASSES = 3                # per mode; best pass is the committed number
SPEEDUP_FLOOR = 2.0

SERVE_KW = dict(max_batch=16, max_wait_ms=8.0, workers=4,
                executor=True, threads=4)


@pytest.fixture(scope="module")
def serve_sns():
    """A quickly-trained model with a heavyweight per-design forward.

    600 sampled paths through a 128-wide Circuitformer: enough work per
    request that the serving discipline, not HTTP overhead, is what's
    being measured.  Model quality is irrelevant — both disciplines and
    the bit-identity oracle share the same weights.
    """
    synth = Synthesizer(effort="low")
    entries = [e for e in standard_designs()
               if e.name in ("gpio16", "conv3x3")]
    records = build_design_dataset(entries, synth)
    sns = SNS(sampler=PathSampler(k=5, max_paths=600, seed=0),
              circuitformer_config=CircuitformerConfig(
                  embedding_size=128, dim_feedforward=256, hidden_layers=1,
                  max_input_size=64),
              training_config=TrainingConfig(circuitformer_epochs=1,
                                             aggregator_epochs=10),
              num_aggregators=1)
    sns.fit(records, synthesizer=synth)
    return sns


def _workload():
    """(bodies, oracle_inputs): an activity sweep over bundled designs.

    Design-major order, so the window of requests in flight at any
    moment covers few distinct designs — the regime micro-batching's
    cross-request dedup exists for.
    """
    entries = [e for e in standard_designs()][:NUM_DESIGNS]
    bodies, inputs = [], []
    for entry in entries:
        for v in range(VARIANTS):
            coeff = round(0.05 + 0.05 * v, 3)
            bodies.append({"design": entry.name,
                           "activity": {"0": coeff}})
            inputs.append((entry.module, {0: coeff}))
    return bodies, inputs


def _run_mode(sns, bodies, serialized: bool):
    """Fresh server, PASSES load runs; returns per-pass dicts + metrics."""
    passes = []
    for _ in range(PASSES):
        server = PredictionServer(ServeConfig(serialized=serialized,
                                              **SERVE_KW))
        server.add_model(sns, "default")
        with ServerThread(server) as handle:
            result = run_load("127.0.0.1", handle.port, bodies,
                              clients=CLIENTS)
            client = ServeClient("127.0.0.1", handle.port)
            _, metrics = client.get("/metrics")
            client.close()
        passes.append({"load": result.as_dict(),
                       "responses": result.responses,
                       "metrics": metrics})
    return passes


def _audit(passes, oracle, bodies):
    """Every response of every pass: 200 and bit-identical to the oracle."""
    for p, one in enumerate(passes):
        bad = [(i, st, doc) for i, st, doc in one["responses"] if st != 200]
        assert not bad, f"pass {p}: non-200 responses: {bad[:5]}"
        for i, _st, doc in one["responses"]:
            expect = oracle[i]
            got = (doc["timing_ps"], doc["area_um2"], doc["power_mw"])
            assert got == expect, (
                f"pass {p} request {i} ({bodies[i]}): served {got} != "
                f"direct SNS.predict {expect}")


def _best(passes):
    return max(passes, key=lambda p: p["load"]["requests_per_second"])


def test_serve_throughput(serve_sns, benchmark):
    sns = serve_sns
    bodies, inputs = _workload()

    # The bit-identity oracle: direct, unserved, uncached predictions.
    oracle = [
        (pred.timing_ps, pred.area_um2, pred.power_mw)
        for pred in (sns.predict(module, activity=activity)
                     for module, activity in inputs)
    ]

    serialized = _run_mode(sns, bodies, serialized=True)
    batched_holder = []
    run_once(benchmark,
             lambda: batched_holder.extend(_run_mode(sns, bodies,
                                                     serialized=False)))
    batched = batched_holder

    _audit(serialized, oracle, bodies)
    _audit(batched, oracle, bodies)

    best_ser = _best(serialized)["load"]
    best_bat = _best(batched)["load"]
    speedup = (best_bat["requests_per_second"]
               / best_ser["requests_per_second"])
    batching = _best(batched)["metrics"]["batching"]

    doc = {
        "workload": {
            "designs": NUM_DESIGNS,
            "activity_variants": VARIANTS,
            "requests": len(bodies),
            "clients": CLIENTS,
            "passes_per_mode": PASSES,
            "config": {k: v for k, v in SERVE_KW.items()},
            "model": {"embedding_size": 128, "dim_feedforward": 256,
                      "max_paths": 600, "precision": "fp64"},
        },
        "serialized": {
            "requests_per_second": best_ser["requests_per_second"],
            "latency_ms": best_ser["latency_ms"],
            "all_rps": [p["load"]["requests_per_second"]
                        for p in serialized],
        },
        "batched": {
            "requests_per_second": best_bat["requests_per_second"],
            "latency_ms": best_bat["latency_ms"],
            "all_rps": [p["load"]["requests_per_second"] for p in batched],
            "batching": batching,
        },
        "speedup": speedup,
        "bit_identical_responses": len(bodies) * PASSES * 2,
    }
    BENCH_JSON.write_text(json.dumps(doc, indent=2) + "\n")

    print(f"\nserialized: {best_ser['requests_per_second']:.1f} req/s "
          f"(p50 {best_ser['latency_ms']['p50']:.1f} ms, "
          f"p99 {best_ser['latency_ms']['p99']:.1f} ms)")
    print(f"batched:    {best_bat['requests_per_second']:.1f} req/s "
          f"(p50 {best_bat['latency_ms']['p50']:.1f} ms, "
          f"p99 {best_bat['latency_ms']['p99']:.1f} ms, "
          f"mean batch {batching['mean_batch_size']:.1f}, "
          f"max {batching['max_batch_size']})")
    print(f"speedup:    {speedup:.2f}x over the serialized baseline "
          f"({CLIENTS} clients, {len(bodies)} requests)")

    assert batching["mean_batch_size"] > 1.5, (
        "micro-batching never coalesced; the measurement is meaningless: "
        f"{batching}")
    assert speedup >= SPEEDUP_FLOOR, (
        f"micro-batched serving {best_bat['requests_per_second']:.1f} req/s "
        f"is {speedup:.2f}x the serialized baseline "
        f"{best_ser['requests_per_second']:.1f} req/s — floor is "
        f"{SPEEDUP_FLOOR}x")
