"""Executor throughput: compiled plan replay vs the dynamic engine.

Exercises the plan-once/run-many executor at Table 2 model scale on a
synthetic mixed-length sequence pool (70% short combinational hops, a
10% long tail — the profile real designs produce):

- **predict**: warm `CircuitformerExecutor.predict_unique` replays vs
  the dynamic bucketed ``predict_unique`` (the PR-2 inference kernel),
  at fp64 (bit-identical), fp32, and weight-only int8;
- **train**: warm ``TrainingEngine(executor=True)`` plan steps vs the
  dynamic bucketed+fused engine (the PR-2 training path), measured over
  epochs 2..N so one-time compiles are excluded on both sides.

At this model width the fp64 schedule is BLAS-bound, so its replay win
is modest (it is the *bit-exact* mode; its value is zero graph
construction and staleness-checked aliasing).  The throughput headline
comes from the reduced-precision plans, which the floors below pin:
>=2x warm predict paths/sec and >=1.3x warm training steps/sec.
Results land in ``BENCH_executor.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core import Circuitformer, CircuitformerConfig, TrainingConfig
from repro.datagen.dataset import PathRecord
from repro.graphir import Vocabulary
from repro.runtime import EncodingCache, TrainingEngine

from conftest import run_once

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_executor.json"

BENCH_CF = CircuitformerConfig(max_input_size=192)
NUM_SEQS = 700
NUM_RECORDS = 256
BATCH = 128
EPOCHS = 3
TRAIN_CONFIG = TrainingConfig(circuitformer_epochs=EPOCHS,
                              circuitformer_batch=32, seed=0)
WARMUP_CONFIG = TrainingConfig(circuitformer_epochs=1,
                               circuitformer_batch=32, seed=0)


def _mixed_lengths(rng) -> int:
    r = rng.random()
    if r < 0.7:
        return int(rng.integers(3, 12))
    if r < 0.9:
        return int(rng.integers(12, 48))
    return int(rng.integers(48, 160))


def make_seqs(n: int, seed: int = 42) -> list[tuple[str, ...]]:
    rng = np.random.default_rng(seed)
    tokens = list(Vocabulary.standard().tokens)[:16]
    seqs = [tuple(tokens[int(j)]
                  for j in rng.integers(0, len(tokens), _mixed_lengths(rng)))
            for _ in range(n)]
    return list(dict.fromkeys(seqs))


def make_records(n: int, seed: int = 42) -> list[PathRecord]:
    rng = np.random.default_rng(seed)
    tokens = list(Vocabulary.standard().tokens)[:16]
    records = []
    for _ in range(n):
        seq = tuple(tokens[int(j)]
                    for j in rng.integers(0, len(tokens), _mixed_lengths(rng)))
        records.append(PathRecord(
            tokens=seq,
            timing_ps=float(rng.random() * 100 + 10),
            area_um2=float(rng.random() * 50 + 1),
            power_mw=float(rng.random() * 5 + 0.1)))
    return records


# ---------------------------------------------------------------------- #
# Inference
# ---------------------------------------------------------------------- #
def _bench_predict(model, seqs):
    # Dynamic baseline (warm: one untimed pass first).
    model.predict_unique(seqs, batch_size=BATCH)
    t0 = time.perf_counter()
    ref = model.predict_unique(seqs, batch_size=BATCH)
    dyn_s = time.perf_counter() - t0

    out = {"paths": len(seqs),
           "dynamic": {"seconds": dyn_s, "paths_per_sec": len(seqs) / dyn_s}}
    for precision in ("fp64", "fp32", "int8"):
        ex = model.compile_executor(precision=precision)
        t0 = time.perf_counter()
        got = ex.predict_unique(seqs, batch_size=BATCH)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        got = ex.predict_unique(seqs, batch_size=BATCH)
        warm_s = time.perf_counter() - t0
        err = float(np.max(np.abs(got - ref) / (1.0 + np.abs(ref))))
        out[precision] = {
            "compile_plus_first_run_seconds": cold_s,
            "warm_seconds": warm_s,
            "warm_paths_per_sec": len(seqs) / warm_s,
            "warm_speedup": dyn_s / warm_s,
            "bitwise_equal": bool(np.array_equal(got, ref)),
            "max_relative_error": err,
            "plans": ex.stats()["plans"],
        }
    return out


# ---------------------------------------------------------------------- #
# Training
# ---------------------------------------------------------------------- #
def _train_run(records, config, executor: bool, precision: str):
    engine = TrainingEngine(bucketed=True, fused=True, executor=executor,
                            precision=precision,
                            encoding_cache=EncodingCache())
    model = Circuitformer(BENCH_CF, seed=0)
    t0 = time.perf_counter()
    history = engine.train_circuitformer(model, records, config)
    elapsed = time.perf_counter() - t0
    return elapsed, engine.last_profile, history[-1].train_loss


def _bench_train(records, executor: bool, precision: str):
    """Total and warm (epochs 2..N) steps/sec for one engine flavor.

    The warm rate subtracts a separate 1-epoch run: epoch one carries
    every plan compile (executor) and cache fill (both), so epochs 2..N
    measure the steady state the plan-once/run-many design targets.
    """
    total_s, profile, loss = _train_run(records, TRAIN_CONFIG,
                                        executor, precision)
    first_s, first_profile, _ = _train_run(records, WARMUP_CONFIG,
                                           executor, precision)
    warm_steps = profile.steps - first_profile.steps
    warm_s = max(total_s - first_s, 1e-9)
    return {
        "seconds": total_s,
        "steps": profile.steps,
        "steps_per_sec": profile.steps / total_s,
        "warm_steps_per_sec": warm_steps / warm_s,
        "final_train_loss": loss,
        "phase_seconds": profile.phase_seconds,
    }


def test_executor_throughput(benchmark):
    seqs = make_seqs(NUM_SEQS)
    records = make_records(NUM_RECORDS)
    model = Circuitformer(BENCH_CF, seed=0)

    predict = run_once(benchmark, lambda: _bench_predict(model, seqs))

    train_dyn = _bench_train(records, executor=False, precision="fp64")
    train_fp64 = _bench_train(records, executor=True, precision="fp64")
    train_fp32 = _bench_train(records, executor=True, precision="fp32")

    result = {
        "model": "table2 (d=128, 2 layers)",
        "predict": predict,
        "train": {
            "records": NUM_RECORDS,
            "epochs": EPOCHS,
            "batch_size": TRAIN_CONFIG.circuitformer_batch,
            "dynamic": train_dyn,
            "executor_fp64": train_fp64,
            "executor_fp32": train_fp32,
            "warm_speedup_fp64": (train_fp64["warm_steps_per_sec"]
                                  / train_dyn["warm_steps_per_sec"]),
            "warm_speedup_fp32": (train_fp32["warm_steps_per_sec"]
                                  / train_dyn["warm_steps_per_sec"]),
        },
    }
    BENCH_JSON.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))

    # fp64 is the bit-exact mode: identical outputs and loss curves.
    assert predict["fp64"]["bitwise_equal"]
    assert train_fp64["final_train_loss"] == train_dyn["final_train_loss"]
    # Reduced precision stays inside the documented gates.
    assert predict["fp32"]["max_relative_error"] <= 1e-4
    assert predict["int8"]["max_relative_error"] <= 0.25
    # Acceptance floors: >=2x warm predict paths/sec and >=1.3x warm
    # training steps/sec from the reduced-precision executor; fp64 must
    # at least not regress the dynamic engine.
    assert predict["fp32"]["warm_speedup"] >= 2.0, predict["fp32"]
    assert result["train"]["warm_speedup_fp32"] >= 1.3, result["train"]
    assert predict["fp64"]["warm_speedup"] >= 0.9, predict["fp64"]
    assert result["train"]["warm_speedup_fp64"] >= 0.9, result["train"]
